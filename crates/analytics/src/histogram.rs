//! Equal-width histograms and the PLoD histogram-error metric.

/// Equal-width bin boundaries over the data range: `nbins + 1` edges
/// from min to max.
///
/// # Panics
/// Panics on empty data or `nbins == 0`.
pub fn equal_width_bounds(data: &[f64], nbins: usize) -> Vec<f64> {
    assert!(!data.is_empty() && nbins > 0);
    let mut min = f64::MAX;
    let mut max = f64::MIN;
    for &v in data {
        min = min.min(v);
        max = max.max(v);
    }
    if min == max {
        max = min + 1.0;
    }
    (0..=nbins)
        .map(|i| min + (max - min) * i as f64 / nbins as f64)
        .collect()
}

/// Bin index of a value given boundaries (values outside the range are
/// clamped into the first/last bin, as when bounds from the original
/// data are applied to truncated data).
fn bin_of(v: f64, bounds: &[f64]) -> usize {
    let nbins = bounds.len() - 1;
    if v < bounds[0] {
        return 0;
    }
    // Binary search for the right edge.
    let mut lo = 0usize;
    let mut hi = nbins;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if v >= bounds[mid] {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo.min(nbins - 1)
}

/// Count points per bin.
pub fn histogram_counts(data: &[f64], bounds: &[f64]) -> Vec<u64> {
    assert!(bounds.len() >= 2);
    let mut counts = vec![0u64; bounds.len() - 1];
    for &v in data {
        counts[bin_of(v, bounds)] += 1;
    }
    counts
}

/// Paper Table VI metric: build equal-width bounds on `original`, apply
/// them to both arrays, and return the fraction of points that land in
/// a different bin.
pub fn histogram_error_rate(original: &[f64], approx: &[f64], nbins: usize) -> f64 {
    assert_eq!(original.len(), approx.len());
    if original.is_empty() {
        return 0.0;
    }
    let bounds = equal_width_bounds(original, nbins);
    let moved = original
        .iter()
        .zip(approx)
        .filter(|(a, b)| bin_of(**a, &bounds) != bin_of(**b, &bounds))
        .count();
    moved as f64 / original.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_cover_range() {
        let data = [1.0, 5.0, 9.0];
        let b = equal_width_bounds(&data, 4);
        assert_eq!(b.len(), 5);
        assert_eq!(b[0], 1.0);
        assert_eq!(b[4], 9.0);
        assert!((b[2] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn counts_sum_to_n() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let bounds = equal_width_bounds(&data, 17);
        let counts = histogram_counts(&data, &bounds);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let data = [0.0, 10.0];
        let bounds = equal_width_bounds(&data, 5);
        assert_eq!(bin_of(10.0, &bounds), 4);
        assert_eq!(bin_of(0.0, &bounds), 0);
        // Out-of-range values clamp.
        assert_eq!(bin_of(-5.0, &bounds), 0);
        assert_eq!(bin_of(15.0, &bounds), 4);
    }

    #[test]
    fn identical_data_has_zero_error() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sin()).collect();
        assert_eq!(histogram_error_rate(&data, &data, 32), 0.0);
    }

    #[test]
    fn perturbation_error_grows_with_noise() {
        let data: Vec<f64> = (0..5000).map(|i| i as f64 / 50.0).collect();
        let small: Vec<f64> = data.iter().map(|v| v + 0.001).collect();
        let large: Vec<f64> = data.iter().map(|v| v + 1.0).collect();
        let e_small = histogram_error_rate(&data, &small, 100);
        let e_large = histogram_error_rate(&data, &large, 100);
        assert!(e_small < e_large);
        assert!(e_small < 0.01, "e_small {e_small}");
        assert!(e_large > 0.5, "e_large {e_large}");
    }

    #[test]
    fn constant_data_does_not_panic() {
        let data = vec![3.0; 10];
        let bounds = equal_width_bounds(&data, 4);
        let counts = histogram_counts(&data, &bounds);
        assert_eq!(counts.iter().sum::<u64>(), 10);
    }
}
