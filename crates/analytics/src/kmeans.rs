//! K-means clustering (Lloyd's algorithm) and the PLoD
//! misclassification metric.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a K-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids, `k * dim` row-major.
    pub centroids: Vec<f64>,
    /// Cluster label per point.
    pub labels: Vec<u32>,
    /// Iterations actually executed (stops early on convergence).
    pub iterations: u32,
}

/// Run Lloyd's algorithm on `points` (`n * dim` row-major).
///
/// Initial centroids are `k` points sampled with a seeded RNG, so two
/// runs with the same seed on *similar* data start identically — that
/// is how the paper compares clusterings of original vs PLoD data.
///
/// # Panics
/// Panics when `k == 0`, `dim == 0`, or there are fewer points than
/// clusters.
pub fn kmeans(points: &[f64], dim: usize, k: usize, max_iters: u32, seed: u64) -> KMeansResult {
    assert!(dim > 0 && k > 0);
    assert_eq!(points.len() % dim, 0);
    let n = points.len() / dim;
    assert!(n >= k, "need at least k points");

    let mut rng = StdRng::seed_from_u64(seed);
    // Sample k distinct point indices for initial centroids.
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    while chosen.len() < k {
        let idx = rng.random_range(0..n);
        if !chosen.contains(&idx) {
            chosen.push(idx);
        }
    }
    let mut centroids: Vec<f64> = chosen
        .iter()
        .flat_map(|&i| points[i * dim..(i + 1) * dim].iter().copied())
        .collect();

    let mut labels = vec![0u32; n];
    let mut iterations = 0u32;
    for _ in 0..max_iters {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for i in 0..n {
            let p = &points[i * dim..(i + 1) * dim];
            let mut best = 0usize;
            let mut best_d = f64::MAX;
            for c in 0..k {
                let q = &centroids[c * dim..(c + 1) * dim];
                let d: f64 = p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if labels[i] != best as u32 {
                labels[i] = best as u32;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u64; k];
        for i in 0..n {
            let c = labels[i] as usize;
            counts[c] += 1;
            for d in 0..dim {
                sums[c * dim + d] += points[i * dim + d];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..dim {
                    centroids[c * dim + d] = sums[c * dim + d] / counts[c] as f64;
                }
            }
            // Empty clusters keep their previous centroid.
        }
        if !changed {
            break;
        }
    }
    KMeansResult {
        centroids,
        labels,
        iterations,
    }
}

/// Fraction of points labelled differently by two clusterings, after
/// greedily matching cluster ids via the confusion matrix (label ids
/// are arbitrary, so a direct comparison would over-count).
pub fn misclassification_rate(a: &[u32], b: &[u32], k: usize) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    // Confusion matrix.
    let mut conf = vec![0u64; k * k];
    for (&x, &y) in a.iter().zip(b) {
        conf[x as usize * k + y as usize] += 1;
    }
    // Greedy matching: repeatedly take the largest remaining cell.
    let mut used_a = vec![false; k];
    let mut used_b = vec![false; k];
    let mut agree = 0u64;
    for _ in 0..k {
        let mut best = 0u64;
        let mut best_cell = None;
        for i in 0..k {
            if used_a[i] {
                continue;
            }
            for j in 0..k {
                if used_b[j] {
                    continue;
                }
                if conf[i * k + j] >= best {
                    best = conf[i * k + j];
                    best_cell = Some((i, j));
                }
            }
        }
        if let Some((i, j)) = best_cell {
            used_a[i] = true;
            used_b[j] = true;
            agree += best;
        }
    }
    1.0 - agree as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, centers: &[(f64, f64)], spread: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..n_per {
                pts.push(cx + rng.random_range(-spread..spread));
                pts.push(cy + rng.random_range(-spread..spread));
            }
        }
        pts
    }

    #[test]
    fn separable_blobs_are_recovered() {
        let pts = blobs(100, &[(0.0, 0.0), (10.0, 10.0), (-10.0, 8.0)], 1.0, 1);
        let res = kmeans(&pts, 2, 3, 100, 42);
        // Each blob must be pure: all 100 points share one label.
        for blob in 0..3 {
            let labels = &res.labels[blob * 100..(blob + 1) * 100];
            assert!(labels.iter().all(|&l| l == labels[0]), "blob {blob} split");
        }
    }

    #[test]
    fn converges_early() {
        let pts = blobs(50, &[(0.0, 0.0), (100.0, 0.0)], 0.5, 2);
        let res = kmeans(&pts, 2, 2, 1000, 7);
        assert!(res.iterations < 50, "iterations {}", res.iterations);
    }

    #[test]
    fn deterministic_by_seed() {
        let pts = blobs(50, &[(0.0, 0.0), (5.0, 5.0)], 1.5, 3);
        let a = kmeans(&pts, 2, 2, 100, 9);
        let b = kmeans(&pts, 2, 2, 100, 9);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn one_dimensional_clustering() {
        let mut pts: Vec<f64> = (0..50).map(|i| i as f64 * 0.01).collect();
        pts.extend((0..50).map(|i| 100.0 + i as f64 * 0.01));
        let res = kmeans(&pts, 1, 2, 100, 5);
        assert_ne!(res.labels[0], res.labels[99]);
    }

    #[test]
    fn misclassification_identical_is_zero() {
        let labels = vec![0u32, 1, 2, 0, 1, 2];
        assert_eq!(misclassification_rate(&labels, &labels, 3), 0.0);
    }

    #[test]
    fn misclassification_handles_permuted_labels() {
        // Same partition, renamed clusters: still zero error.
        let a = vec![0u32, 0, 1, 1, 2, 2];
        let b = vec![2u32, 2, 0, 0, 1, 1];
        assert_eq!(misclassification_rate(&a, &b, 3), 0.0);
    }

    #[test]
    fn misclassification_counts_moves() {
        let a = vec![0u32, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0u32, 0, 0, 1, 1, 1, 1, 1];
        assert!((misclassification_rate(&a, &b, 2) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn tiny_perturbation_rarely_changes_clustering() {
        let pts = blobs(200, &[(0.0, 0.0), (10.0, 10.0)], 2.0, 11);
        let noisy: Vec<f64> = pts.iter().map(|v| v + 1e-6).collect();
        let a = kmeans(&pts, 2, 2, 100, 13);
        let b = kmeans(&noisy, 2, 2, 100, 13);
        let err = misclassification_rate(&a.labels, &b.labels, 2);
        assert!(err < 0.01, "err {err}");
    }
}
