//! Analysis kernels used by the MLOC evaluation.
//!
//! Table VI of the paper measures how much precision-based level of
//! detail (PLoD) truncation perturbs two downstream analyses:
//! equal-width *histogram construction* and *K-means clustering*. This
//! crate implements both, plus the summary statistics used for the
//! "mean value analysis" error figures quoted in §III-B.3.

//! # Example
//!
//! ```
//! use mloc_analytics::{histogram_error_rate, kmeans, misclassification_rate};
//!
//! let original: Vec<f64> = (0..1000).map(|i| i as f64).collect();
//! let perturbed: Vec<f64> = original.iter().map(|v| v + 0.4).collect();
//! assert!(histogram_error_rate(&original, &perturbed, 50) < 0.05);
//!
//! let a = kmeans(&original, 1, 2, 50, 1);
//! let b = kmeans(&perturbed, 1, 2, 50, 1);
//! assert!(misclassification_rate(&a.labels, &b.labels, 2) < 0.01);
//! ```

pub mod histogram;
pub mod kmeans;
pub mod stats;

pub use histogram::{equal_width_bounds, histogram_counts, histogram_error_rate};
pub use kmeans::{kmeans, misclassification_rate, KMeansResult};
pub use stats::{max_relative_error, mean, mean_relative_error, variance};
