//! Summary statistics and relative-error metrics for PLoD evaluation.

/// Arithmetic mean (0 for empty input).
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        0.0
    } else {
        data.iter().sum::<f64>() / data.len() as f64
    }
}

/// Population variance (0 for empty input).
pub fn variance(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / data.len() as f64
}

/// Point-wise relative error `|a-b| / max(|a|, floor)`.
fn rel_err(a: f64, b: f64, floor: f64) -> f64 {
    (a - b).abs() / a.abs().max(floor)
}

/// Maximum point-wise relative error between two equal-length arrays.
/// `floor` guards division for near-zero reference values.
pub fn max_relative_error(reference: &[f64], approx: &[f64], floor: f64) -> f64 {
    assert_eq!(reference.len(), approx.len());
    reference
        .iter()
        .zip(approx)
        .map(|(&a, &b)| rel_err(a, b, floor))
        .fold(0.0, f64::max)
}

/// Mean point-wise relative error between two equal-length arrays.
pub fn mean_relative_error(reference: &[f64], approx: &[f64], floor: f64) -> f64 {
    assert_eq!(reference.len(), approx.len());
    if reference.is_empty() {
        return 0.0;
    }
    let sum: f64 = reference
        .iter()
        .zip(approx)
        .map(|(&a, &b)| rel_err(a, b, floor))
        .sum();
    sum / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_errors() {
        let a = [100.0, 200.0, 0.0];
        let b = [101.0, 200.0, 0.001];
        let max = max_relative_error(&a, &b, 1.0);
        assert!((max - 0.01).abs() < 1e-12, "max {max}");
        let m = mean_relative_error(&a, &b, 1.0);
        assert!(m > 0.0 && m < 0.01);
        assert_eq!(max_relative_error(&a, &a, 1.0), 0.0);
    }

    #[test]
    fn floor_guards_small_references() {
        let a = [1e-30];
        let b = [2e-30];
        // Without the floor this would be 1.0; the floor damps it.
        assert!(max_relative_error(&a, &b, 1e-6) < 1e-20);
    }
}
