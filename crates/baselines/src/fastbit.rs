//! FastBit-style binned bitmap index.
//!
//! FastBit (Wu, 2005) answers value-range queries with per-bin
//! WAH-compressed bitmaps over the global point order. Two classic
//! encodings are provided:
//!
//! * [`BitmapEncoding::Equality`] — bitmap `k` marks the points whose
//!   value falls in bin `k` (sparse bitmaps, range queries OR many).
//! * [`BitmapEncoding::Range`] — bitmap `k` marks points with bin
//!   `<= k` (cumulative): a range query needs only two bitmaps.
//!
//! Either way, the paper's observation holds and is reproduced here:
//! the index must be read from disk in full before each query, and
//! boundary-bin candidates must be checked against the raw data.

use crate::{Answer, QueryEngine};
use mloc::array::Region;
use mloc::binning::BinSpec;
use mloc::{MlocError, Result};
use mloc_bitmap::{andnot, or, or_many, WahBitmap};
use mloc_pfs::{RankIo, StorageBackend};
use std::time::Instant;

/// Bitmap index encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitmapEncoding {
    /// One sparse bitmap per bin.
    Equality,
    /// Cumulative bitmaps (`bin <= k`), FastBit's production choice.
    Range,
}

/// The FastBit-like engine.
pub struct FastBit<'a> {
    backend: &'a dyn StorageBackend,
    index_file: String,
    data_file: String,
    spec: BinSpec,
    encoding: BitmapEncoding,
    shape: Vec<usize>,
    total_points: u64,
}

impl<'a> FastBit<'a> {
    /// Build the binned bitmap index plus a raw data copy with the
    /// equality encoding (pair with a fine "precision" bin count, as
    /// FastBit's precision binning produces).
    pub fn build(
        backend: &'a dyn StorageBackend,
        name: &str,
        values: &[f64],
        shape: Vec<usize>,
        num_bins: usize,
    ) -> Result<FastBit<'a>> {
        Self::build_with_encoding(
            backend,
            name,
            values,
            shape,
            num_bins,
            BitmapEncoding::Equality,
        )
    }

    /// Build with an explicit bitmap encoding.
    pub fn build_with_encoding(
        backend: &'a dyn StorageBackend,
        name: &str,
        values: &[f64],
        shape: Vec<usize>,
        num_bins: usize,
        encoding: BitmapEncoding,
    ) -> Result<FastBit<'a>> {
        let n: usize = shape.iter().product();
        assert_eq!(n, values.len(), "shape/value mismatch");

        let spec = BinSpec::equal_frequency(values, num_bins);
        let bins: Vec<usize> = values.iter().map(|&v| spec.bin_of(v)).collect();

        let index_file = format!("fastbit/{name}.idx");
        backend.create(&index_file)?;
        let mut header = Vec::new();
        header.extend_from_slice(&(num_bins as u32).to_le_bytes());
        header.push(match encoding {
            BitmapEncoding::Equality => 0,
            BitmapEncoding::Range => 1,
        });
        for b in spec.bounds() {
            header.extend_from_slice(&b.to_le_bytes());
        }
        backend.append(&index_file, &header)?;

        for k in 0..num_bins {
            let bm = match encoding {
                BitmapEncoding::Equality => {
                    let pos: Vec<u64> = bins
                        .iter()
                        .enumerate()
                        .filter(|(_, &b)| b == k)
                        .map(|(i, _)| i as u64)
                        .collect();
                    WahBitmap::from_sorted_positions(n as u64, &pos)
                }
                BitmapEncoding::Range => {
                    let pos: Vec<u64> = bins
                        .iter()
                        .enumerate()
                        .filter(|(_, &b)| b <= k)
                        .map(|(i, _)| i as u64)
                        .collect();
                    WahBitmap::from_sorted_positions(n as u64, &pos)
                }
            };
            let bytes = bm.to_bytes();
            let mut rec = Vec::with_capacity(8 + bytes.len());
            rec.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            rec.extend_from_slice(&bytes);
            backend.append(&index_file, &rec)?;
        }

        // Raw data copy for candidate checks and value output.
        let data_file = format!("fastbit/{name}.dat");
        backend.create(&data_file)?;
        for slab in values.chunks(1 << 20) {
            let mut raw = Vec::with_capacity(slab.len() * 8);
            for v in slab {
                raw.extend_from_slice(&v.to_le_bytes());
            }
            backend.append(&data_file, &raw)?;
        }

        Ok(FastBit {
            backend,
            index_file,
            data_file,
            spec,
            encoding,
            shape,
            total_points: n as u64,
        })
    }

    /// Read and decode the entire index file (FastBit's per-query
    /// index load). Returns the per-bin bitmaps in stored encoding.
    fn load_index(&self, io: &mut RankIo<'_>) -> Result<Vec<WahBitmap>> {
        let raw = io.read_all(&self.index_file)?;
        let num_bins = u32::from_le_bytes(
            raw.get(0..4)
                .ok_or(MlocError::Corrupt("index truncated"))?
                .try_into()
                .unwrap(),
        ) as usize;
        let mut pos = 5 + (num_bins + 1) * 8;
        let mut maps = Vec::with_capacity(num_bins);
        for _ in 0..num_bins {
            let len = u64::from_le_bytes(
                raw.get(pos..pos + 8)
                    .ok_or(MlocError::Corrupt("index truncated"))?
                    .try_into()
                    .unwrap(),
            ) as usize;
            pos += 8;
            let (bm, used) = WahBitmap::from_bytes(
                raw.get(pos..pos + len)
                    .ok_or(MlocError::Corrupt("index truncated"))?,
            )?;
            debug_assert_eq!(used, len);
            pos += len;
            maps.push(bm);
        }
        Ok(maps)
    }

    /// Equality bitmap of bin `k` from the loaded index.
    fn equality_bitmap(&self, maps: &[WahBitmap], k: usize) -> WahBitmap {
        match self.encoding {
            BitmapEncoding::Equality => maps[k].clone(),
            BitmapEncoding::Range => {
                if k == 0 {
                    maps[0].clone()
                } else {
                    andnot(&maps[k], &maps[k - 1])
                }
            }
        }
    }

    /// Read raw values at sorted candidate positions, coalescing
    /// nearby candidates into single reads.
    fn read_values_at(&self, io: &mut RankIo<'_>, positions: &[u64]) -> Result<Vec<f64>> {
        let runs: Vec<(u64, u64)> = positions.iter().map(|&p| (p, 1)).collect();
        let extents = crate::runs::coalesce_runs(&runs, crate::runs::READAHEAD_GAP_BYTES);
        let mut out = Vec::with_capacity(positions.len());
        let mut idx = 0usize;
        for (start, len) in extents {
            let buf = io.read(&self.data_file, start * 8, len * 8)?;
            let end = start + len;
            while idx < positions.len() && positions[idx] < end {
                let off = ((positions[idx] - start) * 8) as usize;
                out.push(f64::from_le_bytes(buf[off..off + 8].try_into().unwrap()));
                idx += 1;
            }
        }
        Ok(out)
    }
}

impl QueryEngine for FastBit<'_> {
    fn name(&self) -> &'static str {
        "fastbit"
    }

    fn data_bytes(&self) -> u64 {
        self.backend.len(&self.data_file).unwrap_or(0)
    }

    fn index_bytes(&self) -> u64 {
        self.backend.len(&self.index_file).unwrap_or(0)
    }

    fn region_query(&self, lo: f64, hi: f64) -> Result<Answer> {
        let mut io = RankIo::new(self.backend);
        let maps = self.load_index(&mut io)?;

        let t = Instant::now();
        let (aligned, boundary) = self.spec.split_candidates(lo, hi);
        let mut result = match (self.encoding, aligned.first(), aligned.last()) {
            // Contiguous aligned bins resolve with two cumulative maps.
            (BitmapEncoding::Range, Some(&first), Some(&last)) => {
                if first == 0 {
                    maps[last].clone()
                } else {
                    andnot(&maps[last], &maps[first - 1])
                }
            }
            (BitmapEncoding::Equality, Some(_), Some(_)) => {
                let covered: Vec<WahBitmap> = aligned.iter().map(|&k| maps[k].clone()).collect();
                or_many(&covered, self.total_points)
            }
            _ => WahBitmap::zeros(self.total_points),
        };
        let mut cpu_s = t.elapsed().as_secs_f64();

        // Boundary bins: candidates verified against the raw data.
        for k in boundary {
            let t = Instant::now();
            let candidates = self.equality_bitmap(&maps, k).to_positions();
            cpu_s += t.elapsed().as_secs_f64();
            let values = self.read_values_at(&mut io, &candidates)?;
            let t = Instant::now();
            let hits: Vec<u64> = candidates
                .iter()
                .zip(&values)
                .filter(|(_, &v)| v >= lo && v < hi)
                .map(|(&p, _)| p)
                .collect();
            let hit_map = WahBitmap::from_sorted_positions(self.total_points, &hits);
            result = or(&result, &hit_map);
            cpu_s += t.elapsed().as_secs_f64();
        }

        let t = Instant::now();
        let positions = result.to_positions();
        cpu_s += t.elapsed().as_secs_f64();
        Ok(Answer {
            positions,
            values: None,
            cpu_s,
            overhead_s: 0.0,
            traces: vec![io.into_trace()],
        })
    }

    fn value_query(&self, region: &Region) -> Result<Answer> {
        if region.dims() != self.shape.len() || !Region::full(&self.shape).contains_region(region) {
            return Err(MlocError::Invalid("region out of domain".into()));
        }
        // FastBit is a value index: spatially-constrained queries still
        // pay the full index load (paper: "performance … similar to
        // region queries as it must still load the entire index"),
        // then fetch the raw rows of the region.
        let mut io = RankIo::new(self.backend);
        let _maps = self.load_index(&mut io)?;

        let runs = crate::runs::region_runs(&self.shape, region);
        let extents = crate::runs::coalesce_runs(&runs, crate::runs::READAHEAD_GAP_BYTES);
        let mut positions = Vec::new();
        let mut values = Vec::new();
        let mut cpu_s = 0.0;
        let mut run_idx = 0usize;
        for (start, len) in extents {
            let buf = io.read(&self.data_file, start * 8, len * 8)?;
            let t = Instant::now();
            let end = start + len;
            while run_idx < runs.len() && runs[run_idx].0 < end {
                let (rs, rl) = runs[run_idx];
                let off = ((rs - start) * 8) as usize;
                for (i, c) in buf[off..off + rl as usize * 8].chunks_exact(8).enumerate() {
                    positions.push(rs + i as u64);
                    values.push(f64::from_le_bytes(c.try_into().unwrap()));
                }
                run_idx += 1;
            }
            cpu_s += t.elapsed().as_secs_f64();
        }
        Ok(Answer {
            positions,
            values: Some(values),
            cpu_s,
            overhead_s: 0.0,
            traces: vec![io.into_trace()],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mloc_pfs::MemBackend;

    fn fixture(be: &MemBackend, encoding: BitmapEncoding) -> (Vec<f64>, FastBit<'_>) {
        let values: Vec<f64> = (0..2048).map(|i| ((i * 31) % 503) as f64).collect();
        let fb =
            FastBit::build_with_encoding(be, "t", &values, vec![64, 32], 16, encoding).unwrap();
        (values, fb)
    }

    #[test]
    fn region_query_is_exact_both_encodings() {
        for enc in [BitmapEncoding::Equality, BitmapEncoding::Range] {
            let be = MemBackend::new();
            let (values, fb) = fixture(&be, enc);
            for (lo, hi) in [(100.0, 200.0), (0.0, 503.0), (250.0, 251.0)] {
                let ans = fb.region_query(lo, hi).unwrap();
                let want: Vec<u64> = values
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v >= lo && v < hi)
                    .map(|(i, _)| i as u64)
                    .collect();
                assert_eq!(ans.positions, want, "{enc:?} [{lo},{hi})");
            }
        }
    }

    #[test]
    fn every_query_loads_the_whole_index() {
        let be = MemBackend::new();
        let (_, fb) = fixture(&be, BitmapEncoding::Range);
        let idx_size = fb.index_bytes();
        assert!(idx_size > 0);
        let ans = fb.region_query(100.0, 110.0).unwrap();
        // First trace op is the full index read.
        assert_eq!(ans.traces[0][0].len, idx_size);
    }

    #[test]
    fn index_sizes_are_substantial() {
        // On oscillatory data both encodings produce a heavyweight
        // index comparable to the raw data (paper Table I behaviour);
        // their relative size depends on the data's smoothness.
        let be1 = MemBackend::new();
        let be2 = MemBackend::new();
        let (values, eq) = fixture(&be1, BitmapEncoding::Equality);
        let (_, rg) = fixture(&be2, BitmapEncoding::Range);
        let raw = values.len() as u64 * 8;
        assert!(
            eq.index_bytes() * 8 > raw,
            "eq idx {} raw {raw}",
            eq.index_bytes()
        );
        assert!(
            rg.index_bytes() * 8 > raw,
            "rg idx {} raw {raw}",
            rg.index_bytes()
        );
    }

    #[test]
    fn value_query_is_exact_and_loads_index() {
        let be = MemBackend::new();
        let (values, fb) = fixture(&be, BitmapEncoding::Range);
        let region = Region::new(vec![(10, 20), (5, 25)]);
        let ans = fb.value_query(&region).unwrap();
        assert_eq!(ans.positions.len(), 200);
        for (&p, &v) in ans.positions.iter().zip(ans.values.as_ref().unwrap()) {
            assert_eq!(v, values[p as usize]);
        }
        assert!(ans.bytes_read() > fb.index_bytes());
    }

    #[test]
    fn empty_range() {
        let be = MemBackend::new();
        let (_, fb) = fixture(&be, BitmapEncoding::Range);
        let ans = fb.region_query(1e9, 2e9).unwrap();
        assert!(ans.positions.is_empty());
    }
}
