//! Comparator engines for the MLOC evaluation.
//!
//! The paper compares MLOC against three systems (§IV-A.2); all three
//! are re-implemented here at the fidelity the comparison depends on:
//!
//! * [`seqscan`] — naive sequential scan over a row-major raw file:
//!   value queries read only the contiguous row segments intersecting
//!   the region; region (value-constrained) queries scan everything.
//! * [`fastbit`] — FastBit-style binned bitmap index: 100 value bins,
//!   one WAH-compressed bitmap per bin over global positions. The
//!   index is large (≳ the data) and — as the paper observes — must be
//!   loaded from disk in full before each query; boundary-bin
//!   candidates are checked against the raw data.
//! * [`scidb`] — SciDB-style chunked array store: chunks with overlap
//!   replication along boundaries, per-chunk access with a modeled
//!   per-chunk query-processing overhead (calibrated from the paper's
//!   Table II; see `DESIGN.md`), full-scan execution for value
//!   constraints.
//!
//! All engines implement [`QueryEngine`]: they answer with exact
//! results, measured CPU seconds, any modeled engine overhead, and the
//! per-rank I/O traces which the caller prices with the PFS simulator.

//! # Example
//!
//! ```
//! use mloc_baselines::{QueryEngine, SeqScan};
//! use mloc_pfs::{CostModel, MemBackend};
//!
//! let values: Vec<f64> = (0..256).map(|i| i as f64).collect();
//! let be = MemBackend::new();
//! let scan = SeqScan::build(&be, "demo", &values, vec![16, 16]).unwrap();
//! let answer = scan.region_query(10.0, 20.0).unwrap();
//! assert_eq!(answer.positions.len(), 10);
//! assert!(answer.response_s(&CostModel::lens_2012()) > 0.0);
//! ```

pub mod fastbit;
pub mod runs;
pub mod scidb;
pub mod seqscan;

pub use fastbit::FastBit;
pub use scidb::SciDb;
pub use seqscan::SeqScan;

use mloc::array::Region;
use mloc::MlocError;
use mloc_pfs::{simulate_reads, CostModel, ReadOp};

/// A baseline engine's answer to one query.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Matching global (row-major) positions, sorted.
    pub positions: Vec<u64>,
    /// Values aligned with positions (value queries only).
    pub values: Option<Vec<f64>>,
    /// Measured CPU seconds (scan/filter/bitmap work).
    pub cpu_s: f64,
    /// Modeled engine overhead seconds (e.g. SciDB per-chunk cost).
    pub overhead_s: f64,
    /// Per-rank I/O traces, priced by the PFS simulator.
    pub traces: Vec<Vec<ReadOp>>,
}

impl Answer {
    /// Simulated response time under a cost model: slowest-rank I/O
    /// plus CPU plus modeled overhead.
    pub fn response_s(&self, model: &CostModel) -> f64 {
        simulate_reads(&self.traces, model).elapsed() + self.cpu_s + self.overhead_s
    }

    /// Simulated I/O seconds alone.
    pub fn io_s(&self, model: &CostModel) -> f64 {
        simulate_reads(&self.traces, model).elapsed()
    }

    /// Total bytes this answer read.
    pub fn bytes_read(&self) -> u64 {
        self.traces.iter().flatten().map(|op| op.len).sum()
    }
}

/// Common query interface of the comparator engines.
pub trait QueryEngine {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Bytes of stored data (Table I "Data size").
    fn data_bytes(&self) -> u64;

    /// Bytes of stored index (Table I "Index size"; 0 when none).
    fn index_bytes(&self) -> u64;

    /// Value-constrained region query: positions with value in
    /// `[lo, hi)`.
    fn region_query(&self, lo: f64, hi: f64) -> Result<Answer, MlocError>;

    /// Spatially-constrained value query: positions and values inside
    /// the region.
    fn value_query(&self, region: &Region) -> Result<Answer, MlocError>;
}
