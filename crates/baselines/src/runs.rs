//! Row-run extraction and readahead-style coalescing shared by the
//! raw-file engines.

use mloc::array::Region;

/// Client readahead merges reads separated by small gaps, so scanning
/// a sub-volume does not pay one seek per row when rows are nearly
/// adjacent (3-D sub-volumes read as one spanning extent per plane),
/// while widely separated rows/planes still seek. 12 KiB matches the
/// per-plane-span behaviour the paper's sequential-scan numbers imply
/// (its S3D value queries are far cheaper than a seek per row, yet its
/// 2-D queries clearly pay a seek per row).
pub const READAHEAD_GAP_BYTES: u64 = 12 * 1024;

/// Contiguous row-major point runs `(start_lin, len)` covering a
/// region of a row-major array.
pub fn region_runs(shape: &[usize], region: &Region) -> Vec<(u64, u64)> {
    let dims = shape.len();
    let ranges = region.ranges();
    let run_len = (ranges[dims - 1].1 - ranges[dims - 1].0) as u64;
    let mut runs = Vec::new();
    let mut coords: Vec<usize> = ranges.iter().map(|&(s, _)| s).collect();
    'outer: loop {
        let mut lin = 0u64;
        for d in 0..dims {
            lin = lin * shape[d] as u64 + coords[d] as u64;
        }
        runs.push((lin, run_len));
        for d in (0..dims - 1).rev() {
            coords[d] += 1;
            if coords[d] < ranges[d].1 {
                continue 'outer;
            }
            coords[d] = ranges[d].0;
        }
        break;
    }
    runs
}

/// Merge point runs whose byte gap is within `gap_bytes` into read
/// extents. Returns `(start_point, len_points)` extents covering all
/// runs (possibly over-reading the gaps, as readahead does).
pub fn coalesce_runs(runs: &[(u64, u64)], gap_bytes: u64) -> Vec<(u64, u64)> {
    if runs.is_empty() {
        return Vec::new();
    }
    let gap_points = gap_bytes / 8;
    let mut sorted = runs.to_vec();
    sorted.sort_unstable();
    let mut out = Vec::new();
    let (mut start, mut end) = (sorted[0].0, sorted[0].0 + sorted[0].1);
    for &(s, l) in &sorted[1..] {
        if s <= end + gap_points {
            end = end.max(s + l);
        } else {
            out.push((start, end - start));
            start = s;
            end = s + l;
        }
    }
    out.push((start, end - start));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_cover_region_exactly() {
        let region = Region::new(vec![(1, 3), (2, 5)]);
        let runs = region_runs(&[4, 8], &region);
        assert_eq!(runs, vec![(10, 3), (18, 3)]);
    }

    #[test]
    fn coalesce_merges_close_runs() {
        // Gap of 5 points = 40 bytes < the readahead gap: merge.
        let merged = coalesce_runs(&[(0, 3), (8, 3)], READAHEAD_GAP_BYTES);
        assert_eq!(merged, vec![(0, 11)]);
        // Huge gap: keep separate.
        let apart = coalesce_runs(&[(0, 3), (1_000_000, 3)], READAHEAD_GAP_BYTES);
        assert_eq!(apart.len(), 2);
    }

    #[test]
    fn coalesce_unsorted_and_empty() {
        assert!(coalesce_runs(&[], 1024).is_empty());
        let merged = coalesce_runs(&[(100, 5), (0, 5)], 8 * 200);
        assert_eq!(merged, vec![(0, 105)]);
    }
}
