//! SciDB-style chunked array store.
//!
//! SciDB (Brown, 2010; ArrayStore, SIGMOD'11) stores multi-dimensional
//! arrays as regular chunks, replicating cells along chunk boundaries
//! ("overlap") so window operations avoid neighbour fetches — which is
//! why Table I reports its stored size *above* raw. Sub-volume (value
//! query) access reads the intersecting chunks; value-constrained
//! queries must scan every chunk.
//!
//! SciDB executes queries through its chunk-iterator machinery, whose
//! per-chunk cost on the paper's testbed dominates scans: Table II has
//! SciDB at 206.8 s for a full scan of 256 chunks (~0.8 s per chunk,
//! an order of magnitude above the raw I/O). We model that documented
//! behaviour with a per-chunk overhead charge
//! ([`SciDb::with_chunk_overhead`], default 0.8 s) added to the
//! simulated response — the actual filtering work is still executed
//! and measured.

use crate::{Answer, QueryEngine};
use mloc::array::{ChunkGrid, Region};
use mloc::{MlocError, Result};
use mloc_pfs::{RankIo, StorageBackend};
use std::time::Instant;

/// Default per-chunk query-processing overhead (seconds), fitted from
/// the paper's Table II (206.8 s / 256 chunks).
pub const DEFAULT_CHUNK_OVERHEAD_S: f64 = 0.8;

/// The SciDB-like engine.
pub struct SciDb<'a> {
    backend: &'a dyn StorageBackend,
    file: String,
    grid: ChunkGrid,
    /// Halo width in cells replicated around each chunk.
    overlap: usize,
    /// Per-chunk offsets/lengths (in bytes) within the store file.
    chunk_locs: Vec<(u64, u64)>,
    chunk_overhead_s: f64,
}

impl<'a> SciDb<'a> {
    /// Build a chunked store with overlap replication.
    ///
    /// `chunk_shape` should match the MLOC configuration under
    /// comparison (the paper applies "the same chunking sizes").
    pub fn build(
        backend: &'a dyn StorageBackend,
        name: &str,
        values: &[f64],
        shape: Vec<usize>,
        chunk_shape: Vec<usize>,
        overlap: usize,
    ) -> Result<SciDb<'a>> {
        let grid = ChunkGrid::new(shape.clone(), chunk_shape);
        assert_eq!(values.len(), grid.num_points(), "shape/value mismatch");

        let file = format!("scidb/{name}.dat");
        backend.create(&file)?;
        let mut chunk_locs = Vec::with_capacity(grid.num_chunks());
        let mut offset = 0u64;
        for chunk in 0..grid.num_chunks() {
            let halo = Self::halo_region(&grid, chunk, overlap);
            let mut buf = Vec::with_capacity(halo.num_points() * 8);
            for coords in region_coords(&halo) {
                let mut lin = 0u64;
                for (d, &c) in coords.iter().enumerate() {
                    lin = lin * shape[d] as u64 + c as u64;
                }
                buf.extend_from_slice(&values[lin as usize].to_le_bytes());
            }
            backend.append(&file, &buf)?;
            chunk_locs.push((offset, buf.len() as u64));
            offset += buf.len() as u64;
        }
        Ok(SciDb {
            backend,
            file,
            grid,
            overlap,
            chunk_locs,
            chunk_overhead_s: DEFAULT_CHUNK_OVERHEAD_S,
        })
    }

    /// Override the modeled per-chunk overhead.
    pub fn with_chunk_overhead(mut self, seconds: f64) -> Self {
        self.chunk_overhead_s = seconds;
        self
    }

    /// A chunk's region extended by the overlap halo (clamped).
    fn halo_region(grid: &ChunkGrid, chunk: usize, overlap: usize) -> Region {
        let core = grid.chunk_region(chunk);
        Region::new(
            core.ranges()
                .iter()
                .zip(grid.shape())
                .map(|(&(s, e), &extent)| (s.saturating_sub(overlap), (e + overlap).min(extent)))
                .collect(),
        )
    }

    /// Scan one stored chunk, pushing the *core* cells that pass the
    /// filters (halo cells belong to neighbouring chunks' cores).
    #[allow(clippy::too_many_arguments)]
    fn scan_chunk(
        &self,
        chunk: usize,
        buf: &[u8],
        vc: Option<(f64, f64)>,
        sc: Option<&Region>,
        want_values: bool,
        positions: &mut Vec<u64>,
        values: &mut Vec<f64>,
    ) {
        let core = self.grid.chunk_region(chunk);
        let halo = Self::halo_region(&self.grid, chunk, self.overlap);
        for (i, coords) in region_coords(&halo).enumerate() {
            if !core.contains(&coords) {
                continue;
            }
            if let Some(region) = sc {
                if !region.contains(&coords) {
                    continue;
                }
            }
            let v = f64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
            if let Some((lo, hi)) = vc {
                if !(v >= lo && v < hi) {
                    continue;
                }
            }
            let mut lin = 0u64;
            for (d, &c) in coords.iter().enumerate() {
                lin = lin * self.grid.shape()[d] as u64 + c as u64;
            }
            positions.push(lin);
            if want_values {
                values.push(v);
            }
        }
    }

    fn run_chunks(
        &self,
        chunks: &[usize],
        vc: Option<(f64, f64)>,
        sc: Option<&Region>,
        want_values: bool,
    ) -> Result<Answer> {
        let mut io = RankIo::new(self.backend);
        let mut positions = Vec::new();
        let mut values = Vec::new();
        let mut cpu_s = 0.0;
        for &chunk in chunks {
            let (off, len) = self.chunk_locs[chunk];
            let buf = io.read(&self.file, off, len)?;
            let t = Instant::now();
            self.scan_chunk(
                chunk,
                &buf,
                vc,
                sc,
                want_values,
                &mut positions,
                &mut values,
            );
            cpu_s += t.elapsed().as_secs_f64();
        }
        let t = Instant::now();
        let mut pairs_sorted = positions;
        let values = if want_values {
            let mut pairs: Vec<(u64, f64)> = pairs_sorted.drain(..).zip(values).collect();
            pairs.sort_unstable_by_key(|&(p, _)| p);
            let (p, v): (Vec<u64>, Vec<f64>) = pairs.into_iter().unzip();
            pairs_sorted = p;
            Some(v)
        } else {
            pairs_sorted.sort_unstable();
            None
        };
        cpu_s += t.elapsed().as_secs_f64();
        Ok(Answer {
            positions: pairs_sorted,
            values,
            cpu_s,
            overhead_s: self.chunk_overhead_s * chunks.len() as f64,
            traces: vec![io.into_trace()],
        })
    }
}

/// Iterate a region's coordinates in row-major order.
fn region_coords(region: &Region) -> impl Iterator<Item = Vec<usize>> + '_ {
    let ranges = region.ranges().to_vec();
    let dims = ranges.len();
    let mut coords: Vec<usize> = ranges.iter().map(|&(s, _)| s).collect();
    let mut done = false;
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        let out = coords.clone();
        let mut d = dims;
        loop {
            if d == 0 {
                done = true;
                break;
            }
            d -= 1;
            coords[d] += 1;
            if coords[d] < ranges[d].1 {
                break;
            }
            coords[d] = ranges[d].0;
        }
        Some(out)
    })
}

impl QueryEngine for SciDb<'_> {
    fn name(&self) -> &'static str {
        "scidb"
    }

    fn data_bytes(&self) -> u64 {
        self.backend.len(&self.file).unwrap_or(0)
    }

    fn index_bytes(&self) -> u64 {
        0
    }

    fn region_query(&self, lo: f64, hi: f64) -> Result<Answer> {
        // Value constraints require a full scan of every chunk.
        let chunks: Vec<usize> = (0..self.grid.num_chunks()).collect();
        self.run_chunks(&chunks, Some((lo, hi)), None, false)
    }

    fn value_query(&self, region: &Region) -> Result<Answer> {
        if region.dims() != self.grid.dims()
            || !Region::full(self.grid.shape()).contains_region(region)
        {
            return Err(MlocError::Invalid("region out of domain".into()));
        }
        let chunks = self.grid.chunks_intersecting(region);
        self.run_chunks(&chunks, None, Some(region), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mloc_pfs::MemBackend;

    fn fixture(be: &MemBackend) -> (Vec<f64>, SciDb<'_>) {
        let values: Vec<f64> = (0..1024).map(|i| ((i * 7) % 311) as f64).collect();
        let db = SciDb::build(be, "t", &values, vec![32, 32], vec![8, 8], 1)
            .unwrap()
            .with_chunk_overhead(0.01);
        (values, db)
    }

    #[test]
    fn overlap_inflates_storage() {
        let be = MemBackend::new();
        let (values, db) = fixture(&be);
        let raw = values.len() as u64 * 8;
        assert!(
            db.data_bytes() > raw,
            "stored {} raw {raw}",
            db.data_bytes()
        );
        // 8x8 chunks with 1-cell halo: up to (10/8)^2 ≈ 1.56x.
        assert!(db.data_bytes() < raw * 8 / 5);
    }

    #[test]
    fn region_query_exact_despite_replication() {
        let be = MemBackend::new();
        let (values, db) = fixture(&be);
        let ans = db.region_query(50.0, 120.0).unwrap();
        let want: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| (50.0..120.0).contains(&v))
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(ans.positions, want);
        // Full scan: overhead charged for all 16 chunks.
        assert!((ans.overhead_s - 0.16).abs() < 1e-9);
        assert_eq!(ans.bytes_read(), db.data_bytes());
    }

    #[test]
    fn value_query_reads_only_intersecting_chunks() {
        let be = MemBackend::new();
        let (values, db) = fixture(&be);
        let region = Region::new(vec![(0, 8), (0, 8)]);
        let ans = db.value_query(&region).unwrap();
        assert_eq!(ans.positions.len(), 64);
        for (&p, &v) in ans.positions.iter().zip(ans.values.as_ref().unwrap()) {
            assert_eq!(v, values[p as usize]);
        }
        // One chunk read (plus halo), one overhead unit.
        assert!((ans.overhead_s - 0.01).abs() < 1e-9);
        assert_eq!(ans.traces[0].len(), 1);
    }

    #[test]
    fn cross_chunk_value_query() {
        let be = MemBackend::new();
        let (values, db) = fixture(&be);
        let region = Region::new(vec![(4, 20), (6, 26)]);
        let ans = db.value_query(&region).unwrap();
        assert_eq!(ans.positions.len(), 16 * 20);
        for (&p, &v) in ans.positions.iter().zip(ans.values.as_ref().unwrap()) {
            assert_eq!(v, values[p as usize]);
        }
    }

    #[test]
    fn halo_region_clamps_at_domain_edge() {
        let grid = ChunkGrid::new(vec![32, 32], vec![8, 8]);
        let h = SciDb::halo_region(&grid, 0, 2);
        assert_eq!(h.ranges(), &[(0, 10), (0, 10)]);
        let h_last = SciDb::halo_region(&grid, 15, 2);
        assert_eq!(h_last.ranges(), &[(22, 32), (22, 32)]);
    }
}
