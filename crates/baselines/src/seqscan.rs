//! Naive sequential scan over a row-major raw file.

use crate::{Answer, QueryEngine};
use mloc::array::Region;
use mloc::{MlocError, Result};
use mloc_pfs::{RankIo, StorageBackend};
use std::time::Instant;

/// The sequential-scan baseline: data linearized row-major on disk,
/// accesses computed from file offsets (paper §IV-A.2).
pub struct SeqScan<'a> {
    backend: &'a dyn StorageBackend,
    file: String,
    shape: Vec<usize>,
    total_points: u64,
}

impl<'a> SeqScan<'a> {
    /// Write `values` (row-major over `shape`) as a raw file.
    pub fn build(
        backend: &'a dyn StorageBackend,
        name: &str,
        values: &[f64],
        shape: Vec<usize>,
    ) -> Result<SeqScan<'a>> {
        let n: usize = shape.iter().product();
        assert_eq!(n, values.len(), "shape/value mismatch");
        let file = format!("seqscan/{name}.raw");
        backend.create(&file)?;
        // Append in bounded slabs to keep the copy buffer small.
        for slab in values.chunks(1 << 20) {
            let mut buf = Vec::with_capacity(slab.len() * 8);
            for v in slab {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            backend.append(&file, &buf)?;
        }
        Ok(SeqScan {
            backend,
            file,
            shape,
            total_points: n as u64,
        })
    }

    /// Open a previously built raw file.
    pub fn open(
        backend: &'a dyn StorageBackend,
        name: &str,
        shape: Vec<usize>,
    ) -> Result<SeqScan<'a>> {
        let file = format!("seqscan/{name}.raw");
        let n: u64 = shape.iter().map(|&e| e as u64).product();
        let bytes = backend.len(&file)?;
        if bytes != n * 8 {
            return Err(MlocError::Corrupt("raw file size mismatch"));
        }
        Ok(SeqScan {
            backend,
            file,
            shape,
            total_points: n,
        })
    }
}

fn decode_values(buf: &[u8]) -> Vec<f64> {
    buf.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

impl QueryEngine for SeqScan<'_> {
    fn name(&self) -> &'static str {
        "seqscan"
    }

    fn data_bytes(&self) -> u64 {
        self.total_points * 8
    }

    fn index_bytes(&self) -> u64 {
        0
    }

    fn region_query(&self, lo: f64, hi: f64) -> Result<Answer> {
        // Must scan the entire dataset.
        let mut io = RankIo::new(self.backend);
        let mut positions = Vec::new();
        let mut cpu_s = 0.0;
        // Scan in slabs so memory stays bounded; the trace still shows
        // one long sequential read pattern.
        let slab = 8u64 << 20;
        let total = self.total_points * 8;
        let mut off = 0u64;
        while off < total {
            let len = slab.min(total - off);
            let buf = io.read(&self.file, off, len)?;
            let t = Instant::now();
            let base = off / 8;
            for (i, v) in decode_values(&buf).into_iter().enumerate() {
                if v >= lo && v < hi {
                    positions.push(base + i as u64);
                }
            }
            cpu_s += t.elapsed().as_secs_f64();
            off += len;
        }
        Ok(Answer {
            positions,
            values: None,
            cpu_s,
            overhead_s: 0.0,
            traces: vec![io.into_trace()],
        })
    }

    fn value_query(&self, region: &Region) -> Result<Answer> {
        if region.dims() != self.shape.len() || !Region::full(&self.shape).contains_region(region) {
            return Err(MlocError::Invalid("region out of domain".into()));
        }
        let mut io = RankIo::new(self.backend);
        let mut positions = Vec::new();
        let mut values = Vec::new();
        let mut cpu_s = 0.0;
        // Row runs, merged into readahead-sized extents.
        let runs = crate::runs::region_runs(&self.shape, region);
        let extents = crate::runs::coalesce_runs(&runs, crate::runs::READAHEAD_GAP_BYTES);
        let mut run_idx = 0usize;
        for (start, len) in extents {
            let buf = io.read(&self.file, start * 8, len * 8)?;
            let t = Instant::now();
            let end = start + len;
            while run_idx < runs.len() && runs[run_idx].0 < end {
                let (rs, rl) = runs[run_idx];
                let off = ((rs - start) * 8) as usize;
                for (i, c) in buf[off..off + rl as usize * 8].chunks_exact(8).enumerate() {
                    positions.push(rs + i as u64);
                    values.push(f64::from_le_bytes(c.try_into().unwrap()));
                }
                run_idx += 1;
            }
            cpu_s += t.elapsed().as_secs_f64();
        }
        Ok(Answer {
            positions,
            values: Some(values),
            cpu_s,
            overhead_s: 0.0,
            traces: vec![io.into_trace()],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mloc_pfs::MemBackend;

    fn fixture(be: &MemBackend) -> (Vec<f64>, SeqScan<'_>) {
        let values: Vec<f64> = (0..1024).map(|i| (i % 97) as f64).collect();
        let scan = SeqScan::build(be, "t", &values, vec![32, 32]).unwrap();
        (values, scan)
    }

    #[test]
    fn region_query_scans_everything() {
        let be = MemBackend::new();
        let (values, scan) = fixture(&be);
        let ans = scan.region_query(10.0, 20.0).unwrap();
        let want: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| (10.0..20.0).contains(&v))
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(ans.positions, want);
        assert_eq!(ans.bytes_read(), 1024 * 8);
    }

    #[test]
    fn value_query_reads_only_region_rows() {
        let be = MemBackend::new();
        let (values, scan) = fixture(&be);
        let region = Region::new(vec![(4, 8), (10, 20)]);
        let ans = scan.value_query(&region).unwrap();
        assert_eq!(ans.positions.len(), 40);
        for (&p, &v) in ans.positions.iter().zip(ans.values.as_ref().unwrap()) {
            assert_eq!(v, values[p as usize]);
            let (r, c) = (p / 32, p % 32);
            assert!((4..8).contains(&(r as usize)) && (10..20).contains(&(c as usize)));
        }
        // Rows are close together: readahead merges them into one
        // extent spanning first-run start to last-run end.
        assert_eq!(ans.traces[0].len(), 1);
        let span = (7 * 32 + 20) - (4 * 32 + 10);
        assert_eq!(ans.bytes_read(), span * 8);
    }

    #[test]
    fn open_rejects_bad_size() {
        let be = MemBackend::new();
        fixture(&be);
        assert!(SeqScan::open(&be, "t", vec![32, 32]).is_ok());
        assert!(SeqScan::open(&be, "t", vec![32, 33]).is_err());
    }

    #[test]
    fn value_query_3d() {
        let be = MemBackend::new();
        let values: Vec<f64> = (0..512).map(|i| i as f64).collect();
        let scan = SeqScan::build(&be, "t3", &values, vec![8, 8, 8]).unwrap();
        let region = Region::new(vec![(1, 3), (2, 4), (0, 8)]);
        let ans = scan.value_query(&region).unwrap();
        assert_eq!(ans.positions.len(), 2 * 2 * 8);
        // The tiny domain coalesces into a single readahead extent.
        assert_eq!(ans.traces[0].len(), 1);
    }

    #[test]
    fn rejects_out_of_domain() {
        let be = MemBackend::new();
        let (_, scan) = fixture(&be);
        assert!(scan
            .value_query(&Region::new(vec![(0, 40), (0, 32)]))
            .is_err());
    }
}
