//! Value-binning kernels, plus the equal-frequency vs equal-width
//! load-balance ablation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mloc::binning::BinSpec;
use mloc_datagen::gts_like_2d;
use std::hint::black_box;

fn bench_bound_computation(c: &mut Criterion) {
    let values = gts_like_2d(256, 256, 13).into_values();
    let mut g = c.benchmark_group("binning_bounds");
    g.sample_size(20);
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("equal_frequency_100", |b| {
        b.iter(|| black_box(BinSpec::equal_frequency(&values, 100)))
    });
    g.bench_function("equal_width_100", |b| {
        b.iter(|| black_box(BinSpec::equal_width(&values, 100)))
    });
    g.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let values = gts_like_2d(256, 256, 13).into_values();
    let spec = BinSpec::equal_frequency(&values, 100);
    let mut g = c.benchmark_group("binning_assign");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("bin_of_all_points", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &v in &values {
                acc = acc.wrapping_add(spec.bin_of(v));
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_balance_ablation(c: &mut Criterion) {
    // Load-balance quality (max/min bin occupancy): the design reason
    // for equal-frequency binning (§III-B.1).
    let values = gts_like_2d(256, 256, 13).into_values();
    let mut g = c.benchmark_group("binning_balance_ablation");
    g.sample_size(10);
    for (name, spec) in [
        ("equal_frequency", BinSpec::equal_frequency(&values, 100)),
        ("equal_width", BinSpec::equal_width(&values, 100)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut counts = vec![0u64; spec.num_bins()];
                for &v in &values {
                    counts[spec.bin_of(v)] += 1;
                }
                let max = counts.iter().max().copied().unwrap_or(0);
                let min = counts.iter().min().copied().unwrap_or(0);
                black_box((max, min))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_bound_computation,
    bench_assignment,
    bench_balance_ablation
);
criterion_main!(benches);
