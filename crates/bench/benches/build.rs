//! Build-throughput: the parallel write path against the serial one.
//!
//! One 64×64×32 S3D-like volume is built repeatedly with 1, 2, and
//! all-core worker pools. The interesting comparison is wall time per
//! build — the layout is byte-identical for every thread count (the
//! differential tests prove that; here it is spot-checked once outside
//! the timed loops).

use criterion::{criterion_group, criterion_main, Criterion};
use mloc::prelude::*;
use mloc_datagen::s3d_like_3d;
use mloc_pfs::{MemBackend, StorageBackend};
use std::hint::black_box;

const SHAPE: [usize; 3] = [64, 64, 32];

fn config(threads: usize) -> MlocConfig {
    MlocConfig::builder(SHAPE.to_vec())
        .chunk_shape(vec![16, 16, 16])
        .num_bins(16)
        .build_threads(threads)
        .build()
}

fn build_files(values: &[f64], threads: usize) -> Vec<(String, Vec<u8>)> {
    let be = MemBackend::new();
    build_variable(&be, "bw", "v", values, &config(threads)).unwrap();
    be.list()
        .into_iter()
        .map(|f| {
            let len = be.len(&f).unwrap();
            let bytes = be.read(&f, 0, len).unwrap();
            (f, bytes)
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let values = s3d_like_3d(SHAPE[0], SHAPE[1], SHAPE[2], 11).into_values();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Determinism spot check, outside the timed loops.
    assert_eq!(
        build_files(&values, 1),
        build_files(&values, cores.max(2)),
        "thread count changed the layout bytes"
    );

    let mut g = c.benchmark_group("build_write_path");
    g.sample_size(10);
    let mut counts = vec![1usize, 2, cores];
    counts.sort_unstable();
    counts.dedup();
    for threads in counts {
        g.bench_function(format!("threads{threads}"), |b| {
            b.iter(|| {
                let be = MemBackend::new();
                black_box(build_variable(&be, "bw", "v", &values, &config(threads)).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
