//! Session replay with and without the decompressed-block cache.
//!
//! An exploratory session replays overlapping queries — the same
//! region at shifting value windows and precision levels — exactly the
//! workload the cache targets. "cold" runs the session against a store
//! with no cache; "warm" runs it against a store whose cache was
//! primed by one prior replay, so every block is a hit.
//!
//! Beyond wall-clock, the setup verifies the acceptance bar: the warm
//! replay's summed `io_s + decompress_s` must be at least 5x below the
//! cold replay's, with byte-identical results.

use criterion::{criterion_group, criterion_main, Criterion};
use mloc::prelude::*;
use mloc_datagen::{gts_like_2d, QueryGen};
use mloc_pfs::MemBackend;
use std::hint::black_box;
use std::sync::Arc;

const SHAPE: [usize; 2] = [256, 256];

fn build(be: &MemBackend) -> Vec<f64> {
    let field = gts_like_2d(SHAPE[0], SHAPE[1], 23);
    let config = MlocConfig::builder(SHAPE.to_vec())
        .chunk_shape(vec![64, 64])
        .num_bins(16)
        .build();
    build_variable(be, "sess", "v", field.values(), &config).unwrap();
    field.into_values()
}

/// The replayed session: overlapping value windows, a spatial window
/// at two precision levels, and a positions-only region query.
fn session(values: &[f64]) -> Vec<Query> {
    let mut gen = QueryGen::new(values.to_vec(), SHAPE.to_vec(), 7);
    let mut queries = Vec::new();
    for _ in 0..3 {
        let (lo, hi) = gen.value_constraint(0.15);
        queries.push(Query::values_where(lo, hi));
        queries.push(Query::region(lo, hi));
    }
    let region = Region::new(vec![(32, 160), (64, 224)]);
    queries.push(Query::values_in(region.clone()));
    queries.push(Query::values_in(region).with_plod(PlodLevel::new(2).unwrap()));
    queries
}

/// Run the whole session, returning results plus summed io+decompress.
fn replay(store: &MlocStore<'_>, queries: &[Query]) -> (Vec<QueryResult>, f64) {
    let mut results = Vec::with_capacity(queries.len());
    let mut cost = 0.0;
    for q in queries {
        let (res, m) = store.query_with_metrics(q).unwrap();
        cost += m.io_s + m.decompress_s;
        results.push(res);
    }
    (results, cost)
}

fn bench_session_replay(c: &mut Criterion) {
    let be = MemBackend::new();
    let values = build(&be);
    let queries = session(&values);

    let cold_store = MlocStore::open(&be, "sess", "v").unwrap();
    let warm_store = MlocStore::open(&be, "sess", "v")
        .unwrap()
        .with_cache(Arc::new(BlockCache::with_budget_mb(256)));

    // Acceptance check (outside the timed loops): prime the cache with
    // one replay, then compare simulated+measured cost per replay.
    let (cold_res, cold_cost) = replay(&cold_store, &queries);
    let _ = replay(&warm_store, &queries); // priming pass
    let (warm_res, warm_cost) = replay(&warm_store, &queries);
    assert_eq!(cold_res, warm_res, "cached replay changed results");
    assert!(
        warm_cost * 5.0 <= cold_cost,
        "warm replay not 5x cheaper: cold {cold_cost:.6}s vs warm {warm_cost:.6}s"
    );
    println!(
        "session of {} queries: cold io+decompress {:.4}s, warm {:.6}s ({:.0}x)",
        queries.len(),
        cold_cost,
        warm_cost,
        cold_cost / warm_cost.max(1e-12)
    );

    let mut g = c.benchmark_group("session_replay");
    g.sample_size(10);
    g.bench_function("cold_no_cache", |b| {
        b.iter(|| black_box(replay(&cold_store, &queries)))
    });
    g.bench_function("warm_cached", |b| {
        b.iter(|| black_box(replay(&warm_store, &queries)))
    });
    // Cold *caching* pass: every query misses then inserts — the price
    // of filling the cache relative to not having one at all.
    g.bench_function("cold_filling_cache", |b| {
        b.iter(|| {
            let store = MlocStore::open(&be, "sess", "v")
                .unwrap()
                .with_cache(Arc::new(BlockCache::with_budget_mb(256)));
            black_box(replay(&store, &queries))
        })
    });
    // Same warm replay with profiling on: the gap to `warm_cached` is
    // the live-collector overhead on this session.
    g.bench_function("warm_cached_profiled", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(warm_store.query_profiled(q).unwrap());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_session_replay);
criterion_main!(benches);
