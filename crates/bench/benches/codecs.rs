//! Compression/decompression throughput of every codec on
//! scientific-like data (the paper's §III-B.4 pluggable-codec level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mloc_compress::CodecKind;
use mloc_datagen::gts_like_2d;
use std::hint::black_box;

fn sample_values() -> Vec<f64> {
    gts_like_2d(256, 256, 9).into_values()
}

fn bench_float_codecs(c: &mut Criterion) {
    let values = sample_values();
    let bytes = (values.len() * 8) as u64;
    let mut g = c.benchmark_group("float_codecs");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    for kind in [
        CodecKind::Deflate,
        CodecKind::Isobar,
        CodecKind::Fpc,
        CodecKind::Isabela { error_bound: 0.001 },
    ] {
        let codec = kind.float_codec();
        g.bench_with_input(
            BenchmarkId::new("compress", kind.name()),
            &values,
            |b, v| b.iter(|| black_box(codec.compress_f64(v))),
        );
        let compressed = codec.compress_f64(&values);
        g.bench_with_input(
            BenchmarkId::new("decompress", kind.name()),
            &compressed,
            |b, cdata| b.iter(|| black_box(codec.decompress_f64(cdata).unwrap())),
        );
    }
    g.finish();
}

fn bench_byte_columns(c: &mut Criterion) {
    // The MLOC-COL hot path: DEFLATE over a PLoD byte column.
    let values = sample_values();
    let parts = mloc::plod::split(&values);
    let codec = CodecKind::Deflate.byte_codec();
    let mut g = c.benchmark_group("byte_column_deflate");
    g.sample_size(10);
    for (i, part) in parts.iter().enumerate().take(3) {
        g.throughput(Throughput::Bytes(part.len() as u64));
        g.bench_with_input(BenchmarkId::new("compress_part", i), part, |b, p| {
            b.iter(|| black_box(codec.compress(p)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_float_codecs, bench_byte_columns);
criterion_main!(benches);
