//! Space-filling-curve kernels, plus the chunk-ordering ablation:
//! how many contiguous runs (≈ seeks) a query box costs under
//! Hilbert, Z-order and row-major chunk layouts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mloc_hilbert::grid::{contiguous_runs, CurveKind, GridOrder};
use mloc_hilbert::{coords_to_index, index_to_coords};
use std::hint::black_box;

fn bench_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("hilbert_mapping");
    g.bench_function("coords_to_index_2d_o16", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(12_345) & 0xFFFF;
            black_box(coords_to_index(&[i, i ^ 0x5A5A], 16))
        })
    });
    g.bench_function("index_to_coords_2d_o16", |b| {
        let mut h = 0u64;
        b.iter(|| {
            h = h.wrapping_add(987_654_321) & 0xFFFF_FFFF;
            black_box(index_to_coords(h, 2, 16))
        })
    });
    g.bench_function("coords_to_index_3d_o10", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(7_777) & 0x3FF;
            black_box(coords_to_index(&[i, i ^ 0x155, (i >> 1) & 0x3FF], 10))
        })
    });
    g.finish();
}

fn bench_grid_order_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid_order_build");
    for kind in [CurveKind::Hilbert, CurveKind::ZOrder, CurveKind::RowMajor] {
        g.bench_with_input(BenchmarkId::new("64x64", kind.name()), &kind, |b, &kind| {
            b.iter(|| black_box(GridOrder::new(&[64, 64], kind)))
        });
    }
    g.finish();
}

fn bench_ordering_ablation(c: &mut Criterion) {
    // Not a speed benchmark: measures the layout-quality metric (runs
    // per query box) and reports it via criterion's throughput stats.
    let mut g = c.benchmark_group("ordering_runs_ablation");
    for kind in [CurveKind::Hilbert, CurveKind::ZOrder, CurveKind::RowMajor] {
        let order = GridOrder::new(&[32, 32], kind);
        g.bench_with_input(
            BenchmarkId::new("8x8_boxes", kind.name()),
            &order,
            |b, order| {
                b.iter(|| {
                    let mut total = 0usize;
                    for (r0, c0) in [(0usize, 0usize), (8, 8), (3, 17), (20, 5), (12, 24)] {
                        let mut ranks = Vec::with_capacity(64);
                        for i in r0..r0 + 8 {
                            for j in c0..c0 + 8 {
                                ranks.push(order.rank_of_coords(&[i, j]));
                            }
                        }
                        total += contiguous_runs(ranks);
                    }
                    black_box(total)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mapping,
    bench_grid_order_build,
    bench_ordering_ablation
);
criterion_main!(benches);
