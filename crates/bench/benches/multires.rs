//! Multi-resolution kernels and the subset-placement ablation:
//! hierarchical (subset-based) chunk placement vs plain Hilbert order
//! for coarse-level sampling queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mloc::exec::ParallelExecutor;
use mloc::prelude::*;
use mloc::query::multires::subset_value_query;
use mloc_datagen::gts_like_2d;
use mloc_pfs::{CostModel, MemBackend};
use std::hint::black_box;

fn build(be: &MemBackend, subset_levels: u32) -> MlocStore<'_> {
    let field = gts_like_2d(256, 256, 77);
    let config = MlocConfig::builder(vec![256, 256])
        .chunk_shape(vec![32, 32])
        .num_bins(16)
        .subset_levels(subset_levels)
        .build();
    let var = format!("v{subset_levels}");
    build_variable(be, "mr", &var, field.values(), &config).unwrap();
    MlocStore::open(be, "mr", &var).unwrap()
}

fn bench_subset_placement_ablation(c: &mut Criterion) {
    let be = MemBackend::new();
    let plain = build(&be, 0);
    let hier = build(&be, 3);
    let exec = ParallelExecutor::serial();

    let mut g = c.benchmark_group("subset_placement_ablation");
    g.sample_size(10);
    for (name, store) in [("plain_hilbert", &plain), ("hierarchical", &hier)] {
        for level in [0usize, 1] {
            g.bench_with_input(
                BenchmarkId::new(name, format!("level{level}")),
                store,
                |b, store| {
                    b.iter(|| black_box(subset_value_query(store, 3, level, &exec).unwrap()))
                },
            );
        }
    }
    g.finish();
}

fn bench_plod_query_levels(c: &mut Criterion) {
    let be = MemBackend::new();
    let store = build(&be, 0);
    let exec = ParallelExecutor::new(4, CostModel::default());
    let region = Region::new(vec![(32, 160), (64, 192)]);

    let mut g = c.benchmark_group("plod_query_levels");
    g.sample_size(10);
    for level in [1u8, 2, 4, 7] {
        let q = Query::values_in(region.clone()).with_plod(PlodLevel::new(level).unwrap());
        g.bench_with_input(BenchmarkId::new("value_window", level), &q, |b, q| {
            b.iter(|| black_box(exec.execute(&store, q).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_subset_placement_ablation,
    bench_plod_query_levels
);
criterion_main!(benches);
