//! PLoD byte-split/assemble kernels and the dummy-fill design-choice
//! ablation (midpoint 0x7F/0xFF vs zero fill, §III-D.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mloc::config::PlodLevel;
use mloc::plod;
use mloc_datagen::gts_like_2d;
use std::hint::black_box;

fn bench_split_assemble(c: &mut Criterion) {
    let values = gts_like_2d(256, 256, 31).into_values();
    let mut g = c.benchmark_group("plod");
    g.throughput(Throughput::Bytes((values.len() * 8) as u64));
    g.bench_function("split", |b| b.iter(|| black_box(plod::split(&values))));

    let parts = plod::split(&values);
    let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
    for level in [1u8, 2, 4, 7] {
        let lvl = PlodLevel::new(level).unwrap();
        g.bench_with_input(BenchmarkId::new("assemble", level), &lvl, |b, &lvl| {
            b.iter(|| black_box(plod::assemble(&refs[..lvl.num_parts()], lvl)))
        });
        // The engine's hot path: assembly into a reused scratch buffer,
        // no per-chunk allocation.
        g.bench_with_input(BenchmarkId::new("assemble_into", level), &lvl, |b, &lvl| {
            let mut scratch = Vec::new();
            b.iter(|| {
                plod::assemble_into(&refs[..lvl.num_parts()], lvl, &mut scratch);
                black_box(scratch.len())
            })
        });
    }
    g.finish();
}

fn bench_fill_ablation(c: &mut Criterion) {
    // Quality metric: summed relative error of midpoint vs zero fill
    // at the 3-byte level. Midpoint halves the error — the reason the
    // paper fills 0x7F/0xFF instead of zeros.
    let values = gts_like_2d(128, 128, 37).into_values();
    let parts = plod::split(&values);
    let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
    let lvl = PlodLevel::new(2).unwrap();
    let mut g = c.benchmark_group("plod_fill_ablation");
    g.bench_function("midpoint_fill", |b| {
        b.iter(|| {
            let approx = plod::assemble(&refs[..2], lvl);
            let err: f64 = values
                .iter()
                .zip(&approx)
                .map(|(a, b)| ((a - b) / a).abs())
                .sum();
            black_box(err)
        })
    });
    g.bench_function("zero_fill", |b| {
        b.iter(|| {
            let approx = plod::assemble_zero_fill(&refs[..2], lvl).unwrap();
            let err: f64 = values
                .iter()
                .zip(&approx)
                .map(|(a, b)| ((a - b) / a).abs())
                .sum();
            black_box(err)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_split_assemble, bench_fill_ablation);
criterion_main!(benches);
