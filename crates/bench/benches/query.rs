//! End-to-end query latency on a resident dataset, including the
//! aligned-bin fast-path ablation and the column-order vs round-robin
//! assignment ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mloc::exec::ParallelExecutor;
use mloc::prelude::*;
use mloc_datagen::gts_like_2d;
use mloc_pfs::{CostModel, MemBackend};
use mloc_runtime::{column_order, distinct_groups_per_rank, round_robin};
use std::hint::black_box;

fn build(be: &MemBackend) -> Vec<f64> {
    let field = gts_like_2d(512, 512, 19);
    let config = MlocConfig::builder(vec![512, 512])
        .chunk_shape(vec![64, 64])
        .num_bins(32)
        .build();
    build_variable(be, "q", "v", field.values(), &config).unwrap();
    field.into_values()
}

fn bench_query_latency(c: &mut Criterion) {
    let be = MemBackend::new();
    let values = build(&be);
    let store = MlocStore::open(&be, "q", "v").unwrap();
    let mut sorted = values;
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p40 = sorted[sorted.len() * 40 / 100];
    let p50 = sorted[sorted.len() / 2];

    let mut g = c.benchmark_group("query_latency");
    g.sample_size(20);
    g.bench_function("region_10pct", |b| {
        b.iter(|| black_box(store.query_serial(&Query::region(p40, p50)).unwrap()))
    });
    g.bench_function("value_window", |b| {
        let q = Query::values_in(Region::new(vec![(64, 192), (128, 256)]));
        b.iter(|| black_box(store.query_serial(&q).unwrap()))
    });
    g.bench_function("value_window_plod2", |b| {
        let q = Query::values_in(Region::new(vec![(64, 192), (128, 256)]))
            .with_plod(PlodLevel::new(2).unwrap());
        b.iter(|| black_box(store.query_serial(&q).unwrap()))
    });
    g.finish();
}

fn bench_aligned_fast_path(c: &mut Criterion) {
    // Ablation: a wide VC where most bins are aligned (index-only)
    // versus the same-size answer forced through value retrieval.
    let be = MemBackend::new();
    let values = build(&be);
    let store = MlocStore::open(&be, "q", "v").unwrap();
    let mut sorted = values;
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let lo = sorted[sorted.len() / 4];
    let hi = sorted[sorted.len() * 3 / 4];

    let mut g = c.benchmark_group("aligned_bin_fast_path");
    g.sample_size(10);
    g.bench_function("positions_only_uses_index", |b| {
        b.iter(|| black_box(store.query_serial(&Query::region(lo, hi)).unwrap()))
    });
    g.bench_function("values_forced_decompression", |b| {
        b.iter(|| black_box(store.query_serial(&Query::values_where(lo, hi)).unwrap()))
    });
    g.finish();
}

fn bench_assignment_ablation(c: &mut Criterion) {
    // Column order vs round robin: bin files touched per rank (the
    // paper's I/O-contention argument for column order, §III-D).
    let groups: Vec<usize> = (0..3200usize)
        .map(|i| (i.wrapping_mul(2654435761) >> 12) % 100)
        .collect();
    let mut g = c.benchmark_group("assignment_ablation");
    for nranks in [8usize, 32] {
        g.bench_with_input(
            BenchmarkId::new("column_order", nranks),
            &nranks,
            |b, &n| {
                b.iter(|| {
                    let a = column_order(&groups, n);
                    black_box(distinct_groups_per_rank(&a, &groups))
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("round_robin", nranks), &nranks, |b, &n| {
            b.iter(|| {
                let a = round_robin(&groups, n);
                black_box(distinct_groups_per_rank(&a, &groups))
            })
        });
    }
    g.finish();
}

fn bench_parallel_execution(c: &mut Criterion) {
    let be = MemBackend::new();
    build(&be);
    let store = MlocStore::open(&be, "q", "v").unwrap();
    let q = Query::values_in(Region::new(vec![(0, 256), (0, 256)]));
    let mut g = c.benchmark_group("parallel_execution");
    g.sample_size(10);
    for ranks in [1usize, 4, 16] {
        let exec = ParallelExecutor::new(ranks, CostModel::default());
        g.bench_with_input(
            BenchmarkId::new("value_quarter", ranks),
            &exec,
            |b, exec| b.iter(|| black_box(exec.execute(&store, &q).unwrap())),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_query_latency,
    bench_aligned_fast_path,
    bench_assignment_ablation,
    bench_parallel_execution
);
criterion_main!(benches);
