//! Reconstruct-stage kernels: the run-aware bulk fast path against
//! the per-point general path, over the query shapes that dominate
//! exploration sessions (wide value constraints, aligned region
//! retrieval, reduced PLoD levels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mloc::config::PlodLevel;
use mloc::prelude::*;
use mloc::query::engine::force_general_reconstruct;
use mloc::query::plan::make_plan;
use mloc_datagen::gts_like_2d;
use mloc_pfs::MemBackend;
use std::hint::black_box;

fn fixture(be: &MemBackend) -> MlocStore<'_> {
    let values = gts_like_2d(128, 128, 17).into_values();
    let config = MlocConfig::builder(vec![128, 128])
        .chunk_shape(vec![32, 32])
        .num_bins(16)
        .build();
    build_variable(be, "bench", "t", &values, &config).unwrap();
    MlocStore::open(be, "bench", "t").unwrap()
}

fn bench_reconstruct_paths(c: &mut Criterion) {
    let be = MemBackend::new();
    let store = fixture(&be);
    let exec = ParallelExecutor::serial();

    let mut queries = vec![
        ("values_full", Query::values_in(Region::full(&[128, 128]))),
        ("values_wide_vc", Query::values_where(-1e9, 1e9)),
        ("positions_wide_vc", Query::region(-1e9, 1e9)),
    ];
    let mut plod2 = Query::values_in(Region::full(&[128, 128]));
    plod2.plod = PlodLevel::new(2).unwrap();
    queries.push(("values_plod2", plod2));

    let mut g = c.benchmark_group("reconstruct");
    for (name, q) in &queries {
        let plan = make_plan(&store, q).unwrap();
        g.bench_with_input(BenchmarkId::new("fast", name), q, |b, q| {
            force_general_reconstruct(false);
            b.iter(|| black_box(exec.execute_plan(&store, q, &plan, None).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("general", name), q, |b, q| {
            force_general_reconstruct(true);
            b.iter(|| black_box(exec.execute_plan(&store, q, &plan, None).unwrap()));
            force_general_reconstruct(false);
        });
    }
    g.finish();
}

fn bench_position_filter(c: &mut Criterion) {
    // Sorted-slice galloping intersection (the multi-variable fetch
    // path) at several filter densities.
    let be = MemBackend::new();
    let store = fixture(&be);
    let exec = ParallelExecutor::serial();
    let q = Query::values_in(Region::full(&[128, 128]));
    let plan = make_plan(&store, &q).unwrap();
    let n = 128u64 * 128;

    let mut g = c.benchmark_group("reconstruct_position_filter");
    for every in [2u64, 16, 256] {
        let filter: Vec<u64> = (0..n).step_by(every as usize).collect();
        g.bench_with_input(
            BenchmarkId::new("gallop", format!("1/{every}")),
            &filter,
            |b, f| b.iter(|| black_box(exec.execute_plan(&store, &q, &plan, Some(f)).unwrap())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_reconstruct_paths, bench_position_filter);
criterion_main!(benches);
