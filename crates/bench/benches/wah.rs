//! WAH bitmap kernels: construction, logical ops, iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mloc_bitmap::{and, or, WahBitmap};
use std::hint::black_box;

fn sparse_positions(n: u64, every: u64) -> Vec<u64> {
    (0..n).step_by(every as usize).collect()
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("wah_construction");
    let n = 1_000_000u64;
    for density in [1000u64, 100, 10] {
        let pos = sparse_positions(n, density);
        g.throughput(Throughput::Elements(pos.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("from_sorted_positions", format!("1/{density}")),
            &pos,
            |b, pos| b.iter(|| black_box(WahBitmap::from_sorted_positions(n, pos))),
        );
    }
    g.finish();
}

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("wah_ops");
    let n = 1_000_000u64;
    let a = WahBitmap::from_sorted_positions(n, &sparse_positions(n, 37));
    let bmp = WahBitmap::from_sorted_positions(n, &sparse_positions(n, 41));
    g.bench_function("and_1M", |b| b.iter(|| black_box(and(&a, &bmp))));
    g.bench_function("or_1M", |b| b.iter(|| black_box(or(&a, &bmp))));
    g.bench_function("count_ones_1M", |b| b.iter(|| black_box(a.count_ones())));
    g.bench_function("iter_ones_1M", |b| {
        b.iter(|| black_box(a.iter_ones().sum::<u64>()))
    });
    // Run iteration visits O(runs) not O(ones): on fill-heavy bitmaps
    // it should be orders of magnitude faster than iter_ones.
    g.bench_function("iter_runs_1M", |b| {
        b.iter(|| {
            black_box(
                a.iter_runs()
                    .filter(|&(_, _, bit)| bit)
                    .map(|(_, len, _)| len)
                    .sum::<u64>(),
            )
        })
    });
    // Dense case: long one-fills, where iter_ones pays per point and
    // iter_runs pays per run.
    let dense =
        WahBitmap::from_sorted_positions(n, &(0..n).filter(|x| x % 1000 != 0).collect::<Vec<_>>());
    g.bench_function("iter_ones_dense_1M", |b| {
        b.iter(|| black_box(dense.iter_ones().sum::<u64>()))
    });
    g.bench_function("iter_runs_dense_1M", |b| {
        b.iter(|| {
            black_box(
                dense
                    .iter_runs()
                    .filter(|&(_, _, bit)| bit)
                    .map(|(start, len, _)| start + len)
                    .sum::<u64>(),
            )
        })
    });
    g.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let n = 1_000_000u64;
    let a = WahBitmap::from_sorted_positions(n, &sparse_positions(n, 53));
    let bytes = a.to_bytes();
    let mut g = c.benchmark_group("wah_serde");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("to_bytes", |b| b.iter(|| black_box(a.to_bytes())));
    g.bench_function("from_bytes", |b| {
        b.iter(|| black_box(WahBitmap::from_bytes(&bytes).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_construction, bench_ops, bench_serialization);
criterion_main!(benches);
