//! Build-throughput driver: times the parallel write path against the
//! serial one on a ≥ 64³ volume and emits `BENCH_build.json`.
//!
//! The pipeline stages measured are the ones `BuildReport` breaks out:
//! encode (per-chunk bin partition → WAH bitmap → PLoD split → codec),
//! layout (per-bin unit ordering + index assembly), and write (per-bin
//! file writes). Before timing, the driver proves the speedup is free:
//! 1-, 2-, and 8-thread builds of the same volume must be
//! byte-identical.
//!
//! Run with: `cargo run --release -p mloc-bench --bin build_bench`
//! (`--scale large` for a 96³ volume).

use mloc::build::BuildReport;
use mloc::prelude::*;
use mloc_bench::report::{fmt_bytes, note, title, Table};
use mloc_bench::HarnessArgs;
use mloc_datagen::s3d_like_3d;
use mloc_pfs::{MemBackend, StorageBackend};

fn config(dims: &[usize], threads: usize) -> MlocConfig {
    MlocConfig::builder(dims.to_vec())
        .chunk_shape(vec![16, 16, 16])
        .num_bins(16)
        .build_threads(threads)
        .build()
}

fn build(values: &[f64], dims: &[usize], threads: usize) -> (BuildReport, MemBackend) {
    let be = MemBackend::new();
    let report = build_variable(&be, "bench", "v", values, &config(dims, threads)).unwrap();
    (report, be)
}

fn files(be: &MemBackend) -> Vec<(String, Vec<u8>)> {
    be.list()
        .into_iter()
        .map(|f| {
            let len = be.len(&f).unwrap();
            let bytes = be.read(&f, 0, len).unwrap();
            (f, bytes)
        })
        .collect()
}

fn stage_row(r: &BuildReport) -> Vec<f64> {
    vec![
        r.encode_seconds,
        r.layout_seconds,
        r.write_seconds,
        r.build_seconds,
    ]
}

fn main() {
    let args = HarnessArgs::parse();
    let dims = if args.large {
        vec![96, 96, 96]
    } else {
        vec![64, 64, 64]
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let values = s3d_like_3d(dims[0], dims[1], dims[2], args.seed).into_values();

    title(&format!(
        "Build throughput: {:?} volume ({}), {cores} cores",
        dims,
        fmt_bytes(values.len() as u64 * 8)
    ));

    // Determinism first: the speedup must not buy different bytes.
    let (_, be1) = build(&values, &dims, 1);
    let reference = files(&be1);
    for threads in [2usize, 8] {
        let (_, be) = build(&values, &dims, threads);
        assert_eq!(
            reference,
            files(&be),
            "{threads}-thread build produced different bytes than serial"
        );
    }
    note("1/2/8-thread builds byte-identical");

    // At least two workers even on a single-core box, so the pooled
    // code path (not just its serial fast path) is what gets timed.
    let pool_threads = cores.max(2);
    let (serial, _) = build(&values, &dims, 1);
    let (parallel, _) = build(&values, &dims, pool_threads);

    let mut table = Table::new(&["pipeline", "encode", "layout", "write", "total"]);
    table.row_seconds("serial (1 thread)", &stage_row(&serial));
    table.row_seconds(
        &format!("pool ({pool_threads} threads)"),
        &stage_row(&parallel),
    );
    table.print();

    let encode_ratio = serial.encode_seconds / parallel.encode_seconds.max(1e-9);
    let total_ratio = serial.build_seconds / parallel.build_seconds.max(1e-9);
    note(&format!(
        "encode speedup {encode_ratio:.2}x, end-to-end {total_ratio:.2}x"
    ));

    let json = format!(
        "{{\n  \"bench\": \"build\",\n  \"shape\": {dims:?},\n  \"raw_bytes\": {},\n  \
         \"threads\": {pool_threads},\n  \"serial\": {},\n  \"parallel\": {},\n  \
         \"encode_speedup\": {encode_ratio:.4},\n  \"total_speedup\": {total_ratio:.4},\n  \
         \"byte_identical_1_2_8\": true,\n  \"profile\": {}\n}}\n",
        values.len() * 8,
        stages_json(&serial),
        stages_json(&parallel),
        parallel.profile.to_json(),
    );
    std::fs::write("BENCH_build.json", &json).expect("cannot write BENCH_build.json");
    note("wrote BENCH_build.json");
}

fn stages_json(r: &BuildReport) -> String {
    format!(
        "{{ \"encode_s\": {:.4}, \"layout_s\": {:.4}, \"write_s\": {:.4}, \"total_s\": {:.4} }}",
        r.encode_seconds, r.layout_seconds, r.write_seconds, r.build_seconds
    )
}
