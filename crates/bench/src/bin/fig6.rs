//! Figure 6 — component breakdown (I/O, decompression, reconstruction)
//! of value-retrieval access at 0.1 % selectivity on the large S3D
//! dataset, for the MLOC variants and sequential scan.
//!
//! Paper shape: Seq. Scan is all I/O; MLOC variants trade I/O for
//! decompression; MLOC-ISA has the least I/O but the most
//! decompression (B-spline reconstruction).

use mloc::config::PlodLevel;
use mloc::exec::ParallelExecutor;
use mloc_bench::compare::{build_systems, Lineup};
use mloc_bench::report::{note, title, Table};
use mloc_bench::scenario::DatasetSpec;
use mloc_bench::workload::Workload;
use mloc_bench::HarnessArgs;
use mloc_pfs::{CostModel, MemBackend};

fn main() {
    let mut args = HarnessArgs::parse();
    args.large = true;
    let spec = DatasetSpec::s3d(true);
    eprintln!("[fig6] building systems for {} ...", spec.name);
    let field = spec.generate();
    let be = MemBackend::new();
    let systems = build_systems(&be, &spec, &field, Lineup::MlocAndScan);

    // The paper's 0.1% on 512 GB still moves ~gigabytes per query, so
    // its I/O component is volume-dominated. At our reduced scale the
    // same selectivity is seek-dominated; we therefore show the paper
    // setting *and* a volume-dominated setting (10%) where the codec
    // differences (ISA reads least, decompresses most) are visible.
    let model = CostModel::default();
    let exec = ParallelExecutor::new(args.ranks, model);
    for selectivity in [0.001f64, 0.10] {
        title(&format!(
            "Fig. 6: component times (s) for value retrieval, {}% selectivity, S3D",
            selectivity * 100.0
        ));
        let mut table = Table::new(&["system", "io", "decompress", "reconstruct", "total"]);
        for (variant, store) in &systems.mloc {
            let mut w = Workload::new(field.values(), spec.shape.clone(), args.queries, args.seed);
            let m = w.mloc_value(store, &exec, selectivity, PlodLevel::FULL);
            table.row_seconds(
                variant.name(),
                &[m.io_s, m.decompress_s, m.reconstruct_s, m.component_sum()],
            );
        }
        {
            let mut w = Workload::new(field.values(), spec.shape.clone(), args.queries, args.seed);
            let b = w.baseline_value(&systems.seq, &model, selectivity);
            table.row_seconds("Seq. Scan", &[b.io_s, 0.0, b.cpu_s, b.response_s]);
        }
        table.print();
    }

    println!();
    println!("paper Fig. 6 shape (512 GB S3D, 0.1%):");
    println!("  Seq. Scan : tallest bar, entirely I/O");
    println!("  MLOC-COL  : I/O-dominant, small decompression");
    println!("  MLOC-ISO  : less I/O than COL, moderate decompression");
    println!("  MLOC-ISA  : least I/O, largest decompression share");
    note(&format!(
        "{} queries per cell, {} ranks",
        args.queries, args.ranks
    ));
}
