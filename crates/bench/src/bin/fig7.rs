//! Figure 7 — parallel scalability of value queries (10 % selectivity,
//! large datasets) as the number of MPI-like ranks grows from 8 to
//! 128.
//!
//! Paper shape: decompression and reconstruction shrink with more
//! processes, but I/O stops improving (contention on a fixed set of
//! OSTs); MLOC still sustains ~2 GB/s at 128 processes.

use mloc::config::PlodLevel;
use mloc::exec::ParallelExecutor;
use mloc_bench::report::{note, title, Table};
use mloc_bench::scenario::{build_mloc, open_mloc, DatasetSpec, Variant};
use mloc_bench::workload::Workload;
use mloc_bench::HarnessArgs;
use mloc_pfs::{CostModel, MemBackend};

fn main() {
    let mut args = HarnessArgs::parse();
    args.large = true;
    let selectivity = 0.10;

    for spec in [DatasetSpec::gts(true), DatasetSpec::s3d(true)] {
        eprintln!("[fig7] building MLOC-COL for {} ...", spec.name);
        let field = spec.generate();
        let be = MemBackend::new();
        build_mloc(
            &be,
            &spec,
            field.values(),
            Variant::Col,
            mloc::config::LevelOrder::Vms,
        );
        let store = open_mloc(&be, &spec, Variant::Col);

        title(&format!(
            "Fig. 7: value queries, 10% selectivity, {} — scaling with ranks",
            spec.name
        ));
        let mut table = Table::new(&[
            "ranks",
            "io",
            "decompress",
            "reconstruct",
            "response",
            "GB/s",
        ]);
        for ranks in [8usize, 16, 32, 64, 128] {
            eprintln!("[fig7] {} ranks ...", ranks);
            let exec = ParallelExecutor::new(ranks, CostModel::default());
            let mut w = Workload::new(field.values(), spec.shape.clone(), args.queries, args.seed);
            let m = w.mloc_value(&store, &exec, selectivity, PlodLevel::FULL);
            let gbps = m.bytes_read as f64 / m.response_s.max(1e-9) / 1e9;
            table.row(
                &format!("{ranks}"),
                vec![
                    format!("{:.3}", m.io_s),
                    format!("{:.3}", m.decompress_s),
                    format!("{:.3}", m.reconstruct_s),
                    format!("{:.3}", m.response_s),
                    format!("{gbps:.2}"),
                ],
            );
        }
        table.print();
    }

    println!();
    println!("paper Fig. 7 shape (512 GB): CPU components scale with ranks,");
    println!("I/O plateaus from OST contention; ~2 GB/s at 128 processes.");
    note(&format!("{} queries per cell", args.queries));
}
