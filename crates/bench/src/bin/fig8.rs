//! Figure 8 — multi-resolution (PLoD) value-query performance at 1 %
//! selectivity on the large datasets with MLOC-COL: response time and
//! components per PLoD byte budget.
//!
//! Paper shape: I/O shrinks as fewer bytes are fetched; decompression
//! barely changes (trailing mantissa bytes are incompressible and
//! stored raw); reconstruction is flat.

use mloc::config::PlodLevel;
use mloc::exec::ParallelExecutor;
use mloc_bench::report::{note, title, Table};
use mloc_bench::scenario::{build_mloc, open_mloc, DatasetSpec, Variant};
use mloc_bench::workload::Workload;
use mloc_bench::HarnessArgs;
use mloc_pfs::{CostModel, MemBackend};

fn main() {
    let mut args = HarnessArgs::parse();
    args.large = true;
    let selectivity = 0.01;

    for spec in [DatasetSpec::gts(true), DatasetSpec::s3d(true)] {
        eprintln!("[fig8] building MLOC-COL for {} ...", spec.name);
        let field = spec.generate();
        let be = MemBackend::new();
        build_mloc(
            &be,
            &spec,
            field.values(),
            Variant::Col,
            mloc::config::LevelOrder::Vms,
        );
        let store = open_mloc(&be, &spec, Variant::Col);

        title(&format!(
            "Fig. 8: PLoD value queries, 1% selectivity, {} (MLOC-COL)",
            spec.name
        ));
        let mut table = Table::new(&[
            "PLoD",
            "io",
            "decompress",
            "reconstruct",
            "response",
            "data MiB",
        ]);
        let exec = ParallelExecutor::new(args.ranks, CostModel::default());
        for (label, level) in [
            ("2 bytes", PlodLevel::new(1).unwrap()),
            ("3 bytes", PlodLevel::new(2).unwrap()),
            ("4 bytes", PlodLevel::new(3).unwrap()),
            ("full", PlodLevel::FULL),
        ] {
            eprintln!("[fig8] {} ...", label);
            let mut w = Workload::new(field.values(), spec.shape.clone(), args.queries, args.seed);
            let m = w.mloc_value(&store, &exec, selectivity, level);
            table.row(
                label,
                vec![
                    format!("{:.3}", m.io_s),
                    format!("{:.3}", m.decompress_s),
                    format!("{:.3}", m.reconstruct_s),
                    format!("{:.3}", m.response_s),
                    format!("{:.1}", m.data_bytes as f64 / 1048576.0),
                ],
            );
        }
        table.print();
    }

    println!();
    println!("paper Fig. 8 shape (512 GB): response grows with the byte budget,");
    println!("driven almost entirely by the I/O component; reconstruction flat.");
    note(&format!(
        "{} queries per cell, {} ranks",
        args.queries, args.ranks
    ));
}
