//! Hierarchical-index driver: measures what the two-level succinct
//! bin index (v2 chunk summaries + sampled rank/select directories)
//! buys over the flat v1 format, and emits `BENCH_index.json`.
//!
//! The dataset is built so both index levels matter: even chunks carry
//! one narrow value band each (the whole chunk lands in a single bin,
//! so its bitmap is all ones and the chunk summary can skip it), odd
//! chunks carry noisy values spread over the low bins (their bitmaps
//! are literal-heavy and long enough to earn rank/select samples).
//! The same build is then downgraded in place to v1, and the identical
//! workload runs against both formats.
//!
//! Checked, mirroring the acceptance bar:
//!
//! 1. **Format identity** — every query answers byte-identically on
//!    v1 and v2.
//! 2. **Summary skips** — region queries over the banded range skip
//!    full-chunk bitmaps on v2 (`index.summary_skips > 0`) and never
//!    on v1; membership probes drive the rank directories
//!    (`index.rank_calls > 0`).
//! 3. **Index-only answers** — plain membership and aligned region
//!    queries read zero data bytes on both formats.
//! 4. **Overhead** — rank/select directories cost at most 5% of the
//!    compressed bitmap bytes they accelerate.
//!
//! Run with: `cargo run --release -p mloc-bench --bin index_bench`
//! (`--scale large` for a 512² field, `--queries N` for the pass
//! count).

use mloc::index::{downgrade_variable_to_v1, BinIndex};
use mloc::obs::Profile;
use mloc::prelude::*;
use mloc_bench::report::{note, title};
use mloc_bench::HarnessArgs;
use mloc_bitmap::WahRef;
use mloc_compress::CodecKind;
use mloc_pfs::{CostModel, MemBackend, StorageBackend};
use std::hint::black_box;
use std::time::Instant;

const DS: &str = "ib";
const VAR: &str = "v";
const NUM_BINS: usize = 16;

/// 4x4 chunk grid: ten chunks are one flat band (value 10), four are
/// noise in [0, 1), and two are noise in [20, 21). The flat band makes
/// the equal-frequency edges collapse onto its value, so a single
/// *interior* bin holds all ten band chunks with all-ones bitmaps —
/// the chunk-summary level can answer for most of the grid without
/// reading a bitmap. The noisy chunks spread across the low/high bins
/// with literal-heavy bitmaps long enough to earn rank/select samples.
fn field(side: usize, seed: u64) -> Vec<f64> {
    let chunk = side / 4;
    let mut rng: u64 = seed | 1;
    let mut noise = |base: f64| {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        base + (rng >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut v: Vec<f64> = Vec::with_capacity(side * side);
    for row in 0..side {
        for col in 0..side {
            let c = (row / chunk) * 4 + col / chunk;
            v.push(match c {
                1 | 5 | 9 | 13 => noise(0.0),
                7 | 15 => noise(20.0),
                _ => 10.0,
            });
        }
    }
    v
}

fn build(be: &MemBackend, side: usize, seed: u64) -> Vec<f64> {
    let values = field(side, seed);
    let config = MlocConfig::builder(vec![side, side])
        .chunk_shape(vec![side / 4, side / 4])
        .num_bins(NUM_BINS)
        .codec(CodecKind::Deflate)
        .build();
    build_variable(be, DS, VAR, &values, &config).unwrap();
    values
}

/// Band-aligned region (on exact bin edges, so every touched bin is
/// aligned and every touched chunk is full), partial noisy region, a
/// data-touching scan, and the two membership flavors.
fn workload(n: u64, bounds: &[f64]) -> Vec<Query> {
    vec![
        Query::region(bounds[NUM_BINS - 2], bounds[NUM_BINS - 1]),
        Query::region(0.1, 0.35),
        Query::values_where(0.2, 0.6),
        Query::membership((0..n).step_by(13).collect()),
        Query::membership_where(0.25, 0.75, (0..n).step_by(7).collect()).with_values(),
    ]
}

fn bitwise_eq(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(a.positions(), b.positions(), "{ctx}: positions");
    match (a.values(), b.values()) {
        (None, None) => {}
        (Some(av), Some(bv)) => {
            assert_eq!(av.len(), bv.len(), "{ctx}: value count");
            for (x, y) in av.iter().zip(bv) {
                assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: value bits");
            }
        }
        _ => panic!("{ctx}: one side has values, the other does not"),
    }
}

/// Byte accounting over the v2 index files: WAH payload vs appended
/// rank/select directories vs chunk-summary sections.
fn index_accounting(be: &MemBackend) -> (u64, u64, u64) {
    let (mut wah, mut dir, mut summary) = (0u64, 0u64, 0u64);
    let mut scratch: Vec<u32> = Vec::new();
    for bin in 0..NUM_BINS {
        let name = mloc::fileorg::index_file(DS, VAR, bin);
        let raw = be.read(&name, 0, be.len(&name).unwrap()).unwrap();
        let idx = BinIndex::decode_header(&raw).unwrap();
        assert_eq!(idx.version, 2, "bin {bin}: expected a v2 index");
        summary += idx.summary_bytes;
        for (rank, entry) in idx.chunks.iter().enumerate() {
            if entry.bitmap_len == 0 {
                continue;
            }
            let start = idx.bitmap_file_offset(rank) as usize;
            let ext = &raw[start..start + entry.bitmap_len as usize];
            let (_, used) = WahRef::decode_into(ext, &mut scratch).unwrap();
            wah += used as u64;
            dir += (ext.len() - used) as u64;
        }
    }
    (wah, dir, summary)
}

/// Run `passes` full workloads profiled; returns wall seconds and the
/// merged profile.
fn run_passes(
    exec: &ParallelExecutor,
    store: &MlocStore<'_>,
    queries: &[Query],
    passes: usize,
) -> (f64, Profile) {
    let mut merged = Profile::default();
    let t = Instant::now();
    for _ in 0..passes {
        for q in queries {
            let (res, m, p) = exec.execute_profiled(store, q).unwrap();
            black_box((res, m));
            merged.merge_from(p);
        }
    }
    (t.elapsed().as_secs_f64(), merged)
}

fn counter(p: &Profile, name: &str) -> u64 {
    p.counters
        .iter()
        .filter(|c| c.name == name)
        .map(|c| c.value)
        .sum()
}

fn main() {
    let args = HarnessArgs::parse();
    let side = if args.large { 512 } else { 256 };
    let passes = args.queries.max(3);

    let v2 = MemBackend::new();
    let values = build(&v2, side, args.seed);
    let v1 = MemBackend::new();
    build(&v1, side, args.seed);
    let rewritten = downgrade_variable_to_v1(&v1, DS, VAR).unwrap();
    assert_eq!(rewritten, NUM_BINS, "downgrade missed bins");

    let store2 = MlocStore::open(&v2, DS, VAR).unwrap();
    let store1 = MlocStore::open(&v1, DS, VAR).unwrap();
    let queries = workload(values.len() as u64, store2.bins().bounds());

    title(&format!(
        "Hierarchical index: {side}x{side} field, {NUM_BINS} bins, {} queries x{passes} passes",
        queries.len(),
    ));

    // 1. Format identity: v1 and v2 answer every query byte-identically.
    for (i, q) in queries.iter().enumerate() {
        let r2 = store2.query_serial(q).unwrap();
        let r1 = store1.query_serial(q).unwrap();
        bitwise_eq(&r1, &r2, &format!("query {i}: v1 vs v2"));
    }
    note("v1 and v2 answers are byte-identical across the workload");

    // 4. Directory overhead against the bitmaps it accelerates.
    let (wah_bytes, dir_bytes, summary_bytes) = index_accounting(&v2);
    let dir_overhead_pct = dir_bytes as f64 / wah_bytes as f64 * 100.0;
    note(&format!(
        "index bytes: {wah_bytes} WAH, {dir_bytes} rank/select \
         ({dir_overhead_pct:.2}% overhead), {summary_bytes} chunk summaries"
    ));
    assert!(
        dir_overhead_pct <= 5.0,
        "rank/select directories cost {dir_overhead_pct:.2}% of bitmap bytes (bound: 5%)"
    );

    // 3. Index-only answers: the aligned band region and the plain
    // membership probe never touch data files, on either format.
    let mut band_bytes = [0u64; 2];
    let mut band_io = [0f64; 2];
    for (fi, (tag, store)) in [("v2", &store2), ("v1", &store1)].into_iter().enumerate() {
        for (what, q) in [("band region", &queries[0]), ("membership", &queries[3])] {
            let (res, m) = store.query_with_metrics(q).unwrap();
            black_box(res);
            assert_eq!(m.data_bytes, 0, "{tag}: {what} read data bytes");
            assert!(m.index_bytes > 0, "{tag}: {what} recorded no index reads");
            if what == "band region" {
                band_bytes[fi] = m.index_bytes;
                band_io[fi] = m.io_s;
            }
        }
    }
    note("band region and plain membership are answered from the index alone");
    note(&format!(
        "band region index reads: v2 {} bytes / {:.6}s simulated IO \
         vs v1 {} bytes / {:.6}s",
        band_bytes[0], band_io[0], band_bytes[1], band_io[1]
    ));

    // 2. Summary skips and rank probes, plus the timing comparison.
    let exec = ParallelExecutor::new(1, CostModel::default());
    run_passes(&exec, &store2, &queries, 1); // warmup
    run_passes(&exec, &store1, &queries, 1);
    let (wall2, prof2) = run_passes(&exec, &store2, &queries, passes);
    let (wall1, prof1) = run_passes(&exec, &store1, &queries, passes);

    let skips2 = counter(&prof2, "index.summary_skips") / passes as u64;
    let skips1 = counter(&prof1, "index.summary_skips");
    let hits2 = counter(&prof2, "index.summary_hits") / passes as u64;
    let rank2 = counter(&prof2, "index.rank_calls") / passes as u64;
    assert!(skips2 > 0, "v2 never skipped a full-chunk bitmap");
    assert_eq!(skips1, 0, "v1 has no summaries yet reported skips");
    assert!(rank2 > 0, "membership probes never consulted a directory");

    let stage = |p: &Profile| {
        let s = |path: &[&str]| p.span(path).map_or(0.0, |sp| sp.seconds);
        s(&["plan"]) + s(&["rank", "index-read"])
    };
    let (plan_index2, plan_index1) = (stage(&prof2), stage(&prof1));
    note(&format!(
        "per pass: {skips2} summary skips, {hits2} summary hits, {rank2} rank calls"
    ));
    note(&format!(
        "plan+index-read x{passes}: v2 {plan_index2:.4}s vs v1 {plan_index1:.4}s; \
         wall v2 {wall2:.4}s vs v1 {wall1:.4}s"
    ));

    // The summary level's win in isolation: the band-aligned region is
    // where full-chunk bitmaps dominate, so v2 answers it without ever
    // reading or decoding them.
    let band = &queries[..1];
    let band_passes = passes * 10;
    let (_, band_prof2) = run_passes(&exec, &store2, band, band_passes);
    let (_, band_prof1) = run_passes(&exec, &store1, band, band_passes);
    let (band_pi2, band_pi1) = (stage(&band_prof2), stage(&band_prof1));
    note(&format!(
        "band region plan+index-read x{band_passes}: v2 {band_pi2:.4}s vs v1 {band_pi1:.4}s \
         ({:+.1}%)",
        (band_pi2 / band_pi1 - 1.0) * 100.0
    ));

    // Membership throughput on the two-level index.
    let probe = &queries[4];
    let npoints = (values.len() as u64).div_ceil(7);
    let t = Instant::now();
    for _ in 0..passes {
        black_box(store2.query_serial(probe).unwrap());
    }
    let member_pps = npoints as f64 * passes as f64 / t.elapsed().as_secs_f64();
    note(&format!(
        "membership-with-values: {member_pps:.0} probe points/s over {npoints} points"
    ));

    let json = format!(
        "{{\n  \"bench\": \"index\",\n  \"shape\": [{side}, {side}],\n  \
         \"bins\": {NUM_BINS},\n  \"passes\": {passes},\n  \
         \"wah_bytes\": {wah_bytes},\n  \"dir_bytes\": {dir_bytes},\n  \
         \"dir_overhead_pct\": {dir_overhead_pct:.3},\n  \
         \"summary_bytes\": {summary_bytes},\n  \
         \"summary_skips_per_pass\": {skips2},\n  \
         \"summary_hits_per_pass\": {hits2},\n  \
         \"rank_calls_per_pass\": {rank2},\n  \
         \"plan_index_read_seconds_v2\": {plan_index2:.6},\n  \
         \"plan_index_read_seconds_v1\": {plan_index1:.6},\n  \
         \"band_region_plan_index_read_seconds_v2\": {band_pi2:.6},\n  \
         \"band_region_plan_index_read_seconds_v1\": {band_pi1:.6},\n  \
         \"wall_seconds_v2\": {wall2:.6},\n  \"wall_seconds_v1\": {wall1:.6},\n  \
         \"membership_points_per_sec\": {member_pps:.0},\n  \
         \"profile\": {}\n}}\n",
        prof2.to_json(),
    );
    std::fs::write("BENCH_index.json", &json).expect("cannot write BENCH_index.json");
    note("wrote BENCH_index.json");
}
