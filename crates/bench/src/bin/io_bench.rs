//! Batched-I/O driver: measures what the submission-pool directory
//! backend buys over the seed's open-per-read sequential backend, and
//! what sharding costs, on a real on-disk dataset. Emits
//! `BENCH_io.json`.
//!
//! The workload is the multi-extent cold pattern a query planner
//! produces: many small reads interleaved across every bin's data and
//! index files. Three backends service the identical request list:
//!
//! * **sequential** — `DirBackend::uncached`, the seed behavior: every
//!   read opens the file, seeks, reads, closes. One `open(2)` per
//!   request.
//! * **batched** — `PoolDirBackend`: one cached handle per file,
//!   positional reads, a bounded worker pool draining the whole batch.
//! * **sharded** — a `ShardRouter` over two `PoolDirBackend` shard
//!   directories, fanning the same batch out per shard.
//! * **degraded** — the same router with replication factor 2 after
//!   one shard directory is wiped: every read masked by the surviving
//!   replica, read-repair refilling the lost shard inline.
//! * **hedged** — the replicated router with a zero-threshold latency
//!   hedge, racing both replicas on every batch.
//!
//! Checked, mirroring the acceptance bar:
//!
//! 1. **Byte identity** — every backend (including degraded and
//!    hedged) returns bit-identical bytes for every request.
//! 2. **Open accounting** — the sequential backend opens once per
//!    read; the pool opens once per *file* (deterministic counters the
//!    CI baseline pins).
//! 3. **Throughput** — batched wall time is strictly below sequential
//!    wall time on the cold multi-extent workload.
//! 4. **Repair accounting** — with one shard of two wiped under R = 2,
//!    `read_repairs` equals exactly the requests whose primary copy
//!    died, write-back runs once per degraded file, and a second
//!    drain needs zero masking (the shard was refilled). Deterministic
//!    counters, pinned by the CI baseline; the degraded/hedged wall
//!    times stay advisory.
//!
//! Run with: `cargo run --release -p mloc-bench --bin io_bench`
//! (`--scale large` for a 512² field, `--queries N` for the pass
//! count).

use mloc::prelude::*;
use mloc_bench::report::{note, title};
use mloc_bench::HarnessArgs;
use mloc_datagen::gts_like_2d;
use mloc_pfs::{DirBackend, PoolDirBackend, ReadRequest, ShardRouter, StorageBackend};
use std::hint::black_box;
use std::time::Instant;

const DS: &str = "iob";
const VAR: &str = "v";
const EXTENT: u64 = 4096;
const POOL_DEPTH: usize = 4;
const SHARDS: usize = 2;

fn build_into(be: &dyn StorageBackend, side: usize, seed: u64) {
    let field = gts_like_2d(side, side, seed);
    let config = MlocConfig::builder(vec![side, side])
        .chunk_shape(vec![side / 8, side / 8])
        .num_bins(12)
        .build();
    build_variable(be, DS, VAR, field.values(), &config).unwrap();
}

/// The multi-extent cold request list: every stored file cut into
/// EXTENT-sized reads, deterministically shuffled so consecutive
/// requests almost always hit *different* files — the worst case for
/// an open-per-read backend, the common case for a planner fanning
/// over bins.
fn request_list(be: &dyn StorageBackend, seed: u64) -> Vec<ReadRequest> {
    let mut reqs = Vec::new();
    for file in be.list() {
        if !(file.ends_with(".dat") || file.ends_with(".idx")) {
            continue;
        }
        let flen = be.len(&file).unwrap();
        let mut offset = 0;
        while offset < flen {
            reqs.push(ReadRequest::new(
                file.clone(),
                offset,
                EXTENT.min(flen - offset),
            ));
            offset += EXTENT;
        }
    }
    // Fisher-Yates with a xorshift PRNG: stable across runs and
    // platforms, so the baseline counters are deterministic.
    let mut rng = seed | 1;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for i in (1..reqs.len()).rev() {
        reqs.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    reqs
}

fn fingerprint(results: &[Result<Vec<u8>, mloc_pfs::PfsError>]) -> Vec<u64> {
    results
        .iter()
        .map(|r| {
            let bytes = r.as_ref().expect("workload reads only stored extents");
            // FNV-1a per slot: cheap, order-sensitive identity.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    let side = if args.large { 512 } else { 256 };
    let passes = args.queries.max(3);

    let root = std::env::temp_dir().join(format!("mloc-io-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // One flat build serves both the sequential and the batched runs;
    // the sharded run gets its own spread layout of the same dataset.
    let flat = DirBackend::new(root.join("flat")).unwrap();
    build_into(&flat, side, args.seed);
    let sharded = ShardRouter::new(
        (0..SHARDS)
            .map(|s| {
                Box::new(PoolDirBackend::new(root.join(format!("shard{s}")), POOL_DEPTH).unwrap())
                    as Box<dyn StorageBackend>
            })
            .collect(),
    )
    .unwrap();
    build_into(&sharded, side, args.seed);

    let reqs = request_list(&flat, args.seed);
    let total_bytes: u64 = reqs.iter().map(|r| r.len).sum();
    let files: std::collections::BTreeSet<&str> = reqs.iter().map(|r| r.file.as_str()).collect();
    title(&format!(
        "Batched I/O: {side}x{side} field, {} requests over {} files ({} bytes) x{passes} passes",
        reqs.len(),
        files.len(),
        total_bytes
    ));

    // 1. Byte identity across all three backends, before any timing.
    let seq_be = DirBackend::uncached(root.join("flat")).unwrap();
    let pool_be = PoolDirBackend::new(root.join("flat"), POOL_DEPTH).unwrap();
    let want: Vec<u64> = fingerprint(
        &reqs
            .iter()
            .map(|r| seq_be.read(&r.file, r.offset, r.len))
            .collect::<Vec<_>>(),
    );
    assert_eq!(
        fingerprint(&pool_be.read_batch(&reqs)),
        want,
        "batched bytes diverged from sequential"
    );
    assert_eq!(
        fingerprint(&sharded.read_batch(&reqs)),
        want,
        "sharded bytes diverged from flat"
    );
    note("sequential, batched and sharded runs return bit-identical bytes");

    // 2. Open accounting: the seed behavior pays one open per read,
    // the pool one per file — deterministic, pinned by the baseline.
    let seq_probe = DirBackend::uncached(root.join("flat")).unwrap();
    for r in &reqs {
        black_box(seq_probe.read(&r.file, r.offset, r.len).unwrap());
    }
    let seq_opens = seq_probe.open_count();
    let pool_probe = PoolDirBackend::new(root.join("flat"), POOL_DEPTH).unwrap();
    black_box(pool_probe.read_batch(&reqs));
    black_box(pool_probe.read_batch(&reqs)); // second pass: zero new opens
    let pool_opens = pool_probe.open_count();
    assert_eq!(seq_opens, reqs.len() as u64, "uncached backend open count");
    assert_eq!(pool_opens, files.len() as u64, "pool backend open count");
    note(&format!(
        "opens: sequential {seq_opens} (one per read) vs pool {pool_opens} (one per file)"
    ));

    // 3. Wall time over `passes` full drains of the request list. The
    // page cache is warm for both sides (the build just wrote these
    // files), so the delta isolates per-request overhead: open/close
    // syscalls vs cached positional reads. Each side takes the best of
    // three trials — on a loaded single-CPU runner one scheduler
    // hiccup would otherwise flip the gate.
    let best_of = |drain: &mut dyn FnMut()| -> f64 {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..passes {
                    drain();
                }
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let seq_wall = best_of(&mut || {
        for r in &reqs {
            black_box(seq_be.read(&r.file, r.offset, r.len).unwrap());
        }
    });
    let batched_wall = best_of(&mut || {
        black_box(pool_be.read_batch(&reqs));
    });
    let sharded_wall = best_of(&mut || {
        black_box(sharded.read_batch(&reqs));
    });

    let speedup = seq_wall / batched_wall;
    note(&format!(
        "wall x{passes}: sequential {seq_wall:.4}s, batched {batched_wall:.4}s \
         ({speedup:.2}x), sharded {sharded_wall:.4}s"
    ));
    assert!(
        batched_wall < seq_wall,
        "batched ({batched_wall:.4}s) must beat sequential ({seq_wall:.4}s) \
         on the multi-extent cold workload"
    );

    // 4. Degraded group: the same dataset under replication factor 2,
    // then one shard directory wiped. The first drain is served
    // entirely (for dead-primary files) by the surviving replica —
    // byte-identical, with `read_repairs` accounting for exactly the
    // masked requests and write-back refilling the wiped shard so a
    // second drain masks nothing.
    let mk_replicated = || {
        ShardRouter::replicated(
            (0..SHARDS)
                .map(|s| {
                    Box::new(PoolDirBackend::new(root.join(format!("r2s{s}")), POOL_DEPTH).unwrap())
                        as Box<dyn StorageBackend>
                })
                .collect(),
            2,
        )
        .unwrap()
    };
    build_into(&mk_replicated(), side, args.seed);
    std::fs::remove_dir_all(root.join("r2s0")).unwrap();
    let degraded = mk_replicated();
    let degraded_requests = reqs
        .iter()
        .filter(|r| degraded.shard_of(&r.file) == 0)
        .count() as u64;
    let degraded_files = files.iter().filter(|f| degraded.shard_of(f) == 0).count() as u64;
    let t = Instant::now();
    let first_drain = degraded.read_batch(&reqs);
    let degraded_wall = t.elapsed().as_secs_f64();
    assert_eq!(
        fingerprint(&first_drain),
        want,
        "degraded bytes diverged from flat"
    );
    let read_repairs = degraded.read_repair_count();
    let writebacks = degraded.writeback_count();
    assert_eq!(
        read_repairs, degraded_requests,
        "read-repair must account for exactly the dead-primary requests"
    );
    assert_eq!(
        writebacks, degraded_files,
        "write-back must run once per degraded file"
    );
    let t = Instant::now();
    assert_eq!(
        fingerprint(&degraded.read_batch(&reqs)),
        want,
        "healed bytes diverged from flat"
    );
    let healed_wall = t.elapsed().as_secs_f64();
    assert_eq!(
        degraded.read_repair_count(),
        read_repairs,
        "second drain must need zero masking: the shard was refilled"
    );
    note(&format!(
        "degraded R=2: {degraded_requests} masked requests over {degraded_files} files, \
         {writebacks} write-backs; drain {degraded_wall:.4}s degraded, {healed_wall:.4}s healed"
    ));

    // 5. Hedged group: zero threshold fires the hedge on every batch;
    // both replicas race and bytes must not change. Wall time is
    // advisory (it measures thread scheduling, not layout).
    let hedged = mk_replicated().with_hedge(0.0);
    let hedged_wall = best_of(&mut || {
        black_box(hedged.read_batch(&reqs));
    });
    assert_eq!(
        fingerprint(&hedged.read_batch(&reqs)),
        want,
        "hedged bytes diverged from flat"
    );
    let hedged_batches = hedged.hedged_batch_count();
    note(&format!(
        "hedged R=2 (threshold 0): wall x{passes} {hedged_wall:.4}s, {hedged_batches} hedged batches"
    ));

    let json = format!(
        "{{\n  \"bench\": \"io\",\n  \"shape\": [{side}, {side}],\n  \
         \"passes\": {passes},\n  \"pool_depth\": {POOL_DEPTH},\n  \
         \"shards\": {SHARDS},\n  \"requests\": {},\n  \
         \"files\": {},\n  \"total_bytes\": {total_bytes},\n  \
         \"sequential_opens\": {seq_opens},\n  \"pool_opens\": {pool_opens},\n  \
         \"sequential_wall_seconds\": {seq_wall:.6},\n  \
         \"batched_wall_seconds\": {batched_wall:.6},\n  \
         \"sharded_wall_seconds\": {sharded_wall:.6},\n  \
         \"batched_speedup\": {speedup:.3},\n  \
         \"degraded_requests\": {degraded_requests},\n  \
         \"degraded_files\": {degraded_files},\n  \
         \"read_repairs\": {read_repairs},\n  \
         \"writebacks\": {writebacks},\n  \
         \"degraded_wall_seconds\": {degraded_wall:.6},\n  \
         \"healed_wall_seconds\": {healed_wall:.6},\n  \
         \"hedged_wall_seconds\": {hedged_wall:.6},\n  \
         \"hedged_batches\": {hedged_batches}\n}}\n",
        reqs.len(),
        files.len(),
    );
    std::fs::write("BENCH_io.json", &json).expect("cannot write BENCH_io.json");
    note("wrote BENCH_io.json");

    let _ = std::fs::remove_dir_all(&root);
}
