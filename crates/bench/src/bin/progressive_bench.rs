//! Progressive-retrieval driver: measures what the byte-group ladder
//! buys for interactive exploration and emits `BENCH_progressive.json`.
//!
//! Checked, mirroring the acceptance bar:
//!
//! 1. **Step-0 footprint** — the ladder's first answer reads exactly
//!    the bytes of a one-shot level-1 query (index + base parts), not
//!    a byte of the higher byte groups.
//! 2. **Byte parity** — the cold ladder's per-step reads sum to the
//!    one-shot full-precision query's `bytes_read`.
//! 3. **Warm refinement** — behind a shared cache warmed to level L,
//!    a full ladder reads nothing for parts below L and only the new
//!    byte groups above it.
//! 4. **Early exit** — reaching a 1e-6 worst-case relative bound costs
//!    a fraction of the full fetch, in bytes and simulated seconds.
//!
//! Run with: `cargo run --release -p mloc-bench --bin progressive_bench`
//! (`--scale large` for a 512² field).

use mloc::obs::Profile;
use mloc::prelude::*;
use mloc_bench::report::{note, title};
use mloc_bench::HarnessArgs;
use mloc_compress::CodecKind;
use mloc_datagen::gts_like_2d;
use mloc_pfs::MemBackend;
use std::sync::Arc;

const DS: &str = "pb";
const VAR: &str = "v";
const NUM_BINS: usize = 16;
const EPS: f64 = 1e-6;

fn build(be: &MemBackend, side: usize, seed: u64) -> usize {
    let field = gts_like_2d(side, side, seed);
    let config = MlocConfig::builder(vec![side, side])
        .chunk_shape(vec![side / 8, side / 8])
        .num_bins(NUM_BINS)
        .codec(CodecKind::Deflate)
        .build();
    build_variable(be, DS, VAR, field.values(), &config).unwrap();
    field.values().len()
}

fn counter(p: &Profile, name: &str) -> u64 {
    p.counters
        .iter()
        .filter(|c| c.name == name)
        .map(|c| c.value)
        .sum()
}

fn main() {
    let args = HarnessArgs::parse();
    let side = if args.large { 512 } else { 256 };
    let be = MemBackend::new();
    build(&be, side, args.seed);
    let store = MlocStore::open(&be, DS, VAR).unwrap();

    // A spatial value query over a quarter of the domain: every
    // touched bin is refinable (no value constraint to re-check).
    let region = Region::new(vec![(0, side / 2), (0, side / 2)]);
    let q = Query::values_in(region.clone());

    title(&format!(
        "Progressive ladder: {side}x{side} field, {NUM_BINS} bins, {} points in scope",
        side * side / 4
    ));

    // 1. Step 0 reads exactly what a one-shot base-level query reads.
    let (_, m_base) = store
        .query_with_metrics(&q.clone().with_plod(PlodLevel::new(1).unwrap()))
        .unwrap();
    let (res_full, m_full) = store.query_with_metrics(&q).unwrap();

    let mut pq = store.query_progressive(&q).unwrap();
    let step0_bytes = pq.steps()[0].bytes_read;
    assert_eq!(
        step0_bytes, m_base.bytes_read,
        "step 0 must read only index + base-part bytes"
    );
    pq.run_to_completion().unwrap();
    let steps = pq.steps().to_vec();
    let bytes_per_step: Vec<u64> = steps.iter().map(|s| s.bytes_read).collect();
    let bound_per_step: Vec<f64> = steps.iter().map(|s| s.error_bound).collect();
    let ladder_total: u64 = bytes_per_step.iter().sum();

    // 2. Cold byte parity with the one-shot query.
    assert_eq!(
        ladder_total, m_full.bytes_read,
        "cold ladder bytes must sum to the one-shot read"
    );
    for (a, b) in pq
        .result()
        .values()
        .unwrap()
        .iter()
        .zip(res_full.values().unwrap())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "final step drifted from one-shot");
    }
    note(&format!(
        "step 0: {} of {} one-shot bytes ({:.1}%), bound {:.3e}",
        step0_bytes,
        m_full.bytes_read,
        step0_bytes as f64 / m_full.bytes_read as f64 * 100.0,
        bound_per_step[0]
    ));
    note(&format!("per-step bytes: {bytes_per_step:?}"));

    // 4. Early exit at the target bound.
    let to_eps = steps
        .iter()
        .position(|s| s.error_bound <= EPS)
        .expect("EPS is reachable");
    let bytes_to_eps: u64 = bytes_per_step[..=to_eps].iter().sum();
    let io_to_eps: f64 = steps[..=to_eps].iter().map(|s| s.io_s).sum();
    let ladder_io: f64 = steps.iter().map(|s| s.io_s).sum();
    assert!(
        bytes_to_eps < m_full.bytes_read,
        "reaching {EPS:e} should cost less than the full fetch"
    );
    note(&format!(
        "to bound {EPS:e}: {} steps, {bytes_to_eps} bytes ({:.1}% of full), \
         {io_to_eps:.4}s sim IO ({:.1}% of ladder total {ladder_io:.4}s)",
        to_eps + 1,
        bytes_to_eps as f64 / m_full.bytes_read as f64 * 100.0,
        io_to_eps / ladder_io * 100.0
    ));

    // 3. Warm refinement behind a shared cache: warm to level 4, then
    // ladder to full — parts below the warmed level are cache-served,
    // only the genuinely new byte groups are read.
    let mut warm_store = MlocStore::open(&be, DS, VAR).unwrap();
    warm_store.set_cache(Some(Arc::new(BlockCache::with_budget_mb(256))));
    const WARM_LEVEL: u8 = 4;
    warm_store
        .query_serial(&q.clone().with_plod(PlodLevel::new(WARM_LEVEL).unwrap()))
        .unwrap();
    let mut warm = warm_store.query_progressive(&q).unwrap();
    warm.run_to_completion().unwrap();
    let mut warm_below = 0u64;
    let mut warm_above = 0u64;
    for s in warm.steps().iter().skip(1) {
        // Refinement step k applies part k (level k+1).
        if s.level.level() <= WARM_LEVEL {
            warm_below += s.bytes_read;
        } else {
            warm_above += s.bytes_read;
        }
    }
    assert_eq!(warm_below, 0, "warm refinements re-read cached byte groups");
    assert!(warm_above > 0, "cold byte groups were never read");
    note(&format!(
        "warm (cache at level {WARM_LEVEL}): 0 bytes re-read below, \
         {warm_above} bytes of new byte groups above"
    ));

    // Obs counters on a profiled ladder.
    let exec = ParallelExecutor::serial();
    let mut prof_pq = exec.progressive_profiled(&store, &q).unwrap();
    prof_pq.run_to_completion().unwrap();
    let profile = prof_pq.profile().clone();
    assert_eq!(
        counter(&profile, "progressive.steps"),
        steps.len() as u64,
        "progressive.steps counter disagrees with the step log"
    );
    assert_eq!(
        counter(&profile, "progressive.bytes_per_step"),
        ladder_total,
        "bytes_per_step counters must sum to the ladder total"
    );

    let fmt_u64s = |v: &[u64]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let bounds_json = bound_per_step
        .iter()
        .map(|b| format!("{b:e}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"progressive\",\n  \"shape\": [{side}, {side}],\n  \
         \"bins\": {NUM_BINS},\n  \
         \"step0_bytes\": {step0_bytes},\n  \
         \"oneshot_level1_bytes\": {},\n  \
         \"oneshot_full_bytes\": {},\n  \
         \"ladder_total_bytes\": {ladder_total},\n  \
         \"bytes_per_step\": [{}],\n  \
         \"bound_per_step\": [{bounds_json}],\n  \
         \"eps\": {EPS:e},\n  \"steps_to_eps\": {},\n  \
         \"bytes_to_eps\": {bytes_to_eps},\n  \
         \"io_seconds_to_eps\": {io_to_eps:.6},\n  \
         \"ladder_io_seconds\": {ladder_io:.6},\n  \
         \"warm_refine_bytes_below_cached_level\": {warm_below},\n  \
         \"warm_refine_bytes_above_cached_level\": {warm_above},\n  \
         \"profile\": {}\n}}\n",
        m_base.bytes_read,
        m_full.bytes_read,
        fmt_u64s(&bytes_per_step),
        to_eps + 1,
        profile.to_json(),
    );
    std::fs::write("BENCH_progressive.json", &json).expect("cannot write BENCH_progressive.json");
    note("wrote BENCH_progressive.json");
}
