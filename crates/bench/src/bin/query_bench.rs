//! Query-path observability driver: proves the profiling contract on a
//! realistic session and emits `BENCH_query.json`.
//!
//! Three things are checked, mirroring the acceptance bar:
//!
//! 1. **Mode identity** — the same profiled query under deterministic
//!    replay and under the threaded runtime yields identical results,
//!    identical span structure, and identical counter values.
//! 2. **Reconciliation** — profile stage spans carry the very same
//!    floats as the returned `QueryMetrics`.
//! 3. **Overhead** — running the session with profiling on must stay
//!    within 1.5x of the unprofiled run (the measured percentage is
//!    reported and embedded in the JSON; the hard bound is loose so CI
//!    noise cannot fail it spuriously).
//!
//! Run with: `cargo run --release -p mloc-bench --bin query_bench`
//! (`--scale large` for a 256² field, `--ranks N` for the rank count).

use mloc::obs::Profile;
use mloc::prelude::*;
use mloc_bench::report::{note, title};
use mloc_bench::HarnessArgs;
use mloc_datagen::{gts_like_2d, QueryGen};
use mloc_pfs::{CostModel, MemBackend};
use std::hint::black_box;
use std::time::Instant;

fn session(values: &[f64], shape: &[usize], seed: u64, n: usize) -> Vec<Query> {
    let mut gen = QueryGen::new(values.to_vec(), shape.to_vec(), seed);
    let mut queries = Vec::new();
    for _ in 0..n {
        let (lo, hi) = gen.value_constraint(0.15);
        queries.push(Query::values_where(lo, hi));
        queries.push(Query::region(lo, hi));
    }
    let region = Region::new(shape.iter().map(|&e| (e / 8, e * 7 / 8)).collect());
    queries.push(Query::values_in(region.clone()));
    queries.push(Query::values_in(region).with_plod(PlodLevel::new(2).unwrap()));
    queries
}

fn run_session(exec: &ParallelExecutor, store: &MlocStore<'_>, queries: &[Query]) -> f64 {
    let t = Instant::now();
    for q in queries {
        black_box(exec.execute(store, q).unwrap());
    }
    t.elapsed().as_secs_f64()
}

fn run_session_profiled(
    exec: &ParallelExecutor,
    store: &MlocStore<'_>,
    queries: &[Query],
) -> (f64, Profile) {
    let t = Instant::now();
    let mut profiles = Vec::with_capacity(queries.len());
    for q in queries {
        let (res, m, p) = exec.execute_profiled(store, q).unwrap();
        black_box((res, m));
        profiles.push(p);
    }
    (t.elapsed().as_secs_f64(), Profile::merge(profiles))
}

fn main() {
    let args = HarnessArgs::parse();
    let shape = if args.large {
        vec![256, 256]
    } else {
        vec![128, 128]
    };
    let field = gts_like_2d(shape[0], shape[1], args.seed);
    let config = MlocConfig::builder(shape.clone())
        .chunk_shape(vec![32, 32])
        .num_bins(16)
        .build();
    let be = MemBackend::new();
    build_variable(&be, "qb", "v", field.values(), &config).unwrap();
    let store = MlocStore::open(&be, "qb", "v").unwrap();
    let queries = session(field.values(), &shape, args.seed, args.queries.max(3));

    title(&format!(
        "Query observability: {shape:?} field, {} queries, {} ranks",
        queries.len(),
        args.ranks
    ));

    // 1. Replay vs threaded: identical results, structure, counters.
    let replay = ParallelExecutor::new(args.ranks, CostModel::default());
    let threaded = ParallelExecutor::new(args.ranks, CostModel::default()).threaded(true);
    for q in &queries {
        let (res_r, m_r, p_r) = replay.execute_profiled(&store, q).unwrap();
        let (res_t, m_t, p_t) = threaded.execute_profiled(&store, q).unwrap();
        assert_eq!(res_r, res_t, "threaded result diverged");
        assert_eq!(p_r.structure(), p_t.structure(), "span structure diverged");
        assert_eq!(p_r.counters, p_t.counters, "counters diverged");
        assert_eq!(m_r.bytes_read, m_t.bytes_read);

        // 2. Reconciliation: profile floats are the metrics floats.
        for (p, m) in [(&p_r, &m_r), (&p_t, &m_t)] {
            assert_eq!(p.span(&["io"]).unwrap().max_rank_seconds, m.io_s);
            assert_eq!(
                p.span(&["rank", "decompress"])
                    .map_or(0.0, |s| s.max_rank_seconds),
                m.decompress_s
            );
            assert_eq!(
                p.span(&["rank", "reconstruct"])
                    .map_or(0.0, |s| s.max_rank_seconds),
                m.reconstruct_s
            );
        }
    }
    note("replay/threaded profiles identical; spans reconcile with metrics");

    // 3. Overhead of profiling, against the plain path. One warmup of
    // each, then alternate measured passes to cancel drift.
    let serial = ParallelExecutor::new(1, CostModel::default());
    run_session(&serial, &store, &queries);
    run_session_profiled(&serial, &store, &queries);
    let (mut plain_s, mut profiled_s) = (0.0, 0.0);
    let mut merged = Profile::default();
    const REPS: usize = 5;
    for _ in 0..REPS {
        plain_s += run_session(&serial, &store, &queries);
        let (s, p) = run_session_profiled(&serial, &store, &queries);
        profiled_s += s;
        merged.merge_from(p);
    }
    let overhead_pct = (profiled_s / plain_s - 1.0) * 100.0;
    note(&format!(
        "session x{REPS}: plain {plain_s:.4}s, profiled {profiled_s:.4}s \
         ({overhead_pct:+.1}% overhead)"
    ));
    assert!(
        profiled_s <= plain_s * 1.5,
        "profiling overhead out of bounds: plain {plain_s:.4}s vs profiled {profiled_s:.4}s"
    );

    print!("{}", merged.render());

    // Stage seconds over the measured profiled passes (summed across
    // queries and passes, same scale as `profiled_seconds`) and the
    // hot-path allocation proxy: bytes materialized into fresh or
    // scratch buffers per session pass. These are the regression
    // handles CI diffs against the committed baseline.
    let stage = |path: &[&str]| merged.span(path).map_or(0.0, |s| s.seconds);
    let decompress_s = stage(&["rank", "decompress"]);
    let reconstruct_s = stage(&["rank", "reconstruct"]);
    let copy_bytes = merged
        .counters
        .iter()
        .filter(|c| c.name == "hotpath.copy_bytes")
        .map(|c| c.value)
        .sum::<u64>()
        / REPS as u64;
    note(&format!(
        "stages x{REPS}: decompress {decompress_s:.4}s, reconstruct {reconstruct_s:.4}s, \
         copy {copy_bytes} bytes/session"
    ));

    let json = format!(
        "{{\n  \"bench\": \"query\",\n  \"shape\": {shape:?},\n  \"queries\": {},\n  \
         \"ranks\": {},\n  \"replay_threaded_identical\": true,\n  \
         \"plain_seconds\": {plain_s:.6},\n  \"profiled_seconds\": {profiled_s:.6},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"decompress_seconds\": {decompress_s:.6},\n  \
         \"reconstruct_seconds\": {reconstruct_s:.6},\n  \
         \"copy_bytes_per_session\": {copy_bytes},\n  \"profile\": {}\n}}\n",
        queries.len(),
        args.ranks,
        merged.to_json(),
    );
    std::fs::write("BENCH_query.json", &json).expect("cannot write BENCH_query.json");
    note("wrote BENCH_query.json");
}
