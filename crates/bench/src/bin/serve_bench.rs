//! Session-service traffic bench: replays a multi-tenant workload
//! through `mloc-serve` three ways — serial replay, concurrent without
//! fusion, concurrent with cross-session extent fusion — asserts the
//! answers are byte-identical, and reports session latency percentiles
//! plus the bytes-read amplification of fusion (must be < 1.0 on this
//! overlapping workload). Emits `BENCH_serve.json`.
//!
//! Run with: `cargo run --release -p mloc-bench --bin serve_bench`
//! (`--scale large` for a 256² field, `--queries N` for more distinct
//! queries per tenant pair, `--seed N` for the workload seed).

use mloc::prelude::*;
use mloc_bench::report::{fmt_bytes, note, title, Table};
use mloc_bench::HarnessArgs;
use mloc_datagen::{gts_like_2d, QueryGen};
use mloc_pfs::MemBackend;
use mloc_serve::{QueryServer, ServeConfig, SessionReport, SessionSpec};

const DS: &str = "sb";
const VAR: &str = "v";
const TENANTS: [&str; 4] = ["alice", "bob", "carol", "dave"];

/// Overlapping traffic: every distinct query is issued by two tenants
/// back to back (so each admission window carries duplicate and
/// overlapping want-lists), cycling through tenant pairs.
fn workload(values: &[f64], shape: &[usize], seed: u64, distinct: usize) -> Vec<SessionSpec> {
    let mut gen = QueryGen::new(values.to_vec(), shape.to_vec(), seed);
    let mut specs = Vec::new();
    for i in 0..distinct {
        let (lo, hi) = gen.value_constraint(0.08 + 0.02 * (i % 5) as f64);
        let region = Region::new(gen.region(0.15));
        let q = match i % 4 {
            0 => Query::region(lo, hi),
            1 => Query::values_where(lo, hi),
            2 => Query::values_in(region),
            _ => Query::values_where(lo, hi).with_region(region),
        };
        let a = TENANTS[i % TENANTS.len()];
        let b = TENANTS[(i + 1) % TENANTS.len()];
        specs.push(SessionSpec::new(a, DS, VAR, q.clone()));
        specs.push(SessionSpec::new(b, DS, VAR, q));
    }
    specs
}

fn config(workers: usize, window: usize, fusion: bool) -> ServeConfig {
    ServeConfig {
        workers,
        window,
        cache_mb: 0,
        fusion,
        ..ServeConfig::default()
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct ModeStats {
    bytes_read: u64,
    fused_saved: u64,
    sim_p50: f64,
    sim_p99: f64,
    wall_p50: f64,
    wall_p99: f64,
}

fn mode_stats(reports: &[SessionReport]) -> ModeStats {
    let metrics: Vec<_> = reports
        .iter()
        .map(|r| r.metrics.as_ref().expect("session completed"))
        .collect();
    let mut sim: Vec<f64> = metrics.iter().map(|m| m.response_s).collect();
    let mut wall: Vec<f64> = reports.iter().map(|r| r.wall_s).collect();
    sim.sort_by(f64::total_cmp);
    wall.sort_by(f64::total_cmp);
    ModeStats {
        bytes_read: metrics.iter().map(|m| m.bytes_read).sum(),
        fused_saved: metrics.iter().map(|m| m.fused_bytes_saved).sum(),
        sim_p50: percentile(&sim, 50.0),
        sim_p99: percentile(&sim, 99.0),
        wall_p50: percentile(&wall, 50.0),
        wall_p99: percentile(&wall, 99.0),
    }
}

fn assert_identical(reports: &[SessionReport], reference: &[QueryResult], mode: &str) {
    for (r, want) in reports.iter().zip(reference) {
        let got = r
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{mode}: session {} failed: {e}", r.index));
        assert_eq!(
            got.positions(),
            want.positions(),
            "{mode}: session {} positions drifted",
            r.index
        );
        if let (Some(gv), Some(wv)) = (got.values(), want.values()) {
            for (x, y) in gv.iter().zip(wv) {
                assert_eq!(x.to_bits(), y.to_bits(), "{mode}: session {} bits", r.index);
            }
        }
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let shape = if args.large {
        vec![256, 256]
    } else {
        vec![128, 128]
    };
    let field = gts_like_2d(shape[0], shape[1], args.seed);
    let cfg = MlocConfig::builder(shape.clone())
        .chunk_shape(vec![32, 32])
        .num_bins(16)
        .build();
    let be = MemBackend::new();
    build_variable(&be, DS, VAR, field.values(), &cfg).unwrap();
    let specs = workload(field.values(), &shape, args.seed, args.queries.max(8));

    title(&format!(
        "Session service: {shape:?} field, {} sessions over {} tenants",
        specs.len(),
        TENANTS.len()
    ));

    // Reference answers for the byte-identity gate.
    let store = MlocStore::open(&be, DS, VAR).unwrap();
    let reference: Vec<QueryResult> = specs
        .iter()
        .map(|s| store.query_serial(&s.query).unwrap())
        .collect();

    // Serial replay: one session per window, nothing shared.
    let serial_server = QueryServer::new(&be, config(1, 1, false));
    let serial_reports = serial_server.run(&specs);
    assert_identical(&serial_reports, &reference, "serial");
    let serial = mode_stats(&serial_reports);

    // Concurrent, fusion off.
    let unfused_server = QueryServer::new(&be, config(8, 16, false));
    let unfused_reports = unfused_server.run(&specs);
    assert_identical(&unfused_reports, &reference, "unfused");
    let unfused = mode_stats(&unfused_reports);

    // Concurrent, fusion on.
    let fused_server = QueryServer::new(&be, config(8, 16, true));
    let fused_reports = fused_server.run(&specs);
    assert_identical(&fused_reports, &reference, "fused");
    let fused = mode_stats(&fused_reports);
    note("all three modes byte-identical to per-query serial execution");

    let amplification = fused.bytes_read as f64 / unfused.bytes_read as f64;
    assert!(
        amplification < 1.0,
        "fusion did not reduce PFS traffic: {} fused vs {} unfused",
        fused.bytes_read,
        unfused.bytes_read
    );
    assert_eq!(
        fused.bytes_read + fused.fused_saved,
        unfused.bytes_read,
        "fused savings must account exactly for the traffic delta"
    );

    let mut t = Table::new(&[
        "mode",
        "bytes read",
        "sim p50 s",
        "sim p99 s",
        "wall p50 ms",
        "wall p99 ms",
    ]);
    for (label, s) in [
        ("serial replay", &serial),
        ("concurrent", &unfused),
        ("concurrent+fusion", &fused),
    ] {
        t.row(
            label,
            vec![
                fmt_bytes(s.bytes_read),
                format!("{:.4}", s.sim_p50),
                format!("{:.4}", s.sim_p99),
                format!("{:.3}", s.wall_p50 * 1e3),
                format!("{:.3}", s.wall_p99 * 1e3),
            ],
        );
    }
    t.print();
    let stats = fused_server.fusion_stats().expect("fusion enabled");
    note(&format!(
        "amplification {amplification:.3}x vs unfused ({} saved); fuser: {} physical / {} fused reads",
        fmt_bytes(fused.fused_saved),
        stats.physical_reads,
        stats.fused_reads
    ));

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"shape\": {shape:?},\n  \"sessions\": {},\n  \
         \"tenants\": {},\n  \"byte_identical\": true,\n  \
         \"amplification_fused_vs_unfused\": {amplification:.6},\n  \
         \"serial_bytes_read\": {},\n  \"unfused_bytes_read\": {},\n  \
         \"fused_bytes_read\": {},\n  \"fused_bytes_saved\": {},\n  \
         \"physical_reads\": {},\n  \"fused_reads\": {},\n  \
         \"sim_latency_p50_s\": {:.6},\n  \"sim_latency_p99_s\": {:.6},\n  \
         \"wall_latency_p50_s\": {:.6},\n  \"wall_latency_p99_s\": {:.6},\n  \
         \"serial_sim_latency_p50_s\": {:.6},\n  \"serial_sim_latency_p99_s\": {:.6}\n}}\n",
        specs.len(),
        TENANTS.len(),
        serial.bytes_read,
        unfused.bytes_read,
        fused.bytes_read,
        fused.fused_saved,
        stats.physical_reads,
        stats.fused_reads,
        fused.sim_p50,
        fused.sim_p99,
        fused.wall_p50,
        fused.wall_p99,
        serial.sim_p50,
        serial.sim_p99,
    );
    std::fs::write("BENCH_serve.json", &json).expect("cannot write BENCH_serve.json");
    note("wrote BENCH_serve.json");
}
