//! Table I — space requirements of data and index for the "8 GB" raw
//! dataset (scaled), across MLOC variants and comparators.
//!
//! Paper values (8 GB GTS): MLOC-COL 6.5+1.6, MLOC-ISO 6.9+1.6,
//! MLOC-ISA 1.6+1.6, SeqScan 8.0+0, FastBit 8.0+10.0, SciDB 8.8+0 GB.

use mloc::config::LevelOrder;
use mloc_baselines::{FastBit, QueryEngine, SciDb, SeqScan};
use mloc_bench::report::{fmt_bytes, note, title, Table};
use mloc_bench::scenario::{build_mloc, DatasetSpec, Variant, FASTBIT_PRECISION_BINS};
use mloc_bench::HarnessArgs;
use mloc_pfs::MemBackend;

fn main() {
    let args = HarnessArgs::parse();
    let spec = DatasetSpec::gts(args.large);
    let raw = spec.raw_bytes();
    title(&format!(
        "Table I: storage for {} raw data ({} {:?}, {} bins)",
        fmt_bytes(raw),
        spec.name,
        spec.shape,
        spec.num_bins
    ));
    let field = spec.generate();
    let be = MemBackend::new();

    let mut table = Table::new(&["system", "data", "index", "total", "total/raw", "paper t/r"]);

    let paper_ratio = |t: f64| format!("{t:.2}");
    for (variant, paper) in [
        (Variant::Col, 8.1 / 8.0),
        (Variant::Iso, 8.5 / 8.0),
        (Variant::Isa, 3.2 / 8.0),
    ] {
        let report = build_mloc(&be, &spec, field.values(), variant, LevelOrder::Vms);
        table.row(
            variant.name(),
            vec![
                fmt_bytes(report.data_bytes),
                fmt_bytes(report.index_bytes),
                fmt_bytes(report.total_bytes()),
                format!("{:.2}", report.total_ratio()),
                paper_ratio(paper),
            ],
        );
    }

    let scan = SeqScan::build(&be, "gts", field.values(), spec.shape.clone()).unwrap();
    table.row(
        "Seq. Scan",
        vec![
            fmt_bytes(scan.data_bytes()),
            "0 B".into(),
            fmt_bytes(scan.data_bytes()),
            format!("{:.2}", scan.data_bytes() as f64 / raw as f64),
            paper_ratio(1.0),
        ],
    );

    let fb = FastBit::build(
        &be,
        "gts",
        field.values(),
        spec.shape.clone(),
        FASTBIT_PRECISION_BINS,
    )
    .unwrap();
    table.row(
        "FastBit",
        vec![
            fmt_bytes(fb.data_bytes()),
            fmt_bytes(fb.index_bytes()),
            fmt_bytes(fb.data_bytes() + fb.index_bytes()),
            format!(
                "{:.2}",
                (fb.data_bytes() + fb.index_bytes()) as f64 / raw as f64
            ),
            paper_ratio(18.0 / 8.0),
        ],
    );

    // SciDB overlap sized to reproduce the paper's ~10% replication.
    let overlap = spec.chunk[0] / 40;
    let db = SciDb::build(
        &be,
        "gts",
        field.values(),
        spec.shape.clone(),
        spec.chunk.clone(),
        overlap.max(1),
    )
    .unwrap();
    table.row(
        "SciDB",
        vec![
            fmt_bytes(db.data_bytes()),
            "0 B".into(),
            fmt_bytes(db.data_bytes()),
            format!("{:.2}", db.data_bytes() as f64 / raw as f64),
            paper_ratio(8.8 / 8.0),
        ],
    );

    table.print();
    note("paper t/r = paper Table I total divided by 8 GB raw");
    note("MLOC index here includes the per-chunk directory, whose share");
    note("shrinks at the paper's chunk counts (see EXPERIMENTS.md)");
}
