//! Table II — region-query (value-constrained) response time on the
//! "8 GB" datasets; value selectivity 1 % and 10 %, no SC, 8 ranks.
//!
//! Paper (seconds): rows MLOC-COL/ISO/ISA ≈ 0.3–1.7, Seq. Scan ≈ 19–23,
//! FastBit ≈ 37–38, SciDB ≈ 207–677.

use mloc_bench::compare::{build_systems, region_comparison, Lineup};
use mloc_bench::report::{note, title, Table};
use mloc_bench::scenario::DatasetSpec;
use mloc_bench::HarnessArgs;
use mloc_pfs::MemBackend;

fn main() {
    let args = HarnessArgs::parse();
    let selectivities = [0.01, 0.10];

    let paper: &[(&str, [f64; 4])] = &[
        ("MLOC-COL", [0.53, 1.21, 0.59, 1.62]),
        ("MLOC-ISO", [0.41, 1.10, 0.53, 1.57]),
        ("MLOC-ISA", [0.34, 1.23, 0.56, 1.66]),
        ("Seq. Scan", [19.22, 20.27, 22.71, 22.93]),
        ("FastBit", [36.81, 37.48, 37.27, 37.83]),
        ("SciDB", [206.80, 677.10, 210.00, 597.80]),
    ];

    title("Table II: region query response time (s), VC selectivity 1% / 10%");
    let mut table = Table::new(&["system", "1% GTS", "10% GTS", "1% S3D", "10% S3D"]);
    let mut measured: Vec<(String, Vec<f64>)> = Vec::new();

    for (col_base, spec) in [
        (0usize, DatasetSpec::gts(args.large)),
        (2usize, DatasetSpec::s3d(args.large)),
    ] {
        eprintln!("[table2] building systems for {} ...", spec.name);
        let field = spec.generate();
        let be = MemBackend::new();
        let systems = build_systems(&be, &spec, &field, Lineup::Full);
        eprintln!("[table2] running queries for {} ...", spec.name);
        let rows = region_comparison(
            &systems,
            &field,
            &selectivities,
            args.queries,
            args.ranks,
            args.seed,
        );
        for (name, cells) in rows {
            let entry = match measured.iter_mut().find(|(n, _)| *n == name) {
                Some(e) => e,
                None => {
                    measured.push((name.clone(), vec![f64::NAN; 4]));
                    measured.last_mut().unwrap()
                }
            };
            for (i, c) in cells.iter().enumerate() {
                entry.1[col_base + i] = c.response_s;
            }
        }
    }

    for (name, vals) in &measured {
        table.row_seconds(name, vals);
    }
    table.print();

    println!();
    println!("paper Table II (8 GB, for shape comparison):");
    let mut p = Table::new(&["system", "1% GTS", "10% GTS", "1% S3D", "10% S3D"]);
    for (name, vals) in paper {
        p.row_seconds(name, vals);
    }
    p.print();
    note(&format!(
        "{} queries averaged per cell, {} ranks, scaled datasets",
        args.queries, args.ranks
    ));
    note("expected shape: MLOC ≪ Seq. Scan < FastBit ≪ SciDB");
}
