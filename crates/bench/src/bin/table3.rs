//! Table III — value-query (spatially-constrained) response time on
//! the "8 GB" datasets; region selectivity 0.1 % and 1 %, no VC,
//! 8 ranks.
//!
//! Paper (seconds): MLOC 1.5–5.3, Seq. Scan 1.8–5.9, FastBit 37–40,
//! SciDB 29–469.

use mloc_bench::compare::{build_systems, value_comparison, Lineup};
use mloc_bench::report::{note, title, Table};
use mloc_bench::scenario::DatasetSpec;
use mloc_bench::HarnessArgs;
use mloc_pfs::MemBackend;

fn main() {
    let args = HarnessArgs::parse();
    let selectivities = [0.001, 0.01];

    let paper: &[(&str, [f64; 4])] = &[
        ("MLOC-COL", [3.07, 5.06, 3.51, 5.26]),
        ("MLOC-ISO", [2.15, 4.99, 2.96, 4.51]),
        ("MLOC-ISA", [1.52, 3.31, 1.63, 3.42]),
        ("Seq. Scan", [4.38, 5.92, 1.81, 4.75]),
        ("FastBit", [37.29, 38.24, 37.49, 39.70]),
        ("SciDB", [29.10, 122.50, 143.20, 469.10]),
    ];

    title("Table III: value query response time (s), SC selectivity 0.1% / 1%");
    let mut table = Table::new(&["system", "0.1% GTS", "1% GTS", "0.1% S3D", "1% S3D"]);
    let mut measured: Vec<(String, Vec<f64>)> = Vec::new();

    for (col_base, spec) in [
        (0usize, DatasetSpec::gts(args.large)),
        (2usize, DatasetSpec::s3d(args.large)),
    ] {
        eprintln!("[table3] building systems for {} ...", spec.name);
        let field = spec.generate();
        let be = MemBackend::new();
        let systems = build_systems(&be, &spec, &field, Lineup::Full);
        eprintln!("[table3] running queries for {} ...", spec.name);
        let rows = value_comparison(
            &systems,
            &field,
            &selectivities,
            args.queries,
            args.ranks,
            args.seed,
        );
        for (name, cells) in rows {
            let entry = match measured.iter_mut().find(|(n, _)| *n == name) {
                Some(e) => e,
                None => {
                    measured.push((name.clone(), vec![f64::NAN; 4]));
                    measured.last_mut().unwrap()
                }
            };
            for (i, c) in cells.iter().enumerate() {
                entry.1[col_base + i] = c.response_s;
            }
        }
    }

    for (name, vals) in &measured {
        table.row_seconds(name, vals);
    }
    table.print();

    println!();
    println!("paper Table III (8 GB, for shape comparison):");
    let mut p = Table::new(&["system", "0.1% GTS", "1% GTS", "0.1% S3D", "1% S3D"]);
    for (name, vals) in paper {
        p.row_seconds(name, vals);
    }
    p.print();
    note(&format!(
        "{} queries averaged per cell, {} ranks, scaled datasets",
        args.queries, args.ranks
    ));
    note("expected shape: MLOC ≈ Seq. Scan (both cheap) ≪ FastBit, SciDB;");
    note("MLOC-ISA fastest among MLOC variants (least I/O)");
}
