//! Table IV — region-query response time at the "512 GB" scale:
//! MLOC variants vs sequential scan only (the other systems were
//! already uncompetitive at 8 GB). Selectivity 1 % and 10 %, no SC.
//!
//! Paper (seconds): MLOC 15.8–43.7, Seq. Scan 1,423–2,317.

use mloc_bench::compare::{build_systems, region_comparison, Lineup};
use mloc_bench::report::{note, title, Table};
use mloc_bench::scenario::DatasetSpec;
use mloc_bench::HarnessArgs;
use mloc_pfs::MemBackend;

fn main() {
    let mut args = HarnessArgs::parse();
    args.large = true; // this experiment is defined at the large scale
    let selectivities = [0.01, 0.10];

    let paper: &[(&str, [f64; 4])] = &[
        ("MLOC-COL", [16.51, 41.18, 18.94, 39.25]),
        ("MLOC-ISO", [15.81, 42.06, 19.43, 41.55]),
        ("MLOC-ISA", [16.42, 42.19, 20.23, 43.71]),
        ("Seq. Scan", [1596.52, 2317.39, 1423.45, 2179.81]),
    ];

    title("Table IV: region query response time (s) at the large scale, 1% / 10%");
    let mut table = Table::new(&["system", "1% GTS", "10% GTS", "1% S3D", "10% S3D"]);
    let mut measured: Vec<(String, Vec<f64>)> = Vec::new();

    for (col_base, spec) in [
        (0usize, DatasetSpec::gts(true)),
        (2usize, DatasetSpec::s3d(true)),
    ] {
        eprintln!("[table4] building systems for {} ...", spec.name);
        let field = spec.generate();
        let be = MemBackend::new();
        let systems = build_systems(&be, &spec, &field, Lineup::MlocAndScan);
        eprintln!("[table4] running queries for {} ...", spec.name);
        let rows = region_comparison(
            &systems,
            &field,
            &selectivities,
            args.queries,
            args.ranks,
            args.seed,
        );
        for (name, cells) in rows {
            let entry = match measured.iter_mut().find(|(n, _)| *n == name) {
                Some(e) => e,
                None => {
                    measured.push((name.clone(), vec![f64::NAN; 4]));
                    measured.last_mut().unwrap()
                }
            };
            for (i, c) in cells.iter().enumerate() {
                entry.1[col_base + i] = c.response_s;
            }
        }
    }

    for (name, vals) in &measured {
        table.row_seconds(name, vals);
    }
    table.print();

    println!();
    println!("paper Table IV (512 GB, for shape comparison):");
    let mut p = Table::new(&["system", "1% GTS", "10% GTS", "1% S3D", "10% S3D"]);
    for (name, vals) in paper {
        p.row_seconds(name, vals);
    }
    p.print();
    note(&format!(
        "{} queries per cell, {} ranks",
        args.queries, args.ranks
    ));
    note("expected shape: MLOC beats Seq. Scan by a widening factor at scale;");
    note("the factor grows with dataset size (ours is 128 MiB vs paper 512 GB)");
}
