//! Table V — value-query response time at the "512 GB" scale:
//! MLOC variants vs sequential scan. Region selectivity 0.1 % / 1 %.
//!
//! Paper (seconds): MLOC-ISA fastest at 0.1 % (7.8–8.4) but slowest
//! among MLOC at 1 % (41.0–44.0) because B-spline reconstruction cost
//! overtakes its I/O savings; Seq. Scan 37–249.

use mloc_bench::compare::{build_systems, value_comparison, Lineup};
use mloc_bench::report::{note, title, Table};
use mloc_bench::scenario::DatasetSpec;
use mloc_bench::HarnessArgs;
use mloc_pfs::MemBackend;

fn main() {
    let mut args = HarnessArgs::parse();
    args.large = true;
    let selectivities = [0.001, 0.01];

    let paper: &[(&str, [f64; 4])] = &[
        ("MLOC-COL", [13.25, 33.03, 15.24, 39.34]),
        ("MLOC-ISO", [8.81, 23.77, 9.96, 37.66]),
        ("MLOC-ISA", [7.82, 40.99, 8.39, 44.04]),
        ("Seq. Scan", [37.22, 248.87, 40.74, 230.26]),
    ];

    title("Table V: value query response time (s) at the large scale, 0.1% / 1%");
    let mut table = Table::new(&["system", "0.1% GTS", "1% GTS", "0.1% S3D", "1% S3D"]);
    let mut measured: Vec<(String, Vec<f64>)> = Vec::new();

    for (col_base, spec) in [
        (0usize, DatasetSpec::gts(true)),
        (2usize, DatasetSpec::s3d(true)),
    ] {
        eprintln!("[table5] building systems for {} ...", spec.name);
        let field = spec.generate();
        let be = MemBackend::new();
        let systems = build_systems(&be, &spec, &field, Lineup::MlocAndScan);
        eprintln!("[table5] running queries for {} ...", spec.name);
        let rows = value_comparison(
            &systems,
            &field,
            &selectivities,
            args.queries,
            args.ranks,
            args.seed,
        );
        for (name, cells) in rows {
            let entry = match measured.iter_mut().find(|(n, _)| *n == name) {
                Some(e) => e,
                None => {
                    measured.push((name.clone(), vec![f64::NAN; 4]));
                    measured.last_mut().unwrap()
                }
            };
            for (i, c) in cells.iter().enumerate() {
                entry.1[col_base + i] = c.response_s;
            }
        }
    }

    for (name, vals) in &measured {
        table.row_seconds(name, vals);
    }
    table.print();

    println!();
    println!("paper Table V (512 GB, for shape comparison):");
    let mut p = Table::new(&["system", "0.1% GTS", "1% GTS", "0.1% S3D", "1% S3D"]);
    for (name, vals) in paper {
        p.row_seconds(name, vals);
    }
    p.print();
    note(&format!(
        "{} queries per cell, {} ranks",
        args.queries, args.ranks
    ));
    note("expected shape: ISA wins at 0.1% (least I/O) but loses its lead at");
    note("larger selectivity as B-spline reconstruction cost grows");
}
