//! Table VI — accuracy of analyses on PLoD-truncated data: equal-width
//! histogram error rate and K-means misclassification for 2-, 3- and
//! 4-byte PLoD on three S3D variables (vu, vv, vw).
//!
//! Paper: 2-byte ≈ 1.8–8.2 % histogram error / 4.3 % K-means;
//! 3-byte ≈ 0.007–0.03 % / 0.017 %; 4-byte ≈ ~1e-4 % / 6.6e-5 %.

use mloc::config::PlodLevel;
use mloc::plod;
use mloc_analytics::{histogram_error_rate, kmeans, misclassification_rate};
use mloc_bench::report::{note, title, Table};
use mloc_bench::HarnessArgs;
use mloc_datagen::s3d_variables;

/// Reconstruct a full variable at a PLoD byte budget (2, 3 or 4 bytes
/// = levels 1, 2, 3).
fn plod_view(values: &[f64], bytes: usize) -> Vec<f64> {
    let level = PlodLevel::new(bytes as u8 - 1).unwrap();
    let parts = plod::split(values);
    let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
    plod::assemble(&refs[..level.num_parts()], level)
}

fn main() {
    let args = HarnessArgs::parse();
    // Paper uses 20 M points per variable; scaled to 128³ ≈ 2.1 M
    // (or 192³ ≈ 7.1 M with --scale large).
    let n = if args.large { 192 } else { 128 };
    eprintln!("[table6] generating 3 variables at {n}^3 points ...");
    let [vu, vv, vw] = s3d_variables(n, n, n, args.seed);

    let hist_bins = 100;
    let kmeans_k = 4;
    let kmeans_iters = 100; // paper: "run for 100 iterations"

    title("Table VI: error rates of analyses on PLoD data");
    let mut table = Table::new(&[
        "bytes",
        "hist vu %",
        "hist vv %",
        "hist vw %",
        "kmeans vv+vw %",
    ]);

    // Reference clustering on the original (vv, vw) pairs.
    let mut pts = Vec::with_capacity(vv.len() * 2);
    for (a, b) in vv.values().iter().zip(vw.values()) {
        pts.push(*a);
        pts.push(*b);
    }
    let reference = kmeans(&pts, 2, kmeans_k, kmeans_iters, args.seed);

    for bytes in [2usize, 3, 4] {
        eprintln!("[table6] evaluating {bytes}-byte PLoD ...");
        let hu = histogram_error_rate(vu.values(), &plod_view(vu.values(), bytes), hist_bins);
        let hv = histogram_error_rate(vv.values(), &plod_view(vv.values(), bytes), hist_bins);
        let hw = histogram_error_rate(vw.values(), &plod_view(vw.values(), bytes), hist_bins);

        let pv = plod_view(vv.values(), bytes);
        let pw = plod_view(vw.values(), bytes);
        let mut ppts = Vec::with_capacity(pv.len() * 2);
        for (a, b) in pv.iter().zip(&pw) {
            ppts.push(*a);
            ppts.push(*b);
        }
        let clustered = kmeans(&ppts, 2, kmeans_k, kmeans_iters, args.seed);
        let km = misclassification_rate(&reference.labels, &clustered.labels, kmeans_k);

        table.row(
            &format!("{bytes}"),
            vec![
                format!("{:.4}", hu * 100.0),
                format!("{:.4}", hv * 100.0),
                format!("{:.4}", hw * 100.0),
                format!("{:.4}", km * 100.0),
            ],
        );
    }
    table.print();

    println!();
    println!("paper Table VI (percent):");
    let mut p = Table::new(&["bytes", "hist vu %", "hist vv %", "hist vw %", "kmeans %"]);
    p.row(
        "2",
        vec![
            "8.241".into(),
            "1.83".into(),
            "1.834".into(),
            "4.290".into(),
        ],
    );
    p.row(
        "3",
        vec![
            "0.029".into(),
            "0.0065".into(),
            "0.0083".into(),
            "0.017".into(),
        ],
    );
    p.row(
        "4",
        vec![
            "0.00016".into(),
            "0.000045".into(),
            "0.000035".into(),
            "0.000066".into(),
        ],
    );
    p.print();
    note("expected shape: errors drop ~2-3 orders of magnitude per extra byte;");
    note("2 bytes noticeably wrong, 3 bytes already small, 4 bytes negligible");
}
