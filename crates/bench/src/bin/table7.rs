//! Table VII — effect of the level-order permutation (V-M-S vs V-S-M)
//! on value-retrieval at 3-byte PLoD vs full precision (1 %
//! selectivity, large S3D, MLOC-COL).
//!
//! Paper: V-M-S wins for the 3-byte PLoD access (19.45 vs 23.70 s),
//! V-S-M wins for full precision (35.47 vs 39.34 s); neither order is
//! far behind on its weak pattern.

use mloc::config::{LevelOrder, PlodLevel};
use mloc::exec::ParallelExecutor;
use mloc_bench::report::{note, title, Table};
use mloc_bench::scenario::{build_mloc, open_mloc, DatasetSpec, Variant};
use mloc_bench::workload::Workload;
use mloc_bench::HarnessArgs;
use mloc_pfs::{CostModel, MemBackend};

fn main() {
    let mut args = HarnessArgs::parse();
    args.large = true;
    let spec = DatasetSpec::s3d(true);
    eprintln!("[table7] generating {} ...", spec.name);
    let field = spec.generate();
    // The paper uses 1% on 512 GB (~330 of 32,768 chunks). At our
    // reduced chunk count, 10% touches a comparable number of chunks
    // per run, which is what the level orders differentiate on.
    let selectivity = 0.10;

    title("Table VII: level-order comparison, value queries (s), 10% selectivity");
    let mut table = Table::new(&["order", "3-byte PLoD", "full precision"]);

    let exec = ParallelExecutor::new(args.ranks, CostModel::default());
    for (order, label) in [
        (LevelOrder::Vms, "V-M-S order"),
        (LevelOrder::Vsm, "V-S-M order"),
    ] {
        eprintln!("[table7] building MLOC-COL with {label} ...");
        let be = MemBackend::new();
        build_mloc(&be, &spec, field.values(), Variant::Col, order);
        let store = open_mloc(&be, &spec, Variant::Col);

        let mut w = Workload::new(field.values(), spec.shape.clone(), args.queries, args.seed);
        let plod = w.mloc_value(&store, &exec, selectivity, PlodLevel::new(2).unwrap());
        let mut w = Workload::new(field.values(), spec.shape.clone(), args.queries, args.seed);
        let full = w.mloc_value(&store, &exec, selectivity, PlodLevel::FULL);
        table.row_seconds(label, &[plod.response_s, full.response_s]);
    }
    table.print();

    println!();
    println!("paper Table VII (512 GB S3D):");
    let mut p = Table::new(&["order", "3-byte PLoD", "full precision"]);
    p.row_seconds("V-M-S order", &[19.45, 39.34]);
    p.row_seconds("V-S-M order", &[23.70, 35.47]);
    p.print();
    note(&format!(
        "{} queries per cell, {} ranks",
        args.queries, args.ranks
    ));
    note("expected shape: V-M-S faster for the byte-prefix access, V-S-M");
    note("faster for full precision, with modest differences both ways");
}
