//! Building the full system line-up for one dataset and running
//! query-type comparisons across all of them.

use crate::scenario::{build_mloc, open_mloc, DatasetSpec, Variant, FASTBIT_PRECISION_BINS};
use crate::workload::{BaselineAvg, Workload};
use mloc::config::{LevelOrder, PlodLevel};
use mloc::exec::ParallelExecutor;
use mloc::metrics::QueryMetrics;
use mloc::store::MlocStore;
use mloc_baselines::{FastBit, SciDb, SeqScan};
use mloc_datagen::Field;
use mloc_pfs::{CostModel, MemBackend};

/// Which comparators to build next to the MLOC variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lineup {
    /// MLOC variants + sequential scan only (the 512 GB experiments).
    MlocAndScan,
    /// Everything, including FastBit and SciDB (the 8 GB experiments).
    Full,
}

/// All systems built over one generated dataset.
pub struct Systems<'a> {
    /// The dataset spec used.
    pub spec: DatasetSpec,
    /// The three MLOC variants, opened for querying.
    pub mloc: Vec<(Variant, MlocStore<'a>)>,
    /// Sequential-scan baseline.
    pub seq: SeqScan<'a>,
    /// FastBit comparator (Full line-up only).
    pub fastbit: Option<FastBit<'a>>,
    /// SciDB comparator (Full line-up only).
    pub scidb: Option<SciDb<'a>>,
}

/// Generate the dataset and build every system on `backend`.
pub fn build_systems<'a>(
    backend: &'a MemBackend,
    spec: &DatasetSpec,
    field: &Field,
    lineup: Lineup,
) -> Systems<'a> {
    let mut mloc = Vec::new();
    for variant in Variant::ALL {
        build_mloc(backend, spec, field.values(), variant, LevelOrder::Vms);
        mloc.push((variant, open_mloc(backend, spec, variant)));
    }
    let seq = SeqScan::build(backend, spec.name, field.values(), spec.shape.clone())
        .expect("seqscan build");
    let (fastbit, scidb) = if lineup == Lineup::Full {
        let fb = FastBit::build(
            backend,
            spec.name,
            field.values(),
            spec.shape.clone(),
            FASTBIT_PRECISION_BINS,
        )
        .expect("fastbit build");
        let db = SciDb::build(
            backend,
            spec.name,
            field.values(),
            spec.shape.clone(),
            spec.chunk.clone(),
            (spec.chunk[0] / 40).max(1),
        )
        .expect("scidb build");
        (Some(fb), Some(db))
    } else {
        (None, None)
    };
    Systems {
        spec: spec.clone(),
        mloc,
        seq,
        fastbit,
        scidb,
    }
}

/// One measured cell: a response time plus its components.
#[derive(Debug, Clone, Default)]
pub struct Cell {
    /// Mean response seconds.
    pub response_s: f64,
    /// Mean simulated I/O seconds.
    pub io_s: f64,
    /// Mean CPU seconds (decompress + reconstruct, or scan).
    pub cpu_s: f64,
}

impl From<&QueryMetrics> for Cell {
    fn from(m: &QueryMetrics) -> Cell {
        Cell {
            response_s: m.response_s,
            io_s: m.io_s,
            cpu_s: m.decompress_s + m.reconstruct_s,
        }
    }
}

impl From<&BaselineAvg> for Cell {
    fn from(b: &BaselineAvg) -> Cell {
        Cell {
            response_s: b.response_s,
            io_s: b.io_s,
            cpu_s: b.cpu_s + b.overhead_s,
        }
    }
}

/// Run region queries (VC, positions out) at the given selectivities
/// across every system; returns rows of `(system name, cells)`.
pub fn region_comparison(
    systems: &Systems<'_>,
    field: &Field,
    selectivities: &[f64],
    queries: usize,
    ranks: usize,
    seed: u64,
) -> Vec<(String, Vec<Cell>)> {
    let model = CostModel::default();
    let exec = ParallelExecutor::new(ranks, model);
    let mut rows = Vec::new();

    for (variant, store) in &systems.mloc {
        let mut cells = Vec::new();
        for &sel in selectivities {
            let mut w = Workload::new(field.values(), systems.spec.shape.clone(), queries, seed);
            let m = w.mloc_region(store, &exec, sel);
            cells.push(Cell::from(&m));
        }
        rows.push((variant.name().to_string(), cells));
    }

    let mut baseline = |name: &str, engine: &dyn mloc_baselines::QueryEngine| {
        let mut cells = Vec::new();
        for &sel in selectivities {
            let mut w = Workload::new(field.values(), systems.spec.shape.clone(), queries, seed);
            let b = w.baseline_region(engine, &model, sel);
            cells.push(Cell::from(&b));
        }
        rows.push((name.to_string(), cells));
    };
    baseline("Seq. Scan", &systems.seq);
    if let Some(fb) = &systems.fastbit {
        baseline("FastBit", fb);
    }
    if let Some(db) = &systems.scidb {
        baseline("SciDB", db);
    }
    rows
}

/// Run value queries (SC, values out) at the given selectivities
/// across every system.
pub fn value_comparison(
    systems: &Systems<'_>,
    field: &Field,
    selectivities: &[f64],
    queries: usize,
    ranks: usize,
    seed: u64,
) -> Vec<(String, Vec<Cell>)> {
    let model = CostModel::default();
    let exec = ParallelExecutor::new(ranks, model);
    let mut rows = Vec::new();

    for (variant, store) in &systems.mloc {
        let mut cells = Vec::new();
        for &sel in selectivities {
            let mut w = Workload::new(field.values(), systems.spec.shape.clone(), queries, seed);
            let m = w.mloc_value(store, &exec, sel, PlodLevel::FULL);
            cells.push(Cell::from(&m));
        }
        rows.push((variant.name().to_string(), cells));
    }

    let mut baseline = |name: &str, engine: &dyn mloc_baselines::QueryEngine| {
        let mut cells = Vec::new();
        for &sel in selectivities {
            let mut w = Workload::new(field.values(), systems.spec.shape.clone(), queries, seed);
            let b = w.baseline_value(engine, &model, sel);
            cells.push(Cell::from(&b));
        }
        rows.push((name.to_string(), cells));
    };
    baseline("Seq. Scan", &systems.seq);
    if let Some(fb) = &systems.fastbit {
        baseline("FastBit", fb);
    }
    if let Some(db) = &systems.scidb {
        baseline("SciDB", db);
    }
    rows
}
