//! Experiment harness regenerating every table and figure of the MLOC
//! paper (ICPP 2012).
//!
//! Each `src/bin/tableN.rs` / `src/bin/figN.rs` binary reproduces one
//! experiment and prints the measured rows next to the paper's
//! published values. The datasets are scaled down (the `--scale`
//! flag switches between the default reduced sizes and larger ones);
//! all I/O timing comes from the simulated 2012-era Lustre cost model
//! in `mloc-pfs`, so *shape* comparisons (who wins, by what factor)
//! are meaningful while absolute numbers are not expected to match.
//!
//! Shared pieces:
//! * [`scenario`] — dataset specs (GTS-like 2-D, S3D-like 3-D), MLOC
//!   variant configurations (MLOC-COL / MLOC-ISO / MLOC-ISA), builders.
//! * [`workload`] — random query workloads with fixed seeds, averaged
//!   metrics, identical query sequences across systems.
//! * [`report`] — fixed-width table printing with paper reference
//!   values.

pub mod compare;
pub mod report;
pub mod scenario;
pub mod workload;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Use the larger dataset scale.
    pub large: bool,
    /// Queries to average per cell (paper: 100).
    pub queries: usize,
    /// MPI-like ranks for MLOC execution (paper: 8 for the 8 GB runs).
    pub ranks: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            large: false,
            queries: 10,
            ranks: 8,
            seed: 42,
        }
    }
}

impl HarnessArgs {
    /// Parse `--scale small|large`, `--queries N`, `--ranks N`,
    /// `--seed N` from the process arguments.
    pub fn parse() -> Self {
        let mut args = HarnessArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs small|large");
                    args.large = match v.as_str() {
                        "small" => false,
                        "large" => true,
                        _ => panic!("unknown scale {v}"),
                    };
                }
                "--queries" => {
                    args.queries = it
                        .next()
                        .expect("--queries needs N")
                        .parse()
                        .expect("bad N");
                }
                "--ranks" => {
                    args.ranks = it.next().expect("--ranks needs N").parse().expect("bad N");
                }
                "--seed" => {
                    args.seed = it.next().expect("--seed needs N").parse().expect("bad N");
                }
                _ => panic!("unknown argument {a}"),
            }
        }
        args
    }
}
