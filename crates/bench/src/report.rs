//! Fixed-width table printing with paper reference values.

/// Print a table title banner.
pub fn title(text: &str) {
    println!();
    println!("=== {text} ===");
}

/// A printable table with a label column and numeric columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    label_width: usize,
    col_width: usize,
}

impl Table {
    /// New table with column headers (first column is the row label).
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            label_width: headers.first().map_or(12, |h| h.len()).max(12),
            col_width: 12,
        }
    }

    /// Add a row of preformatted cells.
    pub fn row(&mut self, label: &str, cells: Vec<String>) {
        self.label_width = self.label_width.max(label.len());
        for c in &cells {
            self.col_width = self.col_width.max(c.len() + 1);
        }
        let mut r = vec![label.to_string()];
        r.extend(cells);
        self.rows.push(r);
    }

    /// Add a row of seconds values (formatted with 3 decimals).
    pub fn row_seconds(&mut self, label: &str, values: &[f64]) {
        self.row(label, values.iter().map(|v| format!("{v:.3}")).collect());
    }

    /// Print the table.
    pub fn print(&self) {
        let lw = self.label_width;
        let cw = self.col_width;
        print!("{:<lw$}", self.headers[0]);
        for h in &self.headers[1..] {
            print!(" {h:>cw$}");
        }
        println!();
        let total = lw + (cw + 1) * (self.headers.len() - 1);
        println!("{}", "-".repeat(total));
        for r in &self.rows {
            print!("{:<lw$}", r[0]);
            for c in &r[1..] {
                print!(" {c:>cw$}");
            }
            println!();
        }
    }
}

/// Format a byte count as human-readable MiB/GiB.
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= (1u64 << 30) as f64 {
        format!("{:.2} GiB", b / (1u64 << 30) as f64)
    } else if b >= (1u64 << 20) as f64 {
        format!("{:.1} MiB", b / (1u64 << 20) as f64)
    } else if b >= 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Print a note line.
pub fn note(text: &str) {
    println!("  note: {text}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00 GiB");
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["system", "a", "b"]);
        t.row_seconds("MLOC-COL", &[0.5, 1.25]);
        t.row("paper", vec!["0.53".into(), "1.21".into()]);
        t.print(); // visually inspected; must not panic
        assert_eq!(t.rows.len(), 2);
    }
}
