//! Dataset specifications and system builders for the experiments.

use mloc::build::{build_variable, BuildReport};
use mloc::config::{LevelOrder, MlocConfig};
use mloc::store::MlocStore;
use mloc_compress::CodecKind;
use mloc_datagen::{gts_like_2d, s3d_like_3d, Field};
use mloc_pfs::StorageBackend;

/// ISABELA error bound used for MLOC-ISA (0.1 %, the usual ISABELA
/// setting in the paper's related work).
pub const ISA_ERROR_BOUND: f64 = 0.001;

/// FastBit's precision binning yields far finer bins than MLOC's 100
/// equal-frequency bins; the many sparse bitmaps are what make its
/// index heavyweight (paper Table I).
pub const FASTBIT_PRECISION_BINS: usize = 1000;

/// A dataset scenario: name, geometry, binning.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name ("GTS" / "S3D").
    pub name: &'static str,
    /// Domain shape.
    pub shape: Vec<usize>,
    /// Chunk shape (paper: 2048² for GTS, 128³ for S3D).
    pub chunk: Vec<usize>,
    /// Equal-frequency bins (paper: 100).
    pub num_bins: usize,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// GTS-like 2-D dataset. Paper: 8 GB = 32,768², 512 GB = 262,144²,
    /// chunks 2,048². Scaled: small = 2,048² (32 MiB, 64 chunks),
    /// large = 4,096² (128 MiB, 64 chunks).
    pub fn gts(large: bool) -> DatasetSpec {
        if large {
            DatasetSpec {
                name: "GTS",
                shape: vec![4096, 4096],
                chunk: vec![512, 512],
                num_bins: 100,
                seed: 11,
            }
        } else {
            DatasetSpec {
                name: "GTS",
                shape: vec![2048, 2048],
                chunk: vec![256, 256],
                num_bins: 100,
                seed: 11,
            }
        }
    }

    /// S3D-like 3-D dataset. Paper: 8 GB = 1,024³, 512 GB = 4,096³,
    /// chunks 128³. Scaled: small = 160³ (31 MiB, 64 chunks), large =
    /// 256³ (128 MiB, 64 chunks).
    pub fn s3d(large: bool) -> DatasetSpec {
        if large {
            DatasetSpec {
                name: "S3D",
                shape: vec![256, 256, 256],
                chunk: vec![64, 64, 64],
                num_bins: 100,
                seed: 23,
            }
        } else {
            DatasetSpec {
                name: "S3D",
                shape: vec![160, 160, 160],
                chunk: vec![40, 40, 40],
                num_bins: 100,
                seed: 23,
            }
        }
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.shape.iter().product()
    }

    /// Raw bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.num_points() as u64 * 8
    }

    /// Generate the field. Large scales follow the paper's protocol:
    /// a snapshot is generated and *replicated* to the target size
    /// ("we replicate the dataset to 512 GB", §IV-A.1).
    pub fn generate(&self) -> Field {
        let rep = 2usize; // replication factor per dimension at large scale
        let large = self.shape.iter().all(|&e| e % rep == 0) && self.num_points() >= 16 << 20;
        let gen_shape: Vec<usize> = if large {
            self.shape.iter().map(|&e| e / rep).collect()
        } else {
            self.shape.clone()
        };
        let base = match gen_shape.len() {
            2 => gts_like_2d(gen_shape[0], gen_shape[1], self.seed),
            3 => s3d_like_3d(gen_shape[0], gen_shape[1], gen_shape[2], self.seed),
            d => panic!("unsupported dimensionality {d}"),
        };
        if large {
            base.replicate(&vec![rep; gen_shape.len()])
        } else {
            base
        }
    }
}

/// The three MLOC configurations the paper evaluates (§IV-A.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// V-M-S order, PLoD byte columns compressed with the
    /// DEFLATE-style codec ("Zlib").
    Col,
    /// ISOBAR lossless FP compression, whole-value units.
    Iso,
    /// ISABELA lossy FP compression, whole-value units.
    Isa,
}

impl Variant {
    /// All three variants.
    pub const ALL: [Variant; 3] = [Variant::Col, Variant::Iso, Variant::Isa];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Col => "MLOC-COL",
            Variant::Iso => "MLOC-ISO",
            Variant::Isa => "MLOC-ISA",
        }
    }

    /// Variable name used on storage.
    pub fn var(self) -> &'static str {
        match self {
            Variant::Col => "col",
            Variant::Iso => "iso",
            Variant::Isa => "isa",
        }
    }

    /// Build configuration for a dataset spec.
    pub fn config(self, spec: &DatasetSpec, order: LevelOrder) -> MlocConfig {
        let builder = MlocConfig::builder(spec.shape.clone())
            .chunk_shape(spec.chunk.clone())
            .num_bins(spec.num_bins)
            .level_order(order);
        match self {
            Variant::Col => builder.codec(CodecKind::Deflate).build(),
            Variant::Iso => builder.codec(CodecKind::Isobar).build(),
            Variant::Isa => builder
                .codec(CodecKind::Isabela {
                    error_bound: ISA_ERROR_BOUND,
                })
                .build(),
        }
    }
}

/// Build one MLOC variant of a dataset and return its report.
pub fn build_mloc(
    backend: &dyn StorageBackend,
    spec: &DatasetSpec,
    values: &[f64],
    variant: Variant,
    order: LevelOrder,
) -> BuildReport {
    let config = variant.config(spec, order);
    build_variable(backend, spec.name, variant.var(), values, &config).expect("MLOC build failed")
}

/// Open a previously built MLOC variant.
pub fn open_mloc<'a>(
    backend: &'a dyn StorageBackend,
    spec: &DatasetSpec,
    variant: Variant,
) -> MlocStore<'a> {
    MlocStore::open(backend, spec.name, variant.var()).expect("MLOC open failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mloc_pfs::MemBackend;

    #[test]
    fn specs_are_consistent() {
        for spec in [
            DatasetSpec::gts(false),
            DatasetSpec::gts(true),
            DatasetSpec::s3d(false),
            DatasetSpec::s3d(true),
        ] {
            assert_eq!(spec.shape.len(), spec.chunk.len());
            for (s, c) in spec.shape.iter().zip(&spec.chunk) {
                assert_eq!(s % c, 0, "{}: chunks must tile the domain", spec.name);
            }
        }
    }

    #[test]
    fn variant_configs_differ_only_where_expected() {
        let spec = DatasetSpec::gts(false);
        let col = Variant::Col.config(&spec, LevelOrder::Vms);
        let iso = Variant::Iso.config(&spec, LevelOrder::Vms);
        let isa = Variant::Isa.config(&spec, LevelOrder::Vms);
        assert!(col.plod && !iso.plod && !isa.plod);
        assert_eq!(col.num_bins, iso.num_bins);
        assert!(isa.codec.is_lossy());
    }

    #[test]
    fn tiny_end_to_end_build_and_open() {
        let spec = DatasetSpec {
            name: "tiny",
            shape: vec![64, 64],
            chunk: vec![16, 16],
            num_bins: 8,
            seed: 1,
        };
        let field = spec.generate();
        let be = MemBackend::new();
        for variant in Variant::ALL {
            let report = build_mloc(&be, &spec, field.values(), variant, LevelOrder::Vms);
            assert_eq!(report.raw_bytes, spec.raw_bytes());
            let store = open_mloc(&be, &spec, variant);
            assert_eq!(store.total_points(), spec.num_points() as u64);
        }
    }
}
