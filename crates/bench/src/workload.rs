//! Query workloads: identical random query sequences across systems,
//! averaged metrics (paper protocol: "the average results of 100
//! random queries", §IV-A).

use mloc::array::Region;
use mloc::config::PlodLevel;
use mloc::exec::ParallelExecutor;
use mloc::metrics::QueryMetrics;
use mloc::query::Query;
use mloc::store::MlocStore;
use mloc_baselines::QueryEngine;
use mloc_datagen::QueryGen;
use mloc_pfs::CostModel;

/// Averaged baseline-engine response decomposition.
#[derive(Debug, Clone, Default)]
pub struct BaselineAvg {
    /// Mean response time (simulated I/O + measured CPU + modeled
    /// engine overhead).
    pub response_s: f64,
    /// Mean simulated I/O seconds.
    pub io_s: f64,
    /// Mean measured CPU seconds.
    pub cpu_s: f64,
    /// Mean modeled overhead seconds.
    pub overhead_s: f64,
    /// Mean bytes read.
    pub bytes_read: u64,
    /// Mean result cardinality (sanity cross-check between systems).
    pub mean_hits: f64,
}

/// A reproducible workload over one dataset.
pub struct Workload {
    gen: QueryGen,
    shape: Vec<usize>,
    queries: usize,
}

impl Workload {
    /// Create a workload from a strided sample of the dataset values.
    pub fn new(values: &[f64], shape: Vec<usize>, queries: usize, seed: u64) -> Self {
        let stride = (values.len() / (1 << 16)).max(1);
        let sample: Vec<f64> = values.iter().step_by(stride).copied().collect();
        Workload {
            gen: QueryGen::new(sample, shape.clone(), seed),
            shape,
            queries,
        }
    }

    /// The value constraints of this workload at a selectivity.
    fn value_constraints(&mut self, selectivity: f64) -> Vec<(f64, f64)> {
        (0..self.queries)
            .map(|_| self.gen.value_constraint(selectivity))
            .collect()
    }

    /// The regions of this workload at a selectivity.
    fn regions(&mut self, selectivity: f64) -> Vec<Region> {
        (0..self.queries)
            .map(|_| Region::new(self.gen.region(selectivity)))
            .collect()
    }

    /// Domain shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Run region queries (VC, positions out) on an MLOC store.
    pub fn mloc_region(
        &mut self,
        store: &MlocStore<'_>,
        exec: &ParallelExecutor,
        selectivity: f64,
    ) -> QueryMetrics {
        let mut acc = QueryMetrics::default();
        for (lo, hi) in self.value_constraints(selectivity) {
            let (_, m) = exec
                .execute(store, &Query::region(lo, hi))
                .expect("region query failed");
            acc.accumulate(&m);
        }
        acc.scale(self.queries);
        acc
    }

    /// Run value queries (SC, values out) on an MLOC store, at an
    /// optional PLoD level.
    pub fn mloc_value(
        &mut self,
        store: &MlocStore<'_>,
        exec: &ParallelExecutor,
        selectivity: f64,
        plod: PlodLevel,
    ) -> QueryMetrics {
        let mut acc = QueryMetrics::default();
        for region in self.regions(selectivity) {
            let (_, m) = exec
                .execute(store, &Query::values_in(region).with_plod(plod))
                .expect("value query failed");
            acc.accumulate(&m);
        }
        acc.scale(self.queries);
        acc
    }

    /// Run region queries on a baseline engine.
    pub fn baseline_region(
        &mut self,
        engine: &dyn QueryEngine,
        model: &CostModel,
        selectivity: f64,
    ) -> BaselineAvg {
        let constraints = self.value_constraints(selectivity);
        let mut avg = BaselineAvg::default();
        for (lo, hi) in &constraints {
            let ans = engine
                .region_query(*lo, *hi)
                .expect("baseline region query");
            avg.io_s += ans.io_s(model);
            avg.cpu_s += ans.cpu_s;
            avg.overhead_s += ans.overhead_s;
            avg.bytes_read += ans.bytes_read();
            avg.mean_hits += ans.positions.len() as f64;
        }
        finish_avg(avg, self.queries)
    }

    /// Run value queries on a baseline engine.
    pub fn baseline_value(
        &mut self,
        engine: &dyn QueryEngine,
        model: &CostModel,
        selectivity: f64,
    ) -> BaselineAvg {
        let regions = self.regions(selectivity);
        let mut avg = BaselineAvg::default();
        for region in &regions {
            let ans = engine.value_query(region).expect("baseline value query");
            avg.io_s += ans.io_s(model);
            avg.cpu_s += ans.cpu_s;
            avg.overhead_s += ans.overhead_s;
            avg.bytes_read += ans.bytes_read();
            avg.mean_hits += ans.positions.len() as f64;
        }
        finish_avg(avg, self.queries)
    }
}

fn finish_avg(mut avg: BaselineAvg, queries: usize) -> BaselineAvg {
    let q = queries.max(1) as f64;
    avg.io_s /= q;
    avg.cpu_s /= q;
    avg.overhead_s /= q;
    avg.bytes_read = (avg.bytes_read as f64 / q) as u64;
    avg.mean_hits /= q;
    avg.response_s = avg.io_s + avg.cpu_s + avg.overhead_s;
    avg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build_mloc, open_mloc, DatasetSpec, Variant};
    use mloc::config::LevelOrder;
    use mloc_baselines::SeqScan;
    use mloc_pfs::MemBackend;

    #[test]
    fn same_seed_same_queries_across_systems() {
        let spec = DatasetSpec {
            name: "w",
            shape: vec![64, 64],
            chunk: vec![16, 16],
            num_bins: 8,
            seed: 5,
        };
        let field = spec.generate();
        let be = MemBackend::new();
        build_mloc(&be, &spec, field.values(), Variant::Col, LevelOrder::Vms);
        let store = open_mloc(&be, &spec, Variant::Col);
        let scan = SeqScan::build(&be, "w", field.values(), spec.shape.clone()).unwrap();

        let exec = ParallelExecutor::serial();
        let model = CostModel::default();
        let mut w1 = Workload::new(field.values(), spec.shape.clone(), 5, 7);
        let mloc_m = w1.mloc_region(&store, &exec, 0.05);

        let mut w2 = Workload::new(field.values(), spec.shape.clone(), 5, 7);
        let base = w2.baseline_region(&scan, &model, 0.05);

        // Same query sequence ⇒ both systems saw identical hit counts,
        // and MLOC read far fewer bytes.
        assert!(base.mean_hits > 0.0);
        assert!(mloc_m.bytes_read < base.bytes_read);
    }

    #[test]
    fn mloc_and_seqscan_agree_on_answers() {
        let spec = DatasetSpec {
            name: "w2",
            shape: vec![32, 32],
            chunk: vec![8, 8],
            num_bins: 4,
            seed: 9,
        };
        let field = spec.generate();
        let be = MemBackend::new();
        build_mloc(&be, &spec, field.values(), Variant::Iso, LevelOrder::Vms);
        let store = open_mloc(&be, &spec, Variant::Iso);
        let scan = SeqScan::build(&be, "w2", field.values(), spec.shape.clone()).unwrap();

        let mut gen = QueryGen::new(field.values().to_vec(), spec.shape.clone(), 3);
        for _ in 0..5 {
            let (lo, hi) = gen.value_constraint(0.1);
            let a = store.query_serial(&Query::region(lo, hi)).unwrap();
            let b = scan.region_query(lo, hi).unwrap();
            assert_eq!(a.positions(), &b.positions[..]);

            let region = Region::new(gen.region(0.05));
            let av = store
                .query_serial(&Query::values_in(region.clone()))
                .unwrap();
            let bv = scan.value_query(&region).unwrap();
            assert_eq!(av.positions(), &bv.positions[..]);
            assert_eq!(av.values().unwrap(), &bv.values.unwrap()[..]);
        }
    }
}
