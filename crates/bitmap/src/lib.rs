//! Word-Aligned Hybrid (WAH) compressed bitmaps.
//!
//! This is the bitmap substrate used twice in the MLOC reproduction:
//!
//! * MLOC itself represents the per-bin, per-chunk positional indices as
//!   compressed bitmaps ("light-weight and high-performance bitmap
//!   indexing", paper §III-D.4), and synchronizes region-query results
//!   between ranks as bitmaps.
//! * The FastBit comparator (`mloc-baselines`) builds its binned bitmap
//!   index from these bitmaps.
//!
//! The encoding is classic WAH over 32-bit words: a *literal* word
//! (MSB 0) carries 31 data bits; a *fill* word (MSB 1) carries a fill
//! bit and a 30-bit count of 31-bit groups.

//! # Example
//!
//! ```
//! use mloc_bitmap::{and, WahBitmap};
//!
//! let a = WahBitmap::from_sorted_positions(1_000_000, &[3, 500_000]);
//! let b = WahBitmap::ones(1_000_000);
//! assert_eq!(and(&a, &b).to_positions(), vec![3, 500_000]);
//! // A million-bit sparse bitmap stays tiny.
//! assert!(a.size_in_bytes() < 64);
//! ```

pub mod ops;
pub mod wah;

pub use ops::{and, andnot, or, or_many};
pub use wah::{RankSelectDir, WahBitmap, WahBuilder, WahRef, RANK_SAMPLE_WORDS};
