//! Logical operations on WAH bitmaps, performed directly on the
//! compressed run representation (no full decompression).

use crate::wah::{Run, WahBitmap, WahBuilder, GROUP_BITS};

/// A span of identical content: either a repeated fill group or a
/// single literal group.
#[derive(Debug, Clone, Copy)]
enum Span {
    Fill { bit: bool, groups: u64 },
    Literal(u32),
}

/// Streams a bitmap's runs as group-aligned spans.
struct SpanCursor<I: Iterator<Item = Run>> {
    runs: I,
    pending: Option<Span>,
}

impl<I: Iterator<Item = Run>> SpanCursor<I> {
    fn new(runs: I) -> Self {
        SpanCursor {
            runs,
            pending: None,
        }
    }

    fn peek(&mut self) -> Option<Span> {
        if self.pending.is_none() {
            self.pending = self.runs.next().map(|r| match r {
                Run::Fill { bit, groups } => Span::Fill {
                    bit,
                    groups: groups as u64,
                },
                Run::Literal(w) => Span::Literal(w),
            });
        }
        self.pending
    }

    /// Consume `groups` groups from the current span (must not exceed it).
    fn consume(&mut self, groups: u64) {
        match self.pending.take() {
            Some(Span::Fill { bit, groups: g }) => {
                debug_assert!(groups <= g);
                if g > groups {
                    self.pending = Some(Span::Fill {
                        bit,
                        groups: g - groups,
                    });
                }
            }
            Some(Span::Literal(_)) => debug_assert_eq!(groups, 1),
            None => panic!("consume past end of bitmap"),
        }
    }
}

const LITERAL_MASK: u32 = 0x7FFF_FFFF;

fn fill_word(bit: bool) -> u32 {
    if bit {
        LITERAL_MASK
    } else {
        0
    }
}

/// Apply a 31-bit-group boolean function to two equal-length bitmaps.
fn binary_op(a: &WahBitmap, b: &WahBitmap, f: impl Fn(u32, u32) -> u32) -> WahBitmap {
    assert_eq!(a.len(), b.len(), "bitmap length mismatch");
    let mut ca = SpanCursor::new(a.runs());
    let mut cb = SpanCursor::new(b.runs());
    let mut out = WahBuilder::new();

    loop {
        let (sa, sb) = match (ca.peek(), cb.peek()) {
            (Some(x), Some(y)) => (x, y),
            (None, None) => break,
            // Trailing-group bookkeeping differences cannot happen for
            // equal-length bitmaps produced by WahBuilder.
            _ => panic!("bitmap group streams diverge"),
        };
        match (sa, sb) {
            (
                Span::Fill {
                    bit: b1,
                    groups: g1,
                },
                Span::Fill {
                    bit: b2,
                    groups: g2,
                },
            ) => {
                let take = g1.min(g2);
                let w = f(fill_word(b1), fill_word(b2)) & LITERAL_MASK;
                if w == 0 {
                    out.append_run(false, take * GROUP_BITS);
                } else if w == LITERAL_MASK {
                    out.append_run(true, take * GROUP_BITS);
                } else {
                    for _ in 0..take {
                        out.push_group(w);
                    }
                }
                ca.consume(take);
                cb.consume(take);
            }
            (Span::Literal(w1), Span::Fill { bit: b2, .. }) => {
                out.push_group(f(w1, fill_word(b2)) & LITERAL_MASK);
                ca.consume(1);
                cb.consume(1);
            }
            (Span::Fill { bit: b1, .. }, Span::Literal(w2)) => {
                out.push_group(f(fill_word(b1), w2) & LITERAL_MASK);
                ca.consume(1);
                cb.consume(1);
            }
            (Span::Literal(w1), Span::Literal(w2)) => {
                out.push_group(f(w1, w2) & LITERAL_MASK);
                ca.consume(1);
                cb.consume(1);
            }
        }
    }
    let mut res = out.finish();
    res.set_len(a.len());
    res
}

/// Bitwise AND of two equal-length bitmaps.
pub fn and(a: &WahBitmap, b: &WahBitmap) -> WahBitmap {
    binary_op(a, b, |x, y| x & y)
}

/// Bitwise OR of two equal-length bitmaps.
pub fn or(a: &WahBitmap, b: &WahBitmap) -> WahBitmap {
    binary_op(a, b, |x, y| x | y)
}

/// Bits set in `a` but not in `b` (`a AND NOT b`).
pub fn andnot(a: &WahBitmap, b: &WahBitmap) -> WahBitmap {
    binary_op(a, b, |x, y| x & !y)
}

/// OR of many bitmaps; returns an all-zero bitmap of `num_bits` when
/// the input is empty.
///
/// Bins adjacent in value tend to have similar run structure, so a
/// simple balanced fold keeps intermediate results compressed.
pub fn or_many(maps: &[WahBitmap], num_bits: u64) -> WahBitmap {
    match maps.len() {
        0 => WahBitmap::zeros(num_bits),
        1 => maps[0].clone(),
        _ => {
            let mid = maps.len() / 2;
            or(
                &or_many(&maps[..mid], num_bits),
                &or_many(&maps[mid..], num_bits),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(n: u64, pos: &[u64]) -> Vec<bool> {
        let mut v = vec![false; n as usize];
        for &p in pos {
            v[p as usize] = true;
        }
        v
    }

    #[test]
    fn and_or_andnot_small() {
        let n = 200u64;
        let pa: Vec<u64> = (0..n).filter(|i| i % 3 == 0).collect();
        let pb: Vec<u64> = (0..n).filter(|i| i % 5 == 0).collect();
        let a = WahBitmap::from_sorted_positions(n, &pa);
        let b = WahBitmap::from_sorted_positions(n, &pb);
        let (va, vb) = (naive(n, &pa), naive(n, &pb));

        let got_and = and(&a, &b).to_positions();
        let want_and: Vec<u64> = (0..n)
            .filter(|&i| va[i as usize] && vb[i as usize])
            .collect();
        assert_eq!(got_and, want_and);

        let got_or = or(&a, &b).to_positions();
        let want_or: Vec<u64> = (0..n)
            .filter(|&i| va[i as usize] || vb[i as usize])
            .collect();
        assert_eq!(got_or, want_or);

        let got_nd = andnot(&a, &b).to_positions();
        let want_nd: Vec<u64> = (0..n)
            .filter(|&i| va[i as usize] && !vb[i as usize])
            .collect();
        assert_eq!(got_nd, want_nd);
    }

    #[test]
    fn ops_preserve_length() {
        let a = WahBitmap::from_sorted_positions(100, &[1, 50]);
        let b = WahBitmap::from_sorted_positions(100, &[50, 99]);
        assert_eq!(and(&a, &b).len(), 100);
        assert_eq!(or(&a, &b).len(), 100);
    }

    #[test]
    fn ops_on_long_fills() {
        let n = 1_000_000u64;
        let a = WahBitmap::from_sorted_positions(n, &[0, 500_000]);
        let b = WahBitmap::ones(n);
        assert_eq!(and(&a, &b).to_positions(), vec![0, 500_000]);
        assert_eq!(or(&a, &b).count_ones(), n);
        assert_eq!(andnot(&b, &a).count_ones(), n - 2);
        // Results stay compressed.
        assert!(or(&a, &b).size_in_bytes() < 64);
    }

    #[test]
    fn or_many_folds() {
        let n = 10_000u64;
        let maps: Vec<WahBitmap> = (0..10)
            .map(|k| {
                let pos: Vec<u64> = (0..n).filter(|i| i % 10 == k).collect();
                WahBitmap::from_sorted_positions(n, &pos)
            })
            .collect();
        let all = or_many(&maps, n);
        assert_eq!(all.count_ones(), n);
        let none = or_many(&[], n);
        assert_eq!(none.count_ones(), 0);
        assert_eq!(none.len(), n);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let a = WahBitmap::zeros(10);
        let b = WahBitmap::zeros(20);
        and(&a, &b);
    }
}
