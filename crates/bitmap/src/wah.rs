//! The WAH bitmap representation, builder, iteration and serialization.

/// Number of data bits per WAH group (31 for 32-bit words).
pub const GROUP_BITS: u64 = 31;
const LITERAL_MASK: u32 = 0x7FFF_FFFF;
const FILL_FLAG: u32 = 0x8000_0000;
const FILL_BIT: u32 = 0x4000_0000;
const FILL_COUNT_MASK: u32 = 0x3FFF_FFFF;
/// Maximum group count representable by one fill word.
const MAX_FILL_GROUPS: u32 = FILL_COUNT_MASK;

const MAGIC: u32 = 0x4841_574D; // "MWAH"

/// A WAH-compressed bitmap of fixed logical length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WahBitmap {
    words: Vec<u32>,
    num_bits: u64,
}

impl WahBitmap {
    /// An all-zero bitmap of `num_bits` bits.
    pub fn zeros(num_bits: u64) -> Self {
        let mut b = WahBuilder::new();
        b.append_run(false, num_bits);
        b.finish()
    }

    /// An all-one bitmap of `num_bits` bits.
    pub fn ones(num_bits: u64) -> Self {
        let mut b = WahBuilder::new();
        b.append_run(true, num_bits);
        b.finish()
    }

    /// Build from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = WahBuilder::new();
        for &bit in bits {
            b.push(bit);
        }
        b.finish()
    }

    /// Build a bitmap of `num_bits` bits with exactly the given
    /// positions set. `positions` must be strictly increasing.
    ///
    /// # Panics
    /// Panics if positions are out of range or not strictly increasing.
    pub fn from_sorted_positions(num_bits: u64, positions: &[u64]) -> Self {
        let mut b = WahBuilder::new();
        let mut cursor = 0u64;
        for &p in positions {
            assert!(p >= cursor, "positions must be strictly increasing");
            assert!(p < num_bits, "position {p} out of range {num_bits}");
            b.append_run(false, p - cursor);
            b.push(true);
            cursor = p + 1;
        }
        b.append_run(false, num_bits - cursor);
        b.finish()
    }

    /// Logical number of bits.
    pub fn len(&self) -> u64 {
        self.num_bits
    }

    /// True when the bitmap has zero logical bits.
    pub fn is_empty(&self) -> bool {
        self.num_bits == 0
    }

    /// Compressed size in bytes (words only, excluding the length field).
    pub fn size_in_bytes(&self) -> usize {
        self.words.len() * 4 + 8
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        let mut total = 0u64;
        let mut bit_cursor = 0u64;
        for run in self.runs() {
            match run {
                Run::Fill { bit, groups } => {
                    let nbits = (groups as u64 * GROUP_BITS).min(self.num_bits - bit_cursor);
                    if bit {
                        total += nbits;
                    }
                    bit_cursor += nbits;
                }
                Run::Literal(w) => {
                    let nbits = GROUP_BITS.min(self.num_bits - bit_cursor);
                    let mask = if nbits == GROUP_BITS {
                        LITERAL_MASK
                    } else {
                        (1u32 << nbits) - 1
                    };
                    total += u64::from((w & mask).count_ones());
                    bit_cursor += nbits;
                }
            }
        }
        total
    }

    /// Test a single bit. O(words) — intended for tests, not hot paths.
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.num_bits, "bit {pos} out of range");
        let mut bit_cursor = 0u64;
        for run in self.runs() {
            match run {
                Run::Fill { bit, groups } => {
                    let nbits = groups as u64 * GROUP_BITS;
                    if pos < bit_cursor + nbits {
                        return bit;
                    }
                    bit_cursor += nbits;
                }
                Run::Literal(w) => {
                    if pos < bit_cursor + GROUP_BITS {
                        return (w >> (pos - bit_cursor)) & 1 == 1;
                    }
                    bit_cursor += GROUP_BITS;
                }
            }
        }
        false
    }

    /// Iterate positions of set bits in increasing order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bitmap: self,
            word_idx: 0,
            bit_cursor: 0,
            pending_fill_groups: 0,
            pending_fill_bit: false,
            literal: 0,
            literal_base: 0,
            literal_active: false,
        }
    }

    /// Collect set-bit positions into a vector.
    pub fn to_positions(&self) -> Vec<u64> {
        self.iter_ones().collect()
    }

    /// Raw word stream (for size accounting and tests).
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    pub(crate) fn runs(&self) -> RunIter<'_> {
        RunIter {
            words: &self.words,
            idx: 0,
        }
    }

    /// Override the logical length (used by group-aligned operations to
    /// restore the unpadded length). Must not exceed the padded length.
    pub(crate) fn set_len(&mut self, num_bits: u64) {
        debug_assert!(num_bits <= self.num_bits);
        self.num_bits = num_bits;
    }

    /// Serialize to a little-endian byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.words.len() * 4);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.num_bits.to_le_bytes());
        out.extend_from_slice(&(self.words.len() as u32).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`Self::to_bytes`] output.
    ///
    /// Returns the bitmap and the number of bytes consumed.
    pub fn from_bytes(data: &[u8]) -> Result<(Self, usize), BitmapError> {
        if data.len() < 16 {
            return Err(BitmapError::Truncated);
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
        if magic != MAGIC {
            return Err(BitmapError::BadMagic(magic));
        }
        let num_bits = u64::from_le_bytes(data[4..12].try_into().unwrap());
        let nwords = u32::from_le_bytes(data[12..16].try_into().unwrap()) as usize;
        let need = 16 + nwords.saturating_mul(4);
        if data.len() < need {
            return Err(BitmapError::Truncated);
        }
        let mut words = Vec::with_capacity(nwords);
        for i in 0..nwords {
            let off = 16 + i * 4;
            words.push(u32::from_le_bytes(data[off..off + 4].try_into().unwrap()));
        }
        Ok((WahBitmap { words, num_bits }, need))
    }
}

/// Errors from bitmap deserialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitmapError {
    /// Input ended before the encoded length.
    Truncated,
    /// Magic number mismatch.
    BadMagic(u32),
}

impl std::fmt::Display for BitmapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitmapError::Truncated => write!(f, "bitmap byte stream truncated"),
            BitmapError::BadMagic(m) => write!(f, "bad bitmap magic {m:#x}"),
        }
    }
}

impl std::error::Error for BitmapError {}

/// A decoded WAH run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Run {
    /// `groups` repetitions of an all-`bit` 31-bit group.
    Fill { bit: bool, groups: u32 },
    /// One 31-bit literal group (bit 0 = first position).
    Literal(u32),
}

pub(crate) struct RunIter<'a> {
    words: &'a [u32],
    idx: usize,
}

impl Iterator for RunIter<'_> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        let w = *self.words.get(self.idx)?;
        self.idx += 1;
        if w & FILL_FLAG != 0 {
            Some(Run::Fill {
                bit: w & FILL_BIT != 0,
                groups: w & FILL_COUNT_MASK,
            })
        } else {
            Some(Run::Literal(w))
        }
    }
}

/// Iterator over set-bit positions.
pub struct OnesIter<'a> {
    bitmap: &'a WahBitmap,
    word_idx: usize,
    bit_cursor: u64,
    pending_fill_groups: u32,
    pending_fill_bit: bool,
    literal: u32,
    literal_base: u64,
    literal_active: bool,
}

impl Iterator for OnesIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if self.literal_active {
                if self.literal != 0 {
                    let tz = self.literal.trailing_zeros() as u64;
                    self.literal &= self.literal - 1;
                    let pos = self.literal_base + tz;
                    if pos < self.bitmap.num_bits {
                        return Some(pos);
                    }
                    continue;
                }
                self.literal_active = false;
            }
            if self.pending_fill_groups > 0 {
                // Fills of ones are expanded group by group through the
                // literal path; fills of zeros are skipped wholesale.
                if self.pending_fill_bit {
                    self.literal = LITERAL_MASK;
                    self.literal_base = self.bit_cursor;
                    self.literal_active = true;
                    self.pending_fill_groups -= 1;
                    self.bit_cursor += GROUP_BITS;
                    continue;
                } else {
                    self.bit_cursor += self.pending_fill_groups as u64 * GROUP_BITS;
                    self.pending_fill_groups = 0;
                }
            }
            let w = *self.bitmap.words.get(self.word_idx)?;
            self.word_idx += 1;
            if w & FILL_FLAG != 0 {
                self.pending_fill_bit = w & FILL_BIT != 0;
                self.pending_fill_groups = w & FILL_COUNT_MASK;
            } else {
                self.literal = w;
                self.literal_base = self.bit_cursor;
                self.literal_active = true;
                self.bit_cursor += GROUP_BITS;
            }
        }
    }
}

/// Incremental WAH bitmap builder.
#[derive(Debug, Default)]
pub struct WahBuilder {
    words: Vec<u32>,
    /// Bits accumulated into the current (incomplete) group.
    active: u32,
    active_bits: u32,
    num_bits: u64,
}

impl WahBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        if bit {
            self.active |= 1 << self.active_bits;
        }
        self.active_bits += 1;
        self.num_bits += 1;
        if u64::from(self.active_bits) == GROUP_BITS {
            self.flush_group();
        }
    }

    /// Append `count` copies of `bit`.
    pub fn append_run(&mut self, bit: bool, mut count: u64) {
        // Fill the current partial group first.
        while self.active_bits != 0 && count > 0 {
            self.push(bit);
            count -= 1;
        }
        // Emit whole groups as fills.
        let groups = count / GROUP_BITS;
        if groups > 0 {
            self.emit_fill(bit, groups);
            self.num_bits += groups * GROUP_BITS;
            count -= groups * GROUP_BITS;
        }
        // Remainder goes into the new partial group.
        for _ in 0..count {
            self.push(bit);
        }
    }

    fn flush_group(&mut self) {
        let g = self.active & LITERAL_MASK;
        self.active = 0;
        self.active_bits = 0;
        if g == 0 {
            self.emit_fill(false, 1);
        } else if g == LITERAL_MASK {
            self.emit_fill(true, 1);
        } else {
            self.words.push(g);
        }
    }

    fn emit_fill(&mut self, bit: bool, mut groups: u64) {
        // Merge with a preceding fill of the same kind when possible.
        if let Some(&last) = self.words.last() {
            if last & FILL_FLAG != 0 && (last & FILL_BIT != 0) == bit {
                let existing = u64::from(last & FILL_COUNT_MASK);
                let merged = existing + groups;
                if merged <= u64::from(MAX_FILL_GROUPS) {
                    let w = FILL_FLAG
                        | if bit { FILL_BIT } else { 0 }
                        | (merged as u32 & FILL_COUNT_MASK);
                    *self.words.last_mut().unwrap() = w;
                    return;
                }
                // Top up the existing fill, emit the rest below.
                let room = u64::from(MAX_FILL_GROUPS) - existing;
                let w = FILL_FLAG | if bit { FILL_BIT } else { 0 } | MAX_FILL_GROUPS;
                *self.words.last_mut().unwrap() = w;
                groups -= room;
            }
        }
        while groups > 0 {
            let take = groups.min(u64::from(MAX_FILL_GROUPS));
            self.words
                .push(FILL_FLAG | if bit { FILL_BIT } else { 0 } | (take as u32));
            groups -= take;
        }
    }

    /// Append a whole 31-bit group at once. Only valid when the builder
    /// is group-aligned (no partial bits pending).
    ///
    /// # Panics
    /// Panics if bits have been pushed since the last group boundary.
    pub fn push_group(&mut self, group: u32) {
        assert_eq!(self.active_bits, 0, "push_group requires group alignment");
        let g = group & LITERAL_MASK;
        self.num_bits += GROUP_BITS;
        if g == 0 {
            self.emit_fill(false, 1);
        } else if g == LITERAL_MASK {
            self.emit_fill(true, 1);
        } else {
            self.words.push(g);
        }
    }

    /// Finish building; a trailing partial group is stored as a literal.
    pub fn finish(mut self) -> WahBitmap {
        if self.active_bits > 0 {
            // Store the partial group as a literal (padding bits zero).
            self.words.push(self.active & LITERAL_MASK);
            self.active = 0;
            self.active_bits = 0;
        }
        WahBitmap {
            words: self.words,
            num_bits: self.num_bits,
        }
    }

    /// Bits appended so far.
    pub fn len(&self) -> u64 {
        self.num_bits
    }

    /// True when no bits have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.num_bits == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bitmap() {
        let b = WahBuilder::new().finish();
        assert_eq!(b.len(), 0);
        assert_eq!(b.count_ones(), 0);
        assert!(b.to_positions().is_empty());
    }

    #[test]
    fn from_bools_roundtrip() {
        let bits: Vec<bool> = (0..200).map(|i| i % 7 == 0).collect();
        let b = WahBitmap::from_bools(&bits);
        assert_eq!(b.len(), 200);
        for (i, &bit) in bits.iter().enumerate() {
            assert_eq!(b.get(i as u64), bit, "bit {i}");
        }
        let ones: Vec<u64> = b.to_positions();
        let expect: Vec<u64> = (0..200).filter(|i| i % 7 == 0).collect();
        assert_eq!(ones, expect);
    }

    #[test]
    fn long_zero_run_compresses() {
        let b = WahBitmap::from_sorted_positions(1_000_000, &[0, 999_999]);
        assert!(b.size_in_bytes() < 64, "size {}", b.size_in_bytes());
        assert_eq!(b.count_ones(), 2);
        assert_eq!(b.to_positions(), vec![0, 999_999]);
    }

    #[test]
    fn long_one_run_compresses() {
        let b = WahBitmap::ones(1_000_000);
        assert!(b.size_in_bytes() < 64);
        assert_eq!(b.count_ones(), 1_000_000);
        assert!(b.get(0) && b.get(999_999));
    }

    #[test]
    fn padding_bits_are_not_ones() {
        // 33 bits = one full group + 2 bits: padding must not count.
        let b = WahBitmap::ones(33);
        assert_eq!(b.count_ones(), 33);
        assert_eq!(b.to_positions().len(), 33);
    }

    #[test]
    fn from_sorted_positions_matches_bools() {
        let pos = [3u64, 31, 32, 62, 63, 64, 100];
        let a = WahBitmap::from_sorted_positions(128, &pos);
        let bits: Vec<bool> = (0..128u64).map(|i| pos.contains(&i)).collect();
        let b = WahBitmap::from_bools(&bits);
        assert_eq!(a.to_positions(), b.to_positions());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn serialization_roundtrip() {
        let b = WahBitmap::from_sorted_positions(10_000, &[5, 93, 94, 95, 9_999]);
        let bytes = b.to_bytes();
        let (b2, consumed) = WahBitmap::from_bytes(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(b, b2);
    }

    #[test]
    fn serialization_rejects_garbage() {
        assert_eq!(
            WahBitmap::from_bytes(&[1, 2, 3]),
            Err(BitmapError::Truncated)
        );
        let mut bytes = WahBitmap::ones(10).to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            WahBitmap::from_bytes(&bytes),
            Err(BitmapError::BadMagic(_))
        ));
    }

    #[test]
    fn append_run_mixed() {
        let mut b = WahBuilder::new();
        b.append_run(false, 10);
        b.append_run(true, 50);
        b.append_run(false, 3);
        b.push(true);
        let bm = b.finish();
        assert_eq!(bm.len(), 64);
        assert_eq!(bm.count_ones(), 51);
        assert!(!bm.get(9));
        assert!(bm.get(10));
        assert!(bm.get(59));
        assert!(!bm.get(62));
        assert!(bm.get(63));
    }

    #[test]
    fn giant_fill_merging() {
        // Force multiple merge paths in emit_fill.
        let mut b = WahBuilder::new();
        for _ in 0..10 {
            b.append_run(false, 31 * 1000);
        }
        let bm = b.finish();
        assert_eq!(bm.len(), 31 * 10_000);
        assert_eq!(bm.count_ones(), 0);
        // All merged into a single fill word.
        assert_eq!(bm.words().len(), 1);
    }
}
