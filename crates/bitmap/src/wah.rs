//! The WAH bitmap representation, builder, iteration and serialization.

/// Number of data bits per WAH group (31 for 32-bit words).
pub const GROUP_BITS: u64 = 31;
const LITERAL_MASK: u32 = 0x7FFF_FFFF;
const FILL_FLAG: u32 = 0x8000_0000;
const FILL_BIT: u32 = 0x4000_0000;
const FILL_COUNT_MASK: u32 = 0x3FFF_FFFF;
/// Maximum group count representable by one fill word.
const MAX_FILL_GROUPS: u32 = FILL_COUNT_MASK;

const MAGIC: u32 = 0x4841_574D; // "MWAH"

/// A WAH-compressed bitmap of fixed logical length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WahBitmap {
    words: Vec<u32>,
    num_bits: u64,
}

impl WahBitmap {
    /// An all-zero bitmap of `num_bits` bits.
    pub fn zeros(num_bits: u64) -> Self {
        let mut b = WahBuilder::new();
        b.append_run(false, num_bits);
        b.finish()
    }

    /// An all-one bitmap of `num_bits` bits.
    pub fn ones(num_bits: u64) -> Self {
        let mut b = WahBuilder::new();
        b.append_run(true, num_bits);
        b.finish()
    }

    /// Build from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = WahBuilder::new();
        for &bit in bits {
            b.push(bit);
        }
        b.finish()
    }

    /// Build a bitmap of `num_bits` bits with exactly the given
    /// positions set. `positions` must be strictly increasing.
    ///
    /// # Panics
    /// Panics if positions are out of range or not strictly increasing.
    pub fn from_sorted_positions(num_bits: u64, positions: &[u64]) -> Self {
        let mut b = WahBuilder::new();
        let mut cursor = 0u64;
        for &p in positions {
            assert!(p >= cursor, "positions must be strictly increasing");
            assert!(p < num_bits, "position {p} out of range {num_bits}");
            b.append_run(false, p - cursor);
            b.push(true);
            cursor = p + 1;
        }
        b.append_run(false, num_bits - cursor);
        b.finish()
    }

    /// Logical number of bits.
    pub fn len(&self) -> u64 {
        self.num_bits
    }

    /// True when the bitmap has zero logical bits.
    pub fn is_empty(&self) -> bool {
        self.num_bits == 0
    }

    /// Compressed size in bytes (words only, excluding the length field).
    pub fn size_in_bytes(&self) -> usize {
        self.words.len() * 4 + 8
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        let mut total = 0u64;
        let mut bit_cursor = 0u64;
        for run in self.runs() {
            match run {
                Run::Fill { bit, groups } => {
                    let nbits = (groups as u64 * GROUP_BITS).min(self.num_bits - bit_cursor);
                    if bit {
                        total += nbits;
                    }
                    bit_cursor += nbits;
                }
                Run::Literal(w) => {
                    let nbits = GROUP_BITS.min(self.num_bits - bit_cursor);
                    let mask = if nbits == GROUP_BITS {
                        LITERAL_MASK
                    } else {
                        (1u32 << nbits) - 1
                    };
                    total += u64::from((w & mask).count_ones());
                    bit_cursor += nbits;
                }
            }
        }
        total
    }

    /// Test a single bit. O(words) — intended for tests, not hot paths.
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.num_bits, "bit {pos} out of range");
        let mut bit_cursor = 0u64;
        for run in self.runs() {
            match run {
                Run::Fill { bit, groups } => {
                    let nbits = groups as u64 * GROUP_BITS;
                    if pos < bit_cursor + nbits {
                        return bit;
                    }
                    bit_cursor += nbits;
                }
                Run::Literal(w) => {
                    if pos < bit_cursor + GROUP_BITS {
                        return (w >> (pos - bit_cursor)) & 1 == 1;
                    }
                    bit_cursor += GROUP_BITS;
                }
            }
        }
        false
    }

    /// Iterate maximal `(start, len, bit)` runs of identical bits in
    /// position order. Runs partition `[0, len())` exactly: adjacent
    /// runs carry opposite bits, lengths sum to [`Self::len`], and the
    /// padding bits of a trailing partial group are never reported.
    ///
    /// This is the bulk-processing counterpart of [`Self::iter_ones`]:
    /// a fill of ones surfaces as one run, not as per-bit steps, so a
    /// consumer can turn it into a single range operation.
    pub fn iter_runs(&self) -> BitRunsIter<'_> {
        BitRunsIter {
            words: &self.words,
            word_idx: 0,
            bit_cursor: 0,
            num_bits: self.num_bits,
            literal: 0,
            literal_rem: 0,
            pending: None,
        }
    }

    /// Number of set bits in `[0, pos)`.
    ///
    /// # Panics
    /// Panics if `pos` exceeds the bitmap length.
    pub fn rank(&self, pos: u64) -> u64 {
        assert!(pos <= self.num_bits, "rank position {pos} out of range");
        let mut total = 0u64;
        for (start, len, bit) in self.iter_runs() {
            if start >= pos {
                break;
            }
            if bit {
                total += len.min(pos - start);
            }
        }
        total
    }

    /// Position of the `k`-th set bit (0-indexed), or `None` when the
    /// bitmap has `k` or fewer set bits.
    pub fn select(&self, k: u64) -> Option<u64> {
        let mut seen = 0u64;
        for (start, len, bit) in self.iter_runs() {
            if !bit {
                continue;
            }
            if k < seen + len {
                return Some(start + (k - seen));
            }
            seen += len;
        }
        None
    }

    /// Iterate positions of set bits in increasing order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        self.as_ref().iter_ones()
    }

    /// Borrowed view of this bitmap (same queries, no ownership).
    pub fn as_ref(&self) -> WahRef<'_> {
        WahRef {
            words: &self.words,
            num_bits: self.num_bits,
        }
    }

    /// Collect set-bit positions into a vector.
    pub fn to_positions(&self) -> Vec<u64> {
        self.iter_ones().collect()
    }

    /// Raw word stream (for size accounting and tests).
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    pub(crate) fn runs(&self) -> RunIter<'_> {
        RunIter {
            words: &self.words,
            idx: 0,
        }
    }

    /// Override the logical length (used by group-aligned operations to
    /// restore the unpadded length). Must not exceed the padded length.
    pub(crate) fn set_len(&mut self, num_bits: u64) {
        debug_assert!(num_bits <= self.num_bits);
        self.num_bits = num_bits;
    }

    /// Serialize to a little-endian byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.words.len() * 4);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.num_bits.to_le_bytes());
        out.extend_from_slice(&(self.words.len() as u32).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`Self::to_bytes`] output.
    ///
    /// Returns the bitmap and the number of bytes consumed.
    pub fn from_bytes(data: &[u8]) -> Result<(Self, usize), BitmapError> {
        if data.len() < 16 {
            return Err(BitmapError::Truncated);
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
        if magic != MAGIC {
            return Err(BitmapError::BadMagic(magic));
        }
        let num_bits = u64::from_le_bytes(data[4..12].try_into().unwrap());
        let nwords = u32::from_le_bytes(data[12..16].try_into().unwrap()) as usize;
        let need = 16 + nwords.saturating_mul(4);
        if data.len() < need {
            return Err(BitmapError::Truncated);
        }
        let mut words = Vec::with_capacity(nwords);
        for i in 0..nwords {
            let off = 16 + i * 4;
            words.push(u32::from_le_bytes(data[off..off + 4].try_into().unwrap()));
        }
        Ok((WahBitmap { words, num_bits }, need))
    }
}

/// Errors from bitmap deserialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitmapError {
    /// Input ended before the encoded length.
    Truncated,
    /// Magic number mismatch.
    BadMagic(u32),
}

impl std::fmt::Display for BitmapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitmapError::Truncated => write!(f, "bitmap byte stream truncated"),
            BitmapError::BadMagic(m) => write!(f, "bad bitmap magic {m:#x}"),
        }
    }
}

impl std::error::Error for BitmapError {}

/// A decoded WAH run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Run {
    /// `groups` repetitions of an all-`bit` 31-bit group.
    Fill { bit: bool, groups: u32 },
    /// One 31-bit literal group (bit 0 = first position).
    Literal(u32),
}

pub(crate) struct RunIter<'a> {
    words: &'a [u32],
    idx: usize,
}

impl Iterator for RunIter<'_> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        let w = *self.words.get(self.idx)?;
        self.idx += 1;
        if w & FILL_FLAG != 0 {
            Some(Run::Fill {
                bit: w & FILL_BIT != 0,
                groups: w & FILL_COUNT_MASK,
            })
        } else {
            Some(Run::Literal(w))
        }
    }
}

/// Iterator over maximal same-bit runs, yielding `(start, len, bit)`.
///
/// Produced by [`WahBitmap::iter_runs`]. Adjacent encoded runs of the
/// same bit (e.g. a fill followed by an all-equal literal) are merged,
/// so consumers always see maximal runs.
pub struct BitRunsIter<'a> {
    words: &'a [u32],
    word_idx: usize,
    bit_cursor: u64,
    num_bits: u64,
    /// Remaining bits of a partially consumed literal word (shifted so
    /// the next bit is bit 0).
    literal: u32,
    literal_rem: u32,
    /// A decoded run awaiting merge with its successor.
    pending: Option<(u64, u64, bool)>,
}

impl BitRunsIter<'_> {
    /// Next raw (unmerged) run, clamped to the logical length.
    fn next_raw(&mut self) -> Option<(u64, u64, bool)> {
        loop {
            if self.literal_rem > 0 {
                let start = self.bit_cursor;
                let bit = self.literal & 1 == 1;
                let same = if bit {
                    self.literal.trailing_ones()
                } else {
                    self.literal.trailing_zeros()
                };
                let take = same.min(self.literal_rem);
                // take < 32 always (literal_rem <= 31), so the shift is
                // in range.
                self.literal >>= take;
                self.literal_rem -= take;
                self.bit_cursor += u64::from(take);
                if start >= self.num_bits {
                    continue; // padding bits of the trailing group
                }
                let len = u64::from(take).min(self.num_bits - start);
                return Some((start, len, bit));
            }
            let w = *self.words.get(self.word_idx)?;
            self.word_idx += 1;
            if w & FILL_FLAG != 0 {
                let bit = w & FILL_BIT != 0;
                let nbits = u64::from(w & FILL_COUNT_MASK) * GROUP_BITS;
                let start = self.bit_cursor;
                self.bit_cursor += nbits;
                if nbits == 0 || start >= self.num_bits {
                    continue;
                }
                let len = nbits.min(self.num_bits - start);
                return Some((start, len, bit));
            }
            self.literal = w & LITERAL_MASK;
            self.literal_rem = GROUP_BITS as u32;
        }
    }
}

impl Iterator for BitRunsIter<'_> {
    type Item = (u64, u64, bool);

    fn next(&mut self) -> Option<(u64, u64, bool)> {
        loop {
            match self.next_raw() {
                Some((start, len, bit)) => match self.pending {
                    Some((ps, pl, pb)) if pb == bit && ps + pl == start => {
                        self.pending = Some((ps, pl + len, bit));
                    }
                    Some(prev) => {
                        self.pending = Some((start, len, bit));
                        return Some(prev);
                    }
                    None => self.pending = Some((start, len, bit)),
                },
                None => return self.pending.take(),
            }
        }
    }
}

/// A borrowed WAH bitmap view: the zero-allocation counterpart of
/// [`WahBitmap`] for hot paths that decode serialized bitmaps into a
/// reused scratch buffer instead of allocating per bitmap.
#[derive(Debug, Clone, Copy)]
pub struct WahRef<'a> {
    words: &'a [u32],
    num_bits: u64,
}

impl<'a> WahRef<'a> {
    /// Decode [`WahBitmap::to_bytes`] output into `scratch` (cleared
    /// and refilled, capacity reused), returning the borrowed view and
    /// the number of bytes consumed.
    pub fn decode_into(
        data: &[u8],
        scratch: &'a mut Vec<u32>,
    ) -> Result<(WahRef<'a>, usize), BitmapError> {
        if data.len() < 16 {
            return Err(BitmapError::Truncated);
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
        if magic != MAGIC {
            return Err(BitmapError::BadMagic(magic));
        }
        let num_bits = u64::from_le_bytes(data[4..12].try_into().unwrap());
        let nwords = u32::from_le_bytes(data[12..16].try_into().unwrap()) as usize;
        let need = 16 + nwords.saturating_mul(4);
        if data.len() < need {
            return Err(BitmapError::Truncated);
        }
        scratch.clear();
        scratch.reserve(nwords);
        scratch.extend(
            data[16..need]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        Ok((
            WahRef {
                words: scratch,
                num_bits,
            },
            need,
        ))
    }

    /// Logical number of bits.
    pub fn len(&self) -> u64 {
        self.num_bits
    }

    /// True when the view has zero logical bits.
    pub fn is_empty(&self) -> bool {
        self.num_bits == 0
    }

    /// Number of set bits. One pass over the encoded words: a popcount
    /// per literal, a multiply per fill — no per-word cursor tracking.
    ///
    /// Canonical encodings (everything [`WahBitmap::to_bytes`] emits)
    /// keep unused tail-literal bits clear, so counting whole words is
    /// exact. A non-canonical (corrupt) input with junk tail bits
    /// over-counts, which only makes consistency checks against an
    /// expected count *more* likely to reject it.
    pub fn count_ones(&self) -> u64 {
        let mut total = 0u64;
        for &w in self.words {
            if w & FILL_FLAG != 0 {
                if w & FILL_BIT != 0 {
                    total += u64::from(w & FILL_COUNT_MASK) * GROUP_BITS;
                }
            } else {
                total += u64::from(w.count_ones());
            }
        }
        total
    }

    /// Visit every run of set bits as `f(gap, ones_before, len)` in
    /// position order, where `gap` is the number of clear bits since
    /// the previous visited run (or the start), `ones_before` the
    /// number of set bits strictly before the run (the rank of its
    /// first position — exactly the index of its first value in a
    /// densely packed value block), and `len` the run length.
    ///
    /// Unlike [`iter_runs`](Self::iter_runs), runs are *not*
    /// guaranteed maximal: adjacent set runs may be reported
    /// separately (e.g. a one fill followed by a literal starting with
    /// ones). Dropping the merge lookahead and folding clear gaps into
    /// the next visit makes this the cheapest way to walk a bitmap —
    /// one closure call and one shift/`trailing_zeros` pair per set
    /// run inside literal words, no iterator state machine. Trailing
    /// clear bits are never reported.
    #[inline]
    pub fn for_each_one_run(&self, mut f: impl FnMut(u64, u64, u64)) {
        let mut ones_before = 0u64;
        let mut gap = 0u64;
        let mut remaining = self.num_bits;
        for &w in self.words {
            if remaining == 0 {
                break;
            }
            if w & FILL_FLAG != 0 {
                let len = (u64::from(w & FILL_COUNT_MASK) * GROUP_BITS).min(remaining);
                remaining -= len;
                if w & FILL_BIT != 0 {
                    f(gap, ones_before, len);
                    gap = 0;
                    ones_before += len;
                } else {
                    gap += len;
                }
            } else {
                let nbits = GROUP_BITS.min(remaining);
                remaining -= nbits;
                // Bit 0 of the literal is the lowest position; peel
                // alternating zero/one stretches off the low end.
                let mut m = w & LITERAL_MASK;
                if nbits < GROUP_BITS {
                    m &= (1u32 << nbits) - 1;
                }
                let mut consumed = 0u64;
                while m != 0 {
                    let z = u64::from(m.trailing_zeros());
                    m >>= z;
                    let o = u64::from((!m).trailing_zeros());
                    f(gap + z, ones_before, o);
                    gap = 0;
                    ones_before += o;
                    m >>= o;
                    consumed += z + o;
                }
                gap += nbits - consumed;
            }
        }
    }

    /// Iterate maximal `(start, len, bit)` runs — see
    /// [`WahBitmap::iter_runs`].
    pub fn iter_runs(&self) -> BitRunsIter<'a> {
        BitRunsIter {
            words: self.words,
            word_idx: 0,
            bit_cursor: 0,
            num_bits: self.num_bits,
            literal: 0,
            literal_rem: 0,
            pending: None,
        }
    }

    /// Iterate positions of set bits in increasing order.
    pub fn iter_ones(&self) -> OnesIter<'a> {
        OnesIter {
            words: self.words,
            num_bits: self.num_bits,
            word_idx: 0,
            bit_cursor: 0,
            pending_fill_groups: 0,
            pending_fill_bit: false,
            literal: 0,
            literal_base: 0,
            literal_active: false,
        }
    }
}

/// Words per sampled checkpoint in a [`RankSelectDir`].
///
/// 64 words = 256 bitmap bytes per 8-byte sample, so a directory costs
/// ~3.1% of the compressed bitmap it describes.
pub const RANK_SAMPLE_WORDS: usize = 64;

/// Sampled rank/select directory over an encoded WAH word stream.
///
/// `samples[j]` holds the cumulative `(bits, ones)` totals of the first
/// `(j + 1) * RANK_SAMPLE_WORDS` encoded words (padded group bits for
/// `bits`; exact for `ones` because canonical encodings keep padding
/// bits clear). [`WahRef::rank_with`] / [`WahRef::select_with`] binary
/// search the samples and then peel at most one sample stride of words,
/// turning the linear walks of [`WahBitmap::rank`] / `select` into
/// O(log samples + S) probes.
///
/// Bitmaps of at most `RANK_SAMPLE_WORDS` words get an *empty*
/// directory (zero serialized bytes, `rank_with` degrades to a bounded
/// linear walk), so short bitmaps pay no overhead at all. Directories
/// are also left empty when cumulative totals would overflow the `u32`
/// samples (bitmaps beyond 4 Gbit).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankSelectDir {
    sample_every: u32,
    samples: Vec<(u32, u32)>,
}

impl RankSelectDir {
    /// A directory with no samples: every query walks from word 0.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build a directory for `b` in one pass over its encoded words.
    pub fn build(b: WahRef<'_>) -> Self {
        let every = RANK_SAMPLE_WORDS;
        let nwords = b.words.len();
        if nwords <= every {
            return Self::empty();
        }
        let mut samples = Vec::with_capacity(nwords / every);
        let mut bits = 0u64;
        let mut ones = 0u64;
        for (i, &w) in b.words.iter().enumerate() {
            if w & FILL_FLAG != 0 {
                let nbits = u64::from(w & FILL_COUNT_MASK) * GROUP_BITS;
                bits += nbits;
                if w & FILL_BIT != 0 {
                    ones += nbits;
                }
            } else {
                bits += GROUP_BITS;
                ones += u64::from(w.count_ones());
            }
            if (i + 1) % every == 0 && i + 1 < nwords {
                if bits > u64::from(u32::MAX) || ones > u64::from(u32::MAX) {
                    return Self::empty();
                }
                samples.push((bits as u32, ones as u32));
            }
        }
        RankSelectDir {
            sample_every: every as u32,
            samples,
        }
    }

    /// True when no samples were taken (short bitmap or overflow guard).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Serialized size in bytes (zero when empty).
    pub fn size_in_bytes(&self) -> usize {
        if self.samples.is_empty() {
            0
        } else {
            8 + self.samples.len() * 8
        }
    }

    /// Serialize; an empty directory serializes to zero bytes so short
    /// bitmaps carry no trailer at all.
    pub fn to_bytes(&self) -> Vec<u8> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.size_in_bytes());
        out.extend_from_slice(&(self.samples.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.sample_every.to_le_bytes());
        for &(bits, ones) in &self.samples {
            out.extend_from_slice(&bits.to_le_bytes());
            out.extend_from_slice(&ones.to_le_bytes());
        }
        out
    }

    /// Deserialize [`Self::to_bytes`] output; the empty slice decodes
    /// to the empty directory. Returns the directory and bytes consumed.
    pub fn from_bytes(data: &[u8]) -> Result<(Self, usize), BitmapError> {
        if data.is_empty() {
            return Ok((Self::empty(), 0));
        }
        if data.len() < 8 {
            return Err(BitmapError::Truncated);
        }
        let n = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
        let sample_every = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if sample_every == 0 || n == 0 {
            return Err(BitmapError::Truncated);
        }
        let need = 8 + n.saturating_mul(8);
        if data.len() < need {
            return Err(BitmapError::Truncated);
        }
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let off = 8 + i * 8;
            let bits = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
            let ones = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
            samples.push((bits, ones));
        }
        Ok((
            RankSelectDir {
                sample_every,
                samples,
            },
            need,
        ))
    }

    /// Start state `(word_idx, bits, ones)` for a walk that must reach
    /// bit position `pos`: the last checkpoint with `bits <= pos`.
    fn seek_bits(&self, pos: u64) -> (usize, u64, u64) {
        let idx = self.samples.partition_point(|s| u64::from(s.0) <= pos);
        if idx == 0 {
            (0, 0, 0)
        } else {
            let (bits, ones) = self.samples[idx - 1];
            (
                idx * self.sample_every as usize,
                u64::from(bits),
                u64::from(ones),
            )
        }
    }

    /// Start state for a walk that must reach the `k`-th set bit: the
    /// last checkpoint with `ones <= k`.
    fn seek_ones(&self, k: u64) -> (usize, u64, u64) {
        let idx = self.samples.partition_point(|s| u64::from(s.1) <= k);
        if idx == 0 {
            (0, 0, 0)
        } else {
            let (bits, ones) = self.samples[idx - 1];
            (
                idx * self.sample_every as usize,
                u64::from(bits),
                u64::from(ones),
            )
        }
    }
}

impl WahRef<'_> {
    /// Number of set bits in `[0, pos)` via the sampled directory:
    /// binary search to the nearest checkpoint, then walk at most one
    /// sample stride of words (fills resolved arithmetically, literals
    /// by masked popcount).
    ///
    /// # Panics
    /// Panics if `pos` exceeds the bitmap length.
    pub fn rank_with(&self, dir: &RankSelectDir, pos: u64) -> u64 {
        assert!(pos <= self.num_bits, "rank position {pos} out of range");
        let (start, mut bits, mut ones) = dir.seek_bits(pos);
        for &w in &self.words[start.min(self.words.len())..] {
            if w & FILL_FLAG != 0 {
                let nbits = u64::from(w & FILL_COUNT_MASK) * GROUP_BITS;
                if pos < bits + nbits {
                    if w & FILL_BIT != 0 {
                        ones += pos - bits;
                    }
                    return ones;
                }
                bits += nbits;
                if w & FILL_BIT != 0 {
                    ones += nbits;
                }
            } else {
                if pos < bits + GROUP_BITS {
                    let mask = (1u32 << (pos - bits)) - 1;
                    return ones + u64::from((w & LITERAL_MASK & mask).count_ones());
                }
                bits += GROUP_BITS;
                // Canonical padding bits are clear, so the whole-word
                // popcount is exact even for the trailing group.
                ones += u64::from((w & LITERAL_MASK).count_ones());
            }
        }
        ones
    }

    /// Rank of `pos` together with the bit stored at `pos`, in one
    /// directory-guided walk — the membership-probe primitive: the rank
    /// indexes the chunk's packed value block, the bit says whether the
    /// position is present at all.
    ///
    /// # Panics
    /// Panics if `pos` is not strictly inside the bitmap.
    pub fn rank_bit_with(&self, dir: &RankSelectDir, pos: u64) -> (u64, bool) {
        assert!(pos < self.num_bits, "bit {pos} out of range");
        let (start, mut bits, mut ones) = dir.seek_bits(pos);
        for &w in &self.words[start.min(self.words.len())..] {
            if w & FILL_FLAG != 0 {
                let nbits = u64::from(w & FILL_COUNT_MASK) * GROUP_BITS;
                let set = w & FILL_BIT != 0;
                if pos < bits + nbits {
                    if set {
                        ones += pos - bits;
                    }
                    return (ones, set);
                }
                bits += nbits;
                if set {
                    ones += nbits;
                }
            } else {
                if pos < bits + GROUP_BITS {
                    let lit = w & LITERAL_MASK;
                    let mask = (1u32 << (pos - bits)) - 1;
                    return (
                        ones + u64::from((lit & mask).count_ones()),
                        (lit >> (pos - bits)) & 1 == 1,
                    );
                }
                bits += GROUP_BITS;
                ones += u64::from((w & LITERAL_MASK).count_ones());
            }
        }
        unreachable!("pos checked against num_bits");
    }

    /// Position of the `k`-th set bit (0-indexed) via the sampled
    /// directory, or `None` when fewer than `k + 1` bits are set.
    pub fn select_with(&self, dir: &RankSelectDir, k: u64) -> Option<u64> {
        let (start, mut bits, mut ones) = dir.seek_ones(k);
        for &w in &self.words[start.min(self.words.len())..] {
            if w & FILL_FLAG != 0 {
                let nbits = u64::from(w & FILL_COUNT_MASK) * GROUP_BITS;
                if w & FILL_BIT != 0 {
                    if k < ones + nbits {
                        return Some(bits + (k - ones));
                    }
                    ones += nbits;
                }
                bits += nbits;
            } else {
                let lit = w & LITERAL_MASK;
                let c = u64::from(lit.count_ones());
                if k < ones + c {
                    // Peel down to the (k - ones)-th set bit.
                    let mut m = lit;
                    for _ in 0..(k - ones) {
                        m &= m - 1;
                    }
                    return Some(bits + u64::from(m.trailing_zeros()));
                }
                ones += c;
                bits += GROUP_BITS;
            }
        }
        None
    }
}

/// Iterator over set-bit positions.
pub struct OnesIter<'a> {
    words: &'a [u32],
    num_bits: u64,
    word_idx: usize,
    bit_cursor: u64,
    pending_fill_groups: u32,
    pending_fill_bit: bool,
    literal: u32,
    literal_base: u64,
    literal_active: bool,
}

impl Iterator for OnesIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if self.literal_active {
                if self.literal != 0 {
                    let tz = self.literal.trailing_zeros() as u64;
                    self.literal &= self.literal - 1;
                    let pos = self.literal_base + tz;
                    if pos < self.num_bits {
                        return Some(pos);
                    }
                    continue;
                }
                self.literal_active = false;
            }
            if self.pending_fill_groups > 0 {
                // Fills of ones are expanded group by group through the
                // literal path; fills of zeros are skipped wholesale.
                if self.pending_fill_bit {
                    self.literal = LITERAL_MASK;
                    self.literal_base = self.bit_cursor;
                    self.literal_active = true;
                    self.pending_fill_groups -= 1;
                    self.bit_cursor += GROUP_BITS;
                    continue;
                } else {
                    self.bit_cursor += self.pending_fill_groups as u64 * GROUP_BITS;
                    self.pending_fill_groups = 0;
                }
            }
            let w = *self.words.get(self.word_idx)?;
            self.word_idx += 1;
            if w & FILL_FLAG != 0 {
                self.pending_fill_bit = w & FILL_BIT != 0;
                self.pending_fill_groups = w & FILL_COUNT_MASK;
            } else {
                self.literal = w;
                self.literal_base = self.bit_cursor;
                self.literal_active = true;
                self.bit_cursor += GROUP_BITS;
            }
        }
    }
}

/// Incremental WAH bitmap builder.
#[derive(Debug, Default)]
pub struct WahBuilder {
    words: Vec<u32>,
    /// Bits accumulated into the current (incomplete) group.
    active: u32,
    active_bits: u32,
    num_bits: u64,
}

impl WahBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        if bit {
            self.active |= 1 << self.active_bits;
        }
        self.active_bits += 1;
        self.num_bits += 1;
        if u64::from(self.active_bits) == GROUP_BITS {
            self.flush_group();
        }
    }

    /// Append `count` copies of `bit`.
    pub fn append_run(&mut self, bit: bool, mut count: u64) {
        // Fill the current partial group first.
        while self.active_bits != 0 && count > 0 {
            self.push(bit);
            count -= 1;
        }
        // Emit whole groups as fills.
        let groups = count / GROUP_BITS;
        if groups > 0 {
            self.emit_fill(bit, groups);
            self.num_bits += groups * GROUP_BITS;
            count -= groups * GROUP_BITS;
        }
        // Remainder goes into the new partial group.
        for _ in 0..count {
            self.push(bit);
        }
    }

    fn flush_group(&mut self) {
        let g = self.active & LITERAL_MASK;
        self.active = 0;
        self.active_bits = 0;
        if g == 0 {
            self.emit_fill(false, 1);
        } else if g == LITERAL_MASK {
            self.emit_fill(true, 1);
        } else {
            self.words.push(g);
        }
    }

    fn emit_fill(&mut self, bit: bool, mut groups: u64) {
        // Merge with a preceding fill of the same kind when possible.
        if let Some(&last) = self.words.last() {
            if last & FILL_FLAG != 0 && (last & FILL_BIT != 0) == bit {
                let existing = u64::from(last & FILL_COUNT_MASK);
                let merged = existing + groups;
                if merged <= u64::from(MAX_FILL_GROUPS) {
                    let w = FILL_FLAG
                        | if bit { FILL_BIT } else { 0 }
                        | (merged as u32 & FILL_COUNT_MASK);
                    *self.words.last_mut().unwrap() = w;
                    return;
                }
                // Top up the existing fill, emit the rest below.
                let room = u64::from(MAX_FILL_GROUPS) - existing;
                let w = FILL_FLAG | if bit { FILL_BIT } else { 0 } | MAX_FILL_GROUPS;
                *self.words.last_mut().unwrap() = w;
                groups -= room;
            }
        }
        while groups > 0 {
            let take = groups.min(u64::from(MAX_FILL_GROUPS));
            self.words
                .push(FILL_FLAG | if bit { FILL_BIT } else { 0 } | (take as u32));
            groups -= take;
        }
    }

    /// Append a whole 31-bit group at once. Only valid when the builder
    /// is group-aligned (no partial bits pending).
    ///
    /// # Panics
    /// Panics if bits have been pushed since the last group boundary.
    pub fn push_group(&mut self, group: u32) {
        assert_eq!(self.active_bits, 0, "push_group requires group alignment");
        let g = group & LITERAL_MASK;
        self.num_bits += GROUP_BITS;
        if g == 0 {
            self.emit_fill(false, 1);
        } else if g == LITERAL_MASK {
            self.emit_fill(true, 1);
        } else {
            self.words.push(g);
        }
    }

    /// Finish building; a trailing partial group is stored as a literal.
    pub fn finish(mut self) -> WahBitmap {
        if self.active_bits > 0 {
            // Store the partial group as a literal (padding bits zero).
            self.words.push(self.active & LITERAL_MASK);
            self.active = 0;
            self.active_bits = 0;
        }
        WahBitmap {
            words: self.words,
            num_bits: self.num_bits,
        }
    }

    /// Bits appended so far.
    pub fn len(&self) -> u64 {
        self.num_bits
    }

    /// True when no bits have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.num_bits == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bitmap() {
        let b = WahBuilder::new().finish();
        assert_eq!(b.len(), 0);
        assert_eq!(b.count_ones(), 0);
        assert!(b.to_positions().is_empty());
    }

    #[test]
    fn from_bools_roundtrip() {
        let bits: Vec<bool> = (0..200).map(|i| i % 7 == 0).collect();
        let b = WahBitmap::from_bools(&bits);
        assert_eq!(b.len(), 200);
        for (i, &bit) in bits.iter().enumerate() {
            assert_eq!(b.get(i as u64), bit, "bit {i}");
        }
        let ones: Vec<u64> = b.to_positions();
        let expect: Vec<u64> = (0..200).filter(|i| i % 7 == 0).collect();
        assert_eq!(ones, expect);
    }

    #[test]
    fn long_zero_run_compresses() {
        let b = WahBitmap::from_sorted_positions(1_000_000, &[0, 999_999]);
        assert!(b.size_in_bytes() < 64, "size {}", b.size_in_bytes());
        assert_eq!(b.count_ones(), 2);
        assert_eq!(b.to_positions(), vec![0, 999_999]);
    }

    #[test]
    fn long_one_run_compresses() {
        let b = WahBitmap::ones(1_000_000);
        assert!(b.size_in_bytes() < 64);
        assert_eq!(b.count_ones(), 1_000_000);
        assert!(b.get(0) && b.get(999_999));
    }

    #[test]
    fn padding_bits_are_not_ones() {
        // 33 bits = one full group + 2 bits: padding must not count.
        let b = WahBitmap::ones(33);
        assert_eq!(b.count_ones(), 33);
        assert_eq!(b.to_positions().len(), 33);
    }

    #[test]
    fn from_sorted_positions_matches_bools() {
        let pos = [3u64, 31, 32, 62, 63, 64, 100];
        let a = WahBitmap::from_sorted_positions(128, &pos);
        let bits: Vec<bool> = (0..128u64).map(|i| pos.contains(&i)).collect();
        let b = WahBitmap::from_bools(&bits);
        assert_eq!(a.to_positions(), b.to_positions());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn serialization_roundtrip() {
        let b = WahBitmap::from_sorted_positions(10_000, &[5, 93, 94, 95, 9_999]);
        let bytes = b.to_bytes();
        let (b2, consumed) = WahBitmap::from_bytes(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(b, b2);
    }

    #[test]
    fn serialization_rejects_garbage() {
        assert_eq!(
            WahBitmap::from_bytes(&[1, 2, 3]),
            Err(BitmapError::Truncated)
        );
        let mut bytes = WahBitmap::ones(10).to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            WahBitmap::from_bytes(&bytes),
            Err(BitmapError::BadMagic(_))
        ));
    }

    #[test]
    fn append_run_mixed() {
        let mut b = WahBuilder::new();
        b.append_run(false, 10);
        b.append_run(true, 50);
        b.append_run(false, 3);
        b.push(true);
        let bm = b.finish();
        assert_eq!(bm.len(), 64);
        assert_eq!(bm.count_ones(), 51);
        assert!(!bm.get(9));
        assert!(bm.get(10));
        assert!(bm.get(59));
        assert!(!bm.get(62));
        assert!(bm.get(63));
    }

    /// Reference run decomposition straight from per-bit iteration.
    fn naive_runs(b: &WahBitmap) -> Vec<(u64, u64, bool)> {
        let mut out: Vec<(u64, u64, bool)> = Vec::new();
        for pos in 0..b.len() {
            let bit = b.get(pos);
            match out.last_mut() {
                Some((_, len, rb)) if *rb == bit => *len += 1,
                _ => out.push((pos, 1, bit)),
            }
        }
        out
    }

    #[test]
    fn iter_runs_partitions_and_alternates() {
        let cases = [
            WahBitmap::from_sorted_positions(200, &[0, 1, 2, 50, 51, 199]),
            WahBitmap::ones(100),
            WahBitmap::zeros(100),
            WahBitmap::from_sorted_positions(1_000_000, &[0, 31, 62, 999_999]),
            WahBuilder::new().finish(),
            WahBitmap::from_bools(&(0..97).map(|i| i % 2 == 0).collect::<Vec<_>>()),
        ];
        for b in &cases {
            let runs: Vec<_> = b.iter_runs().collect();
            assert_eq!(runs, naive_runs(b));
            // Runs tile [0, len) and alternate bits.
            let mut cursor = 0u64;
            for w in runs.windows(2) {
                assert_ne!(w[0].2, w[1].2, "adjacent runs share a bit");
            }
            for &(start, len, _) in &runs {
                assert_eq!(start, cursor);
                assert!(len > 0);
                cursor += len;
            }
            assert_eq!(cursor, b.len());
        }
    }

    #[test]
    fn iter_runs_long_fills_are_single_runs() {
        // ones fill + literal tail of ones must merge into one run.
        let mut bld = WahBuilder::new();
        bld.append_run(true, 31 * 100);
        bld.append_run(true, 5);
        bld.append_run(false, 7);
        let b = bld.finish();
        let runs: Vec<_> = b.iter_runs().collect();
        assert_eq!(runs, vec![(0, 3105, true), (3105, 7, false)]);
    }

    #[test]
    fn rank_select_roundtrip() {
        let pos = [3u64, 31, 32, 62, 63, 64, 100, 9_999];
        let b = WahBitmap::from_sorted_positions(10_000, &pos);
        for (k, &p) in pos.iter().enumerate() {
            assert_eq!(b.select(k as u64), Some(p));
            assert_eq!(b.rank(p), k as u64);
            assert_eq!(b.rank(p + 1), k as u64 + 1);
        }
        assert_eq!(b.select(pos.len() as u64), None);
        assert_eq!(b.rank(0), 0);
        assert_eq!(b.rank(b.len()), b.count_ones());
    }

    #[test]
    fn dir_small_bitmap_is_empty_and_costless() {
        let b = WahBitmap::from_sorted_positions(1_000, &[1, 500, 999]);
        assert!(b.words().len() <= RANK_SAMPLE_WORDS);
        let dir = RankSelectDir::build(b.as_ref());
        assert!(dir.is_empty());
        assert_eq!(dir.size_in_bytes(), 0);
        assert!(dir.to_bytes().is_empty());
        // Queries still work through the empty directory.
        assert_eq!(b.as_ref().rank_with(&dir, 501), 2);
        assert_eq!(b.as_ref().select_with(&dir, 2), Some(999));
        assert_eq!(b.as_ref().rank_bit_with(&dir, 500), (1, true));
        assert_eq!(b.as_ref().rank_bit_with(&dir, 501), (2, false));
    }

    /// A bitmap long enough to carry samples: alternating literal noise
    /// and multi-group fills of both polarities.
    fn sampled_case() -> WahBitmap {
        let mut bld = WahBuilder::new();
        for i in 0..200u64 {
            match i % 4 {
                0 => {
                    for j in 0..31 {
                        bld.push((i + j) % 3 == 0);
                    }
                }
                1 => bld.append_run(false, 31 * (1 + i % 5)),
                2 => bld.append_run(true, 31 * (1 + i % 7)),
                _ => {
                    for j in 0..17 {
                        bld.push((i + j) % 2 == 0);
                    }
                }
            }
        }
        bld.finish()
    }

    #[test]
    fn dir_rank_select_match_linear() {
        let b = sampled_case();
        assert!(b.words().len() > RANK_SAMPLE_WORDS, "case too small");
        let dir = RankSelectDir::build(b.as_ref());
        assert!(!dir.is_empty());
        let r = b.as_ref();
        for pos in (0..b.len()).step_by(13) {
            assert_eq!(r.rank_with(&dir, pos), b.rank(pos), "rank at {pos}");
            let (rank, bit) = r.rank_bit_with(&dir, pos);
            assert_eq!(rank, b.rank(pos));
            assert_eq!(bit, b.get(pos), "bit at {pos}");
        }
        assert_eq!(r.rank_with(&dir, b.len()), b.count_ones());
        let total = b.count_ones();
        for k in (0..total).step_by(11) {
            assert_eq!(r.select_with(&dir, k), b.select(k), "select {k}");
            let p = r.select_with(&dir, k).unwrap();
            assert_eq!(r.rank_with(&dir, p), k, "rank(select({k}))");
        }
        assert_eq!(r.select_with(&dir, total), None);
    }

    #[test]
    fn dir_serde_roundtrip() {
        let b = sampled_case();
        let dir = RankSelectDir::build(b.as_ref());
        let bytes = dir.to_bytes();
        assert_eq!(bytes.len(), dir.size_in_bytes());
        let (dir2, consumed) = RankSelectDir::from_bytes(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(dir, dir2);
        // Empty roundtrip.
        let (e, c) = RankSelectDir::from_bytes(&[]).unwrap();
        assert!(e.is_empty());
        assert_eq!(c, 0);
        // Truncation is rejected.
        assert_eq!(
            RankSelectDir::from_bytes(&bytes[..bytes.len() - 1]),
            Err(BitmapError::Truncated)
        );
        assert_eq!(
            RankSelectDir::from_bytes(&bytes[..4]),
            Err(BitmapError::Truncated)
        );
    }

    #[test]
    fn dir_overhead_is_bounded() {
        let b = sampled_case();
        let dir = RankSelectDir::build(b.as_ref());
        let frac = dir.size_in_bytes() as f64 / b.size_in_bytes() as f64;
        assert!(frac <= 0.05, "directory overhead {frac:.3} > 5%");
    }

    #[test]
    fn giant_fill_merging() {
        // Force multiple merge paths in emit_fill.
        let mut b = WahBuilder::new();
        for _ in 0..10 {
            b.append_run(false, 31 * 1000);
        }
        let bm = b.finish();
        assert_eq!(bm.len(), 31 * 10_000);
        assert_eq!(bm.count_ones(), 0);
        // All merged into a single fill word.
        assert_eq!(bm.words().len(), 1);
    }
}
