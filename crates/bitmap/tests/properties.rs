//! Property-based tests: WAH bitmaps behave exactly like plain bit
//! vectors under construction, query, serialization, and logical ops.

use mloc_bitmap::{and, andnot, or, or_many, WahBitmap};
use proptest::prelude::*;

fn positions(bits: &[bool]) -> Vec<u64> {
    bits.iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i as u64))
        .collect()
}

proptest! {
    #[test]
    fn construction_matches_naive(bits in proptest::collection::vec(any::<bool>(), 0..400)) {
        let bm = WahBitmap::from_bools(&bits);
        prop_assert_eq!(bm.len(), bits.len() as u64);
        prop_assert_eq!(bm.to_positions(), positions(&bits));
        prop_assert_eq!(bm.count_ones(), positions(&bits).len() as u64);
    }

    #[test]
    fn sorted_positions_equals_bools(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
        let pos = positions(&bits);
        let a = WahBitmap::from_sorted_positions(bits.len() as u64, &pos);
        let b = WahBitmap::from_bools(&bits);
        prop_assert_eq!(a.to_positions(), b.to_positions());
    }

    #[test]
    fn serde_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let bm = WahBitmap::from_bools(&bits);
        let (back, n) = WahBitmap::from_bytes(&bm.to_bytes()).unwrap();
        prop_assert_eq!(n, bm.to_bytes().len());
        prop_assert_eq!(back, bm);
    }

    #[test]
    fn ops_match_naive(
        a in proptest::collection::vec(any::<bool>(), 100),
        b in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let ba = WahBitmap::from_bools(&a);
        let bb = WahBitmap::from_bools(&b);
        let want_and: Vec<u64> = (0..100).filter(|&i| a[i] && b[i]).map(|i| i as u64).collect();
        let want_or: Vec<u64> = (0..100).filter(|&i| a[i] || b[i]).map(|i| i as u64).collect();
        let want_nd: Vec<u64> = (0..100).filter(|&i| a[i] && !b[i]).map(|i| i as u64).collect();
        prop_assert_eq!(and(&ba, &bb).to_positions(), want_and);
        prop_assert_eq!(or(&ba, &bb).to_positions(), want_or);
        prop_assert_eq!(andnot(&ba, &bb).to_positions(), want_nd);
    }

    #[test]
    fn or_many_matches_fold(
        maps in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 64), 0..6)
    ) {
        let bms: Vec<WahBitmap> = maps.iter().map(|m| WahBitmap::from_bools(m)).collect();
        let got = or_many(&bms, 64);
        let mut want = vec![false; 64];
        for m in &maps {
            for (w, &b) in want.iter_mut().zip(m) {
                *w |= b;
            }
        }
        prop_assert_eq!(got.to_positions(), positions(&want));
    }

    #[test]
    fn sparse_bitmaps_stay_small(n_ones in 0usize..20) {
        let n = 1_000_000u64;
        let pos: Vec<u64> = (0..n_ones as u64).map(|i| i * 40_000).collect();
        let bm = WahBitmap::from_sorted_positions(n, &pos);
        // Each set bit costs at most ~3 words plus constant overhead.
        prop_assert!(bm.size_in_bytes() <= 24 + n_ones * 12);
        prop_assert_eq!(bm.to_positions(), pos);
    }
}
