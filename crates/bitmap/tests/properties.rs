//! Property-based tests: WAH bitmaps behave exactly like plain bit
//! vectors under construction, query, serialization, and logical ops.

use mloc_bitmap::{and, andnot, or, or_many, RankSelectDir, WahBitmap};
use proptest::prelude::*;

fn positions(bits: &[bool]) -> Vec<u64> {
    bits.iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i as u64))
        .collect()
}

proptest! {
    #[test]
    fn construction_matches_naive(bits in proptest::collection::vec(any::<bool>(), 0..400)) {
        let bm = WahBitmap::from_bools(&bits);
        prop_assert_eq!(bm.len(), bits.len() as u64);
        prop_assert_eq!(bm.to_positions(), positions(&bits));
        prop_assert_eq!(bm.count_ones(), positions(&bits).len() as u64);
    }

    #[test]
    fn sorted_positions_equals_bools(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
        let pos = positions(&bits);
        let a = WahBitmap::from_sorted_positions(bits.len() as u64, &pos);
        let b = WahBitmap::from_bools(&bits);
        prop_assert_eq!(a.to_positions(), b.to_positions());
    }

    #[test]
    fn serde_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let bm = WahBitmap::from_bools(&bits);
        let (back, n) = WahBitmap::from_bytes(&bm.to_bytes()).unwrap();
        prop_assert_eq!(n, bm.to_bytes().len());
        prop_assert_eq!(back, bm);
    }

    #[test]
    fn ops_match_naive(
        a in proptest::collection::vec(any::<bool>(), 100),
        b in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let ba = WahBitmap::from_bools(&a);
        let bb = WahBitmap::from_bools(&b);
        let want_and: Vec<u64> = (0..100).filter(|&i| a[i] && b[i]).map(|i| i as u64).collect();
        let want_or: Vec<u64> = (0..100).filter(|&i| a[i] || b[i]).map(|i| i as u64).collect();
        let want_nd: Vec<u64> = (0..100).filter(|&i| a[i] && !b[i]).map(|i| i as u64).collect();
        prop_assert_eq!(and(&ba, &bb).to_positions(), want_and);
        prop_assert_eq!(or(&ba, &bb).to_positions(), want_or);
        prop_assert_eq!(andnot(&ba, &bb).to_positions(), want_nd);
    }

    #[test]
    fn or_many_matches_fold(
        maps in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 64), 0..6)
    ) {
        let bms: Vec<WahBitmap> = maps.iter().map(|m| WahBitmap::from_bools(m)).collect();
        let got = or_many(&bms, 64);
        let mut want = vec![false; 64];
        for m in &maps {
            for (w, &b) in want.iter_mut().zip(m) {
                *w |= b;
            }
        }
        prop_assert_eq!(got.to_positions(), positions(&want));
    }

    #[test]
    fn iter_runs_equals_iter_ones(bits in proptest::collection::vec(any::<bool>(), 0..500)) {
        let bm = WahBitmap::from_bools(&bits);
        // Expanding one-runs reproduces iter_ones exactly; run lengths
        // tile the whole bitmap with alternating bits.
        let mut from_runs: Vec<u64> = Vec::new();
        let mut cursor = 0u64;
        let mut last_bit: Option<bool> = None;
        for (start, len, bit) in bm.iter_runs() {
            prop_assert_eq!(start, cursor);
            prop_assert!(len > 0);
            prop_assert_ne!(Some(bit), last_bit, "adjacent runs share a bit");
            if bit {
                from_runs.extend(start..start + len);
            }
            cursor += len;
            last_bit = Some(bit);
        }
        prop_assert_eq!(cursor, bm.len());
        prop_assert_eq!(from_runs.len() as u64, bm.as_ref().count_ones());
        prop_assert_eq!(from_runs, bm.iter_ones().collect::<Vec<u64>>());
    }

    #[test]
    fn iter_runs_equals_iter_ones_with_long_fills(
        segments in proptest::collection::vec((any::<bool>(), 1u64..5_000), 1..12)
    ) {
        // Long fill runs (many whole groups) plus odd-length tails that
        // end in partial literals.
        let mut b = mloc_bitmap::WahBuilder::new();
        for &(bit, n) in &segments {
            b.append_run(bit, n);
        }
        let bm = b.finish();
        let mut from_runs: Vec<u64> = Vec::new();
        let mut cursor = 0u64;
        for (start, len, bit) in bm.iter_runs() {
            prop_assert_eq!(start, cursor);
            if bit {
                from_runs.extend(start..start + len);
            }
            cursor += len;
        }
        prop_assert_eq!(cursor, bm.len());
        prop_assert_eq!(from_runs, bm.iter_ones().collect::<Vec<u64>>());
    }

    #[test]
    fn for_each_one_run_equals_iter_ones(bits in proptest::collection::vec(any::<bool>(), 0..500)) {
        let bm = WahBitmap::from_bools(&bits);
        // `(gap, ones_before, len)` visits reproduce iter_ones exactly:
        // gaps accumulate into the next run's start, `ones_before` is
        // the running rank, and runs are non-empty (though trailing
        // zeros are never reported and runs need not be maximal).
        let mut from_runs: Vec<u64> = Vec::new();
        let mut cursor = 0u64;
        let mut rank = 0u64;
        bm.as_ref().for_each_one_run(|gap, ones_before, len| {
            cursor += gap;
            assert_eq!(ones_before, rank, "ones_before must be the running rank");
            assert!(len > 0, "empty one-run reported");
            from_runs.extend(cursor..cursor + len);
            cursor += len;
            rank += len;
        });
        prop_assert!(cursor <= bm.len());
        prop_assert_eq!(rank, bm.as_ref().count_ones());
        prop_assert_eq!(from_runs, bm.iter_ones().collect::<Vec<u64>>());
    }

    #[test]
    fn for_each_one_run_with_long_fills(
        segments in proptest::collection::vec((any::<bool>(), 1u64..5_000), 1..12)
    ) {
        let mut b = mloc_bitmap::WahBuilder::new();
        for &(bit, n) in &segments {
            b.append_run(bit, n);
        }
        let bm = b.finish();
        let mut from_runs: Vec<u64> = Vec::new();
        let mut cursor = 0u64;
        bm.as_ref().for_each_one_run(|gap, _, len| {
            cursor += gap;
            from_runs.extend(cursor..cursor + len);
            cursor += len;
        });
        prop_assert!(cursor <= bm.len());
        prop_assert_eq!(from_runs, bm.iter_ones().collect::<Vec<u64>>());
    }

    #[test]
    fn rank_select_match_naive(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
        let bm = WahBitmap::from_bools(&bits);
        let ones = positions(&bits);
        for (k, &p) in ones.iter().enumerate() {
            prop_assert_eq!(bm.select(k as u64), Some(p));
        }
        prop_assert_eq!(bm.select(ones.len() as u64), None);
        for pos in 0..=bits.len() {
            let want = bits[..pos].iter().filter(|&&b| b).count() as u64;
            prop_assert_eq!(bm.rank(pos as u64), want);
        }
    }

    #[test]
    fn dir_rank_select_match_naive(bits in proptest::collection::vec(any::<bool>(), 1..400)) {
        let bm = WahBitmap::from_bools(&bits);
        let dir = RankSelectDir::build(bm.as_ref());
        let r = bm.as_ref();
        let ones = positions(&bits);
        for (k, &p) in ones.iter().enumerate() {
            prop_assert_eq!(r.select_with(&dir, k as u64), Some(p));
            prop_assert_eq!(r.rank_with(&dir, r.select_with(&dir, k as u64).unwrap()), k as u64);
        }
        prop_assert_eq!(r.select_with(&dir, ones.len() as u64), None);
        for pos in 0..=bits.len() {
            let want = bits[..pos].iter().filter(|&&b| b).count() as u64;
            prop_assert_eq!(r.rank_with(&dir, pos as u64), want);
            if pos < bits.len() {
                prop_assert_eq!(r.rank_bit_with(&dir, pos as u64), (want, bits[pos]));
            }
        }
    }

    #[test]
    fn dir_rank_select_with_long_fills(
        segments in proptest::collection::vec((any::<bool>(), 1u64..9_000), 1..16)
    ) {
        // Multi-group fills and trailing partial groups: bitmaps long
        // enough here to carry real (non-empty) sampled directories.
        let mut b = mloc_bitmap::WahBuilder::new();
        for &(bit, n) in &segments {
            b.append_run(bit, n);
        }
        let bm = b.finish();
        let dir = RankSelectDir::build(bm.as_ref());
        let r = bm.as_ref();
        let total = bm.count_ones();
        let step = (bm.len() / 97).max(1);
        let mut pos = 0;
        while pos <= bm.len() {
            prop_assert_eq!(r.rank_with(&dir, pos), bm.rank(pos));
            if pos < bm.len() {
                prop_assert_eq!(r.rank_bit_with(&dir, pos), (bm.rank(pos), bm.get(pos)));
            }
            pos += step;
        }
        let kstep = (total / 97).max(1);
        let mut k = 0;
        while k < total {
            let p = r.select_with(&dir, k);
            prop_assert_eq!(p, bm.select(k));
            prop_assert_eq!(r.rank_with(&dir, p.unwrap()), k, "rank(select(k)) roundtrip");
            k += kstep;
        }
        prop_assert_eq!(r.select_with(&dir, total), None);
        // Serialized directory survives a roundtrip and stays bounded.
        let bytes = dir.to_bytes();
        let (back, n) = RankSelectDir::from_bytes(&bytes).unwrap();
        prop_assert_eq!(n, bytes.len());
        prop_assert_eq!(&back, &dir);
        prop_assert!(dir.size_in_bytes() == 0 || dir.size_in_bytes() * 20 <= bm.size_in_bytes() + 160);
    }

    #[test]
    fn sparse_bitmaps_stay_small(n_ones in 0usize..20) {
        let n = 1_000_000u64;
        let pos: Vec<u64> = (0..n_ones as u64).map(|i| i * 40_000).collect();
        let bm = WahBitmap::from_sorted_positions(n, &pos);
        // Each set bit costs at most ~3 words plus constant overhead.
        prop_assert!(bm.size_in_bytes() <= 24 + n_ones * 12);
        prop_assert_eq!(bm.to_positions(), pos);
    }
}
