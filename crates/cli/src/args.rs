//! Minimal flag parsing for the `mloc` CLI (no external crates).

use std::collections::BTreeMap;

/// Parsed invocation: a subcommand plus `--key value` flags.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding argv[0]).
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
        let command = argv.next().ok_or_else(usage)?;
        let mut flags = BTreeMap::new();
        while let Some(a) = argv.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {a:?}"))?;
            let value = argv
                .next()
                .ok_or_else(|| format!("--{key} needs a value"))?;
            if flags.insert(key.to_string(), value).is_some() {
                return Err(format!("--{key} given twice"));
            }
        }
        Ok(Args { command, flags })
    }

    /// A required flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// An optional flag parsed to a type.
    pub fn optional_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }
}

/// Parse a comma-separated list of positive integers ("256,256").
pub fn parse_dims(s: &str) -> Result<Vec<usize>, String> {
    let dims: Result<Vec<usize>, _> = s.split(',').map(|p| p.trim().parse()).collect();
    let dims = dims.map_err(|_| format!("cannot parse dimensions {s:?}"))?;
    if dims.is_empty() || dims.contains(&0) {
        return Err(format!("dimensions must be positive: {s:?}"));
    }
    Ok(dims)
}

/// Parse a region "a:b,c:d,…" into per-dimension half-open ranges.
pub fn parse_region(s: &str) -> Result<Vec<(usize, usize)>, String> {
    s.split(',')
        .map(|part| {
            let (a, b) = part
                .split_once(':')
                .ok_or_else(|| format!("range {part:?} must be start:end"))?;
            let a: usize = a.trim().parse().map_err(|_| format!("bad start {a:?}"))?;
            let b: usize = b.trim().parse().map_err(|_| format!("bad end {b:?}"))?;
            if a >= b {
                return Err(format!("empty range {part:?}"));
            }
            Ok((a, b))
        })
        .collect()
}

/// Parse a value constraint "lo:hi".
pub fn parse_vc(s: &str) -> Result<(f64, f64), String> {
    let (a, b) = s
        .split_once(':')
        .ok_or_else(|| format!("value constraint {s:?} must be lo:hi"))?;
    let lo: f64 = a.trim().parse().map_err(|_| format!("bad lo {a:?}"))?;
    let hi: f64 = b.trim().parse().map_err(|_| format!("bad hi {b:?}"))?;
    // NaN on either side must be rejected, hence partial_cmp.
    if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
        return Err(format!("empty value constraint {s:?}"));
    }
    Ok((lo, hi))
}

/// The usage string (also the error for a missing subcommand).
pub fn usage() -> String {
    "\
mloc — build, inspect and query MLOC datasets

USAGE:
  mloc create    --dir DIR --name DS --shape N,N[,N] [--chunk N,N[,N]]
                 [--bins B] [--codec raw|deflate|isobar|fpc|isabela:EPS]
                 [--order vms|vsm] [--multires LEVELS]
  mloc import    --dir DIR --name DS --var NAME
                 (--raw FILE | --synthetic gts|s3d [--seed S])
                 [--build-threads N]   (0 = one per core; output is
                                        byte-identical for any N)
                 [--crash-plan FILE]  (deterministic write-path crash
                                       injection; directives:
                                       crash_at=N (die at write op N),
                                       torn_keep=K (tear that op's
                                       append after K bytes),
                                       dropsync SUBSTR (matching
                                       fsyncs lie); recover with
                                       `mloc repair`)
                 [--profile table|json]
  mloc info      --dir DIR --name DS
  mloc stats     --dir DIR --name DS [--var NAME] [--json true]
                 (per-bin storage breakdown from the on-disk files)
  mloc query     --dir DIR --name DS --var NAME [--vc LO:HI]
                 [--sc A:B,C:D[,E:F]] [--plod 1..7] [--values true]
                 [--ranks R] [--limit K] [--cache-mb MB] [--repeat N]
                 [--progressive true] (serve a base-precision answer
                                       first, then pull byte-group
                                       refinements; prints per-step
                                       bytes and error bounds)
                 [--target-error EPS] (stop refining at this worst-case
                                       relative error bound; implies
                                       --progressive true)
                 [--retry N]          (attempts per read, incl. the
                                       first; backoff is simulated)
                 [--no-degrade true]  (fail instead of answering at
                                       reduced PLoD precision when a
                                       non-base byte group is lost)
                 [--fault-plan FILE]  (inject deterministic storage
                                       faults; directives: seed=N,
                                       transient_rate=P, max_transient=N,
                                       lose SUBSTR, flip FILE OFF MASK,
                                       torn FILE KEEP)
                 [--profile table|json]   (span/counter profile of the
                                           final pass)
  mloc serve     --dir DIR --name DS --workload FILE
                 [--workers N] [--window N] [--ranks R]
                 [--cache-mb MB] [--fusion false] [--retry N]
                 [--threaded true]
                 (run a multi-session workload: FILE lines are
                    budget TENANT bytes=N [io_s=SECONDS]
                    session TENANT VAR [vc=LO:HI] [sc=A:B,C:D]
                                       [plod=1..7] [values]
                                       [progressive] [target_error=EPS]
                  sessions are admitted in FIFO windows; overlapping
                  extent reads within a window are fused and read
                  from the PFS once)
  mloc verify    --dir DIR --name DS [--var NAME] [--json true]
                 (recompute every extent checksum; exits nonzero and
                  pinpoints file/offset/extent of any damage)
  mloc fsck      --dir DIR --name DS [--json true]
                 (classify every file after a crash — committed, torn,
                  missing, orphaned — against the catalog and the
                  footer commit markers; exits nonzero when repair is
                  needed)
  mloc repair    --dir DIR --name DS [--json true]
                 (restore torn/missing files from replica copies, roll
                  back uncommitted builds, reattach complete variables
                  the crash left out of the catalog; exits nonzero
                  only when damage is unrepairable)
  mloc variables --dir DIR --name DS

STORAGE (all commands):
  --shards N      spread the dataset over DIR/shard0..N-1 behind a
                  name-hash router; every command (create, import,
                  query, verify, ...) must use the same --shards the
                  dataset was created with. Default 1 keeps the flat
                  single-directory layout.
  --pool-depth D  service read batches with D concurrent workers per
                  directory (io_uring-style submission pool) instead
                  of the sequential cached backend.
  --replicas R    keep R copies of every file, on R distinct shards
                  (requires --shards >= R). Reads fall through to the
                  next replica on error and write the healthy copy
                  back; `mloc repair` restores torn files from
                  replicas. Use the same --replicas for every command
                  on the dataset.
  --hedge-ms T    hedge straggling read batches after T milliseconds:
                  under --shards with --replicas >= 2 the unfinished
                  shard slices are re-submitted to the next replica;
                  under --pool-depth the unfinished chunks are
                  re-queued on the pool. Results are byte-identical
                  either way; only latency changes.
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Result<Args, String> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = args(&["query", "--dir", "/tmp/x", "--vc", "1:2"]).unwrap();
        assert_eq!(a.command, "query");
        assert_eq!(a.required("dir").unwrap(), "/tmp/x");
        assert_eq!(a.optional("vc"), Some("1:2"));
        assert_eq!(a.optional("nope"), None);
        assert!(a.required("name").is_err());
    }

    #[test]
    fn rejects_malformed_flags() {
        assert!(args(&[]).is_err());
        assert!(args(&["info", "dir"]).is_err());
        assert!(args(&["info", "--dir"]).is_err());
        assert!(args(&["info", "--dir", "a", "--dir", "b"]).is_err());
    }

    #[test]
    fn dims_region_vc() {
        assert_eq!(parse_dims("256, 256").unwrap(), vec![256, 256]);
        assert!(parse_dims("0,4").is_err());
        assert!(parse_dims("a,b").is_err());
        assert_eq!(parse_region("0:4,2:8").unwrap(), vec![(0, 4), (2, 8)]);
        assert!(parse_region("4:4").is_err());
        assert!(parse_region("4").is_err());
        assert_eq!(parse_vc("-1.5:2.5").unwrap(), (-1.5, 2.5));
        assert!(parse_vc("2:1").is_err());
    }

    #[test]
    fn optional_parsed_types() {
        let a = args(&["q", "--ranks", "8", "--bad", "x"]).unwrap();
        assert_eq!(a.optional_parsed::<usize>("ranks").unwrap(), Some(8));
        assert!(a.optional_parsed::<usize>("bad").is_err());
        assert_eq!(a.optional_parsed::<usize>("missing").unwrap(), None);
    }
}
