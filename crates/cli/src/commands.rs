//! Command implementations for the `mloc` CLI.

use crate::args::{parse_dims, parse_region, parse_vc, usage, Args};
use mloc::dataset::Dataset;
use mloc::exec::ParallelExecutor;
use mloc::prelude::*;
use mloc_compress::CodecKind;
use mloc_pfs::{
    CostModel, CrashBackend, CrashPlan, DirBackend, FaultBackend, FaultPlan, PoolDirBackend,
    RetryPolicy, ShardRouter, StorageBackend,
};
use mloc_serve::{QueryServer, ServeConfig, SessionSpec, TenantBudget};

/// Dispatch a parsed invocation.
pub fn dispatch(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "create" => create(args),
        "import" => import(args),
        "info" => info(args),
        "variables" => variables(args),
        "stats" => stats(args),
        "query" => query(args),
        "serve" => serve(args),
        "verify" => verify(args),
        "fsck" => fsck(args),
        "repair" => repair(args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// Open the storage backend selected by the flags.
///
/// Default is a flat [`DirBackend`] rooted at `--dir` (files live
/// directly in that directory, as every prior release laid them out).
/// `--pool-depth D` swaps in a [`PoolDirBackend`] that services read
/// batches with D concurrent workers over a shared handle cache.
/// `--shards N` (N > 1) spreads the namespace over `DIR/shard0..N-1`
/// behind a [`ShardRouter`]; a dataset must be read back with the same
/// `--shards` it was created with.
fn backend(args: &Args) -> Result<Box<dyn StorageBackend>, String> {
    let dir = args.required("dir")?;
    let shards = args.optional_parsed::<usize>("shards")?.unwrap_or(1);
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let depth = args.optional_parsed::<usize>("pool-depth")?;
    if depth == Some(0) {
        return Err("--pool-depth must be at least 1".into());
    }
    let replicas = args.optional_parsed::<usize>("replicas")?.unwrap_or(1);
    if replicas == 0 {
        return Err("--replicas must be at least 1".into());
    }
    if replicas > shards {
        return Err(format!(
            "--replicas {replicas} needs at least that many shards (--shards {shards})"
        ));
    }
    let hedge_s = match args.optional_parsed::<f64>("hedge-ms")? {
        Some(ms) if !(ms >= 0.0 && ms.is_finite()) => {
            return Err("--hedge-ms must be a non-negative number".into())
        }
        Some(ms) => Some(ms / 1000.0),
        None => None,
    };
    if hedge_s.is_some() && shards == 1 && depth.is_none() {
        return Err("--hedge-ms needs --shards > 1 or --pool-depth".into());
    }
    // Under a shard router the hedge re-submits whole shard slices to
    // the next replica, so it lives in the router; in a flat layout it
    // lives in the pool backend.
    let pool_hedge = if shards == 1 { hedge_s } else { None };
    let open = |root: String| -> Result<Box<dyn StorageBackend>, String> {
        Ok(match depth {
            Some(d) => {
                let mut pool = PoolDirBackend::new(&root, d)
                    .map_err(|e| format!("cannot open {root}: {e}"))?;
                if let Some(t) = pool_hedge {
                    pool = pool.with_hedge(t);
                }
                Box::new(pool)
            }
            None => {
                Box::new(DirBackend::new(&root).map_err(|e| format!("cannot open {root}: {e}"))?)
            }
        })
    };
    if shards == 1 {
        return open(dir.to_string());
    }
    let shard_backends = (0..shards)
        .map(|s| open(format!("{dir}/shard{s}")))
        .collect::<Result<Vec<_>, String>>()?;
    let mut router =
        ShardRouter::replicated(shard_backends, replicas).map_err(|e| e.to_string())?;
    if let Some(t) = hedge_s {
        router = router.with_hedge(t);
    }
    Ok(Box::new(router))
}

fn parse_codec(s: &str) -> Result<CodecKind, String> {
    if let Some(eps) = s.strip_prefix("isabela:") {
        let eps: f64 = eps
            .parse()
            .map_err(|_| format!("bad isabela bound {eps:?}"))?;
        if !(eps > 0.0 && eps.is_finite()) {
            return Err("isabela bound must be positive".into());
        }
        return Ok(CodecKind::Isabela { error_bound: eps });
    }
    match s {
        "raw" => Ok(CodecKind::Raw),
        "deflate" => Ok(CodecKind::Deflate),
        "isobar" => Ok(CodecKind::Isobar),
        "fpc" => Ok(CodecKind::Fpc),
        "isabela" => Ok(CodecKind::Isabela { error_bound: 0.001 }),
        other => Err(format!("unknown codec {other:?}")),
    }
}

/// How `--profile` output should be rendered.
#[derive(Clone, Copy, PartialEq)]
enum ProfileMode {
    Off,
    Table,
    Json,
}

fn parse_profile(args: &Args) -> Result<ProfileMode, String> {
    match args.optional("profile") {
        None | Some("false") => Ok(ProfileMode::Off),
        Some("true") | Some("table") => Ok(ProfileMode::Table),
        Some("json") => Ok(ProfileMode::Json),
        Some(other) => Err(format!("--profile {other:?} (expected table|json)")),
    }
}

fn print_profile(mode: ProfileMode, profile: &mloc::obs::Profile) {
    match mode {
        ProfileMode::Off => {}
        ProfileMode::Table => print!("{}", profile.render()),
        ProfileMode::Json => println!("{}", profile.to_json()),
    }
}

fn create(args: &Args) -> Result<(), String> {
    let be = backend(args)?;
    let name = args.required("name")?;
    let shape = parse_dims(args.required("shape")?)?;

    let mut builder = MlocConfig::builder(shape.clone());
    if let Some(chunk) = args.optional("chunk") {
        builder = builder.chunk_shape(parse_dims(chunk)?);
    }
    if let Some(bins) = args.optional_parsed::<usize>("bins")? {
        builder = builder.num_bins(bins);
    }
    if let Some(codec) = args.optional("codec") {
        builder = builder.codec(parse_codec(codec)?);
    }
    if let Some(levels) = args.optional_parsed::<u32>("multires")? {
        builder = builder.subset_levels(levels);
    }
    if let Some(order) = args.optional("order") {
        builder = builder.level_order(match order {
            "vms" => LevelOrder::Vms,
            "vsm" => LevelOrder::Vsm,
            other => return Err(format!("unknown order {other:?} (vms|vsm)")),
        });
    }
    let config = builder.build();
    Dataset::create(&be, name, config.clone()).map_err(|e| e.to_string())?;
    println!(
        "created dataset {name}: shape {:?}, chunks {:?}, {} bins, codec {}, order {}",
        config.shape,
        config.chunk_shape,
        config.num_bins,
        config.codec.name(),
        config.level_order.name()
    );
    Ok(())
}

fn load_values(args: &Args, shape: &[usize]) -> Result<Vec<f64>, String> {
    let n: usize = shape.iter().product();
    if let Some(path) = args.optional("raw") {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        if bytes.len() != n * 8 {
            return Err(format!(
                "{path}: expected {} bytes ({n} little-endian f64), got {}",
                n * 8,
                bytes.len()
            ));
        }
        return Ok(bytes
            .chunks_exact(8)
            // chunks_exact(8) only yields 8-byte slices.
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect());
    }
    let seed = args.optional_parsed::<u64>("seed")?.unwrap_or(42);
    match args.optional("synthetic") {
        Some("gts") => {
            if shape.len() != 2 {
                return Err("synthetic gts needs a 2-D dataset".into());
            }
            Ok(mloc_datagen::gts_like_2d(shape[0], shape[1], seed).into_values())
        }
        Some("s3d") => {
            if shape.len() != 3 {
                return Err("synthetic s3d needs a 3-D dataset".into());
            }
            Ok(mloc_datagen::s3d_like_3d(shape[0], shape[1], shape[2], seed).into_values())
        }
        Some(other) => Err(format!("unknown synthetic source {other:?} (gts|s3d)")),
        None => Err("import needs --raw FILE or --synthetic gts|s3d".into()),
    }
}

fn import(args: &Args) -> Result<(), String> {
    // An optional crash plan wraps the backend in the deterministic
    // crash injector: writes buffer in a volatile overlay (the "page
    // cache") until fsynced, and at write op N the process "dies" —
    // unflushed state is discarded and the import fails. `mloc fsck`
    // then classifies the debris and `mloc repair` rolls it back.
    if let Some(path) = args.optional("crash-plan") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let plan = CrashPlan::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let be = CrashBackend::new(backend(args)?, plan);
        let result = import_into(&be, args);
        if be.crashed() {
            return Err(format!(
                "simulated crash after {} write op(s); durable state only — run \
                 `mloc fsck` / `mloc repair` to recover",
                be.write_ops()
            ));
        }
        return result;
    }
    let be = backend(args)?;
    import_into(&be, args)
}

fn import_into(be: &dyn StorageBackend, args: &Args) -> Result<(), String> {
    let mut ds = Dataset::open(be, args.required("name")?).map_err(|e| e.to_string())?;
    if let Some(threads) = args.optional_parsed::<usize>("build-threads")? {
        ds.set_build_threads(threads);
    }
    let var = args.required("var")?;
    let values = load_values(args, &ds.config().shape)?;
    let report = ds.add_variable(var, &values).map_err(|e| e.to_string())?;
    println!(
        "imported {var}: {} raw -> {} data + {} index bytes ({:.0}% of raw) in {:.2}s",
        report.raw_bytes,
        report.data_bytes,
        report.index_bytes,
        report.total_ratio() * 100.0,
        report.build_seconds
    );
    println!(
        "  stages ({} threads): encode {:.2}s, layout {:.2}s, write {:.2}s",
        ds.config().effective_build_threads(),
        report.encode_seconds,
        report.layout_seconds,
        report.write_seconds
    );
    print_profile(parse_profile(args)?, &report.profile);
    Ok(())
}

fn info(args: &Args) -> Result<(), String> {
    let be = backend(args)?;
    let ds = Dataset::open(&be, args.required("name")?).map_err(|e| e.to_string())?;
    let c = ds.config();
    println!("dataset : {}", ds.name());
    println!("shape   : {:?}", c.shape);
    println!("chunks  : {:?} ({} per variable)", c.chunk_shape, {
        let g = mloc::ChunkGrid::new(c.shape.clone(), c.chunk_shape.clone());
        g.num_chunks()
    });
    println!("bins    : {}", c.num_bins);
    println!("codec   : {}", c.codec.name());
    println!("order   : {}", c.level_order.name());
    println!(
        "plod    : {}",
        if c.plod {
            "byte columns"
        } else {
            "whole values"
        }
    );
    println!("stored  : {} bytes", ds.stored_bytes());
    let vars = ds.variables().map_err(|e| e.to_string())?;
    println!("variables ({}):", vars.len());
    for v in vars {
        println!("  {v}");
    }
    Ok(())
}

fn variables(args: &Args) -> Result<(), String> {
    let be = backend(args)?;
    let ds = Dataset::open(&be, args.required("name")?).map_err(|e| e.to_string())?;
    for v in ds.variables().map_err(|e| e.to_string())? {
        println!("{v}");
    }
    Ok(())
}

/// Per-variable, per-bin storage breakdown from the on-disk file sizes.
fn stats(args: &Args) -> Result<(), String> {
    let be = backend(args)?;
    let name = args.required("name")?;
    let ds = Dataset::open(&be, name).map_err(|e| e.to_string())?;
    let vars = match args.optional("var") {
        Some(v) => vec![v.to_string()],
        None => ds.variables().map_err(|e| e.to_string())?,
    };
    let json = args.optional("json").is_some_and(|v| v == "true");
    let mut json_vars = Vec::new();
    let nshards = be.shard_count();
    for var in &vars {
        let store = ds.store(var).map_err(|e| e.to_string())?;
        let num_bins = store.config().num_bins;
        let bounds = store.bins().bounds().to_vec();
        let num_chunks = store.grid().num_chunks();
        let mut rows = Vec::new();
        let mut data_total = 0u64;
        let mut index_total = 0u64;
        let mut summary_total = 0u64;
        for bin in 0..num_bins {
            let idx_file = store.index_file(bin);
            let data = be.len(&store.data_file(bin)).map_err(|e| e.to_string())?;
            let index = be.len(&idx_file).map_err(|e| e.to_string())?;
            // The v2 chunk-summary section is fixed-size given the
            // chunk count; v1 files (version byte 1) carry none.
            let version = be.read(&idx_file, 4, 1).map_err(|e| e.to_string())?[0];
            let summary = if version >= 2 {
                mloc::index::summary_size(num_chunks)
            } else {
                0
            };
            data_total += data;
            index_total += index;
            summary_total += summary;
            rows.push((bin, data, index, summary));
        }
        let raw = store.total_points() * 8;
        if json {
            let bins: Vec<String> = rows
                .iter()
                .map(|(bin, data, index, summary)| {
                    format!(
                        "{{\"bin\":{bin},\"lo\":{:?},\"hi\":{:?},\"data_bytes\":{data},\
                         \"index_bytes\":{index},\"summary_bytes\":{summary}}}",
                        bounds[*bin],
                        bounds[bin + 1]
                    )
                })
                .collect();
            json_vars.push(format!(
                "{{\"var\":{var:?},\"raw_bytes\":{raw},\"data_bytes\":{data_total},\
                 \"index_bytes\":{index_total},\"summary_bytes\":{summary_total},\
                 \"bins\":[{}]}}",
                bins.join(",")
            ));
        } else {
            println!(
                "{var}: {} points, {} data + {} index bytes ({:.1}% of raw, {} summary)",
                store.total_points(),
                data_total,
                index_total,
                (data_total + index_total) as f64 / raw as f64 * 100.0,
                summary_total
            );
            println!(
                "  {:>4}  {:>22}  {:>12}  {:>12}  {:>9}",
                "bin", "values", "data", "index", "summary"
            );
            for (bin, data, index, summary) in rows {
                println!(
                    "  {bin:>4}  [{:>9.3}, {:>9.3})  {data:>12}  {index:>12}  {summary:>9}",
                    bounds[bin],
                    bounds[bin + 1]
                );
            }
        }
    }
    // Per-shard breakdown: where this dataset's bytes physically live.
    // Only meaningful (and only printed) under --shards N > 1.
    let mut json_shards = String::new();
    if nshards > 1 {
        let prefix = format!("{name}/");
        let mut files = vec![0u64; nshards];
        let mut bytes = vec![0u64; nshards];
        for f in be.list() {
            if !f.starts_with(&prefix) {
                continue;
            }
            let s = be.shard_of(&f);
            files[s] += 1;
            bytes[s] += be.len(&f).map_err(|e| e.to_string())?;
        }
        // Replica health: for every file and replica slot, is the
        // copy actually present on its shard? A shard that lost its
        // disk shows missing copies here (until reads or `mloc
        // repair` write them back).
        let replicas = be.replica_count();
        let mut expected = vec![0u64; nshards];
        let mut present = vec![0u64; nshards];
        if replicas > 1 {
            for f in be.list() {
                if !f.starts_with(&prefix) {
                    continue;
                }
                for k in 0..replicas {
                    let s = be.replica_shard_of(&f, k);
                    expected[s] += 1;
                    if be.len_replica(&f, k).is_ok() {
                        present[s] += 1;
                    }
                }
            }
        }
        if json {
            let rows: Vec<String> = (0..nshards)
                .map(|s| {
                    let health = if replicas > 1 {
                        format!(
                            ",\"replica_copies_expected\":{},\"replica_copies_present\":{}",
                            expected[s], present[s]
                        )
                    } else {
                        String::new()
                    };
                    format!(
                        "{{\"shard\":{s},\"files\":{},\"bytes\":{}{health}}}",
                        files[s], bytes[s]
                    )
                })
                .collect();
            let repair_note = if replicas > 1 {
                format!(
                    ",\"replicas\":{replicas},\"read_repairs\":{}",
                    be.read_repair_count()
                )
            } else {
                String::new()
            };
            json_shards = format!(",\"shards\":[{}]{repair_note}", rows.join(","));
        } else {
            println!("shards ({nshards}):");
            for s in 0..nshards {
                let health = if replicas > 1 {
                    let state = if present[s] == expected[s] {
                        "healthy".to_string()
                    } else {
                        format!("{} missing", expected[s] - present[s])
                    };
                    format!(" | replica copies {}/{} ({state})", present[s], expected[s])
                } else {
                    String::new()
                };
                println!(
                    "  shard {s}: {} file(s), {} bytes{health}",
                    files[s], bytes[s]
                );
            }
            if replicas > 1 {
                println!(
                    "replication: {replicas} copies per file, {} read-repair(s) this session",
                    be.read_repair_count()
                );
            }
        }
    }
    if json {
        println!("{{\"variables\":[{}]{json_shards}}}", json_vars.join(","));
    }
    Ok(())
}

/// Recompute every stored checksum and map the damage.
fn verify(args: &Args) -> Result<(), String> {
    let be = backend(args)?;
    let name = args.required("name")?;
    let report = match args.optional("var") {
        Some(var) => mloc::verify_variable(&be, name, var),
        None => mloc::verify_dataset(&be, name),
    }
    .map_err(|e| e.to_string())?;
    if args.optional("json").is_some_and(|v| v == "true") {
        let damage: Vec<String> = report
            .damage
            .iter()
            .map(|d| {
                format!(
                    "{{\"file\":{:?},\"offset\":{},\"len\":{},\"what\":{:?}}}",
                    d.file, d.offset, d.len, d.what
                )
            })
            .collect();
        println!(
            "{{\"clean\":{},\"files_checked\":{},\"extents_checked\":{},\"damage\":[{}]}}",
            report.is_clean(),
            report.files_checked,
            report.extents_checked,
            damage.join(",")
        );
    } else {
        println!("{}", report.to_string().trim_end());
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} damaged extent(s) found", report.damage.len()))
    }
}

/// Classify every file of a dataset after a crash (read-only).
fn fsck(args: &Args) -> Result<(), String> {
    let be = backend(args)?;
    let name = args.required("name")?;
    let report = mloc::repair::fsck(&be, name).map_err(|e| e.to_string())?;
    if args.optional("json").is_some_and(|v| v == "true") {
        let findings: Vec<String> = report
            .findings
            .iter()
            .map(|d| {
                format!(
                    "{{\"file\":{:?},\"class\":\"{}\",\"what\":{:?}}}",
                    d.file, d.class, d.what
                )
            })
            .collect();
        let list = |v: &[String]| {
            v.iter()
                .map(|s| format!("{s:?}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        println!(
            "{{\"clean\":{},\"catalog_ok\":{},\"files_checked\":{},\"committed\":[{}],\
             \"unlisted\":[{}],\"uncommitted\":[{}],\"findings\":[{}]}}",
            report.is_clean(),
            report.catalog_ok,
            report.files_checked,
            list(&report.committed),
            list(&report.unlisted),
            list(&report.uncommitted),
            findings.join(",")
        );
    } else {
        println!("{}", report.to_string().trim_end());
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{} finding(s); run `mloc repair` to recover",
            report.findings.len() + report.unlisted.len()
        ))
    }
}

/// Repair a dataset in place: replica restore, rollback, catalog
/// reconciliation. Fails only when damage is unrepairable.
fn repair(args: &Args) -> Result<(), String> {
    let be = backend(args)?;
    let name = args.required("name")?;
    let report = mloc::repair::repair(&be, name).map_err(|e| e.to_string())?;
    if args.optional("json").is_some_and(|v| v == "true") {
        let list = |v: &[String]| {
            v.iter()
                .map(|s| format!("{s:?}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        println!(
            "{{\"healthy\":{},\"restored\":[{}],\"rolled_back\":[{}],\"removed_files\":{},\
             \"reattached\":[{}],\"catalog_rewritten\":{},\"unrepairable\":[{}]}}",
            report.is_healthy(),
            list(&report.restored),
            list(&report.rolled_back),
            report.removed_files,
            list(&report.reattached),
            report.catalog_rewritten,
            list(&report.unrepairable)
        );
    } else {
        println!("{}", report.to_string().trim_end());
    }
    if report.is_healthy() {
        Ok(())
    } else {
        Err(format!(
            "{} file(s) unrepairable (no healthy replica)",
            report.unrepairable.len()
        ))
    }
}

/// Retry a metadata-open step on *transient* storage errors, per the
/// CLI retry policy. Rank reads retry inside the executor; the catalog
/// and meta reads that happen before any rank exists are covered here.
fn retry_transient<T>(
    policy: RetryPolicy,
    mut f: impl FnMut() -> mloc::Result<T>,
) -> Result<T, String> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match f() {
            Ok(v) => return Ok(v),
            Err(mloc::MlocError::Pfs(e)) if e.is_transient() && policy.should_retry(attempt) => {}
            Err(e) => return Err(e.to_string()),
        }
    }
}

fn query(args: &Args) -> Result<(), String> {
    // An optional fault plan wraps the directory backend in the
    // deterministic fault injector — the same machinery the test suite
    // uses, exposed for demos and for exercising --retry by hand.
    let be: Box<dyn StorageBackend> = match args.optional("fault-plan") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let plan = FaultPlan::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            Box::new(FaultBackend::new(backend(args)?, plan))
        }
        None => backend(args)?,
    };
    let be = be.as_ref();
    let retry = args
        .optional_parsed::<u32>("retry")?
        .map(RetryPolicy::with_attempts)
        .unwrap_or_default();
    let name = args.required("name")?;
    let var = args.required("var")?;
    let ds = retry_transient(retry, || Dataset::open(be, name))?;
    let mut store = retry_transient(retry, || ds.store(var))?;
    let cache = args
        .optional_parsed::<u64>("cache-mb")?
        .map(|mb| std::sync::Arc::new(BlockCache::with_budget_mb(mb)));
    store.set_cache(cache.clone());

    let vc = args.optional("vc").map(parse_vc).transpose()?;
    let sc = args
        .optional("sc")
        .map(parse_region)
        .transpose()?
        .map(Region::new);
    if vc.is_none() && sc.is_none() {
        return Err("query needs --vc and/or --sc".into());
    }
    let wants_values = args.optional("values").is_some_and(|v| v == "true");
    let plod = match args.optional_parsed::<u8>("plod")? {
        Some(l) => PlodLevel::new(l).map_err(|e| e.to_string())?,
        None => PlodLevel::FULL,
    };
    let output = if wants_values {
        QueryOutput::Values
    } else {
        QueryOutput::Positions
    };
    let q = Query::new(vc, sc, plod, output);

    let ranks = args.optional_parsed::<usize>("ranks")?.unwrap_or(1);
    let mut exec = ParallelExecutor::new(ranks, CostModel::default()).with_retry(retry);
    if args.optional("no-degrade").is_some_and(|v| v == "true") {
        exec = exec.allow_degraded(false);
    }
    let target_error = args.optional_parsed::<f64>("target-error")?;
    let progressive =
        args.optional("progressive").is_some_and(|v| v == "true") || target_error.is_some();
    let profile_mode = parse_profile(args)?;
    // --repeat replays the query; with --cache-mb the later passes are
    // warm and show the cache's effect on io/decompress time.
    let repeat = args.optional_parsed::<usize>("repeat")?.unwrap_or(1).max(1);
    let mut last = None;
    let mut last_profile = None;
    for pass in 0..repeat {
        let (res, m) = if progressive {
            // Progressive ladder: serve a base-precision answer, then
            // pull byte-group refinements (to the target error bound,
            // or all the way) and print what each step cost.
            let mut pq = if profile_mode == ProfileMode::Off {
                exec.progressive(&store, &q)
            } else {
                exec.progressive_profiled(&store, &q)
            }
            .map_err(|e| e.to_string())?;
            match target_error {
                Some(eps) => pq.run_to_target_error(eps),
                None => pq.run_to_completion(),
            }
            .map_err(|e| e.to_string())?;
            for s in pq.steps() {
                println!(
                    "  step {}: level {} (bound {:.3e}) | {} bytes read, {} cache-saved | \
                     sim io {:.3}s{}{}",
                    s.step,
                    s.level.level(),
                    s.error_bound,
                    s.bytes_read,
                    s.bytes_saved,
                    s.io_s,
                    if s.capped_units > 0 {
                        format!(" | {} unit(s) capped by damage", s.capped_units)
                    } else {
                        String::new()
                    },
                    if s.done { " | done" } else { "" }
                );
            }
            let (res, m, _steps, profile) = pq.into_outcome();
            if profile_mode != ProfileMode::Off {
                last_profile = Some(profile);
            }
            (res, m)
        } else if profile_mode == ProfileMode::Off {
            exec.execute(&store, &q).map_err(|e| e.to_string())?
        } else {
            let (res, m, profile) = exec
                .execute_profiled(&store, &q)
                .map_err(|e| e.to_string())?;
            last_profile = Some(profile);
            (res, m)
        };
        let cache_note = if cache.is_some() {
            format!(
                " | cache {} hits / {} misses, {} bytes saved",
                m.cache_hits, m.cache_misses, m.bytes_saved
            )
        } else {
            String::new()
        };
        let pass_note = if repeat > 1 {
            format!("pass {}/{repeat}: ", pass + 1)
        } else {
            String::new()
        };
        let mut fault_note = String::new();
        if m.retries > 0 {
            fault_note.push_str(&format!(
                " | {} retried read(s), {:.3}s simulated backoff",
                m.retries, m.retry_wait_s
            ));
        }
        if m.degradation.is_degraded() {
            fault_note.push_str(&format!(" | {}", m.degradation));
        }
        println!(
            "{pass_note}{} matches | bins {} (aligned {}), chunks {} | sim io {:.3}s, \
             decompress {:.3}s, reconstruct {:.3}s | {} bytes read{cache_note}{fault_note}",
            res.len(),
            m.bins_touched,
            m.aligned_bins,
            m.chunks_touched,
            m.io_s,
            m.decompress_s,
            m.reconstruct_s,
            m.bytes_read
        );
        last = Some(res);
    }
    let res = last.expect("repeat >= 1");
    let limit = args.optional_parsed::<usize>("limit")?.unwrap_or(20);
    let grid = store.grid();
    for (i, &p) in res.positions().iter().take(limit).enumerate() {
        let coords = grid.delinearize(p);
        match res.values() {
            Some(vals) => println!("  {coords:?} = {}", vals[i]),
            None => println!("  {coords:?}"),
        }
    }
    if res.len() > limit {
        println!(
            "  ... ({} more; raise --limit to see them)",
            res.len() - limit
        );
    }
    // The profile of the final pass (the warm one under --cache-mb),
    // printed last so `--profile json` output is the tail of stdout.
    if let Some(profile) = &last_profile {
        print_profile(profile_mode, profile);
    }
    Ok(())
}

/// Parse a `serve` workload file into budgets and session specs.
///
/// Line grammar (blank lines and `#` comments are skipped):
///
/// ```text
/// budget TENANT bytes=N [io_s=SECONDS]
/// session TENANT VAR [vc=LO:HI] [sc=A:B,C:D] [plod=1..7] [values]
/// ```
type Workload = (Vec<(String, TenantBudget)>, Vec<SessionSpec>);

fn parse_workload(text: &str, dataset: &str) -> Result<Workload, String> {
    let mut budgets = Vec::new();
    let mut sessions = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let at = |msg: String| format!("workload line {}: {msg}", lineno + 1);
        let mut words = line.split_whitespace();
        match words.next() {
            Some("budget") => {
                let tenant = words
                    .next()
                    .ok_or_else(|| at("budget needs a tenant".into()))?;
                let mut budget = TenantBudget::unlimited();
                for w in words {
                    if let Some(v) = w.strip_prefix("bytes=") {
                        budget.max_bytes =
                            Some(v.parse().map_err(|_| at(format!("bad bytes {v:?}")))?);
                    } else if let Some(v) = w.strip_prefix("io_s=") {
                        budget.max_io_s =
                            Some(v.parse().map_err(|_| at(format!("bad io_s {v:?}")))?);
                    } else {
                        return Err(at(format!("unknown budget field {w:?}")));
                    }
                }
                budgets.push((tenant.to_string(), budget));
            }
            Some("session") => {
                let tenant = words
                    .next()
                    .ok_or_else(|| at("session needs a tenant".into()))?;
                let var = words
                    .next()
                    .ok_or_else(|| at("session needs a variable".into()))?;
                let mut vc = None;
                let mut sc = None;
                let mut plod = PlodLevel::FULL;
                let mut output = QueryOutput::Positions;
                let mut progressive = false;
                let mut target_error = None;
                for w in words {
                    if let Some(v) = w.strip_prefix("vc=") {
                        vc = Some(parse_vc(v).map_err(at)?);
                    } else if let Some(v) = w.strip_prefix("sc=") {
                        sc = Some(Region::new(parse_region(v).map_err(at)?));
                    } else if let Some(v) = w.strip_prefix("plod=") {
                        let level: u8 = v.parse().map_err(|_| at(format!("bad plod {v:?}")))?;
                        plod = PlodLevel::new(level).map_err(|e| at(e.to_string()))?;
                    } else if w == "values" {
                        output = QueryOutput::Values;
                    } else if w == "progressive" {
                        progressive = true;
                    } else if let Some(v) = w.strip_prefix("target_error=") {
                        target_error = Some(
                            v.parse()
                                .map_err(|_| at(format!("bad target_error {v:?}")))?,
                        );
                    } else {
                        return Err(at(format!("unknown session field {w:?}")));
                    }
                }
                if vc.is_none() && sc.is_none() {
                    return Err(at("session needs vc= and/or sc=".into()));
                }
                let mut spec =
                    SessionSpec::new(tenant, dataset, var, Query::new(vc, sc, plod, output));
                if progressive {
                    spec = spec.progressive();
                }
                if let Some(eps) = target_error {
                    spec = spec.with_target_error(eps);
                }
                sessions.push(spec);
            }
            Some(other) => return Err(at(format!("unknown directive {other:?}"))),
            None => unreachable!("blank lines are skipped"),
        }
    }
    if sessions.is_empty() {
        return Err("workload has no session lines".into());
    }
    Ok((budgets, sessions))
}

/// Run a multi-session workload against one dataset: FIFO admission
/// windows, per-tenant budgets, shared block cache, and cross-session
/// extent fusion.
fn serve(args: &Args) -> Result<(), String> {
    let be = backend(args)?;
    let name = args.required("name")?;
    let path = args.required("workload")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (budgets, sessions) = parse_workload(&text, name)?;

    let mut config = ServeConfig::default();
    if let Some(v) = args.optional_parsed::<usize>("workers")? {
        config.workers = v.max(1);
    }
    if let Some(v) = args.optional_parsed::<usize>("window")? {
        config.window = v.max(1);
    }
    if let Some(v) = args.optional_parsed::<u64>("cache-mb")? {
        config.cache_mb = v;
    }
    if let Some(v) = args.optional_parsed::<usize>("ranks")? {
        config.nranks = v.max(1);
    }
    if let Some(v) = args.optional_parsed::<u32>("retry")? {
        config.retry = RetryPolicy::with_attempts(v);
    }
    config.fusion = args.optional("fusion") != Some("false");
    config.threaded = args.optional("threaded") == Some("true");

    let mut server = QueryServer::new(&be, config);
    for (tenant, budget) in budgets {
        server.set_budget(&tenant, budget);
    }
    let reports = server.run(&sessions);

    let mut failed = 0usize;
    for r in &reports {
        match &r.outcome {
            Ok(res) => {
                let m = r.metrics.as_ref().expect("metrics on success");
                let ladder_note = match &r.steps {
                    Some(steps) => format!(
                        " | progressive: {} step(s), final bound {:.3e}",
                        steps.len(),
                        steps.last().map_or(0.0, |s| s.error_bound)
                    ),
                    None => String::new(),
                };
                println!(
                    "session {:>3} [{}] w{}: {} matches | {} bytes read, {} cache-saved, \
                     {} fusion-saved | sim io {:.3}s{ladder_note}",
                    r.index,
                    r.tenant,
                    r.window,
                    res.len(),
                    m.bytes_read,
                    m.bytes_saved,
                    m.fused_bytes_saved,
                    m.io_s
                );
            }
            Err(e) if e.is_budget() => {
                println!(
                    "session {:>3} [{}] w{}: rejected — {e}",
                    r.index, r.tenant, r.window
                );
            }
            Err(e) => {
                failed += 1;
                println!(
                    "session {:>3} [{}] w{}: FAILED — {e}",
                    r.index, r.tenant, r.window
                );
            }
        }
    }

    println!("tenants:");
    for (tenant, u) in server.usage() {
        println!(
            "  {tenant}: {} ok / {} rejected / {} failed | {} logical bytes \
             ({} read, {} cache-saved, {} fusion-saved) | sim io {:.3}s",
            u.completed,
            u.rejected,
            u.failed,
            u.logical_bytes,
            u.bytes_read,
            u.bytes_saved,
            u.fused_bytes_saved,
            u.io_s
        );
    }
    if let Some(c) = server.cache_stats() {
        println!(
            "cache  : {} hits / {} misses, {} resident bytes",
            c.hits, c.misses, c.resident_bytes
        );
    }
    if let Some(f) = server.fusion_stats() {
        println!(
            "fusion : {} physical reads ({} bytes), {} fused reads ({} bytes saved)",
            f.physical_reads, f.physical_bytes, f.fused_reads, f.fused_bytes
        );
    }
    if failed > 0 {
        return Err(format!("{failed} session(s) failed"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(v: &[&str]) -> Result<(), String> {
        dispatch(&Args::parse(v.iter().map(|s| s.to_string())).unwrap())
    }

    fn tmpdir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("mloc-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn full_cli_lifecycle() {
        let dir = tmpdir("life");
        run(&[
            "create", "--dir", &dir, "--name", "ds", "--shape", "64,64", "--chunk", "16,16",
            "--bins", "8", "--codec", "deflate",
        ])
        .unwrap();
        run(&[
            "import",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--synthetic",
            "gts",
            "--seed",
            "3",
        ])
        .unwrap();
        run(&["info", "--dir", &dir, "--name", "ds"]).unwrap();
        run(&["variables", "--dir", &dir, "--name", "ds"]).unwrap();
        run(&[
            "query", "--dir", &dir, "--name", "ds", "--var", "t", "--vc", "0:1000", "--limit", "2",
        ])
        .unwrap();
        run(&[
            "query", "--dir", &dir, "--name", "ds", "--var", "t", "--sc", "0:8,0:8", "--values",
            "true", "--plod", "2",
        ])
        .unwrap();
        // Cached replay: second pass is warm.
        run(&[
            "query",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--vc",
            "0:1000",
            "--cache-mb",
            "64",
            "--repeat",
            "3",
        ])
        .unwrap();
        // Progressive ladder: full, with a target error bound, and a
        // warm cached repeat (refinements hit the cache).
        run(&[
            "query",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--sc",
            "0:16,0:16",
            "--values",
            "true",
            "--progressive",
            "true",
        ])
        .unwrap();
        run(&[
            "query",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--sc",
            "0:16,0:16",
            "--values",
            "true",
            "--target-error",
            "1e-3",
            "--cache-mb",
            "64",
            "--repeat",
            "2",
            "--profile",
            "table",
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_and_profile() {
        let dir = tmpdir("prof");
        run(&[
            "create", "--dir", &dir, "--name", "ds", "--shape", "32,32", "--chunk", "8,8",
            "--bins", "4",
        ])
        .unwrap();
        run(&[
            "import",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--synthetic",
            "gts",
            "--profile",
            "table",
        ])
        .unwrap();
        run(&["stats", "--dir", &dir, "--name", "ds"]).unwrap();
        run(&[
            "stats", "--dir", &dir, "--name", "ds", "--var", "t", "--json", "true",
        ])
        .unwrap();
        assert!(run(&["stats", "--dir", &dir, "--name", "ds", "--var", "ghost"]).is_err());
        run(&[
            "query",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--vc",
            "0:1000",
            "--profile",
            "table",
        ])
        .unwrap();
        run(&[
            "query",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--vc",
            "0:1000",
            "--ranks",
            "4",
            "--profile",
            "json",
        ])
        .unwrap();
        assert!(run(&[
            "query",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--vc",
            "0:1000",
            "--profile",
            "xml",
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn import_from_raw_file() {
        let dir = tmpdir("raw");
        run(&[
            "create", "--dir", &dir, "--name", "ds", "--shape", "8,8", "--chunk", "4,4", "--bins",
            "2",
        ])
        .unwrap();
        let raw: Vec<u8> = (0..64).flat_map(|i| (i as f64).to_le_bytes()).collect();
        let raw_path = format!("{dir}/input.bin");
        std::fs::write(&raw_path, &raw).unwrap();
        run(&[
            "import", "--dir", &dir, "--name", "ds", "--var", "v", "--raw", &raw_path,
        ])
        .unwrap();
        run(&[
            "query", "--dir", &dir, "--name", "ds", "--var", "v", "--vc", "10:20",
        ])
        .unwrap();
        // Wrong size raw file.
        std::fs::write(&raw_path, &raw[..100]).unwrap();
        assert!(
            run(&["import", "--dir", &dir, "--name", "ds", "--var", "w", "--raw", &raw_path])
                .is_err()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let dir = tmpdir("err");
        assert!(run(&["info", "--dir", &dir, "--name", "ghost"]).is_err());
        assert!(run(&["bogus", "--dir", &dir]).is_err());
        run(&["create", "--dir", &dir, "--name", "ds", "--shape", "8,8"]).unwrap();
        // Duplicate create.
        assert!(run(&["create", "--dir", &dir, "--name", "ds", "--shape", "8,8"]).is_err());
        // Query without constraints.
        assert!(run(&["query", "--dir", &dir, "--name", "ds", "--var", "x"]).is_err());
        // Bad codec / order.
        assert!(run(&[
            "create", "--dir", &dir, "--name", "d2", "--shape", "8,8", "--codec", "zstd"
        ])
        .is_err());
        assert!(run(&[
            "create", "--dir", &dir, "--name", "d3", "--shape", "8,8", "--order", "svm"
        ])
        .is_err());
        // Synthetic dimensionality mismatch.
        assert!(run(&[
            "import",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "v",
            "--synthetic",
            "s3d"
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_retry_and_fault_injection() {
        let dir = tmpdir("fault");
        run(&[
            "create", "--dir", &dir, "--name", "ds", "--shape", "32,32", "--chunk", "8,8",
            "--bins", "4",
        ])
        .unwrap();
        run(&[
            "import",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--synthetic",
            "gts",
        ])
        .unwrap();
        run(&["verify", "--dir", &dir, "--name", "ds"]).unwrap();
        run(&[
            "verify", "--dir", &dir, "--name", "ds", "--var", "t", "--json", "true",
        ])
        .unwrap();

        // Heavy transient faults: retries absorb them (max_transient=2
        // < 4 attempts), no retries means the query fails.
        let plan = format!("{dir}/plan.txt");
        std::fs::write(&plan, "seed=7\ntransient_rate=0.9\nmax_transient=2\n").unwrap();
        run(&[
            "query",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--vc",
            "0:1000",
            "--fault-plan",
            &plan,
            "--retry",
            "4",
        ])
        .unwrap();
        assert!(run(&[
            "query",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--vc",
            "0:1000",
            "--fault-plan",
            &plan,
        ])
        .is_err());
        assert!(run(&[
            "query",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--vc",
            "0:1000",
            "--fault-plan",
            "/nonexistent/plan",
        ])
        .is_err());

        // Flip one stored data byte: verify exits nonzero and names
        // the damaged file.
        let victim = std::path::Path::new(&dir).join("ds__t__bin0001.dat");
        let mut data = std::fs::read(&victim).unwrap();
        let mid = data.len() / 3;
        data[mid] ^= 0x10;
        std::fs::write(&victim, &data).unwrap();
        let err = run(&["verify", "--dir", &dir, "--name", "ds"]).unwrap_err();
        assert!(err.contains("damaged"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_runs_a_workload_file() {
        let dir = tmpdir("serve");
        run(&[
            "create", "--dir", &dir, "--name", "ds", "--shape", "64,64", "--chunk", "16,16",
            "--bins", "6",
        ])
        .unwrap();
        run(&[
            "import",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--synthetic",
            "gts",
        ])
        .unwrap();
        let workload = format!("{dir}/traffic.txt");
        std::fs::write(
            &workload,
            "# two tenants over one variable\n\
             budget alice bytes=10000000\n\
             session alice t vc=0:1000\n\
             session bob t sc=0:16,0:16 values\n\
             session alice t vc=0:1000\n\
             session bob t vc=0:1000 plod=3\n\
             session bob t sc=0:16,0:16 values progressive\n\
             session alice t sc=0:8,0:8 values target_error=1e-4\n",
        )
        .unwrap();
        run(&[
            "serve",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--workload",
            &workload,
            "--workers",
            "2",
            "--window",
            "4",
        ])
        .unwrap();
        // Fusion off still works; a broken workload is a parse error.
        run(&[
            "serve",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--workload",
            &workload,
            "--fusion",
            "false",
        ])
        .unwrap();
        std::fs::write(&workload, "session alice t\n").unwrap();
        let err = run(&[
            "serve",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--workload",
            &workload,
        ])
        .unwrap_err();
        assert!(err.contains("vc= and/or sc="), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_and_pooled_lifecycle() {
        let dir = tmpdir("shard");
        // Same lifecycle as the flat layout, spread over 2 shard
        // directories with a 2-deep submission pool per shard.
        let base = [
            "--dir",
            &dir,
            "--name",
            "ds",
            "--shards",
            "2",
            "--pool-depth",
            "2",
        ];
        let with = |head: &[&str], tail: &[&str]| -> Vec<String> {
            head.iter()
                .chain(base.iter())
                .chain(tail.iter())
                .map(|s| s.to_string())
                .collect()
        };
        let runv = |v: Vec<String>| dispatch(&Args::parse(v.into_iter()).unwrap());
        runv(with(
            &["create"],
            &["--shape", "32,32", "--chunk", "8,8", "--bins", "4"],
        ))
        .unwrap();
        runv(with(&["import"], &["--var", "t", "--synthetic", "gts"])).unwrap();
        runv(with(&["query"], &["--var", "t", "--vc", "0:1000"])).unwrap();
        runv(with(&["verify"], &[])).unwrap();
        runv(with(&["stats"], &[])).unwrap();
        runv(with(&["stats"], &["--json", "true"])).unwrap();
        // Files live under shard subdirectories, not the root.
        let shard_files = |s: usize| {
            std::fs::read_dir(format!("{dir}/shard{s}"))
                .map(|d| d.count())
                .unwrap_or(0)
        };
        assert!(shard_files(0) > 0 && shard_files(1) > 0);
        // Opening without --shards must fail: the flat root holds no
        // catalog, exactly as if the files were lost.
        assert!(run(&["info", "--dir", &dir, "--name", "ds"]).is_err());
        // Bad knob values are rejected up front.
        assert!(run(&["info", "--dir", &dir, "--name", "ds", "--shards", "0"]).is_err());
        assert!(run(&["info", "--dir", &dir, "--name", "ds", "--pool-depth", "0"]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_import_fsck_repair_cycle() {
        let dir = tmpdir("crash");
        run(&[
            "create", "--dir", &dir, "--name", "ds", "--shape", "32,32", "--chunk", "8,8",
            "--bins", "4",
        ])
        .unwrap();
        // Count the write ops of a full import, then replay it with a
        // crash in the middle of the bin files.
        let plan = format!("{dir}/crash.txt");
        std::fs::write(&plan, "crash_at = 7\n").unwrap();
        let err = run(&[
            "import",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--synthetic",
            "gts",
            "--build-threads",
            "1",
            "--crash-plan",
            &plan,
        ])
        .unwrap_err();
        assert!(err.contains("simulated crash"), "{err}");

        // fsck sees the debris and exits nonzero; repair rolls it
        // back; the rerun import and fsck are then clean.
        let err = run(&["fsck", "--dir", &dir, "--name", "ds"]).unwrap_err();
        assert!(err.contains("repair"), "{err}");
        run(&["repair", "--dir", &dir, "--name", "ds"]).unwrap();
        run(&["fsck", "--dir", &dir, "--name", "ds", "--json", "true"]).unwrap();
        run(&[
            "import",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--var",
            "t",
            "--synthetic",
            "gts",
        ])
        .unwrap();
        run(&["verify", "--dir", &dir, "--name", "ds"]).unwrap();
        run(&["repair", "--dir", &dir, "--name", "ds", "--json", "true"]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replicated_lifecycle_survives_a_lost_shard() {
        let dir = tmpdir("replica");
        let base = [
            "--dir",
            &dir,
            "--name",
            "ds",
            "--shards",
            "2",
            "--replicas",
            "2",
        ];
        let with = |head: &[&str], tail: &[&str]| -> Vec<String> {
            head.iter()
                .chain(base.iter())
                .chain(tail.iter())
                .map(|s| s.to_string())
                .collect()
        };
        let runv = |v: Vec<String>| dispatch(&Args::parse(v.into_iter()).unwrap());
        runv(with(
            &["create"],
            &["--shape", "32,32", "--chunk", "8,8", "--bins", "4"],
        ))
        .unwrap();
        runv(with(&["import"], &["--var", "t", "--synthetic", "gts"])).unwrap();
        runv(with(&["stats"], &["--json", "true"])).unwrap();
        runv(with(&["query"], &["--var", "t", "--vc", "0:1000"])).unwrap();

        // Kill shard 0 entirely: every read must fall through to the
        // replica, and repair heals the missing copies back.
        std::fs::remove_dir_all(format!("{dir}/shard0")).unwrap();
        runv(with(&["query"], &["--var", "t", "--vc", "0:1000"])).unwrap();
        runv(with(&["stats"], &[])).unwrap();
        runv(with(&["repair"], &[])).unwrap();
        runv(with(&["fsck"], &[])).unwrap();
        runv(with(&["verify"], &[])).unwrap();
        // Hedged reads stay valid too.
        runv(with(
            &["query"],
            &["--var", "t", "--vc", "0:1000", "--hedge-ms", "0"],
        ))
        .unwrap();

        // Bad knob combinations are rejected.
        assert!(run(&["info", "--dir", &dir, "--name", "ds", "--replicas", "0"]).is_err());
        assert!(run(&[
            "info",
            "--dir",
            &dir,
            "--name",
            "ds",
            "--shards",
            "2",
            "--replicas",
            "3"
        ])
        .is_err());
        assert!(run(&["info", "--dir", &dir, "--name", "ds", "--hedge-ms", "5"]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn workload_parsing() {
        let (budgets, sessions) = parse_workload(
            "budget a bytes=100 io_s=1.5\n\nsession a v vc=0:1\n# c\nsession b v sc=0:4,0:4 values plod=2\n",
            "ds",
        )
        .unwrap();
        assert_eq!(budgets.len(), 1);
        assert_eq!(budgets[0].0, "a");
        assert_eq!(budgets[0].1.max_bytes, Some(100));
        assert_eq!(budgets[0].1.max_io_s, Some(1.5));
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].tenant, "a");
        assert_eq!(sessions[1].dataset, "ds");
        assert!(parse_workload("", "ds").is_err());
        assert!(parse_workload("session a v vc=9:1\n", "ds").is_err());
        assert!(parse_workload("warp a v vc=0:1\n", "ds").is_err());
        assert!(parse_workload("budget a pages=3\n", "ds").is_err());
        let (_, s) = parse_workload("session a v sc=0:4,0:4 values progressive\n", "ds").unwrap();
        assert!(s[0].progressive && s[0].target_error.is_none());
        let (_, s) =
            parse_workload("session a v sc=0:4,0:4 values target_error=0.01\n", "ds").unwrap();
        assert!(s[0].progressive && s[0].target_error == Some(0.01));
        assert!(parse_workload("session a v sc=0:4,0:4 target_error=x\n", "ds").is_err());
    }

    #[test]
    fn parse_codec_variants() {
        assert_eq!(parse_codec("raw").unwrap().name(), "raw");
        assert_eq!(parse_codec("isabela:0.01").unwrap().name(), "isabela");
        assert!(parse_codec("isabela:-1").is_err());
        assert!(parse_codec("isabela:x").is_err());
        assert!(parse_codec("lz4").is_err());
    }
}
