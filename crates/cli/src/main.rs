//! `mloc` — command-line front end for MLOC datasets stored in a
//! directory. See `args::usage()` for the command reference.

mod args;
mod commands;

use args::Args;

fn main() {
    let argv = std::env::args().skip(1);
    let exit = match Args::parse(argv) {
        Ok(a) => match commands::dispatch(&a) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("{}", args::usage());
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(exit);
}
