//! LSB-first bit-level I/O used by the DEFLATE-style codec.

use crate::CodecError;

/// Writes bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    bit_buf: u64,
    bit_count: u32,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `count` bits of `bits` (LSB first). `count <= 32`.
    #[inline]
    pub fn write_bits(&mut self, bits: u32, count: u32) {
        debug_assert!(count <= 32);
        debug_assert!(count == 32 || bits < (1u32 << count));
        self.bit_buf |= u64::from(bits) << self.bit_count;
        self.bit_count += count;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Pad to a byte boundary with zero bits.
    pub fn align_byte(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }

    /// Write raw bytes; the writer must be byte-aligned.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(self.bit_count, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Finish writing and return the byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }

    /// Bytes emitted so far (excluding buffered bits).
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit_buf: u64,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    /// New reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.bit_count <= 56 && self.pos < self.data.len() {
            self.bit_buf |= u64::from(self.data[self.pos]) << self.bit_count;
            self.pos += 1;
            self.bit_count += 8;
        }
    }

    /// Read `count` bits (`<= 32`), LSB-first.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Result<u32, CodecError> {
        debug_assert!(count <= 32);
        if self.bit_count < count {
            self.refill();
            if self.bit_count < count {
                return Err(CodecError::Truncated);
            }
        }
        let mask = if count == 32 {
            u32::MAX
        } else {
            (1u32 << count) - 1
        };
        let v = (self.bit_buf as u32) & mask;
        self.bit_buf >>= count;
        self.bit_count -= count;
        Ok(v)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, CodecError> {
        self.read_bits(1)
    }

    /// Peek at the next `count` bits without consuming them, or `None`
    /// when fewer than `count` bits remain in the stream.
    #[inline]
    pub fn peek_bits(&mut self, count: u32) -> Option<u32> {
        debug_assert!(count <= 32);
        if self.bit_count < count {
            self.refill();
            if self.bit_count < count {
                return None;
            }
        }
        let mask = if count == 32 {
            u32::MAX
        } else {
            (1u32 << count) - 1
        };
        Some((self.bit_buf as u32) & mask)
    }

    /// Consume `count` bits previously seen via [`Self::peek_bits`].
    #[inline]
    pub fn consume_bits(&mut self, count: u32) {
        debug_assert!(self.bit_count >= count);
        self.bit_buf >>= count;
        self.bit_count -= count;
    }

    /// Discard buffered bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.bit_count % 8;
        self.bit_buf >>= drop;
        self.bit_count -= drop;
    }

    /// Read `n` raw bytes; the reader must be byte-aligned.
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, CodecError> {
        assert_eq!(self.bit_count % 8, 0, "read_bytes requires byte alignment");
        let mut out = Vec::with_capacity(n);
        // Drain buffered whole bytes first.
        while self.bit_count >= 8 && out.len() < n {
            out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
        let remaining = n - out.len();
        if self.pos + remaining > self.data.len() {
            return Err(CodecError::Truncated);
        }
        out.extend_from_slice(&self.data[self.pos..self.pos + remaining]);
        self.pos += remaining;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bits(0, 1);
        w.write_bits(0x12345, 20);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
        assert_eq!(r.read_bit().unwrap(), 0);
        assert_eq!(r.read_bits(20).unwrap(), 0x12345);
    }

    #[test]
    fn byte_alignment_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_byte();
        w.write_bytes(&[1, 2, 3]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        r.align_byte();
        assert_eq!(r.read_bytes(3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn truncation_detected() {
        let mut r = BitReader::new(&[0xAB]);
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
        assert_eq!(r.read_bits(1), Err(CodecError::Truncated));
    }

    #[test]
    fn read_bytes_after_bit_reads() {
        let mut w = BitWriter::new();
        w.write_bits(0xA, 4);
        w.align_byte();
        w.write_bytes(&[9, 8, 7, 6]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0xA);
        r.align_byte();
        // Force the buffered path: the refill may have eaten the bytes.
        assert_eq!(r.read_bytes(4).unwrap(), vec![9, 8, 7, 6]);
    }
}
