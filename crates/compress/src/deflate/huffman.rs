//! Canonical Huffman coding with length-limited codes (package-merge).

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

/// Maximum code length. 12 bits keeps the decoder to a single-level
/// 4096-entry lookup table while staying within ~0.1 % of the
/// unrestricted Huffman cost on byte data.
pub const MAX_CODE_LEN: u32 = 12;

/// Compute length-limited code lengths for the given symbol
/// frequencies using the package-merge algorithm.
///
/// Returns one length per symbol; zero-frequency symbols get length 0.
pub fn code_lengths(freqs: &[u64], max_len: u32) -> Vec<u8> {
    let n = freqs.len();
    let mut lens = vec![0u8; n];
    let active: Vec<u16> = (0..n as u16).filter(|&s| freqs[s as usize] > 0).collect();
    match active.len() {
        0 => return lens,
        1 => {
            lens[active[0] as usize] = 1;
            return lens;
        }
        _ => {}
    }
    assert!(
        (1usize << max_len) >= active.len(),
        "max_len {max_len} too small for {} symbols",
        active.len()
    );

    // Package-merge: `prev` holds the package list of the previous
    // level; each package carries the multiset of symbols inside it.
    let mut singletons: Vec<(u64, Vec<u16>)> = active
        .iter()
        .map(|&s| (freqs[s as usize], vec![s]))
        .collect();
    singletons.sort_by_key(|(w, _)| *w);

    let mut prev: Vec<(u64, Vec<u16>)> = Vec::new();
    for _ in 0..max_len {
        let mut cur = singletons.clone();
        for pair in prev.chunks_exact(2) {
            let w = pair[0].0 + pair[1].0;
            let mut syms = pair[0].1.clone();
            syms.extend_from_slice(&pair[1].1);
            cur.push((w, syms));
        }
        cur.sort_by_key(|(w, _)| *w);
        prev = cur;
    }

    let take = 2 * (active.len() - 1);
    for (_, syms) in prev.into_iter().take(take) {
        for s in syms {
            lens[s as usize] += 1;
        }
    }
    lens
}

/// A canonical Huffman encoder table: per-symbol `(code, length)` with
/// the code bits pre-reversed for LSB-first emission.
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<(u32, u8)>,
}

impl Encoder {
    /// Build the canonical code from code lengths.
    pub fn from_lengths(lens: &[u8]) -> Self {
        let max = lens.iter().copied().max().unwrap_or(0) as u32;
        let mut bl_count = vec![0u32; max as usize + 1];
        for &l in lens {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        let mut next_code = vec![0u32; max as usize + 2];
        let mut code = 0u32;
        for bits in 1..=max {
            code = (code + bl_count[bits as usize - 1]) << 1;
            next_code[bits as usize] = code;
        }
        let codes = lens
            .iter()
            .map(|&l| {
                if l == 0 {
                    (0u32, 0u8)
                } else {
                    let c = next_code[l as usize];
                    next_code[l as usize] += 1;
                    (reverse_bits(c, l as u32), l)
                }
            })
            .collect();
        Encoder { codes }
    }

    /// Emit the code for `symbol`.
    #[inline]
    pub fn write(&self, w: &mut BitWriter, symbol: usize) {
        let (code, len) = self.codes[symbol];
        debug_assert!(len > 0, "symbol {symbol} has no code");
        w.write_bits(code, len as u32);
    }

    /// Code length of a symbol in bits (0 = unused symbol).
    pub fn len_of(&self, symbol: usize) -> u8 {
        self.codes[symbol].1
    }
}

fn reverse_bits(code: u32, len: u32) -> u32 {
    code.reverse_bits() >> (32 - len)
}

/// A canonical Huffman decoder backed by a single-level lookup table.
#[derive(Debug)]
pub struct Decoder {
    /// Indexed by the next `MAX_CODE_LEN` bits (LSB-first); each entry
    /// packs `(symbol << 4) | code_len`. `code_len == 0` marks invalid.
    table: Vec<u32>,
}

impl Decoder {
    /// Build the decoder from code lengths.
    ///
    /// Returns an error when the lengths are not a valid prefix code
    /// (over-subscribed Kraft sum).
    pub fn from_lengths(lens: &[u8]) -> Result<Self, CodecError> {
        let mut kraft = 0u64;
        for &l in lens {
            if l > 0 {
                if l as u32 > MAX_CODE_LEN {
                    return Err(CodecError::Corrupt("code length exceeds maximum"));
                }
                kraft += 1u64 << (MAX_CODE_LEN - l as u32);
            }
        }
        if kraft > 1u64 << MAX_CODE_LEN {
            return Err(CodecError::Corrupt("over-subscribed Huffman code"));
        }

        let enc = Encoder::from_lengths(lens);
        let mut table = vec![0u32; 1 << MAX_CODE_LEN];
        for (sym, &(code, len)) in enc.codes.iter().enumerate() {
            if len == 0 {
                continue;
            }
            // `code` is already bit-reversed: replicate across all
            // suffixes of the remaining MAX_CODE_LEN - len bits.
            let step = 1u32 << len;
            let mut idx = code;
            while (idx as usize) < table.len() {
                table[idx as usize] = ((sym as u32) << 4) | len as u32;
                idx += step;
            }
        }
        Ok(Decoder { table })
    }

    /// Decode one symbol.
    #[inline]
    pub fn read(&self, r: &mut BitReader<'_>) -> Result<usize, CodecError> {
        // Peek is emulated by reading bit-by-bit against the table:
        // read MAX_CODE_LEN bits when available, else fall back to the
        // slow path near the end of the stream.
        match r.peek_bits(MAX_CODE_LEN) {
            Some(bits) => {
                let entry = self.table[bits as usize];
                let len = entry & 0xF;
                if len == 0 {
                    return Err(CodecError::Corrupt("invalid Huffman code"));
                }
                r.consume_bits(len);
                Ok((entry >> 4) as usize)
            }
            None => self.read_slow(r),
        }
    }

    fn read_slow(&self, r: &mut BitReader<'_>) -> Result<usize, CodecError> {
        let mut bits = 0u32;
        for i in 0..MAX_CODE_LEN {
            bits |= r.read_bit()? << i;
            let entry = self.table[bits as usize];
            let len = entry & 0xF;
            if len == i + 1 {
                return Ok((entry >> 4) as usize);
            }
            // A longer code shares this prefix; keep reading. All
            // entries for shorter valid codes would have matched.
        }
        Err(CodecError::Corrupt("invalid Huffman code"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_satisfy_kraft() {
        let freqs = vec![5u64, 9, 12, 13, 16, 45, 0, 1];
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft {kraft}");
        assert_eq!(lens[6], 0, "zero-frequency symbol must stay unused");
    }

    #[test]
    fn lengths_are_optimal_for_uniform() {
        let freqs = vec![1u64; 8];
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        assert!(lens.iter().all(|&l| l == 3));
    }

    #[test]
    fn single_symbol_gets_length_one() {
        let mut freqs = vec![0u64; 10];
        freqs[4] = 100;
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        assert_eq!(lens[4], 1);
        assert_eq!(lens.iter().filter(|&&l| l > 0).count(), 1);
    }

    #[test]
    fn length_limit_is_respected() {
        // Fibonacci-like frequencies force deep Huffman trees.
        let mut freqs = vec![0u64; 30];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lens = code_lengths(&freqs, 8);
        assert!(lens.iter().all(|&l| l as u32 <= 8));
        let kraft: f64 = lens
            .iter()
            .map(|&l| if l > 0 { 2f64.powi(-(l as i32)) } else { 0.0 })
            .sum();
        assert!(kraft <= 1.0 + 1e-12);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let freqs = vec![50u64, 30, 10, 5, 3, 1, 1, 0, 7, 19];
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        let enc = Encoder::from_lengths(&lens);
        let dec = Decoder::from_lengths(&lens).unwrap();
        let symbols = [0usize, 1, 2, 3, 4, 5, 6 /*skip 7*/, 8, 9, 0, 0, 9, 5];
        let mut w = BitWriter::new();
        for &s in &symbols {
            if s == 7 {
                continue;
            }
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in symbols.iter().filter(|&&s| s != 7) {
            assert_eq!(dec.read(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        let lens = vec![1u8, 1, 1];
        assert!(Decoder::from_lengths(&lens).is_err());
    }

    #[test]
    fn decoder_rejects_unused_code() {
        // Only symbol 0 has a code (single bit 0); reading a stream of
        // ones must fail rather than loop.
        let lens = vec![1u8, 0];
        let dec = Decoder::from_lengths(&lens).unwrap();
        let data = vec![0xFFu8; 4];
        let mut r = BitReader::new(&data);
        assert!(dec.read(&mut r).is_err());
    }
}
