//! Greedy LZ77 match finder with hash chains (DEFLATE-style).

/// Minimum match length worth encoding.
pub const MIN_MATCH: usize = 3;
/// Maximum match length (matches DEFLATE's 258).
pub const MAX_MATCH: usize = 258;
/// Maximum back-reference distance (32 KiB window).
pub const MAX_DIST: usize = 32 * 1024;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// How many chain links to follow before giving up.
const MAX_CHAIN: usize = 64;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Match length in `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Distance in `1..=MAX_DIST`.
        dist: u16,
    },
}

#[inline]
fn hash3(data: &[u8], pos: usize) -> usize {
    let v =
        u32::from(data[pos]) | (u32::from(data[pos + 1]) << 8) | (u32::from(data[pos + 2]) << 16);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Tokenize `data` with greedy hash-chain matching (with one-byte lazy
/// evaluation, as in zlib's default strategy).
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    // head[h] = most recent position with hash h (+1; 0 = none).
    let mut head = vec![0u32; HASH_SIZE];
    // prev[i & (MAX_DIST-1)] = previous position in the chain (+1).
    let mut prev = vec![0u32; MAX_DIST];

    let insert = |head: &mut [u32], prev: &mut [u32], pos: usize| {
        let h = hash3(data, pos);
        prev[pos & (MAX_DIST - 1)] = head[h];
        head[h] = pos as u32 + 1;
    };

    let find_match = |head: &[u32], prev: &[u32], pos: usize| -> Option<(usize, usize)> {
        let max_len = (n - pos).min(MAX_MATCH);
        if max_len < MIN_MATCH {
            return None;
        }
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut cand = head[hash3(data, pos)];
        let mut chain = MAX_CHAIN;
        while cand != 0 && chain > 0 {
            let cpos = cand as usize - 1;
            if pos - cpos > MAX_DIST {
                break;
            }
            if cpos < pos {
                // Quick reject on the byte past the current best.
                if pos + best_len < n && data[cpos + best_len] == data[pos + best_len] {
                    let mut l = 0usize;
                    while l < max_len && data[cpos + l] == data[pos + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = pos - cpos;
                        if l == max_len {
                            break;
                        }
                    }
                }
            }
            cand = prev[cpos & (MAX_DIST - 1)];
            chain -= 1;
        }
        (best_len >= MIN_MATCH).then_some((best_len, best_dist))
    };

    let mut pos = 0usize;
    while pos < n {
        if pos + MIN_MATCH > n {
            tokens.push(Token::Literal(data[pos]));
            pos += 1;
            continue;
        }
        match find_match(&head, &prev, pos) {
            Some((len, dist)) => {
                // Lazy matching: if the next position has a strictly
                // longer match, emit a literal instead.
                let lazy = if pos + 1 + MIN_MATCH <= n {
                    insert(&mut head, &mut prev, pos);
                    let next = find_match(&head, &prev, pos + 1);
                    matches!(next, Some((nlen, _)) if nlen > len)
                } else {
                    insert(&mut head, &mut prev, pos);
                    false
                };
                if lazy {
                    tokens.push(Token::Literal(data[pos]));
                    pos += 1;
                } else {
                    tokens.push(Token::Match {
                        len: len as u16,
                        dist: dist as u16,
                    });
                    // Insert hash entries for the skipped positions.
                    let end = (pos + len).min(n.saturating_sub(MIN_MATCH - 1));
                    for p in pos + 1..end {
                        insert(&mut head, &mut prev, p);
                    }
                    pos += len;
                }
            }
            None => {
                insert(&mut head, &mut prev, pos);
                tokens.push(Token::Literal(data[pos]));
                pos += 1;
            }
        }
    }
    tokens
}

/// Expand tokens back into bytes (used by tests; the decoder inlines
/// this during bitstream decoding).
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let data = b"abcabcabcabcabcabc".to_vec();
        let tokens = tokenize(&data);
        assert_eq!(expand(&tokens), data);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "repetitive data should produce matches"
        );
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"abc"] {
            let tokens = tokenize(data);
            assert_eq!(expand(&tokens), data);
        }
    }

    #[test]
    fn roundtrip_random() {
        // Pseudo-random bytes: few matches, but must stay correct.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        assert_eq!(expand(&tokenize(&data)), data);
    }

    #[test]
    fn roundtrip_runs() {
        let data = vec![7u8; 100_000];
        let tokens = tokenize(&data);
        assert_eq!(expand(&tokens), data);
        // A long run should compress into very few tokens.
        assert!(tokens.len() < 1000, "got {} tokens", tokens.len());
    }

    #[test]
    fn overlapping_match_expansion() {
        // "aaaa..." relies on overlapping copies (dist 1, len > 1).
        let data = b"aaaaaaaaaaaaaaaaaaaaaaa".to_vec();
        assert_eq!(expand(&tokenize(&data)), data);
    }

    #[test]
    fn match_constraints_hold() {
        let data: Vec<u8> = (0..50_000).map(|i| (i % 251) as u8).collect();
        for t in tokenize(&data) {
            if let Token::Match { len, dist } = t {
                assert!((MIN_MATCH..=MAX_MATCH).contains(&(len as usize)));
                assert!((1..=MAX_DIST).contains(&(dist as usize)));
            }
        }
    }
}
