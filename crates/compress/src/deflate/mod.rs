//! A DEFLATE-style byte codec: LZ77 + canonical Huffman coding.
//!
//! The container format ("MDF1") is our own, but the machinery is the
//! same as zlib's: hash-chain LZ77 with a 32 KiB window, length/distance
//! symbol alphabets with extra bits (RFC 1951's tables), per-block
//! canonical Huffman codes, and a stored-block fallback when entropy
//! coding does not pay off.

pub mod huffman;
pub mod lz77;

use crate::bitio::{BitReader, BitWriter};
use crate::{Codec, CodecError};
use huffman::{code_lengths, Decoder, Encoder, MAX_CODE_LEN};
use lz77::Token;

const MAGIC: u32 = 0x3146_444D; // "MDF1"
/// Independent-block size: bounds memory and enables random access at
/// a coarser granularity if needed.
const BLOCK_SIZE: usize = 128 * 1024;

/// Adler-32 checksum (the integrity check zlib uses). Protects against
/// corrupt streams that would otherwise decode to plausible garbage.
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    // Process in chunks small enough that the sums cannot overflow.
    for chunk in data.chunks(5_552) {
        for &byte in chunk {
            a += u32::from(byte);
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Literal/length alphabet size: 256 literals + EOB + 29 length codes.
const NUM_LITLEN: usize = 286;
/// Distance alphabet size.
const NUM_DIST: usize = 30;

/// `(extra_bits, base)` per length code 257..=285 (RFC 1951).
const LENGTH_CODES: [(u32, u16); 29] = [
    (0, 3),
    (0, 4),
    (0, 5),
    (0, 6),
    (0, 7),
    (0, 8),
    (0, 9),
    (0, 10),
    (1, 11),
    (1, 13),
    (1, 15),
    (1, 17),
    (2, 19),
    (2, 23),
    (2, 27),
    (2, 31),
    (3, 35),
    (3, 43),
    (3, 51),
    (3, 59),
    (4, 67),
    (4, 83),
    (4, 99),
    (4, 115),
    (5, 131),
    (5, 163),
    (5, 195),
    (5, 227),
    (0, 258),
];

/// `(extra_bits, base)` per distance code 0..=29 (RFC 1951).
const DIST_CODES: [(u32, u16); 30] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (1, 5),
    (1, 7),
    (2, 9),
    (2, 13),
    (3, 17),
    (3, 25),
    (4, 33),
    (4, 49),
    (5, 65),
    (5, 97),
    (6, 129),
    (6, 193),
    (7, 257),
    (7, 385),
    (8, 513),
    (8, 769),
    (9, 1025),
    (9, 1537),
    (10, 2049),
    (10, 3073),
    (11, 4097),
    (11, 6145),
    (12, 8193),
    (12, 12289),
    (13, 16385),
    (13, 24577),
];

fn length_symbol(len: u16) -> (usize, u32, u32) {
    debug_assert!((3..=258).contains(&len));
    // Find the last code whose base <= len.
    let mut idx = LENGTH_CODES.len() - 1;
    for (i, &(_, base)) in LENGTH_CODES.iter().enumerate() {
        if base > len {
            idx = i - 1;
            break;
        }
    }
    let (extra, base) = LENGTH_CODES[idx];
    (257 + idx, extra, u32::from(len - base))
}

fn dist_symbol(dist: u16) -> (usize, u32, u32) {
    debug_assert!(dist >= 1);
    let mut idx = DIST_CODES.len() - 1;
    for (i, &(_, base)) in DIST_CODES.iter().enumerate() {
        if base > dist {
            idx = i - 1;
            break;
        }
    }
    let (extra, base) = DIST_CODES[idx];
    (idx, extra, u32::from(dist - base))
}

/// The DEFLATE-style codec. Stateless; `Default` gives the standard
/// configuration.
#[derive(Debug, Default, Clone, Copy)]
pub struct Deflate;

impl Deflate {
    fn compress_block(&self, block: &[u8], out: &mut Vec<u8>) {
        let tokens = lz77::tokenize(block);

        // Gather symbol frequencies.
        let mut lit_freq = vec![0u64; NUM_LITLEN];
        let mut dist_freq = vec![0u64; NUM_DIST];
        lit_freq[EOB] = 1;
        for &t in &tokens {
            match t {
                Token::Literal(b) => lit_freq[b as usize] += 1,
                Token::Match { len, dist } => {
                    lit_freq[length_symbol(len).0] += 1;
                    dist_freq[dist_symbol(dist).0] += 1;
                }
            }
        }
        let lit_lens = code_lengths(&lit_freq, MAX_CODE_LEN);
        let dist_lens = code_lengths(&dist_freq, MAX_CODE_LEN);
        let lit_enc = Encoder::from_lengths(&lit_lens);
        let dist_enc = Encoder::from_lengths(&dist_lens);

        // Estimate the compressed size; fall back to a stored block if
        // Huffman coding does not pay off.
        let mut bits = 0u64;
        for &t in &tokens {
            match t {
                Token::Literal(b) => bits += u64::from(lit_enc.len_of(b as usize)),
                Token::Match { len, dist } => {
                    let (ls, le, _) = length_symbol(len);
                    let (ds, de, _) = dist_symbol(dist);
                    bits += u64::from(lit_enc.len_of(ls)) + u64::from(le);
                    bits += u64::from(dist_enc.len_of(ds)) + u64::from(de);
                }
            }
        }
        let table_bytes = (NUM_LITLEN + NUM_DIST).div_ceil(2);
        let huff_bytes = (bits as usize).div_ceil(8) + table_bytes + 8;
        if huff_bytes >= block.len() {
            out.push(0); // stored
            out.extend_from_slice(&(block.len() as u32).to_le_bytes());
            out.extend_from_slice(block);
            return;
        }

        out.push(1); // huffman
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        // Code-length tables: packed nibbles, litlen then dist.
        let mut nibbles = Vec::with_capacity(NUM_LITLEN + NUM_DIST);
        nibbles.extend_from_slice(&lit_lens);
        nibbles.extend_from_slice(&dist_lens);
        for pair in nibbles.chunks(2) {
            let lo = pair[0];
            let hi = pair.get(1).copied().unwrap_or(0);
            out.push(lo | (hi << 4));
        }

        let mut w = BitWriter::new();
        for &t in &tokens {
            match t {
                Token::Literal(b) => lit_enc.write(&mut w, b as usize),
                Token::Match { len, dist } => {
                    let (ls, le, lx) = length_symbol(len);
                    lit_enc.write(&mut w, ls);
                    if le > 0 {
                        w.write_bits(lx, le);
                    }
                    let (ds, de, dx) = dist_symbol(dist);
                    dist_enc.write(&mut w, ds);
                    if de > 0 {
                        w.write_bits(dx, de);
                    }
                }
            }
        }
        lit_enc.write(&mut w, EOB);
        let payload = w.finish();
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
    }

    fn decompress_block(data: &[u8], pos: &mut usize, out: &mut Vec<u8>) -> Result<(), CodecError> {
        let need = |p: usize, n: usize| {
            if p + n > data.len() {
                Err(CodecError::Truncated)
            } else {
                Ok(())
            }
        };
        need(*pos, 5)?;
        let kind = data[*pos];
        let orig_len = u32::from_le_bytes(data[*pos + 1..*pos + 5].try_into().unwrap()) as usize;
        *pos += 5;
        match kind {
            0 => {
                need(*pos, orig_len)?;
                out.extend_from_slice(&data[*pos..*pos + orig_len]);
                *pos += orig_len;
                Ok(())
            }
            1 => {
                let table_bytes = (NUM_LITLEN + NUM_DIST).div_ceil(2);
                need(*pos, table_bytes)?;
                let mut lens = Vec::with_capacity(NUM_LITLEN + NUM_DIST);
                for &b in &data[*pos..*pos + table_bytes] {
                    lens.push(b & 0xF);
                    lens.push(b >> 4);
                }
                lens.truncate(NUM_LITLEN + NUM_DIST);
                *pos += table_bytes;
                let lit_dec = Decoder::from_lengths(&lens[..NUM_LITLEN])?;
                let dist_dec = Decoder::from_lengths(&lens[NUM_LITLEN..])?;

                need(*pos, 4)?;
                let payload_len =
                    u32::from_le_bytes(data[*pos..*pos + 4].try_into().unwrap()) as usize;
                *pos += 4;
                need(*pos, payload_len)?;
                let payload = &data[*pos..*pos + payload_len];
                *pos += payload_len;

                let block_start = out.len();
                let mut r = BitReader::new(payload);
                loop {
                    let sym = lit_dec.read(&mut r)?;
                    match sym {
                        0..=255 => out.push(sym as u8),
                        256 => break,
                        257..=285 => {
                            let (extra, base) = LENGTH_CODES[sym - 257];
                            let len = base as usize + r.read_bits(extra)? as usize;
                            let dsym = dist_dec.read(&mut r)?;
                            if dsym >= NUM_DIST {
                                return Err(CodecError::Corrupt("bad distance symbol"));
                            }
                            let (dextra, dbase) = DIST_CODES[dsym];
                            let dist = dbase as usize + r.read_bits(dextra)? as usize;
                            if dist > out.len() - block_start {
                                return Err(CodecError::Corrupt(
                                    "distance reaches before block start",
                                ));
                            }
                            let start = out.len() - dist;
                            for i in 0..len {
                                let b = out[start + i];
                                out.push(b);
                            }
                        }
                        _ => return Err(CodecError::Corrupt("bad literal/length symbol")),
                    }
                }
                if out.len() - block_start != orig_len {
                    return Err(CodecError::LengthMismatch {
                        expected: orig_len,
                        actual: out.len() - block_start,
                    });
                }
                Ok(())
            }
            _ => Err(CodecError::Corrupt("unknown block type")),
        }
    }
}

impl Codec for Deflate {
    fn name(&self) -> &'static str {
        "deflate"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 64);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());
        out.extend_from_slice(&adler32(input).to_le_bytes());
        for block in input.chunks(BLOCK_SIZE) {
            self.compress_block(block, &mut out);
        }
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        if input.len() < 16 {
            return Err(CodecError::Truncated);
        }
        if u32::from_le_bytes(input[0..4].try_into().unwrap()) != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let total = u64::from_le_bytes(input[4..12].try_into().unwrap()) as usize;
        let checksum = u32::from_le_bytes(input[12..16].try_into().unwrap());
        // `total` is untrusted: pre-reserve only a bounded amount.
        let mut out = Vec::with_capacity(total.min(16 << 20));
        let mut pos = 16usize;
        while out.len() < total {
            Self::decompress_block(input, &mut pos, &mut out)?;
        }
        if out.len() != total {
            return Err(CodecError::LengthMismatch {
                expected: total,
                actual: out.len(),
            });
        }
        if adler32(&out) != checksum {
            return Err(CodecError::Corrupt("checksum mismatch"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = Deflate.compress(data);
        assert_eq!(Deflate.decompress(&c).unwrap(), data, "roundtrip failed");
        c.len()
    }

    #[test]
    fn empty_input() {
        assert!(roundtrip(b"") <= 16);
    }

    #[test]
    fn adler32_known_values() {
        // Reference values from the zlib specification.
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
        // Long inputs exercise the modular-reduction chunking.
        let long = vec![0xABu8; 1_000_000];
        assert_eq!(adler32(&long), adler32(&long));
    }

    #[test]
    fn bitflips_are_detected() {
        let data = b"scientific data is precious and must not rot ".repeat(200);
        let c = Deflate.compress(&data);
        // Flip one bit in every region of the stream: header, tables,
        // payload. Every case must error, never return wrong bytes.
        for pos in [16usize, 30, c.len() / 2, c.len() - 2] {
            let mut bad = c.clone();
            bad[pos] ^= 0x04;
            match Deflate.decompress(&bad) {
                Err(_) => {}
                Ok(out) => assert_eq!(out, data, "undetected corruption at {pos}"),
            }
        }
        // Corrupting the stored checksum itself must error.
        let mut bad = c.clone();
        bad[13] ^= 0xFF;
        assert!(Deflate.decompress(&bad).is_err());
    }

    #[test]
    fn small_inputs() {
        roundtrip(b"a");
        roundtrip(b"hello, world");
        roundtrip(&[0u8; 3]);
    }

    #[test]
    fn compresses_text() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(500);
        let size = roundtrip(&data);
        assert!(
            size < data.len() / 5,
            "ratio too poor: {size} vs {}",
            data.len()
        );
    }

    #[test]
    fn compresses_runs() {
        let data = vec![42u8; 1_000_000];
        let size = roundtrip(&data);
        assert!(size < 5_000, "run compression too poor: {size}");
    }

    #[test]
    fn random_data_falls_back_to_stored() {
        let mut x = 0x243F_6A88u32;
        let data: Vec<u8> = (0..200_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 8) as u8
            })
            .collect();
        let size = roundtrip(&data);
        // Incompressible data must not blow up: stored fallback bounds
        // overhead to the per-block header.
        assert!(size <= data.len() + 16 + 5 * 2, "size {size}");
    }

    #[test]
    fn multi_block_input() {
        let data: Vec<u8> = (0..400_000).map(|i| ((i / 100) % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut c = Deflate.compress(b"hello");
        c[0] ^= 0x5A;
        assert_eq!(Deflate.decompress(&c), Err(CodecError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let c = Deflate.compress(&b"some compressible data ".repeat(100));
        for cut in [4, 12, 15, c.len() - 1] {
            assert!(Deflate.decompress(&c[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn length_symbol_table_is_consistent() {
        for len in 3..=258u16 {
            let (sym, extra, extra_val) = length_symbol(len);
            assert!((257..=285).contains(&sym));
            let (e, base) = LENGTH_CODES[sym - 257];
            assert_eq!(e, extra);
            assert_eq!(u32::from(len) - u32::from(base), extra_val);
            assert!(extra_val < (1 << e.max(1)));
        }
    }

    #[test]
    fn dist_symbol_table_is_consistent() {
        for dist in 1..=32768u32 {
            let (sym, extra, extra_val) = dist_symbol(dist as u16);
            if dist > u16::MAX as u32 {
                continue;
            }
            assert!(sym < 30);
            let (e, base) = DIST_CODES[sym];
            assert_eq!(e, extra);
            assert_eq!(dist - u32::from(base), extra_val);
            if e > 0 {
                assert!(extra_val < (1 << e));
            } else {
                assert_eq!(extra_val, 0);
            }
        }
    }
}
