//! FPC-style predictive lossless floating-point compression.
//!
//! Implements the FCM/DFCM dual-predictor scheme of Burtscher &
//! Ratanaworabhan ("FPC: A High-Speed Compressor for Double-Precision
//! Floating-Point Data"). Each double is XORed with the better of two
//! hash-table predictions; the result's leading zero bytes are elided
//! and a 4-bit code records the predictor choice and the count.
//!
//! This codec stands in for FPZip as MLOC's "fast lossless FP codec"
//! plug-in: high throughput, modest ratio on smooth scientific data.

use crate::{CodecError, FloatCodec};

const MAGIC: u32 = 0x4350_464D; // "MFPC"
const TABLE_BITS: u32 = 16;
const TABLE_SIZE: usize = 1 << TABLE_BITS;

/// The FPC codec. `Default` uses 2^16-entry predictor tables.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fpc;

struct Predictors {
    fcm: Vec<u64>,
    dfcm: Vec<u64>,
    fcm_hash: usize,
    dfcm_hash: usize,
    last: u64,
}

impl Predictors {
    fn new() -> Self {
        Predictors {
            fcm: vec![0; TABLE_SIZE],
            dfcm: vec![0; TABLE_SIZE],
            fcm_hash: 0,
            dfcm_hash: 0,
            last: 0,
        }
    }

    /// Current predictions `(fcm, dfcm)`.
    #[inline]
    fn predict(&self) -> (u64, u64) {
        (
            self.fcm[self.fcm_hash],
            self.dfcm[self.dfcm_hash].wrapping_add(self.last),
        )
    }

    /// Update both predictor tables with the true value.
    #[inline]
    fn update(&mut self, bits: u64) {
        self.fcm[self.fcm_hash] = bits;
        self.fcm_hash = (((self.fcm_hash << 6) as u64) ^ (bits >> 48)) as usize & (TABLE_SIZE - 1);
        let delta = bits.wrapping_sub(self.last);
        self.dfcm[self.dfcm_hash] = delta;
        self.dfcm_hash =
            (((self.dfcm_hash << 2) as u64) ^ (delta >> 40)) as usize & (TABLE_SIZE - 1);
        self.last = bits;
    }
}

/// Map a leading-zero-byte count (0..=8) to its 3-bit code. Count 4 is
/// folded into 3 (FPC's trick: 4 is rare, and folding keeps the code in
/// 3 bits).
#[inline]
fn lzb_to_code(lzb: u32) -> u32 {
    match lzb {
        0..=3 => lzb,
        4 => 3,
        _ => lzb - 1,
    }
}

/// Inverse of [`lzb_to_code`].
#[inline]
fn code_to_lzb(code: u32) -> u32 {
    if code >= 4 {
        code + 1
    } else {
        code
    }
}

impl FloatCodec for Fpc {
    fn name(&self) -> &'static str {
        "fpc"
    }

    fn is_lossy(&self) -> bool {
        false
    }

    fn compress_f64(&self, input: &[f64]) -> Vec<u8> {
        let n = input.len();
        let mut codes = Vec::with_capacity(n.div_ceil(2));
        let mut residuals = Vec::with_capacity(n * 4);
        let mut pred = Predictors::new();

        let mut pending: Option<u8> = None;
        for &v in input {
            let bits = v.to_bits();
            let (p_fcm, p_dfcm) = pred.predict();
            let x_fcm = bits ^ p_fcm;
            let x_dfcm = bits ^ p_dfcm;
            let (sel, xor) = if x_fcm.leading_zeros() >= x_dfcm.leading_zeros() {
                (0u32, x_fcm)
            } else {
                (1u32, x_dfcm)
            };
            pred.update(bits);

            let lzb = (xor.leading_zeros() / 8).min(8);
            let code = (sel << 3) | lzb_to_code(lzb);
            match pending.take() {
                None => pending = Some(code as u8),
                Some(first) => codes.push(first | ((code as u8) << 4)),
            }
            let keep = 8 - code_to_lzb(lzb_to_code(lzb)) as usize;
            // Emit the low `keep` bytes of the XOR (big-endian order of
            // significance is irrelevant; we use LE consistently).
            residuals.extend_from_slice(&xor.to_le_bytes()[..keep]);
        }
        if let Some(first) = pending {
            codes.push(first);
        }

        let mut out = Vec::with_capacity(16 + codes.len() + residuals.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&codes);
        out.extend_from_slice(&residuals);
        out
    }

    fn decompress_f64(&self, input: &[u8]) -> Result<Vec<f64>, CodecError> {
        if input.len() < 12 {
            return Err(CodecError::Truncated);
        }
        if u32::from_le_bytes(input[0..4].try_into().unwrap()) != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let n = u64::from_le_bytes(input[4..12].try_into().unwrap()) as usize;
        let code_bytes = n.div_ceil(2);
        if input.len() < 12 + code_bytes {
            return Err(CodecError::Truncated);
        }
        let codes = &input[12..12 + code_bytes];
        let mut res_pos = 12 + code_bytes;

        // `n` is untrusted, but each value consumes at least the code
        // nibble, so it cannot plausibly exceed twice the input size.
        if n > input.len().saturating_mul(2) + 16 {
            return Err(CodecError::Corrupt("implausible value count"));
        }
        let mut out = Vec::with_capacity(n);
        let mut pred = Predictors::new();
        for i in 0..n {
            let code_pair = codes[i / 2];
            let code = if i % 2 == 0 {
                code_pair & 0xF
            } else {
                code_pair >> 4
            };
            let sel = (code >> 3) & 1;
            let lzb = code_to_lzb(u32::from(code & 0x7));
            let keep = 8 - lzb as usize;
            if res_pos + keep > input.len() {
                return Err(CodecError::Truncated);
            }
            let mut xb = [0u8; 8];
            xb[..keep].copy_from_slice(&input[res_pos..res_pos + keep]);
            res_pos += keep;
            let xor = u64::from_le_bytes(xb);

            let (p_fcm, p_dfcm) = pred.predict();
            let bits = xor ^ if sel == 0 { p_fcm } else { p_dfcm };
            pred.update(bits);
            out.push(f64::from_bits(bits));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64]) -> usize {
        let c = Fpc.compress_f64(data);
        let d = Fpc.decompress_f64(&c).unwrap();
        assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(&d) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact roundtrip required");
        }
        c.len()
    }

    #[test]
    fn empty() {
        assert!(roundtrip(&[]) <= 12);
    }

    #[test]
    fn exact_on_specials() {
        roundtrip(&[
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN_POSITIVE,
        ]);
        // NaN needs bit-level comparison, done in roundtrip().
        roundtrip(&[f64::NAN, 1.0, f64::NAN]);
    }

    #[test]
    fn compresses_smooth_series() {
        let data: Vec<f64> = (0..100_000).map(|i| (i as f64 * 0.001).sin()).collect();
        let size = roundtrip(&data);
        assert!(
            size < data.len() * 8 * 9 / 10,
            "smooth data should compress: {size} vs {}",
            data.len() * 8
        );
    }

    #[test]
    fn constant_series_compresses_well() {
        let data = vec![std::f64::consts::PI; 10_000];
        let size = roundtrip(&data);
        // Constant data: predictor hits, ~0.5 bytes/value + header.
        assert!(size < 10_000, "size {size}");
    }

    #[test]
    fn survives_random_bits() {
        let mut x = 0x9E3779B97F4A7C15u64;
        let data: Vec<f64> = (0..10_001)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f64::from_bits(x)
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn lzb_code_mapping() {
        for lzb in 0..=8u32 {
            let c = lzb_to_code(lzb);
            assert!(c < 8);
            if lzb != 4 {
                assert_eq!(code_to_lzb(c), lzb);
            } else {
                assert_eq!(code_to_lzb(c), 3, "4 folds to 3 (stores one extra byte)");
            }
        }
    }

    #[test]
    fn rejects_corruption() {
        let c = Fpc.compress_f64(&[1.0, 2.0, 3.0]);
        assert_eq!(Fpc.decompress_f64(&c[..4]), Err(CodecError::Truncated));
        let mut bad = c.clone();
        bad[0] ^= 1;
        assert_eq!(Fpc.decompress_f64(&bad), Err(CodecError::BadMagic));
    }
}
