//! Cubic B-spline least-squares fitting of monotone (sorted) windows.
//!
//! ISABELA's core insight is that *sorting* a window of turbulent data
//! produces a smooth monotone curve that a low-order B-spline fits with
//! very few coefficients. This module provides the clamped uniform
//! cubic B-spline basis (Cox–de Boor recursion, NURBS-book algorithms)
//! and a dense normal-equations least-squares fit.

/// Spline degree (cubic).
pub const DEGREE: usize = 3;

/// A fitted clamped uniform cubic B-spline over `x ∈ [0, n-1]`.
#[derive(Debug, Clone)]
pub struct BSpline {
    coeffs: Vec<f64>,
    /// Number of samples the spline was fitted over.
    n: usize,
}

/// Clamped uniform knot value for knot index `i` with `k` control
/// points, normalized to `[0, 1]`.
fn knot(i: usize, k: usize) -> f64 {
    // Knot vector length is k + DEGREE + 1; first/last DEGREE+1 knots
    // are clamped.
    if i <= DEGREE {
        0.0
    } else if i >= k {
        1.0
    } else {
        (i - DEGREE) as f64 / (k - DEGREE) as f64
    }
}

/// Find the knot span index for parameter `u` (NURBS book A2.1).
fn find_span(u: f64, k: usize) -> usize {
    if u >= 1.0 {
        return k - 1;
    }
    // Spans run from DEGREE to k-1.
    let mut lo = DEGREE;
    let mut hi = k - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if knot(mid, k) <= u {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Evaluate the DEGREE+1 nonzero basis functions at `u` for the given
/// span (NURBS book A2.2). Returns `[N_{span-DEGREE}, ..., N_{span}]`.
fn basis_funs(span: usize, u: f64, k: usize) -> [f64; DEGREE + 1] {
    let mut n = [0.0f64; DEGREE + 1];
    let mut left = [0.0f64; DEGREE + 1];
    let mut right = [0.0f64; DEGREE + 1];
    n[0] = 1.0;
    for j in 1..=DEGREE {
        left[j] = u - knot(span + 1 - j, k);
        right[j] = knot(span + j, k) - u;
        let mut saved = 0.0;
        for r in 0..j {
            let denom = right[r + 1] + left[j - r];
            let temp = if denom.abs() < f64::EPSILON {
                0.0
            } else {
                n[r] / denom
            };
            n[r] = saved + right[r + 1] * temp;
            saved = left[j - r] * temp;
        }
        n[j] = saved;
    }
    n
}

impl BSpline {
    /// Least-squares fit of a cubic B-spline with `num_coeffs` control
    /// points to the samples `y` at positions `x_i = i`.
    ///
    /// # Panics
    /// Panics when `y.len() < num_coeffs` or `num_coeffs < DEGREE + 1`.
    pub fn fit(y: &[f64], num_coeffs: usize) -> BSpline {
        let n = y.len();
        let k = num_coeffs;
        assert!(k > DEGREE, "need at least {} coefficients", DEGREE + 1);
        assert!(n >= k, "need at least as many samples as coefficients");

        // Normal equations: (AᵀA) c = Aᵀy, with A sparse (4 per row).
        let mut ata = vec![0.0f64; k * k];
        let mut aty = vec![0.0f64; k];
        let denom = (n - 1).max(1) as f64;
        for (i, &yi) in y.iter().enumerate() {
            let u = i as f64 / denom;
            let span = find_span(u, k);
            let basis = basis_funs(span, u, k);
            let first = span - DEGREE;
            for (a, &ba) in basis.iter().enumerate() {
                aty[first + a] += ba * yi;
                for (b, &bb) in basis.iter().enumerate() {
                    ata[(first + a) * k + (first + b)] += ba * bb;
                }
            }
        }
        // Tiny ridge keeps the system well-posed when samples cluster.
        let trace: f64 = (0..k).map(|i| ata[i * k + i]).sum();
        let ridge = trace.max(1.0) * 1e-12;
        for i in 0..k {
            ata[i * k + i] += ridge;
        }

        let coeffs = solve_dense(&mut ata, &mut aty, k);
        BSpline { coeffs, n }
    }

    /// Construct from previously stored coefficients.
    pub fn from_coeffs(coeffs: Vec<f64>, n: usize) -> BSpline {
        assert!(coeffs.len() > DEGREE);
        BSpline { coeffs, n }
    }

    /// The control-point coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluate the spline at sample position `i` (`0 <= i < n`).
    pub fn eval(&self, i: usize) -> f64 {
        let k = self.coeffs.len();
        let u = i as f64 / (self.n - 1).max(1) as f64;
        let span = find_span(u, k);
        let basis = basis_funs(span, u, k);
        let first = span - DEGREE;
        basis
            .iter()
            .enumerate()
            .map(|(j, &b)| b * self.coeffs[first + j])
            .sum()
    }

    /// Evaluate at all sample positions.
    pub fn eval_all(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.eval(i)).collect()
    }
}

/// Solve `A x = b` for dense symmetric positive-definite-ish `A`
/// (k×k, row-major) by Gaussian elimination with partial pivoting.
fn solve_dense(a: &mut [f64], b: &mut [f64], k: usize) -> Vec<f64> {
    for col in 0..k {
        // Pivot.
        let mut piv = col;
        for row in col + 1..k {
            if a[row * k + col].abs() > a[piv * k + col].abs() {
                piv = row;
            }
        }
        if piv != col {
            for j in 0..k {
                a.swap(col * k + j, piv * k + j);
            }
            b.swap(col, piv);
        }
        let d = a[col * k + col];
        if d.abs() < 1e-300 {
            continue; // singular direction; ridge keeps this harmless
        }
        for row in col + 1..k {
            let f = a[row * k + col] / d;
            if f == 0.0 {
                continue;
            }
            for j in col..k {
                a[row * k + j] -= f * a[col * k + j];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0f64; k];
    for col in (0..k).rev() {
        let mut s = b[col];
        for j in col + 1..k {
            s -= a[col * k + j] * x[j];
        }
        let d = a[col * k + col];
        x[col] = if d.abs() < 1e-300 { 0.0 } else { s / d };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_partition_of_unity() {
        let k = 12;
        for i in 0..=100 {
            let u = i as f64 / 100.0;
            let span = find_span(u, k);
            let basis = basis_funs(span, u, k);
            let sum: f64 = basis.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "u={u}: sum={sum}");
            assert!(basis.iter().all(|&b| b >= -1e-12));
        }
    }

    #[test]
    fn find_span_brackets_u() {
        let k = 10;
        for i in 0..=50 {
            let u = i as f64 / 50.0;
            let span = find_span(u, k);
            assert!((DEGREE..k).contains(&span));
            assert!(knot(span, k) <= u + 1e-15);
            if u < 1.0 {
                assert!(u < knot(span + 1, k) + 1e-15);
            }
        }
    }

    #[test]
    fn fits_linear_exactly() {
        let y: Vec<f64> = (0..100).map(|i| 2.0 * i as f64 + 5.0).collect();
        let s = BSpline::fit(&y, 8);
        for (i, &yi) in y.iter().enumerate() {
            assert!(
                (s.eval(i) - yi).abs() < 1e-6,
                "i={i}: {} vs {yi}",
                s.eval(i)
            );
        }
    }

    #[test]
    fn fits_cubic_exactly() {
        let y: Vec<f64> = (0..200)
            .map(|i| {
                let x = i as f64 / 10.0;
                0.5 * x * x * x - 2.0 * x * x + x - 7.0
            })
            .collect();
        let s = BSpline::fit(&y, 16);
        for (i, &yi) in y.iter().enumerate() {
            let rel = (s.eval(i) - yi).abs() / yi.abs().max(1.0);
            assert!(rel < 1e-6, "i={i}: {} vs {yi}", s.eval(i));
        }
    }

    #[test]
    fn fits_sorted_random_data_well() {
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut y: Vec<f64> = (0..1024)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 1_000_000) as f64 / 1000.0
            })
            .collect();
        y.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let s = BSpline::fit(&y, 32);
        let approx = s.eval_all();
        let range = y[1023] - y[0];
        let max_err = y
            .iter()
            .zip(&approx)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        // Sorted uniform data is near-linear: the fit should be tight.
        assert!(max_err < range * 0.02, "max_err {max_err} range {range}");
    }

    #[test]
    fn minimal_sizes() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let s = BSpline::fit(&y, 4);
        for (i, &yi) in y.iter().enumerate() {
            assert!((s.eval(i) - yi).abs() < 1e-8);
        }
    }

    #[test]
    fn coeff_roundtrip() {
        let y: Vec<f64> = (0..50).map(|i| (i as f64).sqrt()).collect();
        let s = BSpline::fit(&y, 10);
        let s2 = BSpline::from_coeffs(s.coeffs().to_vec(), 50);
        for i in 0..50 {
            assert_eq!(s.eval(i).to_bits(), s2.eval(i).to_bits());
        }
    }
}
