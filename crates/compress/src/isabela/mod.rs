//! ISABELA-style lossy compression with a point-wise error guarantee.
//!
//! Following Lakshminarasimhan et al. (Euro-Par 2011): the input is cut
//! into fixed windows; each window is *sorted* (making it a smooth
//! monotone curve), fitted with a cubic B-spline, and stored as
//!
//! * the spline coefficients,
//! * the sort permutation (packed `ceil(log2 W)`-bit integers), and
//! * quantized per-point corrections that bound the reconstruction
//!   error, with an exact-value escape for pathological points.
//!
//! The error guarantee is **unconditional**: every decoded value `v'`
//! satisfies `|v' - v| <= eps * max(|v|, floor)` where `floor` is a
//! per-window absolute noise floor, because the encoder verifies the
//! bound per point and escapes to the exact value when quantization
//! alone cannot meet it.

pub mod bspline;

use crate::{CodecError, FloatCodec};
use bspline::BSpline;

const MAGIC: u32 = 0x4153_494D; // "MISA"
/// Default window length.
const WINDOW: usize = 1024;
/// Default number of spline coefficients per window.
const COEFFS: usize = 32;

/// The ISABELA-style lossy codec.
#[derive(Debug, Clone, Copy)]
pub struct Isabela {
    /// Point-wise relative error bound.
    pub error_bound: f64,
    /// Window length (values per independently coded window).
    pub window: usize,
    /// Spline coefficients per window.
    pub coeffs: usize,
}

impl Isabela {
    /// Codec with the given relative error bound and default window
    /// geometry (1024-value windows, 32 coefficients).
    pub fn new(error_bound: f64) -> Self {
        assert!(
            error_bound.is_finite() && error_bound > 0.0,
            "error bound must be positive"
        );
        Isabela {
            error_bound,
            window: WINDOW,
            coeffs: COEFFS,
        }
    }

    /// Override the window geometry.
    pub fn with_geometry(mut self, window: usize, coeffs: usize) -> Self {
        assert!(window >= coeffs && coeffs >= 4);
        assert!(window <= u16::MAX as usize + 1);
        self.window = window;
        self.coeffs = coeffs;
        self
    }
}

impl Default for Isabela {
    fn default() -> Self {
        Isabela::new(0.001)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(CodecError::Corrupt("varint too long"));
        }
    }
}

/// Bits needed to store indices `0..n`.
fn index_bits(n: usize) -> u32 {
    (usize::BITS - (n.max(2) - 1).leading_zeros()).max(1)
}

fn pack_indices(indices: &[u32], bits: u32, out: &mut Vec<u8>) {
    let mut acc = 0u64;
    let mut nbits = 0u32;
    for &idx in indices {
        acc |= u64::from(idx) << nbits;
        nbits += bits;
        while nbits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xFF) as u8);
    }
}

fn unpack_indices(
    data: &[u8],
    pos: &mut usize,
    count: usize,
    bits: u32,
) -> Result<Vec<u32>, CodecError> {
    let total_bits = count as u64 * u64::from(bits);
    let nbytes = total_bits.div_ceil(8) as usize;
    if *pos + nbytes > data.len() {
        return Err(CodecError::Truncated);
    }
    let src = &data[*pos..*pos + nbytes];
    *pos += nbytes;
    let mut out = Vec::with_capacity(count);
    let mut acc = 0u64;
    let mut nbits = 0u32;
    let mut byte_idx = 0usize;
    let mask = (1u64 << bits) - 1;
    for _ in 0..count {
        while nbits < bits {
            acc |= u64::from(src[byte_idx]) << nbits;
            byte_idx += 1;
            nbits += 8;
        }
        out.push((acc & mask) as u32);
        acc >>= bits;
        nbits -= bits;
    }
    Ok(out)
}

impl FloatCodec for Isabela {
    fn name(&self) -> &'static str {
        "isabela"
    }

    fn is_lossy(&self) -> bool {
        true
    }

    fn compress_f64(&self, input: &[f64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() * 2 + 64);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.window as u32).to_le_bytes());
        out.extend_from_slice(&self.error_bound.to_le_bytes());

        for win in input.chunks(self.window) {
            self.compress_window(win, &mut out);
        }
        out
    }

    fn decompress_f64(&self, input: &[u8]) -> Result<Vec<f64>, CodecError> {
        if input.len() < 24 {
            return Err(CodecError::Truncated);
        }
        if u32::from_le_bytes(input[0..4].try_into().unwrap()) != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let total = u64::from_le_bytes(input[4..12].try_into().unwrap()) as usize;
        let window = u32::from_le_bytes(input[12..16].try_into().unwrap()) as usize;
        let eps = f64::from_le_bytes(input[16..24].try_into().unwrap());
        if window == 0 || !eps.is_finite() {
            return Err(CodecError::Corrupt("bad header"));
        }
        let mut pos = 24usize;
        // `total` is untrusted: pre-reserve only a bounded amount.
        let mut out = Vec::with_capacity(total.min(2 << 20));
        while out.len() < total {
            let n = (total - out.len()).min(window);
            Self::decompress_window(input, &mut pos, n, eps, &mut out)?;
        }
        Ok(out)
    }
}

impl Isabela {
    fn compress_window(&self, win: &[f64], out: &mut Vec<u8>) {
        let n = win.len();
        // Windows too small to fit, or containing non-finite values,
        // are stored raw (flag 0).
        if n < self.coeffs.max(4) || win.iter().any(|v| !v.is_finite()) {
            out.push(0);
            for v in win {
                out.extend_from_slice(&v.to_le_bytes());
            }
            return;
        }

        // Sort: perm[sorted_pos] = original index.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_by(|&a, &b| win[a as usize].partial_cmp(&win[b as usize]).unwrap());
        let sorted: Vec<f64> = perm.iter().map(|&i| win[i as usize]).collect();

        let spline = BSpline::fit(&sorted, self.coeffs);
        let approx = spline.eval_all();

        // Per-window absolute noise floor below which "relative" error
        // is meaningless.
        let max_abs = sorted.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let floor = (max_abs * 1e-12).max(1e-300);

        // Quantize residuals; escape points the bound cannot cover.
        let mut qstream: Vec<u8> = Vec::with_capacity(n);
        let mut escapes: Vec<(u32, f64)> = Vec::new();
        for i in 0..n {
            let v = sorted[i];
            let s = approx[i];
            let step = self.error_bound * s.abs().max(floor);
            let q = ((v - s) / step).round();
            let (q, recon) = if q.abs() > 1e15 {
                (0.0, s)
            } else {
                (q, s + q * step)
            };
            if (recon - v).abs() <= self.error_bound * v.abs().max(floor) {
                write_varint(&mut qstream, zigzag(q as i64));
            } else {
                write_varint(&mut qstream, zigzag(0));
                escapes.push((i as u32, v));
            }
        }

        out.push(1);
        out.extend_from_slice(&(n as u16).to_le_bytes());
        out.extend_from_slice(&(self.coeffs as u16).to_le_bytes());
        out.extend_from_slice(&floor.to_le_bytes());
        for c in spline.coeffs() {
            out.extend_from_slice(&c.to_le_bytes());
        }
        let bits = index_bits(n);
        pack_indices(&perm, bits, out);
        out.extend_from_slice(&(qstream.len() as u32).to_le_bytes());
        out.extend_from_slice(&qstream);
        out.extend_from_slice(&(escapes.len() as u32).to_le_bytes());
        for (i, v) in &escapes {
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decompress_window(
        data: &[u8],
        pos: &mut usize,
        n: usize,
        eps: f64,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let flag = *data.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        match flag {
            0 => {
                if *pos + n * 8 > data.len() {
                    return Err(CodecError::Truncated);
                }
                for i in 0..n {
                    let off = *pos + i * 8;
                    out.push(f64::from_le_bytes(data[off..off + 8].try_into().unwrap()));
                }
                *pos += n * 8;
                Ok(())
            }
            1 => {
                let need = |p: usize, k: usize| {
                    if p + k > data.len() {
                        Err(CodecError::Truncated)
                    } else {
                        Ok(())
                    }
                };
                need(*pos, 12)?;
                let stored_n =
                    u16::from_le_bytes(data[*pos..*pos + 2].try_into().unwrap()) as usize;
                let k = u16::from_le_bytes(data[*pos + 2..*pos + 4].try_into().unwrap()) as usize;
                let floor = f64::from_le_bytes(data[*pos + 4..*pos + 12].try_into().unwrap());
                *pos += 12;
                if stored_n != n {
                    return Err(CodecError::LengthMismatch {
                        expected: n,
                        actual: stored_n,
                    });
                }
                if k < 4 || k > n {
                    return Err(CodecError::Corrupt("bad coefficient count"));
                }
                need(*pos, k * 8)?;
                let mut coeffs = Vec::with_capacity(k);
                for i in 0..k {
                    let off = *pos + i * 8;
                    coeffs.push(f64::from_le_bytes(data[off..off + 8].try_into().unwrap()));
                }
                *pos += k * 8;

                let bits = index_bits(n);
                let perm = unpack_indices(data, pos, n, bits)?;
                if perm.iter().any(|&p| p as usize >= n) {
                    return Err(CodecError::Corrupt("permutation index out of range"));
                }

                need(*pos, 4)?;
                let qlen = u32::from_le_bytes(data[*pos..*pos + 4].try_into().unwrap()) as usize;
                *pos += 4;
                need(*pos, qlen)?;
                let qdata = &data[*pos..*pos + qlen];
                *pos += qlen;

                let spline = BSpline::from_coeffs(coeffs, n);
                let mut recon_sorted = Vec::with_capacity(n);
                let mut qpos = 0usize;
                for i in 0..n {
                    let s = spline.eval(i);
                    let q = unzigzag(read_varint(qdata, &mut qpos)?) as f64;
                    let step = eps * s.abs().max(floor);
                    recon_sorted.push(s + q * step);
                }

                need(*pos, 4)?;
                let nesc = u32::from_le_bytes(data[*pos..*pos + 4].try_into().unwrap()) as usize;
                *pos += 4;
                need(*pos, nesc * 12)?;
                for _ in 0..nesc {
                    let i = u32::from_le_bytes(data[*pos..*pos + 4].try_into().unwrap()) as usize;
                    let v = f64::from_le_bytes(data[*pos + 4..*pos + 12].try_into().unwrap());
                    *pos += 12;
                    if i >= n {
                        return Err(CodecError::Corrupt("escape index out of range"));
                    }
                    recon_sorted[i] = v;
                }

                // Scatter back to original order.
                let base = out.len();
                out.resize(base + n, 0.0);
                for (sorted_pos, &orig) in perm.iter().enumerate() {
                    out[base + orig as usize] = recon_sorted[sorted_pos];
                }
                Ok(())
            }
            _ => Err(CodecError::Corrupt("unknown window flag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bound(data: &[f64], eps: f64) -> usize {
        let codec = Isabela::new(eps);
        let c = codec.compress_f64(data);
        let d = codec.decompress_f64(&c).unwrap();
        assert_eq!(d.len(), data.len());
        let max_abs = data.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let floor = (max_abs * 1e-12).max(1e-300);
        for (i, (a, b)) in data.iter().zip(&d).enumerate() {
            let tol = eps * a.abs().max(floor) * (1.0 + 1e-9);
            assert!(
                (a - b).abs() <= tol,
                "point {i}: |{a} - {b}| = {} > {tol}",
                (a - b).abs()
            );
        }
        c.len()
    }

    fn noisy_series(n: usize) -> Vec<f64> {
        let mut x = 0xCAFEBABE_12345678u64;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let noise = (x % 10_000) as f64 / 10_000.0;
                100.0 * ((i as f64) * 0.01).sin() + noise * 10.0
            })
            .collect()
    }

    #[test]
    fn error_bound_on_noisy_data() {
        let data = noisy_series(8192);
        let size = check_bound(&data, 0.001);
        assert!(
            size < data.len() * 8 * 45 / 100,
            "ISABELA ratio too poor: {size} vs {}",
            data.len() * 8
        );
    }

    #[test]
    fn looser_bound_compresses_more() {
        let data = noisy_series(8192);
        let tight = Isabela::new(1e-4).compress_f64(&data).len();
        let loose = Isabela::new(1e-2).compress_f64(&data).len();
        assert!(loose <= tight, "loose {loose} vs tight {tight}");
    }

    #[test]
    fn partial_window_and_tiny_inputs() {
        check_bound(&noisy_series(1024 + 17), 0.001);
        check_bound(&[1.0, 2.0, 3.0], 0.001); // below min window: raw
        check_bound(&[], 0.001);
    }

    #[test]
    fn non_finite_values_stored_exactly() {
        let mut data = noisy_series(1024);
        data[100] = f64::INFINITY;
        data[500] = f64::NAN;
        let codec = Isabela::new(0.001);
        let d = codec.decompress_f64(&codec.compress_f64(&data)).unwrap();
        assert!(d[100].is_infinite());
        assert!(d[500].is_nan());
    }

    #[test]
    fn zeros_and_negatives() {
        let data: Vec<f64> = (0..2048)
            .map(|i| {
                if i % 5 == 0 {
                    0.0
                } else {
                    -((i % 100) as f64) * 0.5
                }
            })
            .collect();
        check_bound(&data, 0.001);
    }

    #[test]
    fn constant_window() {
        let data = vec![42.0; 2048];
        let size = check_bound(&data, 0.001);
        assert!(size < 2048 * 8 / 2);
    }

    #[test]
    fn rejects_corruption() {
        let codec = Isabela::new(0.001);
        let c = codec.compress_f64(&noisy_series(2048));
        assert!(codec.decompress_f64(&c[..10]).is_err());
        let mut bad = c.clone();
        bad[1] ^= 0xFF;
        assert!(codec.decompress_f64(&bad).is_err());
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        for v in [-1_000_000i64, -1, 0, 1, 12345, i64::MAX / 2, i64::MIN / 2] {
            let mut buf = Vec::new();
            write_varint(&mut buf, zigzag(v));
            let mut pos = 0;
            assert_eq!(unzigzag(read_varint(&buf, &mut pos).unwrap()), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn pack_unpack_indices_roundtrip() {
        let idx: Vec<u32> = (0..1000u32).map(|i| (i * 37) % 1000).collect();
        let bits = index_bits(1000);
        let mut buf = Vec::new();
        pack_indices(&idx, bits, &mut buf);
        let mut pos = 0;
        let back = unpack_indices(&buf, &mut pos, 1000, bits).unwrap();
        assert_eq!(back, idx);
    }
}
