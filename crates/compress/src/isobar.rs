//! ISOBAR-style lossless compression for double-precision data.
//!
//! ISOBAR (Schendel et al., ICDE 2012) is a *preconditioner*: it
//! identifies which parts of hard-to-compress floating-point data are
//! actually compressible and routes only those through a standard
//! compressor, storing the rest raw. Turbulent scientific data has
//! highly compressible sign/exponent/leading-mantissa bytes and
//! essentially random trailing mantissa bytes, so the byte-column
//! decomposition used here captures the published behaviour: the codec
//! transposes values into 8 byte columns, measures each column's
//! empirical entropy, compresses columns below the threshold with the
//! DEFLATE-style codec, and stores the others verbatim.

use crate::deflate::Deflate;
use crate::{Codec, CodecError, FloatCodec};

const MAGIC: u32 = 0x4F53_494D; // "MISO"
const BYTE_MAGIC: u32 = 0x4253_494D; // "MISB"

/// Entropy threshold (bits/byte) above which a byte column is
/// considered incompressible and stored raw. DEFLATE needs a margin
/// below 8.0 to win after its own overhead.
const ENTROPY_THRESHOLD: f64 = 7.0;

/// The ISOBAR-style codec.
#[derive(Debug, Clone, Copy)]
pub struct Isobar {
    threshold: f64,
}

impl Default for Isobar {
    fn default() -> Self {
        Isobar {
            threshold: ENTROPY_THRESHOLD,
        }
    }
}

impl Isobar {
    /// Codec with a custom entropy threshold in bits/byte (0..=8).
    pub fn with_threshold(threshold: f64) -> Self {
        assert!((0.0..=8.0).contains(&threshold));
        Isobar { threshold }
    }
}

/// Empirical Shannon entropy of a byte slice, in bits per byte.
pub fn byte_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// ISOBAR applied to a single byte stream (one PLoD byte column):
/// entropy-test the stream and either DEFLATE it or store it raw. This
/// is the codec MLOC pairs with PLoD — each byte group is already a
/// homogeneous column, so the per-column compressibility test is
/// exactly the published preconditioner with one column.
impl Codec for Isobar {
    fn name(&self) -> &'static str {
        "isobar"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        out.extend_from_slice(&BYTE_MAGIC.to_le_bytes());
        if byte_entropy(input) <= self.threshold {
            let payload = Deflate.compress(input);
            if payload.len() < input.len() {
                out.push(1);
                out.extend_from_slice(&payload);
                return out;
            }
        }
        out.push(0);
        out.extend_from_slice(input);
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        if input.len() < 5 {
            return Err(CodecError::Truncated);
        }
        if u32::from_le_bytes(input[0..4].try_into().unwrap()) != BYTE_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let payload = &input[5..];
        match input[4] {
            0 => Ok(payload.to_vec()),
            1 => Deflate.decompress(payload),
            _ => Err(CodecError::Corrupt("bad stream flag")),
        }
    }
}

impl FloatCodec for Isobar {
    fn name(&self) -> &'static str {
        "isobar"
    }

    fn is_lossy(&self) -> bool {
        false
    }

    fn compress_f64(&self, input: &[f64]) -> Vec<u8> {
        let n = input.len();
        // Transpose into byte columns (LE byte j of every value).
        let mut columns: Vec<Vec<u8>> = (0..8).map(|_| Vec::with_capacity(n)).collect();
        for v in input {
            let b = v.to_le_bytes();
            for (j, col) in columns.iter_mut().enumerate() {
                col.push(b[j]);
            }
        }

        let mut out = Vec::with_capacity(n * 8 / 2 + 64);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        let deflate = Deflate;
        for col in &columns {
            let compressible = byte_entropy(col) <= self.threshold;
            if compressible {
                let payload = deflate.compress(col);
                if payload.len() < col.len() {
                    out.push(1);
                    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                    out.extend_from_slice(&payload);
                    continue;
                }
            }
            out.push(0);
            out.extend_from_slice(&(col.len() as u64).to_le_bytes());
            out.extend_from_slice(col);
        }
        out
    }

    fn decompress_f64(&self, input: &[u8]) -> Result<Vec<f64>, CodecError> {
        if input.len() < 12 {
            return Err(CodecError::Truncated);
        }
        if u32::from_le_bytes(input[0..4].try_into().unwrap()) != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let n = u64::from_le_bytes(input[4..12].try_into().unwrap()) as usize;
        let mut pos = 12usize;
        let mut columns: Vec<Vec<u8>> = Vec::with_capacity(8);
        let deflate = Deflate;
        for _ in 0..8 {
            if pos + 9 > input.len() {
                return Err(CodecError::Truncated);
            }
            let flag = input[pos];
            let len = u64::from_le_bytes(input[pos + 1..pos + 9].try_into().unwrap()) as usize;
            pos += 9;
            if pos + len > input.len() {
                return Err(CodecError::Truncated);
            }
            let payload = &input[pos..pos + len];
            pos += len;
            let col = match flag {
                0 => payload.to_vec(),
                1 => deflate.decompress(payload)?,
                _ => return Err(CodecError::Corrupt("bad column flag")),
            };
            if col.len() != n {
                return Err(CodecError::LengthMismatch {
                    expected: n,
                    actual: col.len(),
                });
            }
            columns.push(col);
        }

        // `n` was validated against every decompressed column above.
        let mut out = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // gathers across columns
        for i in 0..n {
            let mut b = [0u8; 8];
            for (j, bj) in b.iter_mut().enumerate() {
                *bj = columns[j][i];
            }
            out.push(f64::from_le_bytes(b));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64]) -> usize {
        let c = Isobar::default().compress_f64(data);
        let d = Isobar::default().decompress_f64(&c).unwrap();
        assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(&d) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        c.len()
    }

    #[test]
    fn empty_and_small() {
        roundtrip(&[]);
        roundtrip(&[1.0]);
        roundtrip(&[f64::NAN, -0.0, f64::INFINITY]);
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(byte_entropy(&[]), 0.0);
        assert_eq!(byte_entropy(&[5u8; 100]), 0.0);
        let uniform: Vec<u8> = (0..=255).collect();
        assert!((byte_entropy(&uniform) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn smooth_data_compresses() {
        // Smooth fields have near-constant exponent bytes: the upper
        // columns compress, the mantissa tail stays raw.
        let data: Vec<f64> = (0..50_000)
            .map(|i| 100.0 + (i as f64 * 1e-4).sin())
            .collect();
        let size = roundtrip(&data);
        assert!(
            size < data.len() * 8 * 8 / 10,
            "expected < 80% of raw, got {size} / {}",
            data.len() * 8
        );
    }

    #[test]
    fn random_mantissas_do_not_blow_up() {
        let mut x = 0xDEADBEEFu64;
        let data: Vec<f64> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                1.0 + (x % 1_000_000) as f64 * 1e-15
            })
            .collect();
        let size = roundtrip(&data);
        // Headers only: 12 + 8 * 9 bytes of fixed overhead.
        assert!(size <= data.len() * 8 + 12 + 8 * 9);
    }

    #[test]
    fn highly_compressible_constant_data_roundtrips() {
        // Regression: a constant stream compresses ~400x; the decoder
        // must not mistake the honest value count for corruption.
        let data = vec![42.0f64; 200_000];
        let size = roundtrip(&data);
        assert!(size < data.len() * 8 / 100, "size {size}");
    }

    #[test]
    fn byte_stream_roundtrips_any_length() {
        // PLoD byte columns are one byte per value — never 8-aligned.
        let codec: &dyn Codec = &Isobar::default();
        for len in [0usize, 1, 7, 9, 1000, 4097] {
            let data: Vec<u8> = (0..len).map(|i| (i % 7) as u8).collect();
            assert_eq!(codec.decompress(&codec.compress(&data)).unwrap(), data);
        }
        // Incompressible stream: stored raw with a 5-byte header.
        let mut x = 0x12345678u64;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let c = codec.compress(&noise);
        assert_eq!(c.len(), noise.len() + 5);
        assert_eq!(codec.decompress(&c).unwrap(), noise);
        // Compressible stream: beats raw.
        let flat = vec![3u8; 4096];
        assert!(codec.compress(&flat).len() < flat.len() / 10);
    }

    #[test]
    fn byte_stream_rejects_corruption() {
        let codec: &dyn Codec = &Isobar::default();
        let c = codec.compress(&[1, 2, 3]);
        assert!(codec.decompress(&c[..4]).is_err());
        let mut bad_magic = c.clone();
        bad_magic[0] ^= 0xFF;
        assert!(codec.decompress(&bad_magic).is_err());
        let mut bad_flag = c;
        bad_flag[4] = 9;
        assert!(codec.decompress(&bad_flag).is_err());
    }

    #[test]
    fn rejects_corruption() {
        let c = Isobar::default().compress_f64(&[1.0, 2.0]);
        assert!(Isobar::default().decompress_f64(&c[..8]).is_err());
        let mut bad = c.clone();
        bad[2] ^= 0x40;
        assert!(Isobar::default().decompress_f64(&bad).is_err());
    }
}
