//! Compression suite for MLOC.
//!
//! The paper (§III-B.4) treats compression as a first-class layout
//! level with pluggable codecs. This crate provides from-scratch
//! implementations of every codec family the paper exercises:
//!
//! * [`deflate`] — a DEFLATE-style LZ77 + canonical-Huffman byte codec
//!   (the paper's "standard Zlib compression", used by MLOC-COL on
//!   PLoD byte columns).
//! * [`isobar`] — an ISOBAR-style lossless preconditioner for
//!   double-precision data: byte columns are analyzed for
//!   compressibility, compressible columns are routed through the
//!   DEFLATE-style codec and incompressible ones stored raw
//!   (MLOC-ISO).
//! * [`isabela`] — an ISABELA-style lossy codec: values are sorted per
//!   window, the monotone curve is fitted with a cubic B-spline, and a
//!   quantized error correction bounds the per-point relative error
//!   (MLOC-ISA).
//! * [`fpc`] — an FPC-style predictive lossless floating-point codec
//!   (FCM/DFCM predictors + leading-zero suppression), standing in for
//!   FPZip as "a fast lossless FP codec plug-in".
//! * [`raw`] — the identity codec (sequential-scan baseline storage).
//!
//! Byte-oriented codecs implement [`Codec`]; float-oriented codecs
//! implement [`FloatCodec`]. [`CodecKind`] is the serializable selector
//! the MLOC configuration uses.

//! # Example
//!
//! ```
//! use mloc_compress::{Codec, CodecKind, FloatCodec};
//!
//! let values: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
//!
//! // Lossless: bit-exact roundtrip.
//! let codec = CodecKind::Isobar.float_codec();
//! let packed = codec.compress_f64(&values);
//! assert_eq!(codec.decompress_f64(&packed).unwrap(), values);
//!
//! // Lossy with a guaranteed relative error bound.
//! let lossy = CodecKind::Isabela { error_bound: 1e-3 }.float_codec();
//! let packed = lossy.compress_f64(&values);
//! let approx = lossy.decompress_f64(&packed).unwrap();
//! assert!(values.iter().zip(&approx).all(|(a, b)| (a - b).abs() <= 1e-3 * a.abs().max(1e-9)));
//! ```

pub mod deflate;
pub mod fpc;
pub mod isabela;
pub mod isobar;
pub mod raw;

mod bitio;

pub use deflate::Deflate;
pub use fpc::Fpc;
pub use isabela::Isabela;
pub use isobar::Isobar;
pub use raw::RawCodec;

/// Errors arising while decoding compressed streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the encoded stream was complete.
    Truncated,
    /// Magic number or format tag mismatch.
    BadMagic,
    /// Structurally invalid stream.
    Corrupt(&'static str),
    /// Decoded length differs from the expected length.
    LengthMismatch { expected: usize, actual: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed stream truncated"),
            CodecError::BadMagic => write!(f, "bad codec magic"),
            CodecError::Corrupt(why) => write!(f, "corrupt stream: {why}"),
            CodecError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A byte-stream compressor/decompressor.
pub trait Codec: Send + Sync {
    /// Stable codec name for reports and file headers.
    fn name(&self) -> &'static str;

    /// Compress `input` into a self-contained byte stream.
    fn compress(&self, input: &[u8]) -> Vec<u8>;

    /// Decompress a stream produced by [`Codec::compress`].
    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError>;
}

/// A double-precision-array compressor/decompressor.
///
/// Lossy codecs (ISABELA) bound the per-point *relative* error instead
/// of reproducing bits exactly.
pub trait FloatCodec: Send + Sync {
    /// Stable codec name for reports and file headers.
    fn name(&self) -> &'static str;

    /// Whether decompression reproduces inputs only approximately.
    fn is_lossy(&self) -> bool;

    /// Compress a slice of doubles into a self-contained byte stream.
    fn compress_f64(&self, input: &[f64]) -> Vec<u8>;

    /// Decompress a stream produced by [`FloatCodec::compress_f64`].
    fn decompress_f64(&self, input: &[u8]) -> Result<Vec<f64>, CodecError>;
}

/// View a `f64` slice as little-endian bytes.
pub fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Inverse of [`f64s_to_bytes`].
pub fn bytes_to_f64s(bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(CodecError::Corrupt("byte length not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Serializable codec selector used in MLOC dataset configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CodecKind {
    /// No compression.
    Raw,
    /// DEFLATE-style byte compression (MLOC-COL's per-column codec).
    Deflate,
    /// ISOBAR-style lossless FP compression (MLOC-ISO).
    Isobar,
    /// ISABELA-style lossy FP compression with the given point-wise
    /// relative error bound (MLOC-ISA).
    Isabela {
        /// Point-wise relative error bound (e.g. `0.001` for 0.1 %).
        error_bound: f64,
    },
    /// FPC-style predictive lossless FP compression.
    Fpc,
}

impl CodecKind {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::Raw => "raw",
            CodecKind::Deflate => "deflate",
            CodecKind::Isobar => "isobar",
            CodecKind::Isabela { .. } => "isabela",
            CodecKind::Fpc => "fpc",
        }
    }

    /// Whether this codec loses information.
    pub fn is_lossy(self) -> bool {
        matches!(self, CodecKind::Isabela { .. })
    }

    /// Instantiate the byte-stream codec for this kind.
    ///
    /// ISOBAR is natively byte-level (it entropy-routes any byte
    /// stream), so it serves byte columns directly. The remaining
    /// float-only codecs compress the little-endian byte image of the
    /// values via the [`FloatCodec`] adapter, so every kind can serve
    /// byte streams (MLOC compresses byte *columns* with byte codecs
    /// and whole-value streams with float codecs).
    pub fn byte_codec(self) -> Box<dyn Codec> {
        match self {
            CodecKind::Raw => Box::new(RawCodec),
            CodecKind::Deflate => Box::new(Deflate),
            CodecKind::Isobar => Box::new(Isobar::default()),
            CodecKind::Isabela { error_bound } => Box::new(FloatAsByte(Isabela::new(error_bound))),
            CodecKind::Fpc => Box::new(FloatAsByte(Fpc)),
        }
    }

    /// Instantiate the float codec for this kind.
    pub fn float_codec(self) -> Box<dyn FloatCodec> {
        match self {
            CodecKind::Raw => Box::new(ByteAsFloat(RawCodec)),
            CodecKind::Deflate => Box::new(ByteAsFloat(Deflate)),
            CodecKind::Isobar => Box::new(Isobar::default()),
            CodecKind::Isabela { error_bound } => Box::new(Isabela::new(error_bound)),
            CodecKind::Fpc => Box::new(Fpc),
        }
    }

    /// Encode the kind as a `(tag, param)` pair for binary headers.
    pub fn to_tag(self) -> (u8, f64) {
        match self {
            CodecKind::Raw => (0, 0.0),
            CodecKind::Deflate => (1, 0.0),
            CodecKind::Isobar => (2, 0.0),
            CodecKind::Isabela { error_bound } => (3, error_bound),
            CodecKind::Fpc => (4, 0.0),
        }
    }

    /// Decode a `(tag, param)` pair written by [`Self::to_tag`].
    pub fn from_tag(tag: u8, param: f64) -> Result<Self, CodecError> {
        Ok(match tag {
            0 => CodecKind::Raw,
            1 => CodecKind::Deflate,
            2 => CodecKind::Isobar,
            3 => CodecKind::Isabela { error_bound: param },
            4 => CodecKind::Fpc,
            _ => return Err(CodecError::Corrupt("unknown codec tag")),
        })
    }
}

/// Adapter exposing a [`FloatCodec`] as a byte [`Codec`].
///
/// The byte stream must be a whole number of little-endian doubles.
struct FloatAsByte<C: FloatCodec>(C);

impl<C: FloatCodec> Codec for FloatAsByte<C> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let values = bytes_to_f64s(input).expect("float codec requires an 8-byte-aligned stream");
        self.0.compress_f64(&values)
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        Ok(f64s_to_bytes(&self.0.decompress_f64(input)?))
    }
}

/// Adapter exposing a byte [`Codec`] as a [`FloatCodec`] by compressing
/// the little-endian byte image.
struct ByteAsFloat<C: Codec>(C);

impl<C: Codec> FloatCodec for ByteAsFloat<C> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn is_lossy(&self) -> bool {
        false
    }

    fn compress_f64(&self, input: &[f64]) -> Vec<u8> {
        self.0.compress(&f64s_to_bytes(input))
    }

    fn decompress_f64(&self, input: &[u8]) -> Result<Vec<f64>, CodecError> {
        bytes_to_f64s(&self.0.decompress(input)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_byte_roundtrip() {
        let vals = [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 3.125];
        let bytes = f64s_to_bytes(&vals);
        assert_eq!(bytes.len(), 40);
        assert_eq!(bytes_to_f64s(&bytes).unwrap(), vals);
    }

    #[test]
    fn bytes_to_f64s_rejects_ragged() {
        assert!(bytes_to_f64s(&[0u8; 9]).is_err());
    }

    #[test]
    fn codec_kind_tags_roundtrip() {
        for kind in [
            CodecKind::Raw,
            CodecKind::Deflate,
            CodecKind::Isobar,
            CodecKind::Isabela { error_bound: 0.01 },
            CodecKind::Fpc,
        ] {
            let (t, p) = kind.to_tag();
            assert_eq!(CodecKind::from_tag(t, p).unwrap(), kind);
        }
        assert!(CodecKind::from_tag(99, 0.0).is_err());
    }

    #[test]
    fn only_isabela_is_lossy() {
        assert!(CodecKind::Isabela { error_bound: 0.001 }.is_lossy());
        assert!(!CodecKind::Deflate.is_lossy());
        assert!(!CodecKind::Isobar.is_lossy());
        assert!(!CodecKind::Fpc.is_lossy());
        assert!(!CodecKind::Raw.is_lossy());
    }
}
