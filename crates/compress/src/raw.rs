//! Identity codec: stores bytes unchanged (sequential-scan baseline).

use crate::{Codec, CodecError};

/// The identity codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct RawCodec;

impl Codec for RawCodec {
    fn name(&self) -> &'static str {
        "raw"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        input.to_vec()
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        Ok(input.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        let data = b"anything at all".to_vec();
        let c = RawCodec.compress(&data);
        assert_eq!(c, data);
        assert_eq!(RawCodec.decompress(&c).unwrap(), data);
    }
}
