//! Property-based tests: every lossless codec roundtrips arbitrary
//! inputs bit-exactly; ISABELA always honours its error bound.

use mloc_compress::{Codec, CodecKind, Deflate, FloatCodec, Fpc, Isabela, Isobar};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deflate_roundtrips_bytes(data in proptest::collection::vec(any::<u8>(), 0..5000)) {
        let c = Deflate.compress(&data);
        prop_assert_eq!(Deflate.decompress(&c).unwrap(), data);
    }

    #[test]
    fn deflate_roundtrips_structured(seed in any::<u8>(), n in 0usize..4000) {
        // Repetitive data with varying periods exercises the LZ paths.
        let data: Vec<u8> = (0..n).map(|i| ((i / (1 + seed as usize % 17)) % 251) as u8).collect();
        let c = Deflate.compress(&data);
        prop_assert_eq!(Deflate.decompress(&c).unwrap(), data);
    }

    #[test]
    fn fpc_roundtrips_floats(data in proptest::collection::vec(any::<f64>(), 0..2000)) {
        let c = Fpc.compress_f64(&data);
        let d = Fpc.decompress_f64(&c).unwrap();
        prop_assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(&d) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn isobar_roundtrips_floats(data in proptest::collection::vec(any::<f64>(), 0..2000)) {
        let codec = Isobar::default();
        let c = codec.compress_f64(&data);
        let d = codec.decompress_f64(&c).unwrap();
        prop_assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(&d) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn isabela_honours_error_bound(
        data in proptest::collection::vec(-1e6f64..1e6, 0..3000),
        eps_exp in 1u32..5,
    ) {
        let eps = 10f64.powi(-(eps_exp as i32));
        let codec = Isabela::new(eps);
        let c = codec.compress_f64(&data);
        let d = codec.decompress_f64(&c).unwrap();
        prop_assert_eq!(d.len(), data.len());
        let max_abs = data.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let floor = (max_abs * 1e-12).max(1e-300);
        for (a, b) in data.iter().zip(&d) {
            let tol = eps * a.abs().max(floor) * (1.0 + 1e-9);
            prop_assert!((a - b).abs() <= tol, "|{} - {}| > {}", a, b, tol);
        }
    }

    #[test]
    fn byte_codec_adapters_roundtrip(values in proptest::collection::vec(any::<f64>(), 0..500)) {
        // Every lossless CodecKind must roundtrip through the byte-codec API.
        let bytes = mloc_compress::f64s_to_bytes(&values);
        for kind in [CodecKind::Raw, CodecKind::Deflate, CodecKind::Isobar, CodecKind::Fpc] {
            let codec = kind.byte_codec();
            let c = codec.compress(&bytes);
            prop_assert_eq!(&codec.decompress(&c).unwrap(), &bytes, "codec {}", kind.name());
        }
    }
}
