//! Multi-dimensional geometry: regions and the chunk grid.

/// A half-open hyper-rectangle `[start_d, end_d)` per dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    ranges: Vec<(usize, usize)>,
}

impl Region {
    /// Build from per-dimension `(start, end)` pairs.
    ///
    /// # Panics
    /// Panics when any range is empty or inverted.
    pub fn new(ranges: Vec<(usize, usize)>) -> Self {
        assert!(!ranges.is_empty(), "region needs at least one dimension");
        for &(s, e) in &ranges {
            assert!(s < e, "empty/inverted range {s}..{e}");
        }
        Region { ranges }
    }

    /// The full domain of a given shape.
    pub fn full(shape: &[usize]) -> Self {
        Region::new(shape.iter().map(|&e| (0, e)).collect())
    }

    /// Per-dimension ranges.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.ranges.len()
    }

    /// Number of points inside.
    pub fn num_points(&self) -> usize {
        self.ranges.iter().map(|(s, e)| e - s).product()
    }

    /// Whether a point is inside.
    pub fn contains(&self, coords: &[usize]) -> bool {
        coords.len() == self.ranges.len()
            && coords
                .iter()
                .zip(&self.ranges)
                .all(|(&c, &(s, e))| c >= s && c < e)
    }

    /// Whether two regions overlap.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn intersects(&self, other: &Region) -> bool {
        assert_eq!(self.dims(), other.dims(), "region dimensionality mismatch");
        self.ranges
            .iter()
            .zip(&other.ranges)
            .all(|(&(s1, e1), &(s2, e2))| s1 < e2 && s2 < e1)
    }

    /// Intersection, or `None` when disjoint.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn intersection(&self, other: &Region) -> Option<Region> {
        assert_eq!(self.dims(), other.dims(), "region dimensionality mismatch");
        let ranges: Vec<(usize, usize)> = self
            .ranges
            .iter()
            .zip(&other.ranges)
            .map(|(&(s1, e1), &(s2, e2))| (s1.max(s2), e1.min(e2)))
            .collect();
        ranges
            .iter()
            .all(|&(s, e)| s < e)
            .then(|| Region::new(ranges))
    }

    /// Whether `self` fully contains `other`.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn contains_region(&self, other: &Region) -> bool {
        assert_eq!(self.dims(), other.dims(), "region dimensionality mismatch");
        self.ranges
            .iter()
            .zip(&other.ranges)
            .all(|(&(s1, e1), &(s2, e2))| s1 <= s2 && e2 <= e1)
    }
}

/// The chunking of a multi-dimensional array: domain shape plus chunk
/// shape, with edge chunks truncated at the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkGrid {
    shape: Vec<usize>,
    chunk_shape: Vec<usize>,
    grid: Vec<usize>,
}

impl ChunkGrid {
    /// Build a grid; chunk extents are clamped to the domain.
    ///
    /// # Panics
    /// Panics on dimension mismatch or zero extents.
    pub fn new(shape: Vec<usize>, chunk_shape: Vec<usize>) -> Self {
        assert_eq!(shape.len(), chunk_shape.len(), "dimension mismatch");
        assert!(shape.iter().all(|&e| e > 0), "empty domain");
        assert!(chunk_shape.iter().all(|&e| e > 0), "empty chunk");
        let grid = shape
            .iter()
            .zip(&chunk_shape)
            .map(|(&s, &c)| s.div_ceil(c))
            .collect();
        ChunkGrid {
            shape,
            chunk_shape,
            grid,
        }
    }

    /// Domain shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Nominal chunk shape (edge chunks may be smaller).
    pub fn chunk_shape(&self) -> &[usize] {
        &self.chunk_shape
    }

    /// Chunks per dimension.
    pub fn grid_extents(&self) -> &[usize] {
        &self.grid
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.shape.len()
    }

    /// Total number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.grid.iter().product()
    }

    /// Total number of points in the domain.
    pub fn num_points(&self) -> usize {
        self.shape.iter().product()
    }

    /// Chunk coordinates of a row-major chunk id.
    pub fn chunk_coords(&self, mut chunk: usize) -> Vec<usize> {
        let mut coords = vec![0usize; self.grid.len()];
        for d in (0..self.grid.len()).rev() {
            coords[d] = chunk % self.grid[d];
            chunk /= self.grid[d];
        }
        coords
    }

    /// Row-major chunk id of chunk coordinates.
    pub fn chunk_id(&self, coords: &[usize]) -> usize {
        let mut id = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.grid[d]);
            id = id * self.grid[d] + c;
        }
        id
    }

    /// The domain region covered by a chunk (clamped at the boundary).
    pub fn chunk_region(&self, chunk: usize) -> Region {
        let coords = self.chunk_coords(chunk);
        Region::new(
            coords
                .iter()
                .enumerate()
                .map(|(d, &c)| {
                    let start = c * self.chunk_shape[d];
                    let end = (start + self.chunk_shape[d]).min(self.shape[d]);
                    (start, end)
                })
                .collect(),
        )
    }

    /// Number of points in a chunk.
    pub fn chunk_points(&self, chunk: usize) -> usize {
        self.chunk_region(chunk).num_points()
    }

    /// Write a chunk's clamped ranges into `out` without allocating —
    /// the hot-path counterpart of [`Self::chunk_region`] (`out`'s
    /// capacity is reused across calls).
    pub fn chunk_ranges_into(&self, chunk: usize, out: &mut Vec<(usize, usize)>) {
        let dims = self.dims();
        out.clear();
        out.resize(dims, (0, 0));
        let mut id = chunk;
        for d in (0..dims).rev() {
            let c = id % self.grid[d];
            id /= self.grid[d];
            let start = c * self.chunk_shape[d];
            let end = (start + self.chunk_shape[d]).min(self.shape[d]);
            out[d] = (start, end);
        }
        debug_assert_eq!(id, 0, "chunk id out of range");
    }

    /// Chunk ids (row-major) whose region intersects `region`.
    pub fn chunks_intersecting(&self, region: &Region) -> Vec<usize> {
        assert_eq!(region.dims(), self.dims());
        // Per-dimension chunk index ranges, then the cross product.
        let ranges: Vec<(usize, usize)> = region
            .ranges()
            .iter()
            .enumerate()
            .map(|(d, &(s, e))| (s / self.chunk_shape[d], (e - 1) / self.chunk_shape[d]))
            .collect();
        let mut out = Vec::new();
        let dims = self.dims();
        let mut coords: Vec<usize> = ranges.iter().map(|&(s, _)| s).collect();
        'outer: loop {
            out.push(self.chunk_id(&coords));
            for d in (0..dims).rev() {
                coords[d] += 1;
                if coords[d] <= ranges[d].1 {
                    continue 'outer;
                }
                coords[d] = ranges[d].0;
            }
            break;
        }
        out
    }

    /// Global linear (row-major) index of domain coordinates.
    pub fn linearize(&self, coords: &[usize]) -> u64 {
        let mut lin = 0u64;
        for (d, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.shape[d]);
            lin = lin * self.shape[d] as u64 + c as u64;
        }
        lin
    }

    /// Domain coordinates of a global linear index.
    pub fn delinearize(&self, mut lin: u64) -> Vec<usize> {
        let mut coords = vec![0usize; self.shape.len()];
        for d in (0..self.shape.len()).rev() {
            coords[d] = (lin % self.shape[d] as u64) as usize;
            lin /= self.shape[d] as u64;
        }
        coords
    }

    /// Global coordinates of a chunk-local offset (row-major within the
    /// chunk's clamped region).
    pub fn local_to_coords(&self, chunk: usize, mut local: usize) -> Vec<usize> {
        let region = self.chunk_region(chunk);
        let mut coords = vec![0usize; self.dims()];
        for d in (0..self.dims()).rev() {
            let (s, e) = region.ranges()[d];
            let extent = e - s;
            coords[d] = s + local % extent;
            local /= extent;
        }
        coords
    }

    /// Chunk-local offset of global coordinates within their chunk, and
    /// the chunk id.
    pub fn coords_to_local(&self, coords: &[usize]) -> (usize, usize) {
        let chunk_coords: Vec<usize> = coords
            .iter()
            .zip(&self.chunk_shape)
            .map(|(&c, &cs)| c / cs)
            .collect();
        let chunk = self.chunk_id(&chunk_coords);
        let region = self.chunk_region(chunk);
        let mut local = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            let (s, e) = region.ranges()[d];
            debug_assert!(c >= s && c < e);
            local = local * (e - s) + (c - s);
        }
        (chunk, local)
    }

    /// Iterate the global linear indices of a chunk's points, in
    /// chunk-local row-major order.
    pub fn chunk_linear_indices(&self, chunk: usize) -> Vec<u64> {
        let region = self.chunk_region(chunk);
        let n = region.num_points();
        let mut out = Vec::with_capacity(n);
        let dims = self.dims();
        let mut coords: Vec<usize> = region.ranges().iter().map(|&(s, _)| s).collect();
        'outer: loop {
            out.push(self.linearize(&coords));
            for d in (0..dims).rev() {
                coords[d] += 1;
                if coords[d] < region.ranges()[d].1 {
                    continue 'outer;
                }
                coords[d] = region.ranges()[d].0;
            }
            break;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_basics() {
        let r = Region::new(vec![(2, 5), (0, 4)]);
        assert_eq!(r.num_points(), 12);
        assert!(r.contains(&[2, 0]));
        assert!(r.contains(&[4, 3]));
        assert!(!r.contains(&[5, 0]));
        assert!(!r.contains(&[1, 2]));
    }

    #[test]
    fn region_set_ops() {
        let a = Region::new(vec![(0, 4), (0, 4)]);
        let b = Region::new(vec![(2, 6), (3, 8)]);
        let c = Region::new(vec![(4, 5), (0, 1)]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(
            a.intersection(&b).unwrap(),
            Region::new(vec![(2, 4), (3, 4)])
        );
        assert!(a.intersection(&c).is_none());
        assert!(a.contains_region(&Region::new(vec![(1, 2), (1, 4)])));
        assert!(!a.contains_region(&b));
    }

    #[test]
    fn grid_geometry() {
        let g = ChunkGrid::new(vec![10, 7], vec![4, 3]);
        assert_eq!(g.grid_extents(), &[3, 3]);
        assert_eq!(g.num_chunks(), 9);
        // Edge chunk is clamped.
        let last = g.chunk_region(8);
        assert_eq!(last.ranges(), &[(8, 10), (6, 7)]);
        assert_eq!(g.chunk_points(8), 2);
        assert_eq!(g.chunk_points(0), 12);
        // All chunk points sum to the domain size.
        let total: usize = (0..9).map(|c| g.chunk_points(c)).sum();
        assert_eq!(total, 70);
    }

    #[test]
    fn chunk_coords_roundtrip() {
        let g = ChunkGrid::new(vec![16, 16, 16], vec![4, 8, 4]);
        for c in 0..g.num_chunks() {
            assert_eq!(g.chunk_id(&g.chunk_coords(c)), c);
        }
    }

    #[test]
    fn chunks_intersecting_region() {
        let g = ChunkGrid::new(vec![8, 8], vec![4, 4]);
        let r = Region::new(vec![(3, 5), (0, 2)]);
        let mut chunks = g.chunks_intersecting(&r);
        chunks.sort_unstable();
        assert_eq!(chunks, vec![0, 2]);
        let all = g.chunks_intersecting(&Region::full(&[8, 8]));
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn linearize_roundtrip() {
        let g = ChunkGrid::new(vec![5, 6, 7], vec![2, 3, 4]);
        for lin in 0..(5 * 6 * 7) as u64 {
            assert_eq!(g.linearize(&g.delinearize(lin)), lin);
        }
    }

    #[test]
    fn local_offsets_roundtrip() {
        let g = ChunkGrid::new(vec![10, 7], vec![4, 3]);
        for chunk in 0..g.num_chunks() {
            for local in 0..g.chunk_points(chunk) {
                let coords = g.local_to_coords(chunk, local);
                assert_eq!(g.coords_to_local(&coords), (chunk, local));
            }
        }
    }

    #[test]
    fn chunk_linear_indices_are_consistent() {
        let g = ChunkGrid::new(vec![6, 6], vec![4, 4]);
        for chunk in 0..g.num_chunks() {
            let lins = g.chunk_linear_indices(chunk);
            assert_eq!(lins.len(), g.chunk_points(chunk));
            for (local, &lin) in lins.iter().enumerate() {
                let coords = g.delinearize(lin);
                assert_eq!(g.coords_to_local(&coords), (chunk, local));
            }
        }
        // Every point appears exactly once across chunks.
        let mut all: Vec<u64> = (0..g.num_chunks())
            .flat_map(|c| g.chunk_linear_indices(c))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..36u64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn empty_region_panics() {
        Region::new(vec![(3, 3)]);
    }
}
