//! Equal-frequency value binning (the V level).
//!
//! Paper §III-B.1: points are placed into bins by value so that range
//! queries touch only the relevant bins; bounds are chosen by *equal
//! frequency* over a sample "to prevent load imbalance" and then
//! applied to the whole dataset. A bin is *aligned* with a value
//! constraint when its bounds lie fully inside the constraint — such
//! bins are answered from the index alone, without touching data.

use crate::{MlocError, Result};

/// Value-bin boundaries: `bounds.len() == num_bins + 1`, non-decreasing.
/// Bin `k` notionally covers `[bounds[k], bounds[k+1])`; assignment
/// clamps out-of-range values into the first/last bin (bounds come
/// from a sample, the data may exceed them).
#[derive(Debug, Clone, PartialEq)]
pub struct BinSpec {
    bounds: Vec<f64>,
}

impl BinSpec {
    /// Equal-frequency bounds from a sample of the data.
    ///
    /// # Panics
    /// Panics on an empty sample or zero bins.
    pub fn equal_frequency(sample: &[f64], num_bins: usize) -> Self {
        assert!(!sample.is_empty() && num_bins > 0);
        let mut sorted: Vec<f64> = sample.iter().copied().filter(|v| !v.is_nan()).collect();
        assert!(!sorted.is_empty(), "sample contains only NaNs");
        // NaNs are already filtered out, so total_cmp agrees with the
        // numeric order; unstable sort avoids the stable sort's
        // allocation and partial_cmp's per-comparison unwrap.
        sorted.sort_unstable_by(f64::total_cmp);
        let n = sorted.len();
        let mut bounds = Vec::with_capacity(num_bins + 1);
        for k in 0..=num_bins {
            let idx = (k * (n - 1)) / num_bins;
            bounds.push(sorted[idx]);
        }
        // Enforce strict monotonicity where duplicates collapse bins;
        // duplicate bounds make those bins empty, which is harmless but
        // we keep the invariant non-decreasing.
        for i in 1..bounds.len() {
            if bounds[i] < bounds[i - 1] {
                bounds[i] = bounds[i - 1];
            }
        }
        BinSpec { bounds }
    }

    /// Equal-width bounds over the sample range (ablation baseline for
    /// the load-balance design choice).
    pub fn equal_width(sample: &[f64], num_bins: usize) -> Self {
        assert!(!sample.is_empty() && num_bins > 0);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for &v in sample {
            if v.is_nan() {
                continue;
            }
            min = min.min(v);
            max = max.max(v);
        }
        if min > max {
            panic!("sample contains only NaNs");
        }
        if min == max {
            max = min + 1.0;
        }
        let bounds = (0..=num_bins)
            .map(|k| min + (max - min) * k as f64 / num_bins as f64)
            .collect();
        BinSpec { bounds }
    }

    /// Rebuild from stored bounds.
    pub fn from_bounds(bounds: Vec<f64>) -> Result<Self> {
        if bounds.len() < 2 {
            return Err(MlocError::Corrupt("need at least two bin bounds"));
        }
        if bounds.windows(2).any(|w| w[0] > w[1]) || bounds.iter().any(|b| b.is_nan()) {
            return Err(MlocError::Corrupt("bin bounds not monotonic"));
        }
        Ok(BinSpec { bounds })
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The boundary array (`num_bins + 1` values).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Nominal value range `[lo, hi)` of bin `k` (from the sample; the
    /// first/last bin also absorb out-of-range values).
    pub fn bin_range(&self, k: usize) -> (f64, f64) {
        (self.bounds[k], self.bounds[k + 1])
    }

    /// Bin index of a value (clamped into `0..num_bins`). NaNs go to
    /// the last bin.
    pub fn bin_of(&self, v: f64) -> usize {
        let nbins = self.num_bins();
        if v.is_nan() {
            return nbins - 1;
        }
        if v < self.bounds[0] {
            return 0;
        }
        if v >= self.bounds[nbins] {
            return nbins - 1;
        }
        // Rightmost k with bounds[k] <= v: partition_point counts the
        // bounds <= v, and the guards above keep the count in 1..=nbins.
        self.bounds[..nbins].partition_point(|&b| b <= v) - 1
    }

    /// Bins overlapping a value constraint `[lo, hi)`: the candidate
    /// set a query must consider. The set is always contiguous, so it
    /// is returned as a range (empty when `hi <= lo`).
    pub fn candidate_bins(&self, lo: f64, hi: f64) -> std::ops::Range<usize> {
        if hi <= lo {
            return 0..0;
        }
        let nbins = self.num_bins();
        let first = self.bin_of(lo);
        let mut last = self.bin_of(hi);
        // `hi` is exclusive: if it coincides with a lower bound, the
        // bin starting at `hi` is not touched. (No fully-below-range
        // special case is needed: `bin_of` clamps such `hi` to bin 0,
        // so `last == 0` already.)
        if last > 0 && hi <= self.bounds[last] {
            last -= 1;
        }
        // Out-of-range constraints still clamp to valid bins.
        first..last.min(nbins - 1) + 1
    }

    /// Whether bin `k` is *aligned* with `[lo, hi)`: its value range is
    /// entirely inside the constraint, so membership needs no value
    /// reconstruction. The first/last bins are never aligned (they
    /// absorb out-of-sample values with unknown extrema).
    pub fn is_aligned(&self, k: usize, lo: f64, hi: f64) -> bool {
        if k == 0 || k + 1 == self.num_bins() {
            return false;
        }
        let (blo, bhi) = self.bin_range(k);
        lo <= blo && bhi <= hi
    }

    /// Split candidate bins into (aligned, misaligned) for `[lo, hi)`.
    pub fn split_candidates(&self, lo: f64, hi: f64) -> (Vec<usize>, Vec<usize>) {
        let mut aligned = Vec::new();
        let mut misaligned = Vec::new();
        for k in self.candidate_bins(lo, hi) {
            if self.is_aligned(k, lo, hi) {
                aligned.push(k);
            } else {
                misaligned.push(k);
            }
        }
        (aligned, misaligned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn equal_frequency_balances_counts() {
        // Skewed data: squares.
        let sample: Vec<f64> = (0..10_000).map(|i| (i as f64).powi(2)).collect();
        let spec = BinSpec::equal_frequency(&sample, 10);
        let mut counts = vec![0usize; 10];
        for &v in &sample {
            counts[spec.bin_of(v)] += 1;
        }
        let (min, max) = (
            counts.iter().min().copied().unwrap(),
            counts.iter().max().copied().unwrap(),
        );
        assert!(
            max <= min * 2 + 10,
            "equal-frequency bins unbalanced: {counts:?}"
        );
        // Equal-width on the same data is wildly unbalanced.
        let ew = BinSpec::equal_width(&sample, 10);
        let mut wcounts = [0usize; 10];
        for &v in &sample {
            wcounts[ew.bin_of(v)] += 1;
        }
        assert!(wcounts.iter().max().unwrap() > &(wcounts.iter().min().unwrap() * 5));
    }

    #[test]
    fn bin_of_is_consistent_with_bounds() {
        let spec = BinSpec::equal_frequency(&uniform_sample(1000), 10);
        for k in 0..10 {
            let (lo, hi) = spec.bin_range(k);
            if lo < hi {
                assert_eq!(spec.bin_of(lo), k, "lower bound of bin {k}");
                let mid = lo + (hi - lo) / 2.0;
                assert_eq!(spec.bin_of(mid), k, "midpoint of bin {k}");
            }
        }
        // Out-of-range values clamp.
        assert_eq!(spec.bin_of(-1e9), 0);
        assert_eq!(spec.bin_of(1e9), 9);
        assert_eq!(spec.bin_of(f64::NAN), 9);
    }

    #[test]
    fn candidate_bins_cover_constraint() {
        let spec = BinSpec::equal_frequency(&uniform_sample(1000), 10);
        let cands = spec.candidate_bins(150.0, 450.0);
        // Every value in [150, 450) must fall in a candidate bin.
        for v in 150..450 {
            assert!(
                cands.contains(&spec.bin_of(v as f64)),
                "value {v} outside candidates {cands:?}"
            );
        }
        // A one-bin constraint touches few bins.
        let tight = spec.candidate_bins(210.0, 220.0);
        assert!(tight.len() <= 2, "{tight:?}");
    }

    #[test]
    fn exclusive_upper_bound() {
        let spec = BinSpec::from_bounds(vec![0.0, 10.0, 20.0, 30.0]).unwrap();
        // hi exactly at a bin's lower bound excludes that bin.
        assert_eq!(spec.candidate_bins(0.0, 10.0), 0..1);
        assert_eq!(spec.candidate_bins(0.0, 10.5), 0..2);
        assert!(spec.candidate_bins(5.0, 5.0).is_empty());
    }

    #[test]
    fn alignment_rules() {
        let spec = BinSpec::from_bounds(vec![0.0, 10.0, 20.0, 30.0, 40.0]).unwrap();
        // Bin 1 = [10, 20): aligned within [10, 25).
        assert!(spec.is_aligned(1, 10.0, 25.0));
        assert!(!spec.is_aligned(1, 12.0, 25.0), "partial overlap");
        // Edge bins never aligned (they absorb out-of-sample values).
        assert!(!spec.is_aligned(0, -100.0, 100.0));
        assert!(!spec.is_aligned(3, -100.0, 100.0));

        let (aligned, misaligned) = spec.split_candidates(10.0, 35.0);
        assert_eq!(aligned, vec![1, 2]);
        assert_eq!(misaligned, vec![3]);
    }

    #[test]
    fn from_bounds_validation() {
        assert!(BinSpec::from_bounds(vec![1.0]).is_err());
        assert!(BinSpec::from_bounds(vec![2.0, 1.0]).is_err());
        assert!(BinSpec::from_bounds(vec![0.0, f64::NAN]).is_err());
        assert!(BinSpec::from_bounds(vec![0.0, 0.0, 1.0]).is_ok());
    }

    #[test]
    fn duplicate_heavy_sample() {
        // 90% of the sample is one value: many bounds collapse.
        let mut sample = vec![5.0; 900];
        sample.extend((0..100).map(|i| i as f64));
        let spec = BinSpec::equal_frequency(&sample, 10);
        assert_eq!(spec.num_bins(), 10);
        // Assignment still works and is stable.
        let k = spec.bin_of(5.0);
        assert!(k < 10);
        for &v in &sample {
            let _ = spec.bin_of(v);
        }
    }
}
