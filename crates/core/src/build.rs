//! The write path: reorganize a raw variable into the MLOC layout.
//!
//! Figure 1's pipeline, bottom of §III-B.5: the dataset is divided into
//! the smallest units (the bytes of the values of one chunk within one
//! bin within one byte group) and those units are arranged by the
//! configured level priority — bins become files (V is outermost), and
//! inside each bin file units are ordered part-major (V-M-S) or
//! chunk-major (V-S-M), with chunks following the space-filling curve.
//!
//! Two entry points:
//!
//! * [`build_variable`] — one-shot build from a resident row-major
//!   array.
//! * [`StreamingBuilder`] — the *in-situ* pipeline (§I contribution 4):
//!   chunks are pushed one at a time, in any order, as a running
//!   simulation or staging service emits them; bin bounds come from a
//!   sample (the paper computes them "from partial dataset"), and the
//!   final layout is written on [`StreamingBuilder::finish`].
//!
//! # Parallelism
//!
//! Both entry points fan the hot stages across a scoped worker pool
//! ([`mloc_runtime::parallel_map`], sized by
//! [`MlocConfig::build_threads`]) in three pipeline stages:
//!
//! 1. **encode** — per-chunk bin partition → WAH bitmap → PLoD split →
//!    per-part codec compression. Chunks are independent, so
//!    [`build_variable`] encodes all of them concurrently and
//!    [`StreamingBuilder::push_chunks`] does the same for each batch a
//!    simulation flushes.
//! 2. **layout** — per-bin unit ordering (V-M-S / V-S-M) plus index
//!    assembly, one worker per bin.
//! 3. **write** — per-bin data/index file writes, one worker per bin
//!    (bins are separate files, so writes never interleave).
//!
//! Output is *byte-identical for any thread count*: encoding is a pure
//! function of a chunk's values, encoded chunks are merged back in
//! curve-rank order before layout, and `parallel_map` returns results
//! in input order. [`BuildReport`] exposes the per-stage wall times so
//! the speedup is observable.

use crate::array::ChunkGrid;
use crate::binning::BinSpec;
use crate::config::MlocConfig;
use crate::index::{BinIndexBuilder, UnitLoc};
use crate::store::VariableMeta;
use crate::{fileorg, plod, MlocError, Result};
use mloc_bitmap::WahBitmap;
use mloc_compress::{Codec, FloatCodec};
use mloc_hilbert::GridOrder;
use mloc_obs::{Label, Profile, Registry};
use mloc_pfs::StorageBackend;
use mloc_runtime::parallel_map;
use std::time::Instant;

/// Maximum number of values sampled for computing bin bounds (the
/// paper computes bounds "from partial dataset" and applies them to
/// the whole).
const BIN_SAMPLE: usize = 1 << 16;

/// Sizes and statistics of a completed build.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildReport {
    /// Compressed data bytes across all bin data files.
    pub data_bytes: u64,
    /// Index bytes across all bin index files.
    pub index_bytes: u64,
    /// Metadata bytes.
    pub meta_bytes: u64,
    /// Raw (uncompressed) size of the variable.
    pub raw_bytes: u64,
    /// Wall-clock build time in seconds (first push to finish).
    pub build_seconds: f64,
    /// Wall-clock seconds spent encoding chunks (bin partition, WAH
    /// bitmaps, PLoD split, codec compression), summed over pushes.
    pub encode_seconds: f64,
    /// Wall-clock seconds of the per-bin layout + index stage.
    pub layout_seconds: f64,
    /// Wall-clock seconds of the per-bin file-write stage.
    pub write_seconds: f64,
    /// Points per bin (load-balance diagnostic).
    pub per_bin_points: Vec<u64>,
    /// Span/counter/histogram profile of the build: the stage times as
    /// a `build` span tree plus a per-codec compression-ratio histogram
    /// observed per storage unit (from the encode workers).
    pub profile: Profile,
}

impl BuildReport {
    /// data + index, as reported in the paper's Table I.
    pub fn total_bytes(&self) -> u64 {
        self.data_bytes + self.index_bytes + self.meta_bytes
    }

    /// `total / raw` (1.0 = same as raw).
    pub fn total_ratio(&self) -> f64 {
        self.total_bytes() as f64 / self.raw_bytes as f64
    }
}

/// One chunk's contribution to one bin, before layout.
struct PendingUnit {
    rank: usize,
    bitmap: WahBitmap,
    /// Compressed bytes per part.
    parts: Vec<Vec<u8>>,
}

/// One chunk's encoded contribution to one bin (no rank yet: encoding
/// is independent of where the chunk lands on the curve).
struct EncodedUnit {
    bin: usize,
    count: u64,
    bitmap: WahBitmap,
    parts: Vec<Vec<u8>>,
}

/// Encode one chunk: partition its points by bin, build each bin's
/// positional bitmap, and compress each unit (PLoD byte columns or the
/// whole-value stream). Pure but for `obs`, which only accumulates
/// commutative statistics — identical input produces identical bytes,
/// which is what makes the parallel fan-out deterministic.
#[allow(clippy::too_many_arguments)] // internal helper; callers are the three build fan-outs
fn encode_chunk(
    values: &[f64],
    spec: &BinSpec,
    num_bins: usize,
    use_plod: bool,
    byte_codec: &dyn Codec,
    float_codec: &dyn FloatCodec,
    codec_name: &'static str,
    obs: &Registry,
) -> Vec<EncodedUnit> {
    let chunk_points = values.len();
    let mut bin_locals: Vec<Vec<u64>> = vec![Vec::new(); num_bins];
    let mut bin_values: Vec<Vec<f64>> = vec![Vec::new(); num_bins];
    for (local, &v) in values.iter().enumerate() {
        let bin = spec.bin_of(v);
        bin_locals[bin].push(local as u64);
        bin_values[bin].push(v);
    }

    let mut units = Vec::new();
    for bin in 0..num_bins {
        if bin_locals[bin].is_empty() {
            continue;
        }
        let bitmap = WahBitmap::from_sorted_positions(chunk_points as u64, &bin_locals[bin]);
        let parts: Vec<Vec<u8>> = if use_plod {
            plod::split(&bin_values[bin])
                .iter()
                .map(|part| byte_codec.compress(part))
                .collect()
        } else {
            vec![float_codec.compress_f64(&bin_values[bin])]
        };
        // One ratio observation per storage unit, recorded from
        // whichever worker encoded it. Bucket counts, min and max are
        // order-independent, so they match under any thread count; the
        // float `sum` may differ in its last bits with arrival order.
        let raw = (bin_locals[bin].len() * 8) as f64;
        let compressed: usize = parts.iter().map(Vec::len).sum();
        obs.observe(
            "compress.ratio",
            Label::Name(codec_name),
            compressed as f64 / raw,
        );
        units.push(EncodedUnit {
            bin,
            count: bin_locals[bin].len() as u64,
            bitmap,
            parts,
        });
    }
    units
}

/// Incremental (in-situ) builder: push chunks as they are produced.
pub struct StreamingBuilder<'a> {
    backend: &'a dyn StorageBackend,
    dataset: String,
    var: String,
    config: MlocConfig,
    grid: ChunkGrid,
    order: GridOrder,
    spec: BinSpec,
    byte_codec: Box<dyn Codec>,
    float_codec: Box<dyn FloatCodec>,
    pending: Vec<Vec<PendingUnit>>,
    per_bin_points: Vec<u64>,
    pushed: Vec<bool>,
    pushed_count: usize,
    encode_seconds: f64,
    start: Instant,
    obs: Registry,
}

impl<'a> StreamingBuilder<'a> {
    /// Start a build. `sample` is any representative subset of the
    /// values; equal-frequency bin bounds are derived from it and then
    /// applied to every pushed chunk.
    pub fn new(
        backend: &'a dyn StorageBackend,
        dataset: &str,
        var: &str,
        config: &MlocConfig,
        sample: &[f64],
    ) -> Result<StreamingBuilder<'a>> {
        config.validate()?;
        if sample.is_empty() {
            return Err(MlocError::Invalid("empty binning sample".into()));
        }
        let grid = ChunkGrid::new(config.shape.clone(), config.chunk_shape.clone());
        let order = config.chunk_order(&grid);
        let spec = BinSpec::equal_frequency(sample, config.num_bins);
        Ok(StreamingBuilder {
            backend,
            dataset: dataset.to_string(),
            var: var.to_string(),
            byte_codec: config.codec.byte_codec(),
            float_codec: config.codec.float_codec(),
            pending: (0..config.num_bins).map(|_| Vec::new()).collect(),
            per_bin_points: vec![0u64; config.num_bins],
            pushed: vec![false; grid.num_chunks()],
            pushed_count: 0,
            encode_seconds: 0.0,
            start: Instant::now(),
            obs: Registry::default(),
            config: config.clone(),
            grid,
            order,
            spec,
        })
    }

    /// The bin specification in force.
    pub fn bins(&self) -> &BinSpec {
        &self.spec
    }

    /// The chunk geometry.
    pub fn grid(&self) -> &ChunkGrid {
        &self.grid
    }

    /// Number of chunks pushed so far.
    pub fn chunks_pushed(&self) -> usize {
        self.pushed_count
    }

    /// Reject out-of-range, duplicate, or wrong-sized pushes without
    /// mutating any state (so a failed push leaves the builder usable).
    fn validate_push(&self, chunk_id: usize, value_count: usize) -> Result<()> {
        if chunk_id >= self.grid.num_chunks() {
            return Err(MlocError::Invalid(format!("chunk {chunk_id} out of range")));
        }
        if self.pushed[chunk_id] {
            return Err(MlocError::Invalid(format!("chunk {chunk_id} pushed twice")));
        }
        let chunk_points = self.grid.chunk_points(chunk_id);
        if value_count != chunk_points {
            return Err(MlocError::Invalid(format!(
                "chunk {chunk_id}: expected {chunk_points} values, got {value_count}"
            )));
        }
        Ok(())
    }

    /// File an encoded chunk under its curve rank. Callers must have
    /// validated the push first.
    fn ingest(&mut self, chunk_id: usize, units: Vec<EncodedUnit>) {
        debug_assert!(!self.pushed[chunk_id]);
        self.pushed[chunk_id] = true;
        self.pushed_count += 1;
        let rank = self.order.rank_of(chunk_id);
        for u in units {
            self.per_bin_points[u.bin] += u.count;
            self.pending[u.bin].push(PendingUnit {
                rank,
                bitmap: u.bitmap,
                parts: u.parts,
            });
        }
    }

    /// Push one chunk's values (chunk-local row-major order over the
    /// chunk's clamped region). Chunks may arrive in any order; each
    /// must be pushed exactly once.
    pub fn push_chunk(&mut self, chunk_id: usize, values: &[f64]) -> Result<()> {
        self.validate_push(chunk_id, values.len())?;
        let t = Instant::now();
        let units = encode_chunk(
            values,
            &self.spec,
            self.config.num_bins,
            self.config.plod,
            &*self.byte_codec,
            &*self.float_codec,
            self.config.codec.name(),
            &self.obs,
        );
        self.encode_seconds += t.elapsed().as_secs_f64();
        self.ingest(chunk_id, units);
        Ok(())
    }

    /// Push a batch of chunks, encoding them across the worker pool.
    /// This is the in-situ fast path: a staging service hands over the
    /// wave of chunks a simulation just flushed and all of them are
    /// partitioned, bitmapped, and compressed concurrently. The whole
    /// batch is validated before any chunk is filed, so an invalid
    /// batch leaves the builder untouched.
    pub fn push_chunks(&mut self, batch: Vec<(usize, Vec<f64>)>) -> Result<()> {
        let mut seen = std::collections::HashSet::new();
        for (chunk_id, values) in &batch {
            self.validate_push(*chunk_id, values.len())?;
            if !seen.insert(*chunk_id) {
                return Err(MlocError::Invalid(format!(
                    "chunk {chunk_id} appears twice in batch"
                )));
            }
        }
        let t = Instant::now();
        let encoded = {
            let spec = &self.spec;
            let num_bins = self.config.num_bins;
            let use_plod = self.config.plod;
            let byte_codec: &dyn Codec = &*self.byte_codec;
            let float_codec: &dyn FloatCodec = &*self.float_codec;
            let codec_name = self.config.codec.name();
            let obs = &self.obs;
            parallel_map(
                self.config.effective_build_threads(),
                batch,
                |_, (chunk_id, values)| {
                    (
                        chunk_id,
                        encode_chunk(
                            &values,
                            spec,
                            num_bins,
                            use_plod,
                            byte_codec,
                            float_codec,
                            codec_name,
                            obs,
                        ),
                    )
                },
            )
        };
        self.encode_seconds += t.elapsed().as_secs_f64();
        for (chunk_id, units) in encoded {
            self.ingest(chunk_id, units);
        }
        Ok(())
    }

    /// Finish: lay out every bin's units by the level order and write
    /// the data, index, and metadata files. Layout and writes fan out
    /// across the worker pool, one bin per task.
    ///
    /// Fails unless every chunk has been pushed.
    pub fn finish(mut self) -> Result<BuildReport> {
        if self.pushed_count != self.grid.num_chunks() {
            return Err(MlocError::Invalid(format!(
                "{} of {} chunks pushed",
                self.pushed_count,
                self.grid.num_chunks()
            )));
        }
        let num_chunks = self.grid.num_chunks();
        let num_parts = self.config.num_parts();
        let threads = self.config.effective_build_threads();
        let level_order = self.config.level_order;

        // Stage 1 — layout: order each bin's units and assemble its
        // data image and index. Bins are independent; within a bin the
        // physical layout is always curve-rank order, no matter how
        // chunks arrived.
        let t_layout = Instant::now();
        let pending = std::mem::take(&mut self.pending);
        // Per bin: (data image, data extent lens, index image, index
        // extent lens). The extent lens are the logical units a query
        // reads, recorded here so the write stage can checksum each.
        type BinImages = (Vec<u8>, Vec<u32>, Vec<u8>, Vec<u32>);
        let assembled: Vec<BinImages> = parallel_map(threads, pending, |bin, mut units| {
            units.sort_unstable_by_key(|u| u.rank);

            let mut data = Vec::new();
            let mut data_extents: Vec<u32> = Vec::new();
            let mut locs: Vec<Vec<UnitLoc>> = units
                .iter()
                .map(|_| vec![UnitLoc::default(); num_parts])
                .collect();
            #[allow(clippy::needless_range_loop)] // locs is indexed by (unit, part)
            match level_order {
                crate::config::LevelOrder::Vms => {
                    // Part-major: all chunks' part 0, then part 1, …
                    for p in 0..num_parts {
                        for (i, u) in units.iter().enumerate() {
                            locs[i][p] = UnitLoc {
                                offset: data.len() as u64,
                                clen: u.parts[p].len() as u32,
                            };
                            data_extents.push(u.parts[p].len() as u32);
                            data.extend_from_slice(&u.parts[p]);
                        }
                    }
                }
                crate::config::LevelOrder::Vsm => {
                    // Chunk-major: each chunk's parts together.
                    for (i, u) in units.iter().enumerate() {
                        for p in 0..num_parts {
                            locs[i][p] = UnitLoc {
                                offset: data.len() as u64,
                                clen: u.parts[p].len() as u32,
                            };
                            data_extents.push(u.parts[p].len() as u32);
                            data.extend_from_slice(&u.parts[p]);
                        }
                    }
                }
            }

            let mut index = BinIndexBuilder::new(bin as u32, num_chunks, num_parts);
            for (i, u) in units.iter().enumerate() {
                index.set_chunk(u.rank, &u.bitmap, &locs[i]);
            }
            let (index_data, index_extents) = index.finish_with_extents();
            (data, data_extents, index_data, index_extents)
        });
        let layout_seconds = t_layout.elapsed().as_secs_f64();

        // Stage 2 — write: every bin owns its two files, so the writes
        // are independent and fan out too.
        let t_write = Instant::now();
        let backend = self.backend;
        let dataset = &self.dataset;
        let var = &self.var;
        let written: Vec<Result<(u64, u64)>> = parallel_map(
            threads,
            assembled,
            |bin, (data, data_extents, index_data, index_extents)| {
                let data_name = fileorg::data_file(dataset, var, bin);
                let index_name = fileorg::index_file(dataset, var, bin);
                // Payload first, checksum footer last: a torn write
                // leaves no valid trailer, so partial files can never
                // verify as complete.
                let data_footer =
                    crate::integrity::ExtentFooter::compute(&data, &data_extents).encode();
                let index_footer =
                    crate::integrity::ExtentFooter::compute(&index_data, &index_extents).encode();
                // Each payload is made durable before its footer is
                // appended: the trailer doubles as the file's commit
                // marker, so it must never reach the device ahead of
                // the bytes it vouches for. A second sync pins the
                // footer itself before the build's meta commit.
                backend.create(&data_name)?;
                backend.append(&data_name, &data)?;
                backend.sync(&data_name)?;
                backend.append(&data_name, &data_footer)?;
                backend.sync(&data_name)?;
                backend.create(&index_name)?;
                backend.append(&index_name, &index_data)?;
                backend.sync(&index_name)?;
                backend.append(&index_name, &index_footer)?;
                backend.sync(&index_name)?;
                Ok((
                    (data.len() + data_footer.len()) as u64,
                    (index_data.len() + index_footer.len()) as u64,
                ))
            },
        );
        let mut data_bytes = 0u64;
        let mut index_bytes = 0u64;
        for w in written {
            let (d, i) = w?;
            data_bytes += d;
            index_bytes += i;
        }
        let write_seconds = t_write.elapsed().as_secs_f64();

        let total_points = self.grid.num_points() as u64;
        let meta = VariableMeta {
            var: self.var.clone(),
            config: self.config.clone(),
            bin_bounds: self.spec.bounds().to_vec(),
            total_points,
        };
        // Meta is written last, with a single-extent checksum footer.
        // Its valid trailer is the build's commit marker: a build that
        // died mid-write left either no meta or a torn one, and both
        // fail verification at open time.
        let mut meta_data = meta.encode();
        let meta_footer =
            crate::integrity::ExtentFooter::compute(&meta_data, &[meta_data.len() as u32]);
        meta_data.extend_from_slice(&meta_footer.encode());
        let meta_name = fileorg::meta_file(&self.dataset, &self.var);
        self.backend.create(&meta_name)?;
        self.backend.append(&meta_name, &meta_data)?;
        // Meta is fsynced last — after every bin file above has been
        // synced — so a crash can never leave a durable commit marker
        // pointing at non-durable extents.
        self.backend.sync(&meta_name)?;

        let build_seconds = self.start.elapsed().as_secs_f64();
        // The registry holds the encode workers' per-unit histogram
        // observations; the stage spans mirror the report's wall-clock
        // fields exactly so the two views always reconcile.
        let mut profile = self.obs.finish();
        profile.record_path(&["build"], build_seconds);
        profile.record_path(&["build", "encode"], self.encode_seconds);
        profile.record_path(&["build", "layout"], layout_seconds);
        profile.record_path(&["build", "write"], write_seconds);
        profile.add_counter("build.data.bytes", Label::None, data_bytes);
        profile.add_counter("build.index.bytes", Label::None, index_bytes);
        profile.add_counter("build.meta.bytes", Label::None, meta_data.len() as u64);
        profile.add_counter("build.raw.bytes", Label::None, total_points * 8);

        Ok(BuildReport {
            data_bytes,
            index_bytes,
            meta_bytes: meta_data.len() as u64,
            raw_bytes: total_points * 8,
            build_seconds,
            encode_seconds: self.encode_seconds,
            layout_seconds,
            write_seconds,
            per_bin_points: self.per_bin_points,
            profile,
        })
    }
}

/// Build the MLOC layout for `values` (row-major over `config.shape`)
/// and write it to `backend` under `dataset/var`. Chunk encoding fans
/// out across [`MlocConfig::build_threads`] workers, each reading its
/// chunk straight out of `values`; the result is byte-identical to a
/// serial build.
pub fn build_variable(
    backend: &dyn StorageBackend,
    dataset: &str,
    var: &str,
    values: &[f64],
    config: &MlocConfig,
) -> Result<BuildReport> {
    config.validate()?;
    let grid = ChunkGrid::new(config.shape.clone(), config.chunk_shape.clone());
    assert_eq!(
        values.len(),
        grid.num_points(),
        "value count does not match the configured shape"
    );

    // Bin bounds from a strided sample (paper §IV-A).
    let stride = (values.len() / BIN_SAMPLE).max(1);
    let sample: Vec<f64> = values.iter().step_by(stride).copied().collect();

    let mut builder = StreamingBuilder::new(backend, dataset, var, config, &sample)?;
    let t = Instant::now();
    let encoded = {
        let spec = &builder.spec;
        let byte_codec: &dyn Codec = &*builder.byte_codec;
        let float_codec: &dyn FloatCodec = &*builder.float_codec;
        let codec_name = config.codec.name();
        let obs = &builder.obs;
        parallel_map(
            config.effective_build_threads(),
            (0..grid.num_chunks()).collect(),
            |_, chunk| {
                let chunk_values: Vec<f64> = grid
                    .chunk_linear_indices(chunk)
                    .iter()
                    .map(|&l| values[l as usize])
                    .collect();
                encode_chunk(
                    &chunk_values,
                    spec,
                    config.num_bins,
                    config.plod,
                    byte_codec,
                    float_codec,
                    codec_name,
                    obs,
                )
            },
        )
    };
    builder.encode_seconds += t.elapsed().as_secs_f64();
    for (chunk, units) in encoded.into_iter().enumerate() {
        builder.ingest(chunk, units);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LevelOrder, MlocConfig};
    use mloc_compress::CodecKind;
    use mloc_pfs::MemBackend;

    fn toy_values(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.7).sin() * 100.0 + i as f64 * 0.01)
            .collect()
    }

    fn toy_config() -> MlocConfig {
        MlocConfig::builder(vec![32, 32])
            .chunk_shape(vec![8, 8])
            .num_bins(8)
            .build()
    }

    #[test]
    fn build_writes_all_files() {
        let be = MemBackend::new();
        let report = build_variable(&be, "ds", "t", &toy_values(1024), &toy_config()).unwrap();
        assert_eq!(report.raw_bytes, 8192);
        assert_eq!(report.per_bin_points.iter().sum::<u64>(), 1024);
        // 8 bins × (data + index) + meta.
        assert_eq!(be.list().len(), 17);
        assert!(report.data_bytes > 0 && report.index_bytes > 0);
        assert!(be.exists("ds/t/bin0000.dat"));
        assert!(be.exists("ds/t/bin0007.idx"));
        assert!(be.exists("ds/t/meta"));
    }

    #[test]
    fn report_breaks_down_stage_times() {
        let be = MemBackend::new();
        let report = build_variable(&be, "ds", "t", &toy_values(1024), &toy_config()).unwrap();
        assert!(report.encode_seconds > 0.0, "encode stage untimed");
        assert!(report.layout_seconds > 0.0, "layout stage untimed");
        assert!(report.write_seconds > 0.0, "write stage untimed");
        // Stage walls never exceed the total build wall.
        assert!(report.encode_seconds <= report.build_seconds);
        assert!(report.layout_seconds + report.write_seconds <= report.build_seconds);
    }

    #[test]
    fn report_profile_mirrors_stages_and_ratios() {
        let be = MemBackend::new();
        let report = build_variable(&be, "ds", "t", &toy_values(1024), &toy_config()).unwrap();
        let p = &report.profile;
        // Stage spans mirror the report fields bit-for-bit.
        assert_eq!(p.span(&["build"]).unwrap().seconds, report.build_seconds);
        assert_eq!(
            p.span(&["build", "encode"]).unwrap().seconds,
            report.encode_seconds
        );
        assert_eq!(
            p.span(&["build", "layout"]).unwrap().seconds,
            report.layout_seconds
        );
        assert_eq!(
            p.span(&["build", "write"]).unwrap().seconds,
            report.write_seconds
        );
        assert_eq!(p.counter_total("build.data.bytes"), report.data_bytes);
        assert_eq!(p.counter_total("build.index.bytes"), report.index_bytes);
        assert_eq!(p.counter_total("build.meta.bytes"), report.meta_bytes);
        // One compression-ratio observation per storage unit, under the
        // configured codec's label.
        let hist = p
            .histogram("compress.ratio", Label::Name(toy_config().codec.name()))
            .expect("ratio histogram missing");
        assert!(hist.count() > 0);
        assert!(hist.mean() > 0.0);
    }

    #[test]
    fn parallel_build_profiles_share_histograms() {
        // Bucket counts, observation count, min and max are
        // order-independent, so they match no matter how many encode
        // workers ran (only the float `sum` may drift in its last bits
        // with the workers' arrival order).
        let values = toy_values(1024);
        let mut c1 = toy_config();
        c1.build_threads = 1;
        let mut c8 = toy_config();
        c8.build_threads = 8;
        let be1 = MemBackend::new();
        let be8 = MemBackend::new();
        let r1 = build_variable(&be1, "ds", "t", &values, &c1).unwrap();
        let r8 = build_variable(&be8, "ds", "t", &values, &c8).unwrap();
        assert_eq!(r1.profile.histograms.len(), r8.profile.histograms.len());
        for (h1, h8) in r1.profile.histograms.iter().zip(&r8.profile.histograms) {
            assert_eq!((h1.name, h1.label), (h8.name, h8.label));
            assert_eq!(h1.histogram.buckets(), h8.histogram.buckets());
            assert_eq!(h1.histogram.count(), h8.histogram.count());
            assert_eq!(h1.histogram.min(), h8.histogram.min());
            assert_eq!(h1.histogram.max(), h8.histogram.max());
        }
        assert_eq!(r1.profile.structure(), r8.profile.structure());
    }

    #[test]
    fn equal_frequency_bins_are_balanced() {
        let be = MemBackend::new();
        let report = build_variable(&be, "ds", "t", &toy_values(1024), &toy_config()).unwrap();
        let max = *report.per_bin_points.iter().max().unwrap();
        let min = *report.per_bin_points.iter().min().unwrap();
        assert!(
            max < min * 2 + 64,
            "bins unbalanced: {:?}",
            report.per_bin_points
        );
    }

    #[test]
    fn vms_and_vsm_store_same_bytes() {
        let values = toy_values(1024);
        let be1 = MemBackend::new();
        let be2 = MemBackend::new();
        let c1 = toy_config();
        let mut c2 = toy_config();
        c2.level_order = LevelOrder::Vsm;
        let r1 = build_variable(&be1, "ds", "t", &values, &c1).unwrap();
        let r2 = build_variable(&be2, "ds", "t", &values, &c2).unwrap();
        // Same units, different order: byte totals match exactly.
        assert_eq!(r1.data_bytes, r2.data_bytes);
        assert_eq!(r1.index_bytes, r2.index_bytes);
        // But the files differ (layout moved).
        assert_ne!(
            be1.read("ds/t/bin0000.dat", 0, be1.len("ds/t/bin0000.dat").unwrap())
                .unwrap(),
            be2.read("ds/t/bin0000.dat", 0, be2.len("ds/t/bin0000.dat").unwrap())
                .unwrap()
        );
    }

    #[test]
    fn float_codec_build() {
        let be = MemBackend::new();
        let mut config = toy_config();
        config.codec = CodecKind::Isabela { error_bound: 0.001 };
        config.plod = false;
        let report = build_variable(&be, "ds", "t", &toy_values(1024), &config).unwrap();
        assert!(report.data_bytes > 0);
    }

    #[test]
    #[should_panic]
    fn wrong_value_count_panics() {
        let be = MemBackend::new();
        let _ = build_variable(&be, "ds", "t", &toy_values(100), &toy_config());
    }

    // ---- streaming (in-situ) builder ----

    fn chunk_values(values: &[f64], grid: &ChunkGrid, chunk: usize) -> Vec<f64> {
        grid.chunk_linear_indices(chunk)
            .iter()
            .map(|&l| values[l as usize])
            .collect()
    }

    #[test]
    fn streaming_build_matches_one_shot_bytewise() {
        let values = toy_values(1024);
        let config = toy_config();
        let grid = ChunkGrid::new(config.shape.clone(), config.chunk_shape.clone());

        let be1 = MemBackend::new();
        build_variable(&be1, "ds", "t", &values, &config).unwrap();

        // Same sample ⇒ same bin bounds ⇒ identical files, even though
        // chunks arrive in reverse order.
        let stride = (values.len() / BIN_SAMPLE).max(1);
        let sample: Vec<f64> = values.iter().step_by(stride).copied().collect();
        let be2 = MemBackend::new();
        let mut b = StreamingBuilder::new(&be2, "ds", "t", &config, &sample).unwrap();
        for chunk in (0..grid.num_chunks()).rev() {
            b.push_chunk(chunk, &chunk_values(&values, &grid, chunk))
                .unwrap();
        }
        assert_eq!(b.chunks_pushed(), grid.num_chunks());
        b.finish().unwrap();

        for f in be1.list() {
            let a = be1.read(&f, 0, be1.len(&f).unwrap()).unwrap();
            let c = be2.read(&f, 0, be2.len(&f).unwrap()).unwrap();
            assert_eq!(a, c, "file {f} differs between one-shot and streaming");
        }
    }

    #[test]
    fn batched_push_matches_chunkwise_push_bytewise() {
        let values = toy_values(1024);
        let config = toy_config();
        let grid = ChunkGrid::new(config.shape.clone(), config.chunk_shape.clone());
        let sample: Vec<f64> = values.clone();

        let be1 = MemBackend::new();
        let mut one = StreamingBuilder::new(&be1, "ds", "t", &config, &sample).unwrap();
        for chunk in 0..grid.num_chunks() {
            one.push_chunk(chunk, &chunk_values(&values, &grid, chunk))
                .unwrap();
        }
        one.finish().unwrap();

        // The whole wave in one batch, shuffled.
        let be2 = MemBackend::new();
        let mut batched = StreamingBuilder::new(&be2, "ds", "t", &config, &sample).unwrap();
        let mut wave: Vec<(usize, Vec<f64>)> = (0..grid.num_chunks())
            .map(|c| (c, chunk_values(&values, &grid, c)))
            .collect();
        wave.reverse();
        batched.push_chunks(wave).unwrap();
        batched.finish().unwrap();

        for f in be1.list() {
            let a = be1.read(&f, 0, be1.len(&f).unwrap()).unwrap();
            let c = be2.read(&f, 0, be2.len(&f).unwrap()).unwrap();
            assert_eq!(a, c, "file {f} differs between chunk-wise and batched");
        }
    }

    #[test]
    fn batch_with_duplicate_or_invalid_chunk_is_rejected_whole() {
        let values = toy_values(1024);
        let config = toy_config();
        let grid = ChunkGrid::new(config.shape.clone(), config.chunk_shape.clone());
        let be = MemBackend::new();
        let mut b = StreamingBuilder::new(&be, "ds", "t", &config, &values).unwrap();

        let cv = chunk_values(&values, &grid, 0);
        // Duplicate inside the batch.
        assert!(b
            .push_chunks(vec![(0, cv.clone()), (0, cv.clone())])
            .is_err());
        // Invalid id in the middle of an otherwise fine batch.
        assert!(b
            .push_chunks(vec![
                (1, chunk_values(&values, &grid, 1)),
                (999, cv.clone())
            ])
            .is_err());
        // Nothing was filed: every chunk can still be pushed normally.
        assert_eq!(b.chunks_pushed(), 0);
        b.push_chunk(0, &cv).unwrap();
        assert_eq!(b.chunks_pushed(), 1);
    }

    #[test]
    fn streaming_rejects_misuse() {
        let config = toy_config();
        let values = toy_values(1024);
        let grid = ChunkGrid::new(config.shape.clone(), config.chunk_shape.clone());
        let be = MemBackend::new();
        let mut b = StreamingBuilder::new(&be, "ds", "t", &config, &values).unwrap();

        // Wrong size.
        assert!(b.push_chunk(0, &values[..5]).is_err());
        // Out of range.
        assert!(b.push_chunk(999, &chunk_values(&values, &grid, 0)).is_err());
        // Double push.
        b.push_chunk(0, &chunk_values(&values, &grid, 0)).unwrap();
        assert!(b.push_chunk(0, &chunk_values(&values, &grid, 0)).is_err());
        // Finish with missing chunks.
        assert!(b.finish().is_err());

        // Empty sample.
        assert!(StreamingBuilder::new(&be, "ds", "u", &config, &[]).is_err());
    }
}
