//! Sharded decompressed-block cache for the query path.
//!
//! Exploratory sessions issue overlapping VC/SC/multi-resolution
//! queries that decompress the same (bin, chunk, byte-group) blocks
//! over and over. [`BlockCache`] sits between the query engine and the
//! [`mloc_pfs::StorageBackend`]: it holds *decompressed* blocks —
//! index headers, positional bitmaps, PLoD byte-group parts, and
//! whole-value float blocks — keyed by `(dataset/var, bin, chunk,
//! part)`, so a repeated or overlapping query skips both the PFS read
//! and the codec work.
//!
//! Accounting rules (see `DESIGN.md`):
//!
//! * A hit is recorded in the rank's [`mloc_pfs::RankIo`] trace with
//!   the `cached` flag set — the logical access pattern stays visible —
//!   but the PFS simulator charges it nothing.
//! * Hits/misses and the compressed bytes saved surface per query in
//!   `QueryMetrics` and globally in [`BlockCache::stats`].
//!
//! The cache is byte-budgeted and sharded: the budget is split evenly
//! over [`NUM_SHARDS`] independently locked LRU shards
//! (`parking_lot::Mutex`), so concurrent ranks of the threaded
//! executor contend only when their keys collide on a shard. A block
//! larger than one shard's budget is never cached; a zero budget
//! caches nothing and degrades to exactly the uncached read path.
//!
//! PLoD byte-group parts are cached at *part* granularity: a query at
//! precision level 2 warms parts 0–1, and a later full-precision query
//! still reuses them, fetching only the missing tail parts.
//!
//! Cached blocks are tied to a built (immutable) variable; rebuilding
//! a variable under the same dataset/var names with different content
//! requires a fresh cache.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked LRU shards.
pub const NUM_SHARDS: usize = 16;

/// Which block of a `(bin, chunk)` pair a cache entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockPart {
    /// The bin index header + chunk directory (chunk rank is 0).
    IndexHeader,
    /// The v2 chunk-summary section of one bin (chunk rank is 0).
    Summary,
    /// The positional WAH bitmap of one chunk in one bin.
    Bitmap,
    /// A whole-value decompressed float block (non-PLoD layouts).
    Floats,
    /// One decompressed PLoD byte-group part (0 = most significant).
    PlodPart(u8),
    /// The parsed checksum footer of one bin file (0 = index file,
    /// 1 = data file; chunk rank is 0).
    Footer(u8),
}

/// Cache key: one decompressed block of one built variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// `dataset/var` scope, shared via `Arc` so probes don't allocate.
    pub scope: Arc<str>,
    /// Value bin.
    pub bin: u32,
    /// Chunk curve rank ([`BlockPart::IndexHeader`] uses 0).
    pub chunk_rank: u32,
    /// Which block of the pair.
    pub part: BlockPart,
}

/// A zero-copy view of a byte range inside a shared buffer.
///
/// The query hot path reads coalesced extents once and hands out
/// `ByteView`s into them instead of copying every want into its own
/// `Vec<u8>`; cache inserts clone the view (an `Arc` bump plus two
/// integers), never the bytes. Views of the same extent share one
/// backing allocation, so caching every bitmap of a bin read together
/// costs the extent once, not once per bitmap. Coalescing gaps (at
/// most the merge threshold per join) ride along uncharged — the
/// budget charge is the view length, see [`CachedBlock::cost`].
#[derive(Debug, Clone)]
pub struct ByteView {
    buf: Arc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl ByteView {
    /// View of a whole shared buffer.
    pub fn new(buf: Arc<Vec<u8>>) -> Self {
        let len = buf.len();
        ByteView { buf, start: 0, len }
    }

    /// View of `buf[start..start + len]`.
    ///
    /// # Panics
    /// Panics when the range exceeds the buffer.
    pub fn slice(buf: Arc<Vec<u8>>, start: usize, len: usize) -> Self {
        assert!(start + len <= buf.len(), "byte view out of range");
        ByteView { buf, start, len }
    }

    /// An empty view with no backing allocation of its own.
    pub fn empty() -> Self {
        static EMPTY: std::sync::OnceLock<Arc<Vec<u8>>> = std::sync::OnceLock::new();
        ByteView::new(Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new()))))
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.start + self.len]
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for ByteView {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for ByteView {
    fn from(v: Vec<u8>) -> Self {
        ByteView::new(Arc::new(v))
    }
}

/// A cached decompressed block.
#[derive(Debug, Clone)]
pub enum CachedBlock {
    /// Raw bytes: index headers, bitmaps, PLoD parts. Stored as a
    /// view so cache inserts of extent subslices copy nothing.
    Bytes(ByteView),
    /// Decoded doubles: whole-value blocks.
    Floats(Arc<Vec<f64>>),
    /// A parsed per-extent checksum footer of one bin file.
    Footer(Arc<crate::integrity::ExtentFooter>),
}

impl CachedBlock {
    /// Budget charge of this block in bytes (the view length for byte
    /// blocks — shared extent backing is charged per view, so a few
    /// coalescing-gap bytes may ride along free; footers are charged
    /// their on-disk encoded size).
    pub fn cost(&self) -> u64 {
        match self {
            CachedBlock::Bytes(b) => b.len() as u64,
            CachedBlock::Floats(f) => (f.len() * std::mem::size_of::<f64>()) as u64,
            CachedBlock::Footer(f) => f.encoded_len(),
        }
    }

    /// The byte payload, if this is a byte block.
    pub fn as_bytes(&self) -> Option<&ByteView> {
        match self {
            CachedBlock::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The float payload, if this is a float block.
    pub fn as_floats(&self) -> Option<&Arc<Vec<f64>>> {
        match self {
            CachedBlock::Floats(f) => Some(f),
            _ => None,
        }
    }

    /// The footer payload, if this is a footer block.
    pub fn as_footer(&self) -> Option<&Arc<crate::integrity::ExtentFooter>> {
        match self {
            CachedBlock::Footer(f) => Some(f),
            _ => None,
        }
    }
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that found their block.
    pub hits: u64,
    /// Probes that did not.
    pub misses: u64,
    /// Blocks inserted.
    pub insertions: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Blocks currently resident.
    pub resident_blocks: u64,
}

const NIL: usize = usize::MAX;

struct Node {
    key: BlockKey,
    value: CachedBlock,
    cost: u64,
    prev: usize,
    next: usize,
}

/// One LRU shard: an intrusive doubly linked list over a slab, plus a
/// key → slot map. Head is most recent, tail least.
struct Shard {
    map: HashMap<BlockKey, usize>,
    slots: Vec<Option<Node>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    used_bytes: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            used_bytes: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.slots[idx].as_ref().expect("unlink of free slot");
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("bad prev link").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("bad next link").prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        {
            let n = self.slots[idx].as_mut().expect("push of free slot");
            n.prev = NIL;
            n.next = self.head;
        }
        match self.head {
            NIL => self.tail = idx,
            h => self.slots[h].as_mut().expect("bad head link").prev = idx,
        }
        self.head = idx;
    }

    fn get(&mut self, key: &BlockKey) -> Option<CachedBlock> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(
            self.slots[idx]
                .as_ref()
                .expect("mapped slot is free")
                .value
                .clone(),
        )
    }

    /// Evict the LRU entry; returns false when empty.
    fn evict_tail(&mut self) -> bool {
        let idx = self.tail;
        if idx == NIL {
            return false;
        }
        self.unlink(idx);
        let node = self.slots[idx].take().expect("tail slot is free");
        self.map.remove(&node.key);
        self.used_bytes -= node.cost;
        self.free.push(idx);
        true
    }

    /// Insert (or refresh) an entry under a byte budget. Returns the
    /// number of evictions performed, or `None` when the block itself
    /// exceeds the budget and was rejected.
    fn insert(&mut self, key: BlockKey, value: CachedBlock, budget: u64) -> Option<u64> {
        let cost = value.cost();
        if cost > budget {
            return None;
        }
        if let Some(&idx) = self.map.get(&key) {
            // Refresh in place.
            let old = {
                let n = self.slots[idx].as_mut().expect("mapped slot is free");
                let old = n.cost;
                n.value = value;
                n.cost = cost;
                old
            };
            self.used_bytes = self.used_bytes - old + cost;
            self.unlink(idx);
            self.push_front(idx);
        } else {
            let idx = match self.free.pop() {
                Some(i) => i,
                None => {
                    self.slots.push(None);
                    self.slots.len() - 1
                }
            };
            self.slots[idx] = Some(Node {
                key: key.clone(),
                value,
                cost,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, idx);
            self.used_bytes += cost;
            self.push_front(idx);
        }
        let mut evicted = 0;
        while self.used_bytes > budget && self.evict_tail() {
            evicted += 1;
        }
        Some(evicted)
    }
}

/// A concurrent, sharded, byte-budgeted LRU cache of decompressed
/// blocks. Cheap to share: wrap in an [`Arc`] and hand clones to every
/// store / rank.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: u64,
    budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("budget", &self.budget)
            .field("stats", &self.stats())
            .finish()
    }
}

impl BlockCache {
    /// A cache with a total byte budget, split evenly over
    /// [`NUM_SHARDS`] shards. A zero budget caches nothing.
    pub fn with_budget_bytes(budget: u64) -> Self {
        BlockCache {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget: budget / NUM_SHARDS as u64,
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache with a budget in MiB (the CLI's `--cache-mb`).
    pub fn with_budget_mb(mb: u64) -> Self {
        Self::with_budget_bytes(mb << 20)
    }

    /// The configured total byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    fn shard_of(&self, key: &BlockKey) -> &Mutex<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up a block, marking it most recently used.
    pub fn get(&self, key: &BlockKey) -> Option<CachedBlock> {
        let found = self.shard_of(key).lock().get(key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a block, evicting LRU entries to fit the budget. Returns
    /// whether the block was accepted (blocks larger than one shard's
    /// budget are rejected).
    pub fn insert(&self, key: BlockKey, value: CachedBlock) -> bool {
        match self
            .shard_of(&key)
            .lock()
            .insert(key, value, self.shard_budget)
        {
            Some(evicted) => {
                self.insertions.fetch_add(1, Ordering::Relaxed);
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Snapshot the counters and resident totals.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            let s = shard.lock();
            stats.resident_bytes += s.used_bytes;
            stats.resident_blocks += s.map.len() as u64;
        }
        stats
    }

    /// Drop every resident block (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            while s.evict_tail() {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(scope: &Arc<str>, bin: u32, chunk: u32, part: BlockPart) -> BlockKey {
        BlockKey {
            scope: Arc::clone(scope),
            bin,
            chunk_rank: chunk,
            part,
        }
    }

    fn block(n: usize) -> CachedBlock {
        CachedBlock::Bytes(ByteView::from(vec![0xAB; n]))
    }

    #[test]
    fn byte_views_share_backing_without_copying() {
        let extent = Arc::new((0..100u8).collect::<Vec<u8>>());
        let a = ByteView::slice(Arc::clone(&extent), 10, 5);
        let b = ByteView::slice(Arc::clone(&extent), 15, 5);
        assert_eq!(a.as_slice(), &[10, 11, 12, 13, 14]);
        assert_eq!(&b[..], &[15, 16, 17, 18, 19]);
        // Two views + the original: one allocation, three handles.
        assert_eq!(Arc::strong_count(&extent), 3);
        assert!(ByteView::empty().is_empty());
        assert_eq!(CachedBlock::Bytes(a).cost(), 5);
    }

    #[test]
    #[should_panic]
    fn byte_view_out_of_range_panics() {
        ByteView::slice(Arc::new(vec![0u8; 4]), 2, 3);
    }

    #[test]
    fn hit_and_miss_accounting() {
        let scope: Arc<str> = Arc::from("ds/v");
        let cache = BlockCache::with_budget_bytes(1 << 20);
        let k = key(&scope, 1, 2, BlockPart::PlodPart(0));
        assert!(cache.get(&k).is_none());
        assert!(cache.insert(k.clone(), block(100)));
        assert!(cache.get(&k).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.resident_bytes, 100);
        assert_eq!(s.resident_blocks, 1);
    }

    #[test]
    fn distinct_parts_are_distinct_keys() {
        let scope: Arc<str> = Arc::from("ds/v");
        let cache = BlockCache::with_budget_bytes(1 << 20);
        cache.insert(key(&scope, 0, 0, BlockPart::PlodPart(0)), block(10));
        cache.insert(key(&scope, 0, 0, BlockPart::PlodPart(1)), block(20));
        cache.insert(key(&scope, 0, 0, BlockPart::Bitmap), block(30));
        cache.insert(key(&scope, 0, 0, BlockPart::IndexHeader), block(40));
        assert_eq!(cache.stats().resident_blocks, 4);
        // Same coordinates under a different scope are separate too.
        let other: Arc<str> = Arc::from("ds/w");
        assert!(cache.get(&key(&other, 0, 0, BlockPart::Bitmap)).is_none());
    }

    #[test]
    fn lru_eviction_under_budget() {
        let scope: Arc<str> = Arc::from("ds/v");
        // One shard's budget is total / NUM_SHARDS; drive one shard by
        // reusing the same key coordinates with distinct bins until it
        // overflows. Use a budget small enough that a few 64-byte
        // blocks overflow a shard.
        let cache = BlockCache::with_budget_bytes((NUM_SHARDS * 150) as u64);
        for bin in 0..200u32 {
            cache.insert(key(&scope, bin, 0, BlockPart::Floats), block(64));
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "no evictions despite overflow");
        assert!(s.resident_bytes <= (NUM_SHARDS as u64) * 150);
        // Per-shard budget of 150 holds at most two 64-byte blocks.
        for shard in &cache.shards {
            assert!(shard.lock().used_bytes <= 150);
        }
    }

    #[test]
    fn recently_used_survives_eviction() {
        let scope: Arc<str> = Arc::from("ds/v");
        let cache = BlockCache::with_budget_bytes((NUM_SHARDS * 256) as u64);
        // Find three keys landing on the same shard.
        let mut same_shard = Vec::new();
        let probe: Vec<BlockKey> = (0..500u32)
            .map(|b| key(&scope, b, 7, BlockPart::Floats))
            .collect();
        let target = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            probe[0].hash(&mut h);
            (h.finish() as usize) % NUM_SHARDS
        };
        for k in probe {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            k.hash(&mut h);
            if (h.finish() as usize) % NUM_SHARDS == target {
                same_shard.push(k);
            }
            if same_shard.len() == 3 {
                break;
            }
        }
        let [a, b, c] = &same_shard[..] else {
            panic!("need 3 keys")
        };
        // 100-byte blocks, 256-byte shard: two fit, three do not.
        cache.insert(a.clone(), block(100));
        cache.insert(b.clone(), block(100));
        assert!(cache.get(a).is_some(), "a should be resident");
        cache.insert(c.clone(), block(100));
        // b was least recently used; a was touched and must survive.
        assert!(cache.get(a).is_some(), "a evicted despite recent use");
        assert!(cache.get(b).is_none(), "b should have been evicted");
        assert!(cache.get(c).is_some(), "c was just inserted");
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let scope: Arc<str> = Arc::from("ds/v");
        let cache = BlockCache::with_budget_bytes(0);
        let k = key(&scope, 0, 0, BlockPart::Floats);
        assert!(!cache.insert(k.clone(), block(1)));
        assert!(cache.get(&k).is_none());
        let s = cache.stats();
        assert_eq!(s.insertions, 0);
        assert_eq!(s.resident_bytes, 0);
    }

    #[test]
    fn refresh_updates_cost_in_place() {
        let scope: Arc<str> = Arc::from("ds/v");
        let cache = BlockCache::with_budget_bytes(1 << 20);
        let k = key(&scope, 3, 4, BlockPart::PlodPart(2));
        cache.insert(k.clone(), block(100));
        cache.insert(k.clone(), block(40));
        let s = cache.stats();
        assert_eq!(s.resident_blocks, 1);
        assert_eq!(s.resident_bytes, 40);
    }

    #[test]
    fn float_blocks_charge_eight_bytes_each() {
        let b = CachedBlock::Floats(Arc::new(vec![1.0; 10]));
        assert_eq!(b.cost(), 80);
        assert!(b.as_floats().is_some());
        assert!(b.as_bytes().is_none());
    }

    #[test]
    fn clear_empties_all_shards() {
        let scope: Arc<str> = Arc::from("ds/v");
        let cache = BlockCache::with_budget_bytes(1 << 20);
        for bin in 0..64u32 {
            cache.insert(key(&scope, bin, 0, BlockPart::Bitmap), block(16));
        }
        cache.clear();
        let s = cache.stats();
        assert_eq!(s.resident_bytes, 0);
        assert_eq!(s.resident_blocks, 0);
    }

    #[test]
    fn concurrent_mixed_load_is_safe() {
        let scope: Arc<str> = Arc::from("ds/v");
        let cache = Arc::new(BlockCache::with_budget_bytes(64 << 10));
        let handles: Vec<_> = (0..8u32)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let scope = Arc::clone(&scope);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        let k = BlockKey {
                            scope: Arc::clone(&scope),
                            bin: (t + i) % 16,
                            chunk_rank: i % 8,
                            part: BlockPart::PlodPart((i % 3) as u8),
                        };
                        if i % 2 == 0 {
                            cache.insert(k, CachedBlock::Bytes(ByteView::from(vec![0; 128])));
                        } else {
                            let _ = cache.get(&k);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8 * 250);
        assert!(s.resident_bytes <= 64 << 10);
    }
}
