//! Dataset configuration: bins, chunks, level order, codec, PLoD.

use crate::fileorg;
use crate::{MlocError, Result};
use mloc_compress::CodecKind;
use mloc_hilbert::CurveKind;

/// Nesting order of the layout levels inside each bin file.
///
/// The value level (V) is always outermost — bins *are* the files
/// (§III-C subfiling) — so the orderings the paper evaluates differ in
/// whether byte groups (M) or Hilbert-ordered chunks (S) come next
/// (Table VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelOrder {
    /// V → M → S: byte groups outermost within a bin; each byte group
    /// stores its chunks in Hilbert order. Optimizes PLoD-prefix reads
    /// (the paper's default, Figure 2).
    Vms,
    /// V → S → M: Hilbert-ordered chunks outermost; each chunk stores
    /// its byte groups together. Optimizes full-precision reads.
    Vsm,
}

impl LevelOrder {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LevelOrder::Vms => "V-M-S",
            LevelOrder::Vsm => "V-S-M",
        }
    }

    pub(crate) fn to_tag(self) -> u8 {
        match self {
            LevelOrder::Vms => 0,
            LevelOrder::Vsm => 1,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            0 => Ok(LevelOrder::Vms),
            1 => Ok(LevelOrder::Vsm),
            _ => Err(MlocError::Corrupt("unknown level order")),
        }
    }
}

/// Precision-based level of detail: how many byte groups of each
/// double to fetch (paper §III-B.3, Figure 3).
///
/// Level `L` fetches `L + 1` bytes: group 0 holds the first two bytes
/// (sign, exponent, leading mantissa), groups 1..=6 one byte each.
/// Level 7 is full precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlodLevel(u8);

impl PlodLevel {
    /// Full precision (all 8 bytes).
    pub const FULL: PlodLevel = PlodLevel(7);

    /// Level in `1..=7`.
    pub fn new(level: u8) -> Result<Self> {
        if (1..=7).contains(&level) {
            Ok(PlodLevel(level))
        } else {
            Err(MlocError::Invalid(format!(
                "PLoD level {level} not in 1..=7"
            )))
        }
    }

    /// The level number.
    pub fn level(self) -> u8 {
        self.0
    }

    /// Number of byte groups fetched (level 1 → 1 group, …).
    pub fn num_parts(self) -> usize {
        self.0 as usize
    }

    /// Number of bytes of each double fetched.
    pub fn num_bytes(self) -> usize {
        self.0 as usize + 1
    }

    /// Whether this is full precision.
    pub fn is_full(self) -> bool {
        self.0 == 7
    }
}

/// Total number of PLoD byte groups.
pub const NUM_PARTS: usize = 7;

/// Full configuration of an MLOC variable.
#[derive(Debug, Clone)]
pub struct MlocConfig {
    /// Domain shape (row-major extents).
    pub shape: Vec<usize>,
    /// Chunk shape (clamped at domain edges).
    pub chunk_shape: Vec<usize>,
    /// Number of equal-frequency value bins.
    pub num_bins: usize,
    /// Level nesting order inside bin files.
    pub level_order: LevelOrder,
    /// Compression codec.
    pub codec: CodecKind,
    /// Whether values are split into PLoD byte groups. `true` for
    /// MLOC-COL (byte-column storage); `false` stores whole doubles
    /// per unit (MLOC-ISO / MLOC-ISA).
    pub plod: bool,
    /// Space-filling curve ordering chunks on disk.
    pub curve: CurveKind,
    /// Subset-based multi-resolution placement: when non-zero, chunks
    /// are grouped into this many resolution levels (coarse lattice
    /// first, curve order within a level) so a file prefix holds a
    /// uniform sample of the domain (paper §III-B.3, Figure 1).
    /// Zero = plain curve order.
    pub subset_levels: u32,
    /// PFS stripe size the layout should align to.
    pub stripe_size: u64,
    /// Worker threads for the build path (chunk encode and per-bin
    /// layout/write). `0` means one per available core. This is a
    /// runtime execution knob: it is never persisted, and the on-disk
    /// layout is byte-identical for every value.
    pub build_threads: usize,
}

// `build_threads` is deliberately excluded: two configurations that
// differ only in worker-thread count describe the same layout, and the
// knob is not stored in catalogs or metadata.
impl PartialEq for MlocConfig {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape
            && self.chunk_shape == other.chunk_shape
            && self.num_bins == other.num_bins
            && self.level_order == other.level_order
            && self.codec == other.codec
            && self.plod == other.plod
            && self.curve == other.curve
            && self.subset_levels == other.subset_levels
            && self.stripe_size == other.stripe_size
    }
}

impl MlocConfig {
    /// Start building a configuration for a domain shape.
    pub fn builder(shape: Vec<usize>) -> ConfigBuilder {
        ConfigBuilder::new(shape)
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.shape.is_empty() || self.shape.contains(&0) {
            return Err(MlocError::Invalid("empty shape".into()));
        }
        if self.chunk_shape.len() != self.shape.len() {
            return Err(MlocError::Invalid("chunk dimensionality mismatch".into()));
        }
        if self.chunk_shape.contains(&0) {
            return Err(MlocError::Invalid("zero chunk extent".into()));
        }
        if self.num_bins == 0 {
            return Err(MlocError::Invalid("need at least one bin".into()));
        }
        if self.plod && self.codec.is_lossy() {
            return Err(MlocError::Invalid(
                "PLoD byte columns require a byte-exact codec".into(),
            ));
        }
        if self.subset_levels > 16 {
            return Err(MlocError::Invalid(
                "more than 16 resolution levels is never useful".into(),
            ));
        }
        Ok(())
    }

    /// The on-disk chunk ordering this configuration implies.
    pub fn chunk_order(&self, grid: &crate::array::ChunkGrid) -> mloc_hilbert::GridOrder {
        if self.subset_levels > 0 {
            mloc_hilbert::GridOrder::hierarchical(
                grid.grid_extents(),
                self.subset_levels,
                self.curve,
            )
        } else {
            mloc_hilbert::GridOrder::new(grid.grid_extents(), self.curve)
        }
    }

    /// Number of byte groups per unit under this configuration.
    pub fn num_parts(&self) -> usize {
        if self.plod {
            NUM_PARTS
        } else {
            1
        }
    }

    /// The worker-thread count the build path will actually use:
    /// `build_threads`, or the available parallelism when it is `0`.
    pub fn effective_build_threads(&self) -> usize {
        if self.build_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.build_threads
        }
    }
}

/// Builder for [`MlocConfig`].
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    shape: Vec<usize>,
    chunk_shape: Option<Vec<usize>>,
    num_bins: usize,
    level_order: LevelOrder,
    codec: CodecKind,
    plod: Option<bool>,
    curve: CurveKind,
    subset_levels: u32,
    stripe_size: u64,
    build_threads: usize,
}

impl ConfigBuilder {
    fn new(shape: Vec<usize>) -> Self {
        ConfigBuilder {
            shape,
            chunk_shape: None,
            num_bins: 100,
            level_order: LevelOrder::Vms,
            codec: CodecKind::Deflate,
            plod: None,
            curve: CurveKind::Hilbert,
            subset_levels: 0,
            stripe_size: 1 << 20,
            build_threads: 0,
        }
    }

    /// Set the chunk shape explicitly (otherwise derived from the
    /// stripe size, §III-C).
    pub fn chunk_shape(mut self, chunk_shape: Vec<usize>) -> Self {
        self.chunk_shape = Some(chunk_shape);
        self
    }

    /// Number of equal-frequency bins (paper default: 100).
    pub fn num_bins(mut self, num_bins: usize) -> Self {
        self.num_bins = num_bins;
        self
    }

    /// Level nesting order.
    pub fn level_order(mut self, order: LevelOrder) -> Self {
        self.level_order = order;
        self
    }

    /// Compression codec. Lossy / float codecs disable PLoD byte
    /// columns unless overridden.
    pub fn codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Force PLoD byte-column storage on or off.
    pub fn plod(mut self, plod: bool) -> Self {
        self.plod = Some(plod);
        self
    }

    /// Space-filling curve for the spatial level.
    pub fn curve(mut self, curve: CurveKind) -> Self {
        self.curve = curve;
        self
    }

    /// Enable subset-based multi-resolution placement with this many
    /// resolution levels (0 disables it).
    pub fn subset_levels(mut self, levels: u32) -> Self {
        self.subset_levels = levels;
        self
    }

    /// PFS stripe size for layout alignment.
    pub fn stripe_size(mut self, stripe_size: u64) -> Self {
        self.stripe_size = stripe_size;
        self
    }

    /// Worker threads for the build path (0 = one per core). Purely a
    /// runtime knob: output is byte-identical for every value.
    pub fn build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads;
        self
    }

    /// Finish, deriving defaults: chunk shape from the stripe size and
    /// PLoD from the codec (byte codecs → PLoD columns).
    ///
    /// # Panics
    /// Panics when the resulting configuration is invalid.
    pub fn build(self) -> MlocConfig {
        let plod = self
            .plod
            .unwrap_or(matches!(self.codec, CodecKind::Deflate | CodecKind::Raw));
        let chunk_shape = self
            .chunk_shape
            .unwrap_or_else(|| fileorg::advise_chunk_shape(&self.shape, self.stripe_size));
        let config = MlocConfig {
            shape: self.shape,
            chunk_shape,
            num_bins: self.num_bins,
            level_order: self.level_order,
            codec: self.codec,
            plod,
            curve: self.curve,
            subset_levels: self.subset_levels,
            stripe_size: self.stripe_size,
            build_threads: self.build_threads,
        };
        config.validate().expect("invalid configuration");
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plod_levels() {
        assert!(PlodLevel::new(0).is_err());
        assert!(PlodLevel::new(8).is_err());
        let l2 = PlodLevel::new(2).unwrap();
        assert_eq!(l2.num_bytes(), 3);
        assert_eq!(l2.num_parts(), 2);
        assert!(!l2.is_full());
        assert!(PlodLevel::FULL.is_full());
        assert_eq!(PlodLevel::FULL.num_bytes(), 8);
    }

    #[test]
    fn builder_defaults() {
        let c = MlocConfig::builder(vec![64, 64]).build();
        assert_eq!(c.num_bins, 100);
        assert_eq!(c.level_order, LevelOrder::Vms);
        assert!(c.plod, "deflate default implies byte columns");
        assert_eq!(c.num_parts(), NUM_PARTS);
        assert_eq!(c.chunk_shape.len(), 2);
    }

    #[test]
    fn float_codecs_disable_plod() {
        let c = MlocConfig::builder(vec![64, 64])
            .codec(CodecKind::Isobar)
            .build();
        assert!(!c.plod);
        assert_eq!(c.num_parts(), 1);
    }

    #[test]
    #[should_panic]
    fn lossy_codec_with_plod_rejected() {
        MlocConfig::builder(vec![64, 64])
            .codec(CodecKind::Isabela { error_bound: 0.01 })
            .plod(true)
            .build();
    }

    #[test]
    fn validation_catches_mismatch() {
        let mut c = MlocConfig::builder(vec![8, 8])
            .chunk_shape(vec![4, 4])
            .build();
        c.chunk_shape = vec![4];
        assert!(c.validate().is_err());
        c.chunk_shape = vec![4, 0];
        assert!(c.validate().is_err());
    }

    #[test]
    fn build_threads_is_a_runtime_knob() {
        let a = MlocConfig::builder(vec![64, 64]).build();
        let mut b = a.clone();
        b.build_threads = 8;
        assert_eq!(a, b, "thread count must not change layout identity");
        assert_eq!(b.effective_build_threads(), 8);
        assert!(a.effective_build_threads() >= 1, "0 resolves to the cores");
        let one = MlocConfig::builder(vec![8, 8]).build_threads(1).build();
        assert_eq!(one.effective_build_threads(), 1);
    }

    #[test]
    fn level_order_tags_roundtrip() {
        for o in [LevelOrder::Vms, LevelOrder::Vsm] {
            assert_eq!(LevelOrder::from_tag(o.to_tag()).unwrap(), o);
        }
        assert!(LevelOrder::from_tag(9).is_err());
    }
}
