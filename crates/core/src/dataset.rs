//! Multi-variable, multi-timestep dataset management.
//!
//! The paper's data model (§II) is *multi-variate spatio-temporal*:
//! simulations emit several variables per time step over one grid, and
//! queries combine them ("temperature within New York where humidity
//! is above 90 %"). This module provides the catalog layer above the
//! single-variable build/query machinery:
//!
//! * [`Dataset`] — a named collection of variables sharing one domain
//!   shape and chunking (so cross-variable position bitmaps line up);
//! * time steps are modelled as variable generations
//!   (`var@t` naming), matching the paper's practice of aggregating
//!   time steps into the spatial grid when needed.

use crate::array::Region;
use crate::build::{build_variable, BuildReport, StreamingBuilder};
use crate::config::{MlocConfig, PlodLevel};
use crate::exec::ParallelExecutor;
use crate::query::multivar::{select_then_fetch, MultiVarResult};
use crate::store::MlocStore;
use crate::wire::{Reader, Writer};
use crate::{fileorg, MlocError, Result};
use mloc_compress::CodecKind;
use mloc_hilbert::CurveKind;
use mloc_pfs::StorageBackend;

pub(crate) const CATALOG_MAGIC: &[u8] = b"MCAT1\n";

pub(crate) fn encode_config(config: &MlocConfig) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize_vec(&config.shape);
    w.usize_vec(&config.chunk_shape);
    w.u32(config.num_bins as u32);
    w.u8(config.level_order.to_tag());
    let (tag, param) = config.codec.to_tag();
    w.u8(tag);
    w.f64(param);
    w.u8(u8::from(config.plod));
    w.u8(match config.curve {
        CurveKind::Hilbert => 0,
        CurveKind::ZOrder => 1,
        CurveKind::RowMajor => 2,
    });
    w.u32(config.subset_levels);
    w.u64(config.stripe_size);
    let body = w.finish();
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

pub(crate) fn decode_config(data: &[u8]) -> Result<(MlocConfig, usize)> {
    if data.len() < 4 {
        return Err(MlocError::Corrupt("catalog truncated"));
    }
    let body_len = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
    if data.len() < 4 + body_len {
        return Err(MlocError::Corrupt("catalog truncated"));
    }
    let mut r = Reader::new(&data[4..4 + body_len]);
    let shape = r.usize_vec()?;
    let chunk_shape = r.usize_vec()?;
    let num_bins = r.u32()? as usize;
    let level_order = crate::config::LevelOrder::from_tag(r.u8()?)?;
    let tag = r.u8()?;
    let param = r.f64()?;
    let codec = CodecKind::from_tag(tag, param)?;
    let plod = r.u8()? != 0;
    let curve = match r.u8()? {
        0 => CurveKind::Hilbert,
        1 => CurveKind::ZOrder,
        2 => CurveKind::RowMajor,
        _ => return Err(MlocError::Corrupt("bad curve tag")),
    };
    let subset_levels = r.u32()?;
    let stripe_size = r.u64()?;
    let config = MlocConfig {
        shape,
        chunk_shape,
        num_bins,
        level_order,
        codec,
        plod,
        curve,
        subset_levels,
        stripe_size,
        build_threads: 0,
    };
    config.validate()?;
    Ok((config, 4 + body_len))
}

/// A dataset: one domain geometry, many variables (optionally over
/// time steps), one storage backend.
pub struct Dataset<'a> {
    backend: &'a dyn StorageBackend,
    name: String,
    config: MlocConfig,
}

impl<'a> Dataset<'a> {
    /// Create a new dataset with the given per-variable configuration.
    /// The configuration (shape, chunking, bins, order, codec) applies
    /// to every variable so their layouts stay position-compatible.
    pub fn create(
        backend: &'a dyn StorageBackend,
        name: &str,
        config: MlocConfig,
    ) -> Result<Dataset<'a>> {
        config.validate()?;
        let catalog = Self::catalog_file(name);
        if backend.exists(&catalog) {
            return Err(MlocError::Invalid(format!("dataset {name} already exists")));
        }
        backend.create(&catalog)?;
        backend.append(&catalog, CATALOG_MAGIC)?;
        backend.append(&catalog, &encode_config(&config))?;
        backend.sync(&catalog)?;
        Ok(Dataset {
            backend,
            name: name.to_string(),
            config,
        })
    }

    /// Open an existing dataset: the configuration is stored in the
    /// catalog, so empty datasets open fine.
    pub fn open(backend: &'a dyn StorageBackend, name: &str) -> Result<Dataset<'a>> {
        let (config, _) = Self::read_header(backend, name)?;
        Ok(Dataset {
            backend,
            name: name.to_string(),
            config,
        })
    }

    fn read_header(backend: &dyn StorageBackend, name: &str) -> Result<(MlocConfig, usize)> {
        let file = Self::catalog_file(name);
        let len = backend.len(&file)?;
        let raw = backend.read(&file, 0, len)?;
        if !raw.starts_with(CATALOG_MAGIC) {
            return Err(MlocError::Corrupt("bad catalog magic"));
        }
        let (config, used) = decode_config(&raw[CATALOG_MAGIC.len()..])?;
        Ok((config, CATALOG_MAGIC.len() + used))
    }

    pub(crate) fn catalog_file(name: &str) -> String {
        format!("{name}/catalog")
    }

    fn read_catalog(backend: &dyn StorageBackend, name: &str) -> Result<Vec<String>> {
        let (_, header_len) = Self::read_header(backend, name)?;
        let file = Self::catalog_file(name);
        let len = backend.len(&file)?;
        let raw = backend.read(&file, 0, len)?;
        let body = std::str::from_utf8(&raw[header_len..])
            .map_err(|_| MlocError::Corrupt("catalog not utf-8"))?;
        // A registration is committed only once its newline lands; a
        // torn catalog append leaves an unterminated tail that must
        // not read back as a variable (repair truncates it).
        let committed = &body[..body.rfind('\n').map_or(0, |i| i + 1)];
        Ok(committed
            .lines()
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect())
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared per-variable configuration.
    pub fn config(&self) -> &MlocConfig {
        &self.config
    }

    /// Set the worker-thread count subsequent builds through this
    /// handle use (0 = one per core). A runtime knob: it is not
    /// persisted and never changes the bytes a build produces.
    pub fn set_build_threads(&mut self, threads: usize) {
        self.config.build_threads = threads;
    }

    /// Variables currently in the catalog (sorted by insertion).
    pub fn variables(&self) -> Result<Vec<String>> {
        Self::read_catalog(self.backend, &self.name)
    }

    /// Whether a variable exists.
    pub fn has_variable(&self, var: &str) -> bool {
        self.backend.exists(&fileorg::meta_file(&self.name, var))
    }

    /// Build and register a variable from row-major values.
    pub fn add_variable(&self, var: &str, values: &[f64]) -> Result<BuildReport> {
        Self::validate_var_name(var)?;
        if self.has_variable(var) {
            return Err(MlocError::Invalid(format!("variable {var} already exists")));
        }
        let report = build_variable(self.backend, &self.name, var, values, &self.config)?;
        // The catalog line is the registration record; it is synced so
        // the full durability chain is bins → meta → catalog. A crash
        // between the meta sync and this one leaves a complete but
        // unlisted variable, which `repair` reattaches.
        let catalog = Self::catalog_file(&self.name);
        self.backend
            .append(&catalog, format!("{var}\n").as_bytes())?;
        self.backend.sync(&catalog)?;
        Ok(report)
    }

    /// Build and register one time step of a variable (stored as
    /// `var@t`).
    pub fn add_timestep(&self, var: &str, step: u32, values: &[f64]) -> Result<BuildReport> {
        self.add_variable(&Self::timestep_name(var, step), values)
    }

    /// Start an *in-situ* build of a variable: chunks are pushed as a
    /// simulation emits them and the variable is registered in the
    /// catalog when the stream finishes.
    pub fn stream_variable(&self, var: &str, sample: &[f64]) -> Result<DatasetStream<'a>> {
        Self::validate_var_name(var)?;
        if self.has_variable(var) {
            return Err(MlocError::Invalid(format!("variable {var} already exists")));
        }
        let builder = StreamingBuilder::new(self.backend, &self.name, var, &self.config, sample)?;
        Ok(DatasetStream {
            builder,
            backend: self.backend,
            catalog: Self::catalog_file(&self.name),
            var: var.to_string(),
        })
    }

    /// Start an in-situ build of one time step (`var@t`).
    pub fn stream_timestep(
        &self,
        var: &str,
        step: u32,
        sample: &[f64],
    ) -> Result<DatasetStream<'a>> {
        self.stream_variable(&Self::timestep_name(var, step), sample)
    }

    /// The storage name of a variable at a time step.
    pub fn timestep_name(var: &str, step: u32) -> String {
        format!("{var}@{step}")
    }

    /// Time steps recorded for a variable, sorted ascending.
    pub fn timesteps(&self, var: &str) -> Result<Vec<u32>> {
        let prefix = format!("{var}@");
        let mut steps: Vec<u32> = self
            .variables()?
            .iter()
            .filter_map(|v| v.strip_prefix(&prefix).and_then(|s| s.parse().ok()))
            .collect();
        steps.sort_unstable();
        Ok(steps)
    }

    /// Open a variable for querying.
    pub fn store(&self, var: &str) -> Result<MlocStore<'a>> {
        MlocStore::open(self.backend, &self.name, var)
    }

    /// Open a variable at a time step.
    pub fn store_at(&self, var: &str, step: u32) -> Result<MlocStore<'a>> {
        self.store(&Self::timestep_name(var, step))
    }

    /// Cross-variable query: select positions on `selector_var` with a
    /// value constraint (optionally inside a region) and fetch
    /// `fetch_var`'s values there (paper §III-D.4).
    pub fn select_then_fetch(
        &self,
        selector_var: &str,
        fetch_var: &str,
        vc: (f64, f64),
        sc: Option<Region>,
        plod: PlodLevel,
        exec: &ParallelExecutor,
    ) -> Result<MultiVarResult> {
        let selector = self.store(selector_var)?;
        let fetch = self.store(fetch_var)?;
        select_then_fetch(&selector, &fetch, vc, sc, plod, exec)
    }

    /// Total stored bytes across the dataset's files, plus the number
    /// of files whose size could not be read. Unreadable files are
    /// counted as errors instead of silently sized at 0, so a faulty
    /// backend cannot under-report storage.
    pub fn stored_bytes_checked(&self) -> (u64, usize) {
        let prefix = format!("{}/", self.name);
        let mut total = 0u64;
        let mut errors = 0usize;
        for f in self.backend.list() {
            if !f.starts_with(&prefix) {
                continue;
            }
            match self.backend.len(&f) {
                Ok(n) => total += n,
                Err(_) => errors += 1,
            }
        }
        (total, errors)
    }

    /// Total stored bytes across the dataset's files. Files whose size
    /// cannot be read are excluded; use [`Self::stored_bytes_checked`]
    /// to detect that case.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes_checked().0
    }

    fn validate_var_name(var: &str) -> Result<()> {
        if var.is_empty()
            || !var
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '@' || c == '-')
        {
            return Err(MlocError::Invalid(format!(
                "variable name {var:?} must be non-empty [A-Za-z0-9_@-]"
            )));
        }
        Ok(())
    }
}

/// An in-flight in-situ build over a dataset: a [`StreamingBuilder`]
/// that registers the variable in the catalog on completion.
pub struct DatasetStream<'a> {
    builder: StreamingBuilder<'a>,
    backend: &'a dyn StorageBackend,
    catalog: String,
    var: String,
}

impl DatasetStream<'_> {
    /// Push one chunk (see [`StreamingBuilder::push_chunk`]).
    pub fn push_chunk(&mut self, chunk_id: usize, values: &[f64]) -> Result<()> {
        self.builder.push_chunk(chunk_id, values)
    }

    /// Push a wave of chunks, encoded across the worker pool (see
    /// [`StreamingBuilder::push_chunks`]).
    pub fn push_chunks(&mut self, batch: Vec<(usize, Vec<f64>)>) -> Result<()> {
        self.builder.push_chunks(batch)
    }

    /// Number of chunks pushed so far.
    pub fn chunks_pushed(&self) -> usize {
        self.builder.chunks_pushed()
    }

    /// The chunk geometry of the stream.
    pub fn grid(&self) -> &crate::array::ChunkGrid {
        self.builder.grid()
    }

    /// Finish the layout and register the variable.
    pub fn finish(self) -> Result<BuildReport> {
        let report = self.builder.finish()?;
        self.backend
            .append(&self.catalog, format!("{}\n", self.var).as_bytes())?;
        self.backend.sync(&self.catalog)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use mloc_pfs::MemBackend;

    fn config() -> MlocConfig {
        MlocConfig::builder(vec![32, 32])
            .chunk_shape(vec![8, 8])
            .num_bins(8)
            .build()
    }

    fn values(seed: u64) -> Vec<f64> {
        (0..1024)
            .map(|i| ((i as u64 * 31 + seed * 977) % 701) as f64)
            .collect()
    }

    #[test]
    fn create_add_open_roundtrip() {
        let be = MemBackend::new();
        let ds = Dataset::create(&be, "sim", config()).unwrap();
        ds.add_variable("temp", &values(1)).unwrap();
        ds.add_variable("pressure", &values(2)).unwrap();
        assert_eq!(ds.variables().unwrap(), vec!["temp", "pressure"]);
        assert!(ds.has_variable("temp"));
        assert!(!ds.has_variable("humidity"));

        let reopened = Dataset::open(&be, "sim").unwrap();
        assert_eq!(reopened.config(), ds.config());
        assert_eq!(reopened.variables().unwrap().len(), 2);
        assert!(reopened.stored_bytes() > 0);
    }

    #[test]
    fn duplicate_names_rejected() {
        let be = MemBackend::new();
        let ds = Dataset::create(&be, "sim", config()).unwrap();
        ds.add_variable("temp", &values(1)).unwrap();
        assert!(ds.add_variable("temp", &values(1)).is_err());
        assert!(Dataset::create(&be, "sim", config()).is_err());
        assert!(ds.add_variable("bad name", &values(1)).is_err());
        assert!(ds.add_variable("", &values(1)).is_err());
    }

    #[test]
    fn timesteps_sorted_and_queryable() {
        let be = MemBackend::new();
        let ds = Dataset::create(&be, "sim", config()).unwrap();
        for step in [3u32, 1, 2] {
            ds.add_timestep("temp", step, &values(step as u64)).unwrap();
        }
        assert_eq!(ds.timesteps("temp").unwrap(), vec![1, 2, 3]);
        let store = ds.store_at("temp", 2).unwrap();
        let res = store.query_serial(&Query::region(0.0, 100.0)).unwrap();
        let want = values(2).iter().filter(|&&v| v < 100.0).count();
        assert_eq!(res.len(), want);
    }

    #[test]
    fn cross_variable_query_through_dataset() {
        let be = MemBackend::new();
        let ds = Dataset::create(&be, "sim", config()).unwrap();
        let temp = values(5);
        let humid = values(9);
        ds.add_variable("temp", &temp).unwrap();
        ds.add_variable("humid", &humid).unwrap();
        let out = ds
            .select_then_fetch(
                "temp",
                "humid",
                (600.0, f64::MAX),
                None,
                PlodLevel::FULL,
                &ParallelExecutor::serial(),
            )
            .unwrap();
        let want: Vec<(u64, f64)> = temp
            .iter()
            .enumerate()
            .filter(|(_, &t)| t >= 600.0)
            .map(|(i, _)| (i as u64, humid[i]))
            .collect();
        assert!(!want.is_empty());
        assert_eq!(
            out.result.positions(),
            want.iter().map(|&(p, _)| p).collect::<Vec<_>>()
        );
        assert_eq!(
            out.result.values().unwrap(),
            want.iter().map(|&(_, v)| v).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streamed_variable_registers_on_finish() {
        let be = MemBackend::new();
        let ds = Dataset::create(&be, "sim", config()).unwrap();
        let vals = values(3);
        let mut stream = ds.stream_variable("temp", &vals).unwrap();
        assert!(!ds.has_variable("temp"));
        let grid = stream.grid().clone();
        for chunk in 0..grid.num_chunks() {
            let cv: Vec<f64> = grid
                .chunk_linear_indices(chunk)
                .iter()
                .map(|&l| vals[l as usize])
                .collect();
            stream.push_chunk(chunk, &cv).unwrap();
        }
        stream.finish().unwrap();
        assert!(ds.has_variable("temp"));
        assert_eq!(ds.variables().unwrap(), vec!["temp"]);
        // Queries see the streamed data.
        let store = ds.store("temp").unwrap();
        let res = store
            .query_serial(&Query::values_where(f64::MIN, f64::MAX))
            .unwrap();
        assert_eq!(res.len(), vals.len());
    }

    #[test]
    fn open_missing_dataset_fails() {
        let be = MemBackend::new();
        assert!(Dataset::open(&be, "nope").is_err());
    }
}
