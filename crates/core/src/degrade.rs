//! Graceful PLoD degradation: what a query lost, and how precise the
//! answer still is.
//!
//! PLoD splits each double into 7 byte-groups; only the first (the
//! sign/exponent/top-mantissa group) is required to reconstruct a
//! usable value. When a *non-base* byte-group extent is unreadable
//! after retries, the engine can drop that part and every part after
//! it for the affected chunk, reconstructing values at a coarser
//! precision level instead of failing the whole query. This module
//! carries the audit trail of that decision: which extents were lost,
//! which chunks were affected, and the worst-case relative error bound
//! the caller now lives under. Base-part, bitmap, index-header, and
//! footer losses are never degradable — those fail the query loudly.

use crate::config::PlodLevel;
use crate::plod;

/// One unreadable byte-group extent the engine worked around.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationEvent {
    /// Value bin of the affected unit.
    pub bin: usize,
    /// Chunk rank (layout order) within the bin.
    pub chunk_rank: usize,
    /// The PLoD part (1-based would be the level; this is the 0-based
    /// part index, always >= 1 — part 0 is never degradable) that was
    /// lost. Parts after it are dropped too.
    pub lost_part: usize,
    /// Points in the chunk reconstructed at reduced precision.
    pub points: u64,
    /// Why the extent was unreadable (exhausted retries, checksum
    /// mismatch, missing file, ...).
    pub reason: String,
}

/// Aggregate degradation outcome of one query (empty = full fidelity).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationReport {
    /// Every worked-around extent loss, in discovery order.
    pub events: Vec<DegradationEvent>,
}

impl DegradationReport {
    /// No degradation.
    pub fn none() -> Self {
        DegradationReport::default()
    }

    /// Whether any unit was reconstructed at reduced precision.
    pub fn is_degraded(&self) -> bool {
        !self.events.is_empty()
    }

    /// Total points returned at reduced precision. A unit — one
    /// `(bin, chunk_rank)` — counts once no matter how many events
    /// name it (a progressive ladder can lose several parts of the
    /// same unit across refinement steps).
    pub fn affected_points(&self) -> u64 {
        let mut seen = std::collections::BTreeMap::new();
        for e in &self.events {
            seen.entry((e.bin, e.chunk_rank))
                .and_modify(|p| *p = e.points.max(*p))
                .or_insert(e.points);
        }
        seen.values().sum()
    }

    /// The coarsest PLoD level any affected unit fell back to: the
    /// minimum lost part index equals the number of parts still used.
    /// `None` when nothing degraded.
    ///
    /// Engine-produced events always carry `lost_part` in `1..=6`; an
    /// out-of-range value (a hand-built or corrupted report merged in
    /// from elsewhere) maps fail-safe to the coarsest level rather
    /// than to `None` — a degraded report must never be mistaken for
    /// full fidelity.
    pub fn effective_level(&self) -> Option<PlodLevel> {
        let min_lost = self.events.iter().map(|e| e.lost_part).min()?;
        let level = if (1..usize::from(PlodLevel::FULL.level())).contains(&min_lost) {
            min_lost as u8
        } else {
            1
        };
        Some(PlodLevel::new(level).expect("clamped to a valid level"))
    }

    /// Worst-case relative error bound over all returned values given
    /// the degradation that occurred. `0.0` when — and only when —
    /// nothing degraded: [`Self::effective_level`] is total over
    /// non-empty reports, so a degraded result always reports a
    /// non-zero bound.
    pub fn error_bound(&self) -> f64 {
        self.effective_level()
            .map(plod::relative_error_bound)
            .unwrap_or(0.0)
    }

    /// Fold another report's events into this one, deduplicating by
    /// `(bin, chunk_rank)`: repeated losses of the same unit keep the
    /// event with the lowest lost part (the coarsest outcome governs
    /// the unit), so points are never double-counted.
    pub fn merge(&mut self, other: &DegradationReport) {
        for e in &other.events {
            match self
                .events
                .iter_mut()
                .find(|x| x.bin == e.bin && x.chunk_rank == e.chunk_rank)
            {
                Some(existing) => {
                    if e.lost_part < existing.lost_part {
                        *existing = e.clone();
                    }
                }
                None => self.events.push(e.clone()),
            }
        }
    }
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.is_degraded() {
            return write!(f, "full fidelity");
        }
        write!(
            f,
            "degraded: {} unit(s), {} point(s) at reduced precision, \
             worst effective level {}, relative error bound {:.3e}",
            self.events.len(),
            self.affected_points(),
            self.effective_level().map(|l| l.level()).unwrap_or(0),
            self.error_bound(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event_at(bin: usize, chunk_rank: usize, lost_part: usize, points: u64) -> DegradationEvent {
        DegradationEvent {
            bin,
            chunk_rank,
            lost_part,
            points,
            reason: "checksum mismatch".into(),
        }
    }

    fn event(lost_part: usize, points: u64) -> DegradationEvent {
        event_at(0, 3, lost_part, points)
    }

    #[test]
    fn empty_report_is_full_fidelity() {
        let r = DegradationReport::none();
        assert!(!r.is_degraded());
        assert_eq!(r.affected_points(), 0);
        assert_eq!(r.effective_level(), None);
        assert_eq!(r.error_bound(), 0.0);
        assert_eq!(r.to_string(), "full fidelity");
    }

    #[test]
    fn effective_level_is_worst_loss() {
        let mut r = DegradationReport::none();
        r.events.push(event_at(0, 1, 4, 100));
        r.events.push(event_at(0, 2, 2, 50));
        r.events.push(event_at(1, 1, 6, 10));
        assert!(r.is_degraded());
        assert_eq!(r.affected_points(), 160);
        assert_eq!(r.effective_level().unwrap().level(), 2);
        assert_eq!(
            r.error_bound(),
            plod::relative_error_bound(PlodLevel::new(2).unwrap())
        );
        assert!(r.to_string().contains("160 point(s)"));
    }

    #[test]
    fn merge_dedups_repeated_units() {
        // A progressive ladder can lose several parts of the same unit
        // across steps; the unit must count once, at its coarsest loss.
        let mut a = DegradationReport::none();
        a.events.push(event(3, 40));
        let mut b = DegradationReport::none();
        b.events.push(event(5, 40));
        b.events.push(event_at(2, 7, 4, 9));
        a.merge(&b);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.affected_points(), 49);
        assert_eq!(a.effective_level().unwrap().level(), 3);

        // The coarser loss wins regardless of merge order.
        let mut c = DegradationReport::none();
        c.events.push(event(5, 40));
        let mut d = DegradationReport::none();
        d.events.push(event(3, 40));
        c.merge(&d);
        assert_eq!(c.events.len(), 1);
        assert_eq!(c.events[0].lost_part, 3);
    }

    #[test]
    fn affected_points_counts_units_once() {
        let mut r = DegradationReport::none();
        r.events.push(event(4, 100));
        r.events.push(event(2, 100));
        r.events.push(event_at(5, 0, 3, 7));
        assert_eq!(r.affected_points(), 107);
    }

    #[test]
    fn error_bound_never_zero_while_degraded() {
        // An out-of-range lost part (reachable via merging hand-built
        // reports) used to make effective_level None and the bound 0.0
        // — claiming full fidelity for a degraded result. It now maps
        // to the coarsest representable bound.
        for bad_part in [0usize, 7, 9, 300] {
            let mut r = DegradationReport::none();
            r.events.push(event(bad_part, 5));
            assert!(r.is_degraded());
            assert_eq!(r.effective_level().unwrap().level(), 1, "part {bad_part}");
            assert_eq!(
                r.error_bound(),
                plod::relative_error_bound(PlodLevel::new(1).unwrap())
            );
            assert!(r.error_bound() > 0.0);
        }
        // A garbage event alongside a real one stays conservative: the
        // reported bound is at least the real loss's bound.
        let mut r = DegradationReport::none();
        r.events.push(event_at(0, 1, 0, 5));
        r.events.push(event_at(0, 2, 4, 5));
        assert!(r.error_bound() >= plod::relative_error_bound(PlodLevel::new(4).unwrap()));
    }
}
