//! Graceful PLoD degradation: what a query lost, and how precise the
//! answer still is.
//!
//! PLoD splits each double into 7 byte-groups; only the first (the
//! sign/exponent/top-mantissa group) is required to reconstruct a
//! usable value. When a *non-base* byte-group extent is unreadable
//! after retries, the engine can drop that part and every part after
//! it for the affected chunk, reconstructing values at a coarser
//! precision level instead of failing the whole query. This module
//! carries the audit trail of that decision: which extents were lost,
//! which chunks were affected, and the worst-case relative error bound
//! the caller now lives under. Base-part, bitmap, index-header, and
//! footer losses are never degradable — those fail the query loudly.

use crate::config::PlodLevel;
use crate::plod;

/// One unreadable byte-group extent the engine worked around.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationEvent {
    /// Value bin of the affected unit.
    pub bin: usize,
    /// Chunk rank (layout order) within the bin.
    pub chunk_rank: usize,
    /// The PLoD part (1-based would be the level; this is the 0-based
    /// part index, always >= 1 — part 0 is never degradable) that was
    /// lost. Parts after it are dropped too.
    pub lost_part: usize,
    /// Points in the chunk reconstructed at reduced precision.
    pub points: u64,
    /// Why the extent was unreadable (exhausted retries, checksum
    /// mismatch, missing file, ...).
    pub reason: String,
}

/// Aggregate degradation outcome of one query (empty = full fidelity).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationReport {
    /// Every worked-around extent loss, in discovery order.
    pub events: Vec<DegradationEvent>,
}

impl DegradationReport {
    /// No degradation.
    pub fn none() -> Self {
        DegradationReport::default()
    }

    /// Whether any unit was reconstructed at reduced precision.
    pub fn is_degraded(&self) -> bool {
        !self.events.is_empty()
    }

    /// Total points returned at reduced precision.
    pub fn affected_points(&self) -> u64 {
        self.events.iter().map(|e| e.points).sum()
    }

    /// The coarsest PLoD level any affected unit fell back to: the
    /// minimum lost part index equals the number of parts still used.
    /// `None` when nothing degraded.
    pub fn effective_level(&self) -> Option<PlodLevel> {
        let min_lost = self.events.iter().map(|e| e.lost_part).min()?;
        // lost_part >= 1 always, so this is a valid level.
        PlodLevel::new(min_lost as u8).ok()
    }

    /// Worst-case relative error bound over all returned values given
    /// the degradation that occurred. `0.0` when nothing degraded.
    pub fn error_bound(&self) -> f64 {
        self.effective_level()
            .map(plod::relative_error_bound)
            .unwrap_or(0.0)
    }

    /// Fold another report's events into this one.
    pub fn merge(&mut self, other: &DegradationReport) {
        self.events.extend(other.events.iter().cloned());
    }
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.is_degraded() {
            return write!(f, "full fidelity");
        }
        write!(
            f,
            "degraded: {} unit(s), {} point(s) at reduced precision, \
             worst effective level {}, relative error bound {:.3e}",
            self.events.len(),
            self.affected_points(),
            self.effective_level().map(|l| l.level()).unwrap_or(0),
            self.error_bound(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(lost_part: usize, points: u64) -> DegradationEvent {
        DegradationEvent {
            bin: 0,
            chunk_rank: 3,
            lost_part,
            points,
            reason: "checksum mismatch".into(),
        }
    }

    #[test]
    fn empty_report_is_full_fidelity() {
        let r = DegradationReport::none();
        assert!(!r.is_degraded());
        assert_eq!(r.affected_points(), 0);
        assert_eq!(r.effective_level(), None);
        assert_eq!(r.error_bound(), 0.0);
        assert_eq!(r.to_string(), "full fidelity");
    }

    #[test]
    fn effective_level_is_worst_loss() {
        let mut r = DegradationReport::none();
        r.events.push(event(4, 100));
        r.events.push(event(2, 50));
        r.events.push(event(6, 10));
        assert!(r.is_degraded());
        assert_eq!(r.affected_points(), 160);
        assert_eq!(r.effective_level().unwrap().level(), 2);
        assert_eq!(
            r.error_bound(),
            plod::relative_error_bound(PlodLevel::new(2).unwrap())
        );
        assert!(r.to_string().contains("160 point(s)"));
    }

    #[test]
    fn merge_concatenates_events() {
        let mut a = DegradationReport::none();
        a.events.push(event(3, 1));
        let mut b = DegradationReport::none();
        b.events.push(event(5, 2));
        a.merge(&b);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.effective_level().unwrap().level(), 3);
    }
}
