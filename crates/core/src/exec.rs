//! Parallel query execution over the MPI-like runtime.
//!
//! Mirrors the paper's Fig. 5 workflow: the plan's (bin, chunk) blocks
//! are assigned to ranks in *column order* (equal counts, fewest bin
//! files per rank), every rank fetches/decompresses/filters its blocks,
//! and the root gathers partial results. I/O time is charged by the
//! PFS simulator from the per-rank read traces; decompression and
//! reconstruction are measured.

use crate::metrics::QueryMetrics;
use crate::query::engine::{process_units, RankOutput, RefineUnit};
use crate::query::plan::{make_plan, Plan, WorkUnit};
use crate::query::{Query, QueryResult};
use crate::store::MlocStore;
use crate::Result;
use mloc_obs::{Collector, Label, Profile};
use mloc_pfs::{simulate_reads, CostModel, RankIo, ReadOp, RetryPolicy};
use mloc_runtime::{column_order, spmd};
use std::time::Instant;

/// Executes queries over `nranks` ranks with a PFS cost model.
///
/// Two execution modes produce identical results:
///
/// * **replay** (default): each rank's work is executed in turn on the
///   calling thread. Per-rank CPU component times are then exact even
///   on oversubscribed machines, which matters for the scalability
///   analysis (Fig. 7) where per-rank decompression time must reflect
///   that rank's own work, not time-slicing noise.
/// * **threaded**: ranks run concurrently on the MPI-like runtime
///   (`mloc-runtime`), with the root gathering partial results — the
///   paper's actual deployment shape.
#[derive(Debug, Clone)]
pub struct ParallelExecutor {
    nranks: usize,
    cost_model: CostModel,
    threaded: bool,
    retry: RetryPolicy,
    allow_degraded: bool,
}

impl ParallelExecutor {
    /// Single-rank executor with the default (Lens-like) cost model.
    pub fn serial() -> Self {
        ParallelExecutor {
            nranks: 1,
            cost_model: CostModel::default(),
            threaded: false,
            retry: RetryPolicy::none(),
            allow_degraded: true,
        }
    }

    /// Executor with an explicit rank count and cost model.
    pub fn new(nranks: usize, cost_model: CostModel) -> Self {
        assert!(nranks > 0);
        ParallelExecutor {
            nranks,
            cost_model,
            threaded: false,
            retry: RetryPolicy::none(),
            allow_degraded: true,
        }
    }

    /// Run ranks concurrently on the thread-backed runtime instead of
    /// deterministic replay.
    pub fn threaded(mut self, threaded: bool) -> Self {
        self.threaded = threaded;
        self
    }

    /// Retry transient storage errors per `policy` on every rank's
    /// reads (default: no retries). Backoff time is simulated and
    /// reported in [`QueryMetrics::retry_wait_s`], never slept.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Whether queries may complete at reduced PLoD precision when a
    /// non-base byte-group extent is unreadable after retries (default:
    /// true). When disabled, any unreadable extent fails the query.
    pub fn allow_degraded(mut self, allow: bool) -> Self {
        self.allow_degraded = allow;
        self
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The PFS cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// The retry policy applied to every rank's reads.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Whether degraded completion is allowed (see
    /// [`ParallelExecutor::allow_degraded`]).
    pub fn degradation_allowed(&self) -> bool {
        self.allow_degraded
    }

    /// Plan and execute a query.
    pub fn execute(
        &self,
        store: &MlocStore<'_>,
        query: &Query,
    ) -> Result<(QueryResult, QueryMetrics)> {
        let plan = make_plan(store, query)?;
        self.execute_plan(store, query, &plan, None)
    }

    /// Plan and execute a query with profiling on, additionally
    /// returning the merged per-rank [`Profile`].
    ///
    /// The profile's stage spans carry the *same* floats as the
    /// returned metrics (`io`/`rank/decompress`/`rank/reconstruct`
    /// `max_rank_seconds` equal `io_s`/`decompress_s`/`reconstruct_s`
    /// exactly), and per-rank collectors are merged in rank order, so
    /// replay and threaded modes yield structurally identical profiles.
    pub fn execute_profiled(
        &self,
        store: &MlocStore<'_>,
        query: &Query,
    ) -> Result<(QueryResult, QueryMetrics, Profile)> {
        let t = Instant::now();
        let plan = make_plan(store, query)?;
        let plan_s = t.elapsed().as_secs_f64();
        self.run_plan(store, query, &plan, None, true, Some(plan_s), false)
            .map(|(result, metrics, profile, _)| (result, metrics, profile))
    }

    /// Execute a pre-built plan, optionally restricting output to a
    /// set of global positions (multi-variable retrieval). The filter
    /// must be sorted ascending and duplicate-free; the engine
    /// intersects it with each unit's monotone position stream by
    /// galloping rather than hashing.
    pub fn execute_plan(
        &self,
        store: &MlocStore<'_>,
        query: &Query,
        plan: &Plan,
        position_filter: Option<&[u64]>,
    ) -> Result<(QueryResult, QueryMetrics)> {
        self.run_plan(store, query, plan, position_filter, false, None, false)
            .map(|(result, metrics, _, _)| (result, metrics))
    }

    /// [`ParallelExecutor::execute_plan`] with profiling on.
    pub fn execute_plan_profiled(
        &self,
        store: &MlocStore<'_>,
        query: &Query,
        plan: &Plan,
        position_filter: Option<&[u64]>,
    ) -> Result<(QueryResult, QueryMetrics, Profile)> {
        self.run_plan(store, query, plan, position_filter, true, None, false)
            .map(|(result, metrics, profile, _)| (result, metrics, profile))
    }

    /// Execute a pre-built plan while capturing per-unit refinement
    /// state for a progressive query (see
    /// [`crate::progressive::ProgressiveQuery`]). Captured units are
    /// returned in deterministic rank-merge order.
    pub(crate) fn execute_plan_capturing(
        &self,
        store: &MlocStore<'_>,
        query: &Query,
        plan: &Plan,
        profiled: bool,
    ) -> Result<(QueryResult, QueryMetrics, Profile, Vec<RefineUnit>)> {
        self.run_plan(store, query, plan, None, profiled, None, true)
    }

    #[allow(clippy::too_many_arguments)] // private dispatcher behind the typed entry points
    fn run_plan(
        &self,
        store: &MlocStore<'_>,
        query: &Query,
        plan: &Plan,
        position_filter: Option<&[u64]>,
        profiled: bool,
        plan_s: Option<f64>,
        capture: bool,
    ) -> Result<(QueryResult, QueryMetrics, Profile, Vec<RefineUnit>)> {
        let unit_bins: Vec<usize> = plan.units.iter().map(|u| u.bin).collect();
        let assignment = column_order(&unit_bins, self.nranks);
        let cache_stats_before = profiled.then(|| store.cache().map(|c| c.stats()));
        // Replica-masked reads are counted by the backend itself (the
        // router can't attribute them to ranks); take a delta so each
        // query reports only its own masks.
        let read_repairs_before = store.backend().read_repair_count();

        let run_rank = |rank: usize| -> Result<(RankOutput, Vec<ReadOp>, Vec<u64>, Profile)> {
            let my_units: Vec<WorkUnit> = assignment.per_rank[rank]
                .iter()
                .map(|&i| plan.units[i])
                .collect();
            let mut io = RankIo::with_retry(store.backend(), self.retry);
            let mut obs = Collector::new(profiled);
            obs.begin("rank");
            let mut out = process_units(
                store,
                query,
                &my_units,
                &mut io,
                position_filter,
                self.allow_degraded,
                capture,
                &mut obs,
            )?;
            obs.end();
            out.retries = io.retries();
            out.retry_wait_s = io.retry_wait_s();
            out.retries_exhausted = io.retries_exhausted();
            let depths = io.batch_depths().to_vec();
            Ok((out, io.into_trace(), depths, obs.finish()))
        };
        type RankRes = Result<(RankOutput, Vec<ReadOp>, Vec<u64>, Profile)>;
        let rank_results: Vec<RankRes> = if self.threaded {
            spmd(self.nranks, |comm| run_rank(comm.rank()))
        } else {
            (0..self.nranks).map(run_rank).collect()
        };

        let mut outputs = Vec::with_capacity(self.nranks);
        let mut traces = Vec::with_capacity(self.nranks);
        let mut batch_depths = Vec::new();
        let mut profile = Profile::default();
        if let Some(s) = plan_s {
            profile.record_path(&["plan"], s);
        }
        // Rank order is the merge order in both executor modes — this
        // is what makes replay and threaded profiles identical.
        for r in rank_results {
            let (out, trace, depths, rank_profile) = r?;
            outputs.push(out);
            traces.push(trace);
            batch_depths.extend(depths);
            profile.merge_from(rank_profile);
        }

        let sim = simulate_reads(&traces, &self.cost_model);

        let mut metrics = QueryMetrics {
            nranks: self.nranks,
            bins_touched: plan.bins_touched,
            aligned_bins: plan.aligned_bins,
            chunks_touched: plan.chunks_touched,
            seeks: sim.total_seeks,
            per_rank_io: sim.per_rank_seconds.clone(),
            ..Default::default()
        };
        let mut gather = Collector::new(profiled);
        gather.begin("gather");
        let mut positions = Vec::new();
        let mut values = Vec::new();
        let mut refine_units = Vec::new();
        for (rank, out) in outputs.into_iter().enumerate() {
            let cpu = out.decompress_s + out.reconstruct_s;
            let io = sim.per_rank_seconds[rank];
            metrics.per_rank_cpu.push(cpu);
            metrics.io_s = metrics.io_s.max(io);
            metrics.decompress_s = metrics.decompress_s.max(out.decompress_s);
            metrics.reconstruct_s = metrics.reconstruct_s.max(out.reconstruct_s);
            metrics.response_s = metrics.response_s.max(io + cpu);
            metrics.index_bytes += out.index_bytes;
            metrics.data_bytes += out.data_bytes;
            metrics.cache_hits += out.cache_hits;
            metrics.cache_misses += out.cache_misses;
            metrics.bytes_saved += out.bytes_saved;
            metrics.fused_reads += out.fused_reads;
            metrics.fused_bytes_saved += out.fused_bytes;
            metrics.retries += out.retries;
            metrics.retry_wait_s = metrics.retry_wait_s.max(out.retry_wait_s);
            metrics.retries_exhausted += out.retries_exhausted;
            metrics.degraded_units += out.degradation.events.len() as u64;
            metrics.degradation.merge(&out.degradation);
            positions.extend(out.positions);
            values.extend(out.values);
            refine_units.extend(out.refine_units);
        }
        metrics.bytes_read = metrics.index_bytes + metrics.data_bytes;
        metrics.read_repairs = store
            .backend()
            .read_repair_count()
            .saturating_sub(read_repairs_before);
        gather.end();

        if profiled {
            // Simulated I/O is attributed per rank after the fact: the
            // span's max-over-ranks equals `metrics.io_s` exactly.
            profile.record_over_ranks(&["io"], &sim.per_rank_seconds);
            let per = |f: fn(&mloc_pfs::RankIoBreakdown) -> f64| -> Vec<f64> {
                sim.per_rank.iter().map(f).collect()
            };
            profile.record_over_ranks(&["io", "seek"], &per(|b| b.seek_s));
            profile.record_over_ranks(&["io", "open"], &per(|b| b.open_s));
            profile.record_over_ranks(&["io", "transfer"], &per(|b| b.transfer_s));
            profile.merge_from(gather.finish());
            profile.add_counter("io.bytes", Label::None, sim.total_bytes);
            profile.add_counter("io.seeks", Label::None, sim.total_seeks);
            profile.add_counter("io.opens", Label::None, sim.total_opens);
            for (rank, b) in sim.per_rank.iter().enumerate() {
                profile.add_counter("rank.io.bytes", Label::Index(rank as u32), b.bytes);
            }
            profile.add_counter("plan.units", Label::None, plan.units.len() as u64);
            profile.add_counter("plan.bins", Label::None, plan.bins_touched as u64);
            profile.add_counter("plan.aligned_bins", Label::None, plan.aligned_bins as u64);
            profile.add_counter("plan.chunks", Label::None, plan.chunks_touched as u64);
            if metrics.retries > 0 {
                profile.add_counter("pfs.retries", Label::None, metrics.retries);
            }
            if metrics.retries_exhausted > 0 {
                profile.add_counter(
                    "io.retries_exhausted",
                    Label::None,
                    metrics.retries_exhausted,
                );
            }
            if metrics.read_repairs > 0 {
                profile.add_counter("io.read_repair", Label::None, metrics.read_repairs);
            }
            // Submission-queue shape: how many batches went down and
            // how deep each one was.
            if !batch_depths.is_empty() {
                profile.add_counter("io.batches", Label::None, batch_depths.len() as u64);
                let h = profile.histogram_mut("io.batch_depth", Label::None);
                for &d in &batch_depths {
                    h.observe(d as f64);
                }
            }
            // Per-shard PFS breakdown: attribute every traced op to the
            // shard that owns its file (sharded backends only).
            let backend = store.backend();
            if backend.shard_count() > 1 {
                for op in traces.iter().flatten().filter(|op| !op.cached) {
                    let shard = backend.shard_of(&op.file) as u32;
                    profile.add_counter("pfs.shard.reads", Label::Index(shard), 1);
                    profile.add_counter("pfs.shard.bytes", Label::Index(shard), op.len);
                }
            }
            if metrics.fused_reads > 0 {
                profile.add_counter("fusion.reads", Label::None, metrics.fused_reads);
                profile.add_counter("fusion.bytes_saved", Label::None, metrics.fused_bytes_saved);
            }
            if metrics.degraded_units > 0 {
                profile.add_counter("degraded.units", Label::None, metrics.degraded_units);
            }
            // Shared-cache churn over the whole query (insert/evict are
            // cache-wide, unlike the per-rank hit/miss counters).
            if let (Some(Some(before)), Some(cache)) = (cache_stats_before, store.cache()) {
                let after = cache.stats();
                profile.add_counter(
                    "cache.insertions",
                    Label::None,
                    after.insertions - before.insertions,
                );
                profile.add_counter(
                    "cache.evictions",
                    Label::None,
                    after.evictions - before.evictions,
                );
                profile.add_counter("cache.resident_bytes", Label::None, after.resident_bytes);
                profile.add_counter("cache.resident_blocks", Label::None, after.resident_blocks);
            }
        }

        let result = QueryResult::from_parts(positions, query.wants_values().then_some(values));
        Ok((result, metrics, profile, refine_units))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Region;
    use crate::build::build_variable;
    use crate::config::MlocConfig;
    use mloc_pfs::MemBackend;

    fn fixture(be: &MemBackend) -> (Vec<f64>, MlocStore<'_>) {
        // Deterministic but non-trivial values over a 64x64 grid.
        let values: Vec<f64> = (0..4096).map(|i| ((i * 37) % 4096) as f64 * 0.25).collect();
        let config = MlocConfig::builder(vec![64, 64])
            .chunk_shape(vec![16, 16])
            .num_bins(10)
            .build();
        build_variable(be, "ds", "v", &values, &config).unwrap();
        let store = MlocStore::open(be, "ds", "v").unwrap();
        (values, store)
    }

    fn naive_region(values: &[f64], lo: f64, hi: f64) -> Vec<u64> {
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= lo && v < hi)
            .map(|(i, _)| i as u64)
            .collect()
    }

    #[test]
    fn region_query_matches_naive_scan() {
        let be = MemBackend::new();
        let (values, store) = fixture(&be);
        for (lo, hi) in [
            (10.0, 50.0),
            (0.0, 1024.0),
            (900.0, 901.0),
            (2000.0, 1000.0),
        ] {
            let q = Query::region(lo, hi);
            let (res, metrics) = store.query_with_metrics(&q).unwrap();
            assert_eq!(
                res.positions(),
                naive_region(&values, lo, hi),
                "vc [{lo},{hi})"
            );
            assert!(res.values().is_none());
            if lo < hi {
                assert!(metrics.io_s > 0.0);
            }
        }
    }

    #[test]
    fn value_query_matches_naive_scan() {
        let be = MemBackend::new();
        let (values, store) = fixture(&be);
        let region = Region::new(vec![(5, 30), (10, 50)]);
        let q = Query::values_in(region.clone());
        let (res, _) = store.query_with_metrics(&q).unwrap();

        let mut want: Vec<(u64, f64)> = Vec::new();
        for r in 5..30 {
            for c in 10..50 {
                let lin = (r * 64 + c) as u64;
                want.push((lin, values[lin as usize]));
            }
        }
        want.sort_unstable_by_key(|&(p, _)| p);
        assert_eq!(res.len(), want.len());
        assert_eq!(
            res.positions(),
            want.iter().map(|&(p, _)| p).collect::<Vec<_>>()
        );
        assert_eq!(
            res.values().unwrap(),
            want.iter().map(|&(_, v)| v).collect::<Vec<_>>()
        );
    }

    #[test]
    fn combined_vc_sc_query() {
        let be = MemBackend::new();
        let (values, store) = fixture(&be);
        let region = Region::new(vec![(0, 32), (0, 64)]);
        let q = Query::values_where(100.0, 400.0).with_region(region);
        let (res, _) = store.query_with_metrics(&q).unwrap();
        let want: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i / 64 < 32 && (100.0..400.0).contains(&v))
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(res.positions(), want);
        for (&p, &v) in res.positions().iter().zip(res.values().unwrap()) {
            assert_eq!(v, values[p as usize]);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let be = MemBackend::new();
        let (_, store) = fixture(&be);
        let q = Query::values_where(50.0, 800.0);
        let (serial, _) = ParallelExecutor::serial().execute(&store, &q).unwrap();
        for nranks in [2, 4, 8] {
            let exec = ParallelExecutor::new(nranks, CostModel::default());
            let (par, metrics) = exec.execute(&store, &q).unwrap();
            assert_eq!(par, serial, "nranks {nranks}");
            assert_eq!(metrics.nranks, nranks);
            assert_eq!(metrics.per_rank_io.len(), nranks);
        }
    }

    #[test]
    fn threaded_matches_replay() {
        let be = MemBackend::new();
        let (_, store) = fixture(&be);
        let q = Query::values_where(10.0, 600.0);
        let replay = ParallelExecutor::new(4, CostModel::default());
        let threaded = replay.clone().threaded(true);
        let (a, ma) = replay.execute(&store, &q).unwrap();
        let (b, mb) = threaded.execute(&store, &q).unwrap();
        assert_eq!(a, b);
        // Simulated I/O is trace-driven and identical in both modes.
        assert_eq!(ma.io_s, mb.io_s);
        assert_eq!(ma.bytes_read, mb.bytes_read);
    }

    #[test]
    fn aligned_bins_skip_data_reads() {
        let be = MemBackend::new();
        let (_, store) = fixture(&be);
        // Wide VC: most bins aligned, little data read.
        let q = Query::region(100.0, 900.0);
        let (_, metrics) = store.query_with_metrics(&q).unwrap();
        assert!(metrics.aligned_bins > 0);
        // A narrow VC inside one bin reads data for that bin only.
        let q2 = Query::region(500.0, 505.0);
        let (_, m2) = store.query_with_metrics(&q2).unwrap();
        assert!(m2.bins_touched <= 2);
        // Data bytes for the narrow query come only from boundary bins,
        // strictly fewer than the wide query's misaligned reads.
        assert!(
            m2.data_bytes < metrics.data_bytes,
            "narrow {} vs wide {}",
            m2.data_bytes,
            metrics.data_bytes
        );
    }

    #[test]
    fn empty_result_is_ok() {
        let be = MemBackend::new();
        let (_, store) = fixture(&be);
        let q = Query::region(1e9, 2e9);
        let (res, _) = store.query_with_metrics(&q).unwrap();
        // The top bin is a candidate (clamping) but nothing matches.
        assert!(res.is_empty());
    }

    #[test]
    fn position_filter_restricts_output() {
        let be = MemBackend::new();
        let (values, store) = fixture(&be);
        let q = Query::values_in(Region::full(&[64, 64]));
        let plan = crate::query::plan::make_plan(&store, &q).unwrap();
        let filter = [3u64, 77, 4000];
        let (res, _) = ParallelExecutor::serial()
            .execute_plan(&store, &q, &plan, Some(&filter))
            .unwrap();
        assert_eq!(res.positions(), &[3, 77, 4000]);
        assert_eq!(
            res.values().unwrap(),
            &[values[3], values[77], values[4000]]
        );
    }
}
