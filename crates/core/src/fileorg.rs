//! File organization on the parallel file system (paper §III-C).
//!
//! MLOC stores each bin's compressed data and its index in *separate
//! files* ("subfiling"): files are large enough to amortize metadata
//! costs yet small enough to manage, reads are lock-free because query
//! files are read-only, and chunk sizes are advised so the smallest
//! accessed unit stays within one PFS stripe.

/// Name of the per-variable metadata file.
pub fn meta_file(dataset: &str, var: &str) -> String {
    format!("{dataset}/{var}/meta")
}

/// Name of the data file of one bin.
pub fn data_file(dataset: &str, var: &str, bin: usize) -> String {
    format!("{dataset}/{var}/bin{bin:04}.dat")
}

/// Name of the index file of one bin.
pub fn index_file(dataset: &str, var: &str, bin: usize) -> String {
    format!("{dataset}/{var}/bin{bin:04}.idx")
}

/// Advise a chunk shape for a domain so that, with ~100 bins and the
/// PLoD split, the smallest accessed unit (one chunk's bytes within
/// one bin within one byte group) stays below one stripe while chunks
/// remain large enough to stream efficiently.
///
/// Targets ~32 stripes of raw data per chunk, with power-of-two sides
/// clamped to the domain (the paper uses 2048² for its 2-D dataset and
/// 128³ for its 3-D dataset at 1 MiB stripes, which this reproduces).
pub fn advise_chunk_shape(shape: &[usize], stripe_size: u64) -> Vec<usize> {
    assert!(!shape.is_empty());
    let dims = shape.len() as f64;
    let target_points = (stripe_size.max(1) * 32 / 8) as f64;
    let side = target_points.powf(1.0 / dims);
    // Round down to a power of two, at least 1.
    let pow2 = 1usize << (side.max(1.0).log2().floor() as u32);
    shape.iter().map(|&e| pow2.min(e).max(1)).collect()
}

/// Number of subfiles a dataset will create (bins × {data, index} plus
/// the metadata file) — used by capacity planning in reports.
pub fn num_files(num_bins: usize) -> usize {
    num_bins * 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(meta_file("ds", "temp"), "ds/temp/meta");
        assert_eq!(data_file("ds", "temp", 3), "ds/temp/bin0003.dat");
        assert_eq!(index_file("ds", "temp", 42), "ds/temp/bin0042.idx");
    }

    #[test]
    fn advice_matches_paper_scales() {
        // 2-D at 1 MiB stripes → 2048 per side.
        assert_eq!(
            advise_chunk_shape(&[262_144, 262_144], 1 << 20),
            vec![2048, 2048]
        );
        // 3-D at 1 MiB stripes → 128..256 per side (paper used 128³).
        let c3 = advise_chunk_shape(&[4096, 4096, 4096], 1 << 20);
        assert!(c3.iter().all(|&s| s == 128 || s == 256), "{c3:?}");
    }

    #[test]
    fn advice_clamps_to_domain() {
        assert_eq!(advise_chunk_shape(&[100, 20], 1 << 20), vec![100, 20]);
        assert_eq!(advise_chunk_shape(&[1], 1 << 20), vec![1]);
    }

    #[test]
    fn file_count() {
        assert_eq!(num_files(100), 201);
    }
}
