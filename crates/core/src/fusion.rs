//! Cross-query extent fusion: one physical read serves every
//! concurrently admitted session that wants an overlapping extent.
//!
//! The query engine already coalesces each rank's `(offset, len)`
//! wants into merged runs ([`plan_runs`]) and hands out [`ByteView`]s
//! into the shared run buffer. Fusion extends that sharing *across*
//! sessions: an [`ExtentFuser`] keeps an admission-window table of
//! extents that are in flight or already read, so a run that equals or
//! is contained in another session's run is served from the same
//! `Arc`-backed buffer instead of touching the PFS again.
//!
//! Three rules make this safe and deterministic (see `DESIGN.md` §13):
//!
//! * **Single flight.** The first session to want an extent registers
//!   it and performs the read; concurrent sessions wanting a contained
//!   range block on that read and share its buffer. Waiters only ever
//!   wait on an active physical read, never on each other, so there is
//!   no wait cycle and no deadlock.
//! * **Window persistence.** Completed reads stay in the table for the
//!   rest of the admission window (bounded by a byte budget), so
//!   whether a session fuses depends on *what* was read this window,
//!   not on thread timing. [`ExtentFuser::begin_window`] starts the
//!   next window.
//! * **Fail loudly, fail everyone.** A leader whose read fails
//!   publishes the failure; every waiter (and the leader itself) falls
//!   back to its own per-want reads, so all sessions observe the same
//!   per-want outcome. A fused buffer is CRC-verified once per
//!   physical read ([`ExtentFooter`]); the verification verdict is
//!   shared only after a *success* — a failed check is re-raised for
//!   every session that touches the extent.
//!
//! Like the block cache, fusion relies on built variables being
//! immutable: two reads of the same extent always see the same bytes,
//! so sharing buffers and verification verdicts within a window can
//! never mask a change.

use crate::cache::ByteView;
use crate::integrity::ExtentFooter;
use crate::{MlocError, Result};
use mloc_pfs::{RankIo, ReadRequest};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Reads closer together than this are merged into one request —
/// mirroring what a real PFS client's readahead would do anyway.
pub const COALESCE_GAP: u64 = 4096;

/// One merged read: the half-open byte range `[start, end)` and the
/// indices of the wants it serves, in offset order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WantRun {
    /// First byte of the merged extent.
    pub start: u64,
    /// One past the last byte of the merged extent.
    pub end: u64,
    /// Indices into the original want list, sorted by `(offset, len)`.
    pub wants: Vec<usize>,
}

/// Merge `(offset, len)` wants into the minimal set of runs whose
/// members are within `gap` bytes of the growing run end.
///
/// Zero-length wants are skipped (they resolve to the shared empty
/// view without a read). Every nonzero want lands in exactly one run,
/// runs are sorted and separated by more than `gap` bytes, and each
/// run's bounds are exactly the min offset / max end of its members —
/// the properties the fusion proptests pin down.
pub fn plan_runs(wants: &[(u64, u32)], gap: u64) -> Vec<WantRun> {
    let mut order: Vec<usize> = (0..wants.len()).filter(|&i| wants[i].1 > 0).collect();
    order.sort_unstable_by_key(|&i| wants[i]);
    let mut runs: Vec<WantRun> = Vec::new();
    for i in order {
        let (off, len) = wants[i];
        let end = off + u64::from(len);
        match runs.last_mut() {
            Some(r) if off <= r.end + gap => {
                r.end = r.end.max(end);
                r.wants.push(i);
            }
            _ => runs.push(WantRun {
                start: off,
                end,
                wants: vec![i],
            }),
        }
    }
    runs
}

/// How a merged run was satisfied.
#[derive(Debug)]
pub struct FusedExtent {
    /// The shared buffer, or `None` when the physical read failed (the
    /// caller falls back to per-want reads).
    pub buf: Option<Arc<Vec<u8>>>,
    /// File offset of `buf[0]` — the fused buffer may start before the
    /// requested range when a containing extent served it.
    pub base: u64,
    /// Whether another session's physical read served this call.
    pub fused: bool,
}

/// Counters over the fuser's lifetime (never reset by
/// [`ExtentFuser::begin_window`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Physical reads performed by leaders.
    pub physical_reads: u64,
    /// Bytes those physical reads fetched.
    pub physical_bytes: u64,
    /// Runs served from another session's read.
    pub fused_reads: u64,
    /// Bytes of requested ranges served without a physical read.
    pub fused_bytes: u64,
    /// Leader reads that failed (each fans out as a per-want fallback).
    pub failed_reads: u64,
    /// Per-want CRC checks skipped because the same extent already
    /// verified clean this window.
    pub verify_skips: u64,
}

/// Result of a leader's physical read, published to its waiters.
enum FlightResult {
    Pending,
    Ready(Arc<Vec<u8>>),
    Failed,
}

/// Rendezvous between one leader and its waiters.
struct Flight {
    result: Mutex<FlightResult>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            result: Mutex::new(FlightResult::Pending),
            cv: Condvar::new(),
        })
    }

    fn publish(&self, result: FlightResult) {
        *lock(&self.result) = result;
        self.cv.notify_all();
    }

    /// Block until the leader publishes; `None` means its read failed.
    fn wait(&self) -> Option<Arc<Vec<u8>>> {
        let mut r = lock(&self.result);
        loop {
            match &*r {
                FlightResult::Pending => {
                    r = self
                        .cv
                        .wait(r)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                }
                FlightResult::Ready(buf) => return Some(Arc::clone(buf)),
                FlightResult::Failed => return None,
            }
        }
    }
}

/// Publishes `Failed` if the leader unwinds before publishing, so
/// waiters are never stranded on a leader that panicked mid-read.
struct FlightGuard<'a> {
    flight: &'a Flight,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.flight.publish(FlightResult::Failed);
        }
    }
}

enum SlotState {
    InFlight(Arc<Flight>),
    Done(Arc<Vec<u8>>),
    Failed,
}

/// Outcome of [`ExtentFuser::acquire`]: resolved from the window, wait
/// on another session's flight, or lead the physical read yourself.
enum Acquire {
    Ready(FusedExtent),
    Wait(Arc<Flight>, u64),
    Lead(Arc<Flight>),
}

struct Extent {
    start: u64,
    end: u64,
    /// Insertion order, for oldest-first eviction.
    seq: u64,
    state: SlotState,
}

#[derive(Default)]
struct FuserState {
    /// Per-file extents of the current admission window.
    extents: HashMap<String, Vec<Extent>>,
    /// Bytes held by `Done` extents.
    resident: u64,
    seq: u64,
}

/// Lock a mutex, surviving a poisoned lock (a panicking session must
/// not take the whole server's fusion window down with it).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The admission-window extent table shared by concurrently admitted
/// sessions. Attach one to every [`crate::MlocStore`] of a window via
/// [`crate::MlocStore::with_fusion`]; call [`ExtentFuser::begin_window`]
/// between windows.
pub struct ExtentFuser {
    window_bytes: u64,
    state: Mutex<FuserState>,
    /// Extents whose CRC verified clean this window, per file.
    verified: Mutex<HashMap<String, HashSet<(u64, u32)>>>,
    physical_reads: AtomicU64,
    physical_bytes: AtomicU64,
    fused_reads: AtomicU64,
    fused_bytes: AtomicU64,
    failed_reads: AtomicU64,
    verify_skips: AtomicU64,
}

impl std::fmt::Debug for ExtentFuser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtentFuser")
            .field("window_bytes", &self.window_bytes)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ExtentFuser {
    /// A fuser whose completed-read window retains up to
    /// `window_bytes` of extent buffers (the newest extent may
    /// transiently exceed the budget rather than being unsharable).
    pub fn with_window_bytes(window_bytes: u64) -> Self {
        ExtentFuser {
            window_bytes,
            state: Mutex::new(FuserState::default()),
            verified: Mutex::new(HashMap::new()),
            physical_reads: AtomicU64::new(0),
            physical_bytes: AtomicU64::new(0),
            fused_reads: AtomicU64::new(0),
            fused_bytes: AtomicU64::new(0),
            failed_reads: AtomicU64::new(0),
            verify_skips: AtomicU64::new(0),
        }
    }

    /// [`ExtentFuser::with_window_bytes`] in mebibytes.
    pub fn with_window_mb(mb: u64) -> Self {
        ExtentFuser::with_window_bytes(mb * 1024 * 1024)
    }

    /// The completed-read retention budget.
    pub fn window_bytes(&self) -> u64 {
        self.window_bytes
    }

    /// Start a new admission window: drop every retained extent and
    /// every shared verification verdict. Counters are cumulative and
    /// survive the rotation.
    pub fn begin_window(&self) {
        let mut st = lock(&self.state);
        st.extents.clear();
        st.resident = 0;
        lock(&self.verified).clear();
    }

    /// Lifetime counters.
    pub fn stats(&self) -> FusionStats {
        FusionStats {
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_bytes: self.physical_bytes.load(Ordering::Relaxed),
            fused_reads: self.fused_reads.load(Ordering::Relaxed),
            fused_bytes: self.fused_bytes.load(Ordering::Relaxed),
            failed_reads: self.failed_reads.load(Ordering::Relaxed),
            verify_skips: self.verify_skips.load(Ordering::Relaxed),
        }
    }

    /// Whether `[off, off+len)` of `file` already CRC-verified clean
    /// this window.
    pub fn was_verified(&self, file: &str, off: u64, len: u32) -> bool {
        lock(&self.verified)
            .get(file)
            .is_some_and(|s| s.contains(&(off, len)))
    }

    /// Record a successful CRC check so later sessions sharing the
    /// same immutable bytes can skip it. Never called on failure: a
    /// failed check must fail every session that reads the extent.
    pub fn note_verified(&self, file: &str, off: u64, len: u32) {
        lock(&self.verified)
            .entry(file.to_string())
            .or_default()
            .insert((off, len));
    }

    fn count_skip(&self) {
        self.verify_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// First phase of a fused read: under one table lock, either
    /// resolve `[start, end)` from the window (done/failed), pick up
    /// the flight to wait on, or register this session as the leader.
    /// Splitting acquisition from the physical read lets a session
    /// acquire a whole window of runs, service every run it leads in
    /// **one** submitted batch, publish, and only then wait on other
    /// sessions' flights — leaders never wait before publishing, so
    /// two sessions leading each other's runs cannot deadlock.
    fn acquire(&self, file: &str, start: u64, end: u64) -> Acquire {
        let mut st = lock(&self.state);
        let found = st
            .extents
            .get(file)
            .and_then(|v| v.iter().find(|e| e.start <= start && end <= e.end));
        match found {
            Some(e) => match &e.state {
                SlotState::Done(buf) => {
                    self.fused_reads.fetch_add(1, Ordering::Relaxed);
                    self.fused_bytes.fetch_add(end - start, Ordering::Relaxed);
                    Acquire::Ready(FusedExtent {
                        buf: Some(Arc::clone(buf)),
                        base: e.start,
                        fused: true,
                    })
                }
                SlotState::Failed => Acquire::Ready(FusedExtent {
                    buf: None,
                    base: start,
                    fused: true,
                }),
                SlotState::InFlight(f) => Acquire::Wait(Arc::clone(f), e.start),
            },
            None => {
                let flight = Flight::new();
                let seq = st.seq;
                st.seq += 1;
                st.extents
                    .entry(file.to_string())
                    .or_default()
                    .push(Extent {
                        start,
                        end,
                        seq,
                        state: SlotState::InFlight(Arc::clone(&flight)),
                    });
                Acquire::Lead(flight)
            }
        }
    }

    /// Leader's second phase: publish the read's outcome to waiters,
    /// settle the table slot, and account the physical read.
    fn finish_lead(
        &self,
        file: &str,
        start: u64,
        end: u64,
        flight: &Arc<Flight>,
        buf: &Option<Arc<Vec<u8>>>,
    ) {
        flight.publish(match buf {
            Some(b) => FlightResult::Ready(Arc::clone(b)),
            None => FlightResult::Failed,
        });
        self.settle(file, start, end, flight, buf);
        match buf {
            Some(b) => {
                self.physical_reads.fetch_add(1, Ordering::Relaxed);
                self.physical_bytes
                    .fetch_add(b.len() as u64, Ordering::Relaxed);
            }
            None => {
                self.failed_reads.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Waiter's second phase: block on the leader's flight and account
    /// the fusion when it delivered bytes.
    fn finish_wait(&self, flight: &Flight, start: u64, end: u64) -> Option<Arc<Vec<u8>>> {
        let buf = flight.wait();
        if buf.is_some() {
            self.fused_reads.fetch_add(1, Ordering::Relaxed);
            self.fused_bytes.fetch_add(end - start, Ordering::Relaxed);
        }
        buf
    }

    /// Acquire `[start, end)` of `file`: fuse with an in-flight or
    /// completed read that contains the range, or become the leader
    /// and perform `read` (which should return `None` on failure after
    /// its own retries). Waiters block only while a leader's physical
    /// read is in progress.
    pub fn read_extent<F>(&self, file: &str, start: u64, end: u64, read: F) -> FusedExtent
    where
        F: FnOnce() -> Option<Arc<Vec<u8>>>,
    {
        match self.acquire(file, start, end) {
            Acquire::Ready(r) => r,
            Acquire::Wait(flight, base) => FusedExtent {
                buf: self.finish_wait(&flight, start, end),
                base,
                fused: true,
            },
            Acquire::Lead(flight) => {
                let mut guard = FlightGuard {
                    flight: &flight,
                    armed: true,
                };
                let buf = read();
                guard.armed = false;
                drop(guard);
                self.finish_lead(file, start, end, &flight, &buf);
                FusedExtent {
                    buf,
                    base: start,
                    fused: false,
                }
            }
        }
    }

    /// Swap the leader's in-flight slot for its outcome and evict
    /// oldest completed extents beyond the window budget.
    fn settle(
        &self,
        file: &str,
        start: u64,
        end: u64,
        flight: &Arc<Flight>,
        buf: &Option<Arc<Vec<u8>>>,
    ) {
        let mut st = lock(&self.state);
        let Some(v) = st.extents.get_mut(file) else {
            return; // window rotated underneath the read
        };
        let Some(e) = v.iter_mut().find(|e| {
            e.start == start
                && e.end == end
                && matches!(&e.state, SlotState::InFlight(f) if Arc::ptr_eq(f, flight))
        }) else {
            return;
        };
        let new_seq = e.seq;
        match buf {
            Some(b) => {
                e.state = SlotState::Done(Arc::clone(b));
                st.resident += (end - start).max(b.len() as u64);
            }
            None => e.state = SlotState::Failed,
        }
        while st.resident > self.window_bytes {
            // Oldest completed extent other than the one just settled.
            let mut oldest: Option<(String, u64, u64)> = None; // file, seq, bytes
            for (f, exts) in st.extents.iter() {
                for e in exts {
                    if let SlotState::Done(b) = &e.state {
                        if e.seq != new_seq && oldest.as_ref().is_none_or(|(_, s, _)| e.seq < *s) {
                            oldest =
                                Some((f.clone(), e.seq, (e.end - e.start).max(b.len() as u64)));
                        }
                    }
                }
            }
            let Some((f, seq, bytes)) = oldest else { break };
            if let Some(exts) = st.extents.get_mut(&f) {
                exts.retain(|e| e.seq != seq);
                if exts.is_empty() {
                    st.extents.remove(&f);
                }
            }
            st.resident = st.resident.saturating_sub(bytes);
        }
    }
}

/// One want's outcome from [`coalesced_read_results`].
#[derive(Debug)]
pub struct WantRead {
    /// The verified view, or the per-want failure.
    pub res: Result<ByteView>,
    /// Whether another session's physical read served this want (the
    /// engine excludes fused wants from `bytes_read` and counts them
    /// in `fused_bytes_saved` instead).
    pub fused: bool,
}

/// Check one run-buffer want against the file's checksum footer,
/// sharing successful verdicts through the fuser.
fn verify_run_want(
    footer: Option<&ExtentFooter>,
    fuser: Option<&ExtentFuser>,
    file: &str,
    off: u64,
    len: u32,
    view: ByteView,
) -> Result<ByteView> {
    let Some(f) = footer else { return Ok(view) };
    if let Some(fu) = fuser {
        if fu.was_verified(file, off, len) {
            fu.count_skip();
            return Ok(view);
        }
    }
    f.verify(file, off, view.as_slice())?;
    if let Some(fu) = fuser {
        fu.note_verified(file, off, len);
    }
    Ok(view)
}

/// Coalesce `(offset, len)` wants into merged extents ([`plan_runs`]),
/// read each extent once — or fuse it with a concurrent session's read
/// when `fuser` is supplied — and return a per-want outcome.
///
/// Views of the same extent share one backing buffer, so duplicate
/// `(offset, len)` wants cost one read and zero copies, and
/// zero-length wants resolve to the shared empty view without
/// allocating. A fused run is recorded in the rank's trace with the
/// `cached` flag set (the logical access stays visible; the simulator
/// charges nothing), exactly like a block-cache hit.
///
/// Failures are isolated per want: when a merged read fails — locally
/// or in the session that led it — each of its wants is re-read
/// individually so one bad extent doesn't take down its coalesced
/// neighbors, and when `footer` is supplied every want is CRC-checked
/// so only the extents that are actually damaged come back as
/// [`MlocError::CorruptExtent`]. Verification runs once per physical
/// read: a fused want whose extent already verified clean this window
/// skips the re-check, while a *failed* check is never shared — every
/// session that touches a damaged extent fails on it. Callers decide
/// per want whether a failure is fatal or degradable.
/// A resolved run: its backing buffer (None if the read failed), the
/// file offset the buffer starts at, and whether another session's
/// in-flight read supplied it.
type ResolvedRun = (Option<Arc<Vec<u8>>>, u64, bool);

pub fn coalesced_read_results(
    io: &mut RankIo<'_>,
    file: &str,
    wants: &[(u64, u32)],
    footer: Option<&ExtentFooter>,
    fuser: Option<&ExtentFuser>,
) -> Vec<WantRead> {
    let mut out: Vec<WantRead> = wants
        .iter()
        .map(|_| WantRead {
            res: Ok(ByteView::empty()),
            fused: false,
        })
        .collect();
    let runs = plan_runs(wants, COALESCE_GAP);
    if runs.is_empty() {
        return out;
    }
    // Resolve every run to (buffer, buffer base offset, fused): all
    // physical reads of this window go down as submitted batches, not
    // one blocking read per run.
    let resolved: Vec<ResolvedRun> = match fuser {
        None => {
            let reqs: Vec<ReadRequest> = runs
                .iter()
                .map(|r| ReadRequest::new(file, r.start, r.end - r.start))
                .collect();
            runs.iter()
                .zip(io.read_batch(&reqs))
                .map(|(r, res)| (res.ok().map(Arc::new), r.start, false))
                .collect()
        }
        Some(fu) => {
            // Phase 1 — acquire every run: resolve from the window,
            // note a flight to wait on, or become its leader.
            enum Slot {
                Ready(Option<Arc<Vec<u8>>>, u64, bool),
                Wait(Arc<Flight>, u64),
            }
            let mut slots: Vec<Slot> = Vec::with_capacity(runs.len());
            let mut led: Vec<(usize, Arc<Flight>)> = Vec::new();
            for (k, run) in runs.iter().enumerate() {
                match fu.acquire(file, run.start, run.end) {
                    Acquire::Ready(r) => {
                        if r.buf.is_some() {
                            io.record_cached(file, run.start, run.end - run.start);
                        }
                        slots.push(Slot::Ready(r.buf, r.base, r.fused));
                    }
                    Acquire::Wait(flight, base) => slots.push(Slot::Wait(flight, base)),
                    Acquire::Lead(flight) => {
                        led.push((k, Arc::clone(&flight)));
                        // Placeholder; overwritten in phase 2.
                        slots.push(Slot::Ready(None, run.start, false));
                    }
                }
            }
            // Phase 2 — one submitted batch services every run this
            // session leads; publish each outcome to its waiters. The
            // guards publish Failed should the batch read unwind.
            if !led.is_empty() {
                let mut guards: Vec<FlightGuard> = led
                    .iter()
                    .map(|(_, f)| FlightGuard {
                        flight: f,
                        armed: true,
                    })
                    .collect();
                let reqs: Vec<ReadRequest> = led
                    .iter()
                    .map(|&(k, _)| {
                        ReadRequest::new(file, runs[k].start, runs[k].end - runs[k].start)
                    })
                    .collect();
                let results = io.read_batch(&reqs);
                for g in &mut guards {
                    g.armed = false;
                }
                drop(guards);
                for ((k, flight), res) in led.iter().zip(results) {
                    let run = &runs[*k];
                    let buf = res.ok().map(Arc::new);
                    fu.finish_lead(file, run.start, run.end, flight, &buf);
                    slots[*k] = Slot::Ready(buf, run.start, false);
                }
            }
            // Phase 3 — only now block on other sessions' flights.
            // Everything we lead is already published, so waiting
            // cannot participate in a cycle.
            slots
                .into_iter()
                .enumerate()
                .map(|(k, slot)| match slot {
                    Slot::Ready(buf, base, fused) => (buf, base, fused),
                    Slot::Wait(flight, base) => {
                        let run = &runs[k];
                        let buf = fu.finish_wait(&flight, run.start, run.end);
                        if buf.is_some() {
                            io.record_cached(file, run.start, run.end - run.start);
                        }
                        (buf, base, true)
                    }
                })
                .collect()
        }
    };
    // Slice successful runs into per-want views; collect the wants of
    // failed runs for one batched per-want fallback.
    let mut fallback: Vec<usize> = Vec::new();
    for (run, (buf, base, fused)) in runs.iter().zip(resolved) {
        match buf {
            Some(buf) => {
                for &i in &run.wants {
                    let (off, len) = wants[i];
                    let view =
                        ByteView::slice(Arc::clone(&buf), (off - base) as usize, len as usize);
                    out[i] = WantRead {
                        res: verify_run_want(footer, fuser, file, off, len, view),
                        fused,
                    };
                }
            }
            None => {
                // The merged read failed here or in the leading session
                // (retries exhausted): fall back to per-want reads so
                // only the wants overlapping the damage fail — and so
                // every fused session reaches the same per-want verdict.
                fallback.extend(run.wants.iter().copied());
            }
        }
    }
    if !fallback.is_empty() {
        let reqs: Vec<ReadRequest> = fallback
            .iter()
            .map(|&i| ReadRequest::new(file, wants[i].0, u64::from(wants[i].1)))
            .collect();
        for (&i, res) in fallback.iter().zip(io.read_batch(&reqs)) {
            let (off, _len) = wants[i];
            out[i] = WantRead {
                res: match res {
                    Ok(b) => match footer {
                        Some(f) => {
                            let view = ByteView::from(b);
                            f.verify(file, off, view.as_slice()).map(|()| view)
                        }
                        None => Ok(ByteView::from(b)),
                    },
                    Err(e) => Err(MlocError::from(e)),
                },
                fused: false,
            };
        }
    }
    out
}

/// Strict [`coalesced_read_results`] without footer checks: the first
/// failed want fails the whole read. This is the reference the fusion
/// proptests compare fan-out against.
pub fn coalesced_read(
    io: &mut RankIo<'_>,
    file: &str,
    wants: &[(u64, u32)],
    fuser: Option<&ExtentFuser>,
) -> Result<Vec<ByteView>> {
    coalesced_read_results(io, file, wants, None, fuser)
        .into_iter()
        .map(|w| w.res)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mloc_pfs::{MemBackend, StorageBackend};

    #[test]
    fn plan_runs_merges_within_gap() {
        let wants = vec![(10u64, 5u32), (15, 5), (100, 10), (0, 0)];
        let runs = plan_runs(&wants, COALESCE_GAP);
        assert_eq!(runs.len(), 1, "all within one gap");
        assert_eq!((runs[0].start, runs[0].end), (10, 110));
        assert_eq!(runs[0].wants, vec![0, 1, 2]);

        let runs = plan_runs(&[(0, 10), (50_000, 10)], COALESCE_GAP);
        assert_eq!(runs.len(), 2, "distant reads must not merge");
        assert_eq!((runs[1].start, runs[1].end), (50_000, 50_010));
    }

    #[test]
    fn coalesced_read_merges_and_slices() {
        let be = MemBackend::new();
        let data: Vec<u8> = (0..200u8).collect();
        be.append("f", &data).unwrap();
        let mut io = RankIo::new(&be);
        // Three wants: two adjacent (merge), one far (but within gap).
        let wants = vec![(10u64, 5u32), (15, 5), (100, 10), (0, 0)];
        let got = coalesced_read(&mut io, "f", &wants, None).unwrap();
        assert_eq!(&got[0][..], &data[10..15]);
        assert_eq!(&got[1][..], &data[15..20]);
        assert_eq!(&got[2][..], &data[100..110]);
        assert!(got[3].is_empty());
        // All within COALESCE_GAP: a single physical read.
        assert_eq!(io.trace().len(), 1);
    }

    #[test]
    fn coalesced_read_respects_large_gaps() {
        let be = MemBackend::new();
        be.append("f", &vec![7u8; 100_000]).unwrap();
        let mut io = RankIo::new(&be);
        let wants = vec![(0u64, 10u32), (50_000, 10)];
        let got = coalesced_read(&mut io, "f", &wants, None).unwrap();
        assert_eq!(got[0].len(), 10);
        assert_eq!(got[1].len(), 10);
        assert_eq!(io.trace().len(), 2, "distant reads must not merge");
    }

    #[test]
    fn coalesced_read_unsorted_input() {
        let be = MemBackend::new();
        let data: Vec<u8> = (0..100u8).collect();
        be.append("f", &data).unwrap();
        let mut io = RankIo::new(&be);
        let wants = vec![(90u64, 5u32), (0, 5), (40, 5)];
        let got = coalesced_read(&mut io, "f", &wants, None).unwrap();
        assert_eq!(&got[0][..], &data[90..95]);
        assert_eq!(&got[1][..], &data[0..5]);
        assert_eq!(&got[2][..], &data[40..45]);
    }

    #[test]
    fn coalesced_read_dedupes_and_skips_empties() {
        let be = MemBackend::new();
        let data: Vec<u8> = (0..100u8).collect();
        be.append("f", &data).unwrap();
        let mut io = RankIo::new(&be);
        // Duplicate wants, interleaved zero-length wants.
        let wants = vec![(20u64, 8u32), (0, 0), (20, 8), (30, 4), (0, 0)];
        let got = coalesced_read(&mut io, "f", &wants, None).unwrap();
        assert_eq!(&got[0][..], &data[20..28]);
        assert_eq!(&got[2][..], &data[20..28]);
        assert_eq!(&got[3][..], &data[30..34]);
        assert!(got[1].is_empty() && got[4].is_empty());
        // Duplicates share one physical read (and one backing buffer:
        // identical data pointers prove no copy happened).
        assert_eq!(io.trace().len(), 1);
        assert_eq!(got[0].as_slice().as_ptr(), got[2].as_slice().as_ptr());
        // Both empties share the static empty backing.
        assert_eq!(got[1].as_slice().as_ptr(), got[4].as_slice().as_ptr());
    }

    #[test]
    fn fuser_serves_repeat_and_contained_runs_without_rereads() {
        let be = MemBackend::new();
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        be.append("f", &data).unwrap();
        let fu = ExtentFuser::with_window_mb(4);

        let mut io = RankIo::new(&be);
        let first = fu.read_extent("f", 100, 600, || io.read("f", 100, 500).ok().map(Arc::new));
        assert!(!first.fused);
        assert_eq!(first.buf.as_ref().unwrap().len(), 500);

        // Identical run: fused, no physical read.
        let again = fu.read_extent("f", 100, 600, || panic!("must not re-read"));
        assert!(again.fused);
        assert_eq!(again.base, 100);

        // Contained run: fused from the larger extent.
        let inner = fu.read_extent("f", 200, 300, || panic!("must not re-read"));
        assert!(inner.fused);
        assert_eq!(inner.base, 100);
        let buf = inner.buf.unwrap();
        assert_eq!(&buf[(200 - 100)..(300 - 100)], &data[200..300]);

        let s = fu.stats();
        assert_eq!(s.physical_reads, 1);
        assert_eq!(s.fused_reads, 2);
        assert_eq!(s.fused_bytes, 500 + 100);

        // A new window forgets the extent.
        fu.begin_window();
        let mut io = RankIo::new(&be);
        let fresh = fu.read_extent("f", 100, 600, || io.read("f", 100, 500).ok().map(Arc::new));
        assert!(!fresh.fused);
        assert_eq!(fu.stats().physical_reads, 2);
    }

    #[test]
    fn failed_leader_fans_out_failure_then_recovers_next_window() {
        let be = MemBackend::new();
        be.append("f", &[1, 2, 3, 4]).unwrap();
        let fu = ExtentFuser::with_window_mb(1);
        let r = fu.read_extent("f", 0, 4, || None);
        assert!(r.buf.is_none() && !r.fused);
        // Same window: the failure is remembered, peers fall back.
        let r2 = fu.read_extent("f", 0, 4, || {
            panic!("failed extents are not retried in-window")
        });
        assert!(r2.buf.is_none() && r2.fused);
        assert_eq!(fu.stats().failed_reads, 1);
        // Next window retries for real.
        fu.begin_window();
        let mut io = RankIo::new(&be);
        let r3 = fu.read_extent("f", 0, 4, || io.read("f", 0, 4).ok().map(Arc::new));
        assert_eq!(r3.buf.unwrap().as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn concurrent_identical_sessions_share_one_physical_read() {
        let be = MemBackend::new();
        let data: Vec<u8> = (0..200u8).collect();
        be.append("f", &data).unwrap();
        let fu = ExtentFuser::with_window_mb(4);
        let wants = vec![(10u64, 5u32), (15, 5), (100, 10)];

        let views: Vec<Vec<ByteView>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        let mut io = RankIo::new(&be);
                        coalesced_read(&mut io, "f", &wants, Some(&fu)).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for v in &views {
            assert_eq!(&v[0][..], &data[10..15]);
            assert_eq!(&v[1][..], &data[15..20]);
            assert_eq!(&v[2][..], &data[100..110]);
        }
        let s = fu.stats();
        assert_eq!(s.physical_reads, 1, "one leader per extent");
        assert_eq!(s.fused_reads, 7);
        // Every session's views share the leader's backing buffer.
        let p0 = views[0][0].as_slice().as_ptr();
        for v in &views {
            assert_eq!(v[0].as_slice().as_ptr(), p0);
        }
    }

    #[test]
    fn window_budget_evicts_oldest_completed_extents() {
        let be = MemBackend::new();
        be.append("f", &vec![9u8; 1_000_000]).unwrap();
        let fu = ExtentFuser::with_window_bytes(25_000);
        let mut io = RankIo::new(&be);
        for k in 0..4u64 {
            let start = k * 200_000;
            let r = fu.read_extent("f", start, start + 10_000, || {
                io.read("f", start, 10_000).ok().map(Arc::new)
            });
            assert!(!r.fused, "extent {k} must be a fresh read");
        }
        // Extents 0 and 1 were evicted (40k read > 25k budget); 2 and 3
        // remain fusable.
        let r = fu.read_extent("f", 0, 10_000, || {
            io.read("f", 0, 10_000).ok().map(Arc::new)
        });
        assert!(!r.fused, "oldest extent should have been evicted");
        let r = fu.read_extent("f", 600_000, 610_000, || panic!("newest must be resident"));
        assert!(r.fused);
    }

    #[test]
    fn verified_verdicts_are_shared_only_on_success() {
        let fu = ExtentFuser::with_window_mb(1);
        assert!(!fu.was_verified("f", 0, 16));
        fu.note_verified("f", 0, 16);
        assert!(fu.was_verified("f", 0, 16));
        assert!(!fu.was_verified("f", 0, 17));
        assert!(!fu.was_verified("g", 0, 16));
        fu.begin_window();
        assert!(
            !fu.was_verified("f", 0, 16),
            "window rotation clears verdicts"
        );
    }
}
