//! Per-bin index files: chunk directory, positional bitmaps, and the
//! compressed-unit locator.
//!
//! Each bin has one index file next to its data file (Figure 4). The
//! index holds, per chunk (in curve-rank order):
//!
//! * the number of the bin's points inside that chunk,
//! * the chunk-local *positions* of those points as a WAH bitmap — the
//!   "light-weight index" that lets region queries answer aligned bins
//!   without touching data, and
//! * the data-file location of each compressed unit (one per PLoD byte
//!   group, or a single unit when PLoD is off).
//!
//! The header + directory is fixed-size given the chunk count, so a
//! query reads it with a single sequential read and then fetches only
//! the bitmaps/units of the chunks it needs.

use crate::wire::{Reader, Writer};
use crate::{MlocError, Result};
use mloc_bitmap::WahBitmap;

const MAGIC: u32 = 0x5844_494D; // "MIDX"
const VERSION: u8 = 1;

/// Location of one compressed unit in the bin's data file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnitLoc {
    /// Byte offset within the data file.
    pub offset: u64,
    /// Compressed length in bytes (0 = empty unit).
    pub clen: u32,
}

/// Directory entry of one chunk within one bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Number of the bin's points inside this chunk.
    pub count: u32,
    /// Byte offset of the positional bitmap in the bitmap section.
    pub bitmap_off: u64,
    /// Encoded bitmap length (0 when the chunk has no points here).
    pub bitmap_len: u32,
    /// Per-part unit locations.
    pub units: Vec<UnitLoc>,
}

/// The parsed header + directory of a bin index file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinIndex {
    /// Bin id.
    pub bin: u32,
    /// Directory entries indexed by *curve rank*.
    pub chunks: Vec<ChunkEntry>,
    /// Number of PLoD parts per unit.
    pub num_parts: usize,
    /// Size of the header + directory region in bytes (bitmaps follow).
    pub header_bytes: u64,
}

/// Size in bytes of the serialized header + directory for a given
/// geometry — queries use this to issue an exact-size first read.
pub fn header_size(num_chunks: usize, num_parts: usize) -> u64 {
    // magic(4) version(1) bin(4) num_chunks(4) num_parts(1)
    14 + num_chunks as u64 * entry_size(num_parts)
}

fn entry_size(num_parts: usize) -> u64 {
    // count(4) bitmap_off(8) bitmap_len(4) + parts * (offset(8) clen(4))
    16 + num_parts as u64 * 12
}

impl BinIndex {
    /// Serialize header + directory (bitmap bytes are appended by the
    /// builder).
    pub fn encode_header(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(MAGIC);
        w.u8(VERSION);
        w.u32(self.bin);
        w.u32(self.chunks.len() as u32);
        w.u8(self.num_parts as u8);
        for e in &self.chunks {
            w.u32(e.count);
            w.u64(e.bitmap_off);
            w.u32(e.bitmap_len);
            debug_assert_eq!(e.units.len(), self.num_parts);
            for u in &e.units {
                w.u64(u.offset);
                w.u32(u.clen);
            }
        }
        debug_assert_eq!(
            w.len() as u64,
            header_size(self.chunks.len(), self.num_parts)
        );
        w.finish()
    }

    /// Parse a header + directory previously encoded with
    /// [`Self::encode_header`].
    pub fn decode_header(data: &[u8]) -> Result<BinIndex> {
        let mut r = Reader::new(data);
        if r.u32()? != MAGIC {
            return Err(MlocError::Corrupt("bad index magic"));
        }
        if r.u8()? != VERSION {
            return Err(MlocError::Corrupt("unsupported index version"));
        }
        let bin = r.u32()?;
        let num_chunks = r.u32()? as usize;
        let num_parts = r.u8()? as usize;
        if num_parts == 0 || num_parts > 16 {
            return Err(MlocError::Corrupt("bad part count"));
        }
        // The directory must fit in the supplied buffer; reject a
        // corrupted chunk count before allocating for it.
        if header_size(num_chunks, num_parts) > data.len() as u64 {
            return Err(MlocError::Corrupt("header truncated"));
        }
        let mut chunks = Vec::with_capacity(num_chunks);
        for _ in 0..num_chunks {
            let count = r.u32()?;
            let bitmap_off = r.u64()?;
            let bitmap_len = r.u32()?;
            let mut units = Vec::with_capacity(num_parts);
            for _ in 0..num_parts {
                units.push(UnitLoc {
                    offset: r.u64()?,
                    clen: r.u32()?,
                });
            }
            chunks.push(ChunkEntry {
                count,
                bitmap_off,
                bitmap_len,
                units,
            });
        }
        Ok(BinIndex {
            bin,
            chunks,
            num_parts,
            header_bytes: header_size(num_chunks, num_parts),
        })
    }

    /// Absolute file offset of a chunk's bitmap (bitmaps follow the
    /// header + directory).
    pub fn bitmap_file_offset(&self, rank: usize) -> u64 {
        self.header_bytes + self.chunks[rank].bitmap_off
    }

    /// Total points recorded in this bin.
    pub fn total_points(&self) -> u64 {
        self.chunks.iter().map(|e| u64::from(e.count)).sum()
    }
}

/// Incremental builder for one bin's index file contents.
#[derive(Debug)]
pub struct BinIndexBuilder {
    bin: u32,
    num_parts: usize,
    chunks: Vec<ChunkEntry>,
    bitmaps: Vec<u8>,
    /// Encoded bitmap lengths in file (append) order — the logical
    /// extents of the bitmap section, for the checksum footer.
    bitmap_lens: Vec<u32>,
}

impl BinIndexBuilder {
    /// Start building for a bin over `num_chunks` chunks.
    pub fn new(bin: u32, num_chunks: usize, num_parts: usize) -> Self {
        let empty = ChunkEntry {
            count: 0,
            bitmap_off: 0,
            bitmap_len: 0,
            units: vec![UnitLoc::default(); num_parts],
        };
        BinIndexBuilder {
            bin,
            num_parts,
            chunks: vec![empty; num_chunks],
            bitmaps: Vec::new(),
            bitmap_lens: Vec::new(),
        }
    }

    /// Record a chunk's positional bitmap and unit locations. The locs
    /// are copied into the entry's preallocated slots, so callers keep
    /// ownership and no per-chunk allocation happens here.
    ///
    /// # Panics
    /// Panics when called twice for the same rank or with a unit count
    /// mismatch.
    pub fn set_chunk(&mut self, rank: usize, bitmap: &WahBitmap, units: &[UnitLoc]) {
        assert_eq!(units.len(), self.num_parts, "unit count mismatch");
        let e = &mut self.chunks[rank];
        assert_eq!(e.count, 0, "chunk rank {rank} set twice");
        let encoded = bitmap.to_bytes();
        e.count = bitmap.count_ones() as u32;
        e.bitmap_off = self.bitmaps.len() as u64;
        e.bitmap_len = encoded.len() as u32;
        e.units.copy_from_slice(units);
        self.bitmap_lens.push(encoded.len() as u32);
        self.bitmaps.extend_from_slice(&encoded);
    }

    /// Finish: returns the full index file contents.
    pub fn finish(self) -> Vec<u8> {
        self.finish_with_extents().0
    }

    /// Finish, also returning the file's logical extent lengths in
    /// file order (header + each encoded bitmap) for the checksum
    /// footer.
    pub fn finish_with_extents(self) -> (Vec<u8>, Vec<u32>) {
        let index = BinIndex {
            bin: self.bin,
            num_parts: self.num_parts,
            header_bytes: header_size(self.chunks.len(), self.num_parts),
            chunks: self.chunks,
        };
        let mut out = index.encode_header();
        let mut extents = Vec::with_capacity(1 + self.bitmap_lens.len());
        extents.push(out.len() as u32);
        extents.extend_from_slice(&self.bitmap_lens);
        out.extend_from_slice(&self.bitmaps);
        (out, extents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let mut b = BinIndexBuilder::new(5, 4, 3);
        let bm1 = WahBitmap::from_sorted_positions(100, &[1, 5, 99]);
        let bm2 = WahBitmap::from_sorted_positions(50, &[0]);
        b.set_chunk(
            1,
            &bm1,
            &[
                UnitLoc {
                    offset: 0,
                    clen: 10,
                },
                UnitLoc {
                    offset: 10,
                    clen: 20,
                },
                UnitLoc {
                    offset: 30,
                    clen: 5,
                },
            ],
        );
        b.set_chunk(3, &bm2, &[UnitLoc::default(); 3]);
        let bytes = b.finish();

        let hdr_len = header_size(4, 3) as usize;
        let idx = BinIndex::decode_header(&bytes[..hdr_len]).unwrap();
        assert_eq!(idx.bin, 5);
        assert_eq!(idx.chunks.len(), 4);
        assert_eq!(idx.num_parts, 3);
        assert_eq!(idx.chunks[1].count, 3);
        assert_eq!(idx.chunks[3].count, 1);
        assert_eq!(idx.chunks[0].count, 0);
        assert_eq!(idx.total_points(), 4);
        assert_eq!(
            idx.chunks[1].units[1],
            UnitLoc {
                offset: 10,
                clen: 20
            }
        );

        // Bitmaps decode from their recorded offsets.
        let e = &idx.chunks[1];
        let start = idx.bitmap_file_offset(1) as usize;
        let (bm, _) = WahBitmap::from_bytes(&bytes[start..start + e.bitmap_len as usize]).unwrap();
        assert_eq!(bm.to_positions(), vec![1, 5, 99]);
    }

    #[test]
    fn header_size_is_exact() {
        let b = BinIndexBuilder::new(0, 7, 7);
        let bytes = b.finish();
        assert_eq!(bytes.len() as u64, header_size(7, 7));
    }

    #[test]
    fn rejects_corrupt_headers() {
        let bytes = BinIndexBuilder::new(0, 2, 1).finish();
        assert!(BinIndex::decode_header(&bytes[..5]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(BinIndex::decode_header(&bad).is_err());
        let mut bad2 = bytes;
        bad2[4] = 99; // version
        assert!(BinIndex::decode_header(&bad2).is_err());
    }

    #[test]
    #[should_panic]
    fn setting_chunk_twice_panics() {
        let mut b = BinIndexBuilder::new(0, 2, 1);
        let bm = WahBitmap::from_sorted_positions(10, &[0]);
        b.set_chunk(0, &bm, &[UnitLoc::default()]);
        b.set_chunk(0, &bm, &[UnitLoc::default()]);
    }
}
