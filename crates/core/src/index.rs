//! Per-bin index files: chunk directory, positional bitmaps, and the
//! compressed-unit locator.
//!
//! Each bin has one index file next to its data file (Figure 4). The
//! index holds, per chunk (in curve-rank order):
//!
//! * the number of the bin's points inside that chunk,
//! * the chunk-local *positions* of those points as a WAH bitmap — the
//!   "light-weight index" that lets region queries answer aligned bins
//!   without touching data, and
//! * the data-file location of each compressed unit (one per PLoD byte
//!   group, or a single unit when PLoD is off).
//!
//! The header + directory is fixed-size given the chunk count, so a
//! query reads it with a single sequential read and then fetches only
//! the bitmaps/units of the chunks it needs.
//!
//! # Format v2: the two-level succinct index
//!
//! Version 2 keeps the header + directory byte layout of v1 (only the
//! version byte differs, so the engine's exact-size first read works
//! for both) and adds two levels on top of the flat WAH bitmaps:
//!
//! * a **chunk-summary section** — its own checksummed extent between
//!   the header and the bitmaps — holding per-chunk
//!   `(min_pos, max_pos, all_of_chunk)` so a query classifies chunks
//!   as full / empty / partial in O(1) and skips the bitmap read
//!   entirely for full and empty chunks, and
//! * a **rank/select directory** ([`mloc_bitmap::RankSelectDir`])
//!   appended to each encoded bitmap (`bitmap_len` covers both; WAH is
//!   self-delimiting, the remainder is the directory), giving
//!   membership probes O(log samples + S) rank/select instead of a
//!   linear word walk.
//!
//! v1 files (no summary, no directories) remain fully readable.

use crate::integrity::ExtentFooter;
use crate::wire::{Reader, Writer};
use crate::{MlocError, Result};
use mloc_bitmap::{RankSelectDir, WahBitmap};
use mloc_pfs::StorageBackend;

const MAGIC: u32 = 0x5844_494D; // "MIDX"
/// Current index format version (v2 = summary section + rank/select
/// directories). v1 files are still readable.
pub const VERSION: u8 = 2;
const SUMMARY_MAGIC: u32 = 0x4D55_534D; // "MSUM"

/// Location of one compressed unit in the bin's data file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnitLoc {
    /// Byte offset within the data file.
    pub offset: u64,
    /// Compressed length in bytes (0 = empty unit).
    pub clen: u32,
}

/// Directory entry of one chunk within one bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Number of the bin's points inside this chunk.
    pub count: u32,
    /// Byte offset of the positional bitmap in the bitmap section.
    pub bitmap_off: u64,
    /// Encoded bitmap length (0 when the chunk has no points here).
    pub bitmap_len: u32,
    /// Per-part unit locations.
    pub units: Vec<UnitLoc>,
}

/// Coarse per-chunk classification record of the v2 summary section.
///
/// Together with [`ChunkEntry::count`] this classifies a chunk without
/// touching its bitmap: `count == 0` → empty, `all_of_chunk` → every
/// position belongs to this bin (the bitmap is all ones), otherwise
/// partial with set positions confined to `[min_pos, max_pos]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSummary {
    /// Smallest chunk-local set position (`u32::MAX` when empty).
    pub min_pos: u32,
    /// Largest chunk-local set position (0 when empty).
    pub max_pos: u32,
    /// True when every position of the chunk belongs to this bin.
    pub all_of_chunk: bool,
}

impl ChunkSummary {
    /// The sentinel written for chunks with no points in this bin.
    pub const EMPTY: ChunkSummary = ChunkSummary {
        min_pos: u32::MAX,
        max_pos: 0,
        all_of_chunk: false,
    };
}

/// The parsed header + directory of a bin index file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinIndex {
    /// Format version of the file this header came from (1 or 2).
    pub version: u8,
    /// Bin id.
    pub bin: u32,
    /// Directory entries indexed by *curve rank*.
    pub chunks: Vec<ChunkEntry>,
    /// Number of PLoD parts per unit.
    pub num_parts: usize,
    /// Size of the header + directory region in bytes.
    pub header_bytes: u64,
    /// Size of the chunk-summary section that follows the header
    /// (0 for v1 files; bitmaps follow the summary).
    pub summary_bytes: u64,
}

/// Size in bytes of the serialized header + directory for a given
/// geometry — queries use this to issue an exact-size first read.
/// Identical for v1 and v2 (only the version byte differs).
pub fn header_size(num_chunks: usize, num_parts: usize) -> u64 {
    // magic(4) version(1) bin(4) num_chunks(4) num_parts(1)
    14 + num_chunks as u64 * entry_size(num_parts)
}

fn entry_size(num_parts: usize) -> u64 {
    // count(4) bitmap_off(8) bitmap_len(4) + parts * (offset(8) clen(4))
    16 + num_parts as u64 * 12
}

/// Exact size in bytes of the v2 chunk-summary section.
pub fn summary_size(num_chunks: usize) -> u64 {
    // magic(4) num_chunks(4) + per chunk: min_pos(4) max_pos(4) flags(1)
    8 + num_chunks as u64 * 9
}

/// Serialize the summary section.
pub fn encode_summary(summaries: &[ChunkSummary]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(SUMMARY_MAGIC);
    w.u32(summaries.len() as u32);
    for s in summaries {
        w.u32(s.min_pos);
        w.u32(s.max_pos);
        w.u8(u8::from(s.all_of_chunk));
    }
    debug_assert_eq!(w.len() as u64, summary_size(summaries.len()));
    w.finish()
}

/// Parse a summary section; `num_chunks` comes from the header and
/// must match the recorded count.
pub fn decode_summary(data: &[u8], num_chunks: usize) -> Result<Vec<ChunkSummary>> {
    let mut r = Reader::new(data);
    if r.u32()? != SUMMARY_MAGIC {
        return Err(MlocError::Corrupt("bad summary magic"));
    }
    if r.u32()? as usize != num_chunks {
        return Err(MlocError::Corrupt("summary chunk count mismatch"));
    }
    if summary_size(num_chunks) > data.len() as u64 {
        return Err(MlocError::Corrupt("summary truncated"));
    }
    let mut out = Vec::with_capacity(num_chunks);
    for _ in 0..num_chunks {
        let min_pos = r.u32()?;
        let max_pos = r.u32()?;
        let flags = r.u8()?;
        if flags > 1 {
            return Err(MlocError::Corrupt("bad summary flags"));
        }
        out.push(ChunkSummary {
            min_pos,
            max_pos,
            all_of_chunk: flags == 1,
        });
    }
    Ok(out)
}

impl BinIndex {
    /// Serialize header + directory (bitmap bytes are appended by the
    /// builder).
    pub fn encode_header(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(MAGIC);
        w.u8(self.version);
        w.u32(self.bin);
        w.u32(self.chunks.len() as u32);
        w.u8(self.num_parts as u8);
        for e in &self.chunks {
            w.u32(e.count);
            w.u64(e.bitmap_off);
            w.u32(e.bitmap_len);
            debug_assert_eq!(e.units.len(), self.num_parts);
            for u in &e.units {
                w.u64(u.offset);
                w.u32(u.clen);
            }
        }
        debug_assert_eq!(
            w.len() as u64,
            header_size(self.chunks.len(), self.num_parts)
        );
        w.finish()
    }

    /// Parse a header + directory previously encoded with
    /// [`Self::encode_header`].
    pub fn decode_header(data: &[u8]) -> Result<BinIndex> {
        let mut r = Reader::new(data);
        if r.u32()? != MAGIC {
            return Err(MlocError::Corrupt("bad index magic"));
        }
        let version = r.u8()?;
        if version != 1 && version != VERSION {
            return Err(MlocError::Corrupt("unsupported index version"));
        }
        let bin = r.u32()?;
        let num_chunks = r.u32()? as usize;
        let num_parts = r.u8()? as usize;
        if num_parts == 0 || num_parts > 16 {
            return Err(MlocError::Corrupt("bad part count"));
        }
        // The directory must fit in the supplied buffer; reject a
        // corrupted chunk count before allocating for it.
        if header_size(num_chunks, num_parts) > data.len() as u64 {
            return Err(MlocError::Corrupt("header truncated"));
        }
        let mut chunks = Vec::with_capacity(num_chunks);
        for _ in 0..num_chunks {
            let count = r.u32()?;
            let bitmap_off = r.u64()?;
            let bitmap_len = r.u32()?;
            let mut units = Vec::with_capacity(num_parts);
            for _ in 0..num_parts {
                units.push(UnitLoc {
                    offset: r.u64()?,
                    clen: r.u32()?,
                });
            }
            chunks.push(ChunkEntry {
                count,
                bitmap_off,
                bitmap_len,
                units,
            });
        }
        Ok(BinIndex {
            version,
            bin,
            chunks,
            num_parts,
            header_bytes: header_size(num_chunks, num_parts),
            summary_bytes: if version >= 2 {
                summary_size(num_chunks)
            } else {
                0
            },
        })
    }

    /// Absolute file offset of the chunk-summary section (v2 only).
    pub fn summary_file_offset(&self) -> u64 {
        self.header_bytes
    }

    /// Absolute file offset of a chunk's bitmap (bitmaps follow the
    /// header + directory and, in v2, the summary section).
    pub fn bitmap_file_offset(&self, rank: usize) -> u64 {
        self.header_bytes + self.summary_bytes + self.chunks[rank].bitmap_off
    }

    /// Total points recorded in this bin.
    pub fn total_points(&self) -> u64 {
        self.chunks.iter().map(|e| u64::from(e.count)).sum()
    }
}

/// Incremental builder for one bin's index file contents (format v2).
#[derive(Debug)]
pub struct BinIndexBuilder {
    bin: u32,
    num_parts: usize,
    chunks: Vec<ChunkEntry>,
    summaries: Vec<ChunkSummary>,
    bitmaps: Vec<u8>,
    /// Encoded bitmap lengths in file (append) order — the logical
    /// extents of the bitmap section, for the checksum footer.
    bitmap_lens: Vec<u32>,
}

impl BinIndexBuilder {
    /// Start building for a bin over `num_chunks` chunks.
    pub fn new(bin: u32, num_chunks: usize, num_parts: usize) -> Self {
        let empty = ChunkEntry {
            count: 0,
            bitmap_off: 0,
            bitmap_len: 0,
            units: vec![UnitLoc::default(); num_parts],
        };
        BinIndexBuilder {
            bin,
            num_parts,
            chunks: vec![empty; num_chunks],
            summaries: vec![ChunkSummary::EMPTY; num_chunks],
            bitmaps: Vec::new(),
            bitmap_lens: Vec::new(),
        }
    }

    /// Record a chunk's positional bitmap and unit locations. The locs
    /// are copied into the entry's preallocated slots, so callers keep
    /// ownership and no per-chunk allocation happens here. The chunk's
    /// summary (min/max set position, all-of-chunk flag) and its
    /// rank/select directory are derived here in the same pass.
    ///
    /// # Panics
    /// Panics when called twice for the same rank or with a unit count
    /// mismatch.
    pub fn set_chunk(&mut self, rank: usize, bitmap: &WahBitmap, units: &[UnitLoc]) {
        assert_eq!(units.len(), self.num_parts, "unit count mismatch");
        let e = &mut self.chunks[rank];
        assert_eq!(e.count, 0, "chunk rank {rank} set twice");
        let encoded = bitmap.to_bytes();
        let dir_bytes = RankSelectDir::build(bitmap.as_ref()).to_bytes();
        let count = bitmap.count_ones();
        e.count = count as u32;
        e.bitmap_off = self.bitmaps.len() as u64;
        e.bitmap_len = (encoded.len() + dir_bytes.len()) as u32;
        e.units.copy_from_slice(units);
        self.bitmap_lens.push(e.bitmap_len);
        self.bitmaps.extend_from_slice(&encoded);
        self.bitmaps.extend_from_slice(&dir_bytes);
        if count > 0 {
            let mut min_pos = u32::MAX;
            let mut max_pos = 0u32;
            for (start, len, bit) in bitmap.iter_runs() {
                if bit {
                    if min_pos == u32::MAX {
                        min_pos = start as u32;
                    }
                    max_pos = (start + len - 1) as u32;
                }
            }
            self.summaries[rank] = ChunkSummary {
                min_pos,
                max_pos,
                all_of_chunk: count == bitmap.len(),
            };
        }
    }

    /// Finish: returns the full index file contents.
    pub fn finish(self) -> Vec<u8> {
        self.finish_with_extents().0
    }

    /// Finish, also returning the file's logical extent lengths in
    /// file order (header + summary + each encoded bitmap) for the
    /// checksum footer.
    pub fn finish_with_extents(self) -> (Vec<u8>, Vec<u32>) {
        let num_chunks = self.chunks.len();
        let index = BinIndex {
            version: VERSION,
            bin: self.bin,
            num_parts: self.num_parts,
            header_bytes: header_size(num_chunks, self.num_parts),
            summary_bytes: summary_size(num_chunks),
            chunks: self.chunks,
        };
        let mut out = index.encode_header();
        let summary = encode_summary(&self.summaries);
        let mut extents = Vec::with_capacity(2 + self.bitmap_lens.len());
        extents.push(out.len() as u32);
        extents.push(summary.len() as u32);
        extents.extend_from_slice(&self.bitmap_lens);
        out.extend_from_slice(&summary);
        out.extend_from_slice(&self.bitmaps);
        (out, extents)
    }
}

/// Rewrite a v2 index file payload (no footer) as v1: drop the summary
/// section and the per-bitmap rank/select directories, keep the WAH
/// bytes verbatim, and recompute offsets. Returns the v1 payload and
/// its extent lengths. Used by differential tests and benches to prove
/// v1-read vs v2-read byte-identity on the same logical data.
pub fn downgrade_payload_to_v1(payload: &[u8]) -> Result<(Vec<u8>, Vec<u32>)> {
    let idx = BinIndex::decode_header(payload)?;
    if idx.version != 2 {
        return Err(MlocError::Corrupt("not a v2 index"));
    }
    // Preserve file order: walk entries by their stored offsets.
    let mut order: Vec<usize> = (0..idx.chunks.len())
        .filter(|&r| idx.chunks[r].bitmap_len > 0)
        .collect();
    order.sort_by_key(|&r| idx.chunks[r].bitmap_off);
    let mut chunks = idx.chunks.clone();
    let mut bitmaps = Vec::new();
    let mut bitmap_lens = Vec::with_capacity(order.len());
    for &r in &order {
        let start = idx.bitmap_file_offset(r) as usize;
        let end = start + idx.chunks[r].bitmap_len as usize;
        if end > payload.len() {
            return Err(MlocError::Corrupt("bitmap extent out of bounds"));
        }
        // The WAH stream is self-delimiting; the remainder of the
        // extent is the rank/select directory we drop.
        let (_, consumed) = WahBitmap::from_bytes(&payload[start..end])
            .map_err(|_| MlocError::Corrupt("bad bitmap in v2 index"))?;
        chunks[r].bitmap_off = bitmaps.len() as u64;
        chunks[r].bitmap_len = consumed as u32;
        bitmaps.extend_from_slice(&payload[start..start + consumed]);
        bitmap_lens.push(consumed as u32);
    }
    let v1 = BinIndex {
        version: 1,
        bin: idx.bin,
        num_parts: idx.num_parts,
        header_bytes: idx.header_bytes,
        summary_bytes: 0,
        chunks,
    };
    let mut out = v1.encode_header();
    let mut extents = Vec::with_capacity(1 + bitmap_lens.len());
    extents.push(out.len() as u32);
    extents.extend_from_slice(&bitmap_lens);
    out.extend_from_slice(&bitmaps);
    Ok((out, extents))
}

/// Downgrade every index file of a variable to format v1 in place
/// (payload rewritten, footer recomputed). Data files and meta are
/// untouched. Returns the number of files rewritten.
pub fn downgrade_variable_to_v1(
    backend: &dyn StorageBackend,
    dataset: &str,
    var: &str,
) -> Result<usize> {
    let prefix = format!("{dataset}/{var}/");
    let mut rewritten = 0;
    let mut names: Vec<String> = backend
        .list()
        .into_iter()
        .filter(|n| n.starts_with(&prefix) && n.ends_with(".idx"))
        .collect();
    names.sort();
    for name in names {
        let raw = backend.read(&name, 0, backend.len(&name)?)?;
        let payload = ExtentFooter::split_verified(&raw, &name)?;
        let (v1, extents) = downgrade_payload_to_v1(payload)?;
        let footer = ExtentFooter::compute(&v1, &extents).encode();
        backend.create(&name)?;
        backend.append(&name, &v1)?;
        backend.append(&name, &footer)?;
        rewritten += 1;
    }
    Ok(rewritten)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let mut b = BinIndexBuilder::new(5, 4, 3);
        let bm1 = WahBitmap::from_sorted_positions(100, &[1, 5, 99]);
        let bm2 = WahBitmap::from_sorted_positions(50, &[0]);
        b.set_chunk(
            1,
            &bm1,
            &[
                UnitLoc {
                    offset: 0,
                    clen: 10,
                },
                UnitLoc {
                    offset: 10,
                    clen: 20,
                },
                UnitLoc {
                    offset: 30,
                    clen: 5,
                },
            ],
        );
        b.set_chunk(3, &bm2, &[UnitLoc::default(); 3]);
        let bytes = b.finish();

        let hdr_len = header_size(4, 3) as usize;
        let idx = BinIndex::decode_header(&bytes[..hdr_len]).unwrap();
        assert_eq!(idx.bin, 5);
        assert_eq!(idx.chunks.len(), 4);
        assert_eq!(idx.num_parts, 3);
        assert_eq!(idx.chunks[1].count, 3);
        assert_eq!(idx.chunks[3].count, 1);
        assert_eq!(idx.chunks[0].count, 0);
        assert_eq!(idx.total_points(), 4);
        assert_eq!(
            idx.chunks[1].units[1],
            UnitLoc {
                offset: 10,
                clen: 20
            }
        );

        // Bitmaps decode from their recorded offsets.
        let e = &idx.chunks[1];
        let start = idx.bitmap_file_offset(1) as usize;
        let (bm, _) = WahBitmap::from_bytes(&bytes[start..start + e.bitmap_len as usize]).unwrap();
        assert_eq!(bm.to_positions(), vec![1, 5, 99]);
    }

    #[test]
    fn header_size_is_exact() {
        let b = BinIndexBuilder::new(0, 7, 7);
        let bytes = b.finish();
        // An all-empty bin is exactly header + summary: no bitmaps.
        assert_eq!(bytes.len() as u64, header_size(7, 7) + summary_size(7));
        let idx = BinIndex::decode_header(&bytes[..header_size(7, 7) as usize]).unwrap();
        assert_eq!(idx.version, VERSION);
        assert_eq!(idx.summary_bytes, summary_size(7));
        let summaries = decode_summary(&bytes[idx.header_bytes as usize..], 7).unwrap();
        assert_eq!(summaries, vec![ChunkSummary::EMPTY; 7]);
    }

    #[test]
    fn summary_tracks_chunk_shape() {
        let mut b = BinIndexBuilder::new(0, 3, 1);
        // Partial chunk: bits 2..=7 of 20.
        b.set_chunk(
            0,
            &WahBitmap::from_sorted_positions(20, &[2, 3, 7]),
            &[UnitLoc::default()],
        );
        // Full chunk: all 20 bits.
        b.set_chunk(1, &WahBitmap::ones(20), &[UnitLoc::default()]);
        let bytes = b.finish();
        let hdr = BinIndex::decode_header(&bytes[..header_size(3, 1) as usize]).unwrap();
        let start = hdr.summary_file_offset() as usize;
        let summaries =
            decode_summary(&bytes[start..start + hdr.summary_bytes as usize], 3).unwrap();
        assert_eq!(
            summaries[0],
            ChunkSummary {
                min_pos: 2,
                max_pos: 7,
                all_of_chunk: false
            }
        );
        assert_eq!(
            summaries[1],
            ChunkSummary {
                min_pos: 0,
                max_pos: 19,
                all_of_chunk: true
            }
        );
        assert_eq!(summaries[2], ChunkSummary::EMPTY);
    }

    #[test]
    fn downgrade_strips_summary_and_directories() {
        let mut b = BinIndexBuilder::new(2, 3, 1);
        // Large sparse bitmap so a non-empty rank/select directory is
        // appended in v2 (many literal words).
        let pos: Vec<u64> = (0..40_000).step_by(7).collect();
        let big = WahBitmap::from_sorted_positions(40_000, &pos);
        b.set_chunk(0, &big, &[UnitLoc::default()]);
        b.set_chunk(2, &WahBitmap::ones(50), &[UnitLoc::default()]);
        let (v2, v2_extents) = b.finish_with_extents();
        let (v1, v1_extents) = downgrade_payload_to_v1(&v2).unwrap();
        assert!(v1.len() < v2.len());
        assert_eq!(v1_extents.len() + 1, v2_extents.len()); // summary gone
        let idx = BinIndex::decode_header(&v1[..header_size(3, 1) as usize]).unwrap();
        assert_eq!(idx.version, 1);
        assert_eq!(idx.summary_bytes, 0);
        // Bitmaps decode identically from both files.
        let v2_idx = BinIndex::decode_header(&v2[..header_size(3, 1) as usize]).unwrap();
        for rank in [0usize, 2] {
            let s1 = idx.bitmap_file_offset(rank) as usize;
            let s2 = v2_idx.bitmap_file_offset(rank) as usize;
            let (b1, used1) = WahBitmap::from_bytes(&v1[s1..]).unwrap();
            let (b2, _) = WahBitmap::from_bytes(&v2[s2..]).unwrap();
            assert_eq!(b1, b2);
            // v1 extents hold exactly the WAH bytes, no directory.
            assert_eq!(used1 as u32, idx.chunks[rank].bitmap_len);
        }
        // Downgrading a v1 payload is rejected.
        assert!(downgrade_payload_to_v1(&v1).is_err());
    }

    #[test]
    fn rejects_corrupt_headers() {
        let bytes = BinIndexBuilder::new(0, 2, 1).finish();
        assert!(BinIndex::decode_header(&bytes[..5]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(BinIndex::decode_header(&bad).is_err());
        let mut bad2 = bytes;
        bad2[4] = 99; // version
        assert!(BinIndex::decode_header(&bad2).is_err());
    }

    #[test]
    #[should_panic]
    fn setting_chunk_twice_panics() {
        let mut b = BinIndexBuilder::new(0, 2, 1);
        let bm = WahBitmap::from_sorted_positions(10, &[0]);
        b.set_chunk(0, &bm, &[UnitLoc::default()]);
        b.set_chunk(0, &bm, &[UnitLoc::default()]);
    }
}
