//! Per-extent integrity: CRC32 checksum footers on every stored file.
//!
//! Each bin data/index file (and the variable meta file) ends with an
//! [`ExtentFooter`]: one CRC32 per *logical extent* — the index
//! header, each positional bitmap, each compressed unit — in file
//! order, covering the payload completely. The query engine verifies
//! exactly the extents it reads (they are the same extents the build
//! wrote, so no read has to be widened to a checksum boundary), and
//! `mloc verify` recomputes every entry offline to pinpoint damage.
//!
//! File layout:
//!
//! ```text
//! payload                       (the pre-existing file contents)
//! table: n × { len: u32, crc: u32 }   (extents in file order)
//! trailer (24 bytes):
//!   table_crc: u32    CRC32 of the table bytes
//!   payload_len: u64
//!   n_entries: u32
//!   version: u32      (1)
//!   magic: u32        "MFTR"
//! ```
//!
//! Extent offsets are not stored: entries are contiguous from offset
//! 0, so offsets are prefix sums of the lengths. The trailer sits at a
//! fixed position from the end of the file, which makes it double as
//! the build's validity marker: a torn write that truncates the file
//! destroys the trailer, so an incomplete file can never verify.

use crate::{MlocError, Result};

/// Trailer magic: "MFTR" little-endian.
const FOOTER_MAGIC: u32 = 0x5254_464D;
const FOOTER_VERSION: u32 = 1;

/// Size of the fixed trailer at the end of a footered file.
pub const TRAILER_LEN: u64 = 24;

/// CRC32 (IEEE, reflected, poly 0xEDB88320) over `data`. Table-driven
/// and dependency-free; the table is built once per process.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Parsed checksum footer of one file: per-extent CRCs plus the
/// payload geometry needed to locate them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtentFooter {
    /// Bytes of payload the extents cover.
    payload_len: u64,
    /// Extent start offsets (prefix sums), one per entry.
    offsets: Vec<u64>,
    /// Extent lengths, parallel to `offsets`.
    lens: Vec<u32>,
    /// Extent CRC32s, parallel to `offsets`.
    crcs: Vec<u32>,
}

impl ExtentFooter {
    /// Compute the footer for `payload` divided into extents of the
    /// given lengths, in file order. The lengths must sum to the
    /// payload length (extents cover the file completely, no gaps).
    ///
    /// # Panics
    /// Panics when the lengths do not tile the payload — build-time
    /// misuse, not a data-dependent condition.
    pub fn compute(payload: &[u8], extent_lens: &[u32]) -> ExtentFooter {
        let mut offsets = Vec::with_capacity(extent_lens.len());
        let mut lens = Vec::with_capacity(extent_lens.len());
        let mut crcs = Vec::with_capacity(extent_lens.len());
        let mut off = 0u64;
        for &len in extent_lens {
            if len == 0 {
                continue;
            }
            let start = off as usize;
            let end = start + len as usize;
            assert!(end <= payload.len(), "extent past payload end");
            offsets.push(off);
            lens.push(len);
            crcs.push(crc32(&payload[start..end]));
            off += u64::from(len);
        }
        assert_eq!(off, payload.len() as u64, "extents do not tile payload");
        ExtentFooter {
            payload_len: payload.len() as u64,
            offsets,
            lens,
            crcs,
        }
    }

    /// Serialize table + trailer (the bytes appended after the
    /// payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() as usize);
        for (&len, &crc) in self.lens.iter().zip(&self.crcs) {
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&crc.to_le_bytes());
        }
        let table_crc = crc32(&out);
        out.extend_from_slice(&table_crc.to_le_bytes());
        out.extend_from_slice(&self.payload_len.to_le_bytes());
        out.extend_from_slice(&(self.lens.len() as u32).to_le_bytes());
        out.extend_from_slice(&FOOTER_VERSION.to_le_bytes());
        out.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
        out
    }

    /// Total bytes [`Self::encode`] appends (table + trailer).
    pub fn encoded_len(&self) -> u64 {
        self.lens.len() as u64 * 8 + TRAILER_LEN
    }

    /// Payload length recorded in the trailer (= the footer's file
    /// offset).
    pub fn payload_len(&self) -> u64 {
        self.payload_len
    }

    /// Number of checksummed extents.
    pub fn num_extents(&self) -> usize {
        self.lens.len()
    }

    /// Extent geometry by table position: `(offset, len, crc)`.
    pub fn extent(&self, i: usize) -> (u64, u32, u32) {
        (self.offsets[i], self.lens[i], self.crcs[i])
    }

    /// Parse the trailer of a file of `file_len` bytes (`trailer` is
    /// its last [`TRAILER_LEN`] bytes) and return `(payload_len,
    /// table_len)` for the follow-up table read.
    pub fn decode_trailer(trailer: &[u8], file_len: u64, file: &str) -> Result<(u64, u64)> {
        let corrupt = |what: &str| {
            corrupt_extent(
                file,
                file_len.saturating_sub(TRAILER_LEN),
                TRAILER_LEN,
                what,
            )
        };
        if trailer.len() as u64 != TRAILER_LEN {
            return Err(corrupt("trailer truncated"));
        }
        let u32_at = |i: usize| u32::from_le_bytes(trailer[i..i + 4].try_into().expect("4 bytes"));
        if u32_at(20) != FOOTER_MAGIC {
            return Err(corrupt("missing checksum footer (incomplete build?)"));
        }
        if u32_at(16) != FOOTER_VERSION {
            return Err(corrupt("unsupported footer version"));
        }
        let payload_len = u64::from_le_bytes(trailer[4..12].try_into().expect("8 bytes"));
        let n_entries = u64::from(u32_at(12));
        let table_len = n_entries * 8;
        if payload_len
            .checked_add(table_len)
            .and_then(|v| v.checked_add(TRAILER_LEN))
            != Some(file_len)
        {
            return Err(corrupt("footer geometry inconsistent with file size"));
        }
        Ok((payload_len, table_len))
    }

    /// Parse table + trailer read from `payload_len` onward. `bytes`
    /// is the whole footer region (`table_len + TRAILER_LEN` bytes).
    pub fn decode(bytes: &[u8], file_len: u64, file: &str) -> Result<ExtentFooter> {
        if (bytes.len() as u64) < TRAILER_LEN {
            return Err(corrupt_extent(
                file,
                0,
                bytes.len() as u64,
                "footer truncated",
            ));
        }
        let trailer = &bytes[bytes.len() - TRAILER_LEN as usize..];
        let (payload_len, table_len) = Self::decode_trailer(trailer, file_len, file)?;
        let table = &bytes[..bytes.len() - TRAILER_LEN as usize];
        if table.len() as u64 != table_len {
            return Err(corrupt_extent(
                file,
                payload_len,
                bytes.len() as u64,
                "footer table length mismatch",
            ));
        }
        let stored_crc = u32::from_le_bytes(trailer[0..4].try_into().expect("4 bytes"));
        if crc32(table) != stored_crc {
            return Err(corrupt_extent(
                file,
                payload_len,
                table_len,
                "checksum table corrupt",
            ));
        }
        let n = table.len() / 8;
        let mut offsets = Vec::with_capacity(n);
        let mut lens = Vec::with_capacity(n);
        let mut crcs = Vec::with_capacity(n);
        let mut off = 0u64;
        for i in 0..n {
            let len = u32::from_le_bytes(table[i * 8..i * 8 + 4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(table[i * 8 + 4..i * 8 + 8].try_into().expect("4 bytes"));
            if len == 0 {
                return Err(corrupt_extent(
                    file,
                    payload_len,
                    table_len,
                    "zero-length extent entry",
                ));
            }
            offsets.push(off);
            lens.push(len);
            crcs.push(crc);
            off += u64::from(len);
        }
        if off != payload_len {
            return Err(corrupt_extent(
                file,
                payload_len,
                table_len,
                "extents do not tile payload",
            ));
        }
        Ok(ExtentFooter {
            payload_len,
            offsets,
            lens,
            crcs,
        })
    }

    /// Verify one read extent against its recorded checksum. The read
    /// must match a build-time extent exactly (engine reads are the
    /// extents the build wrote); a lookup miss means the index that
    /// produced the read is itself inconsistent with this file.
    pub fn verify(&self, file: &str, offset: u64, bytes: &[u8]) -> Result<()> {
        let len = bytes.len() as u64;
        let i = self.offsets.partition_point(|&o| o < offset);
        if i >= self.offsets.len() || self.offsets[i] != offset || u64::from(self.lens[i]) != len {
            return Err(corrupt_extent(
                file,
                offset,
                len,
                "extent not in checksum table",
            ));
        }
        if crc32(bytes) != self.crcs[i] {
            return Err(corrupt_extent(file, offset, len, "checksum mismatch"));
        }
        Ok(())
    }

    /// Split a fully read file into its verified payload: parse the
    /// footer from the tail, check the table, and verify every extent.
    /// Used for whole-file reads (the meta file, offline verification).
    pub fn split_verified<'a>(raw: &'a [u8], file: &str) -> Result<&'a [u8]> {
        let file_len = raw.len() as u64;
        if file_len < TRAILER_LEN {
            return Err(corrupt_extent(
                file,
                0,
                file_len,
                "file shorter than footer trailer",
            ));
        }
        let trailer = &raw[raw.len() - TRAILER_LEN as usize..];
        let (payload_len, table_len) = Self::decode_trailer(trailer, file_len, file)?;
        let footer = Self::decode(&raw[payload_len as usize..], file_len, file)?;
        let _ = table_len;
        let payload = &raw[..payload_len as usize];
        for i in 0..footer.num_extents() {
            let (off, len, _) = footer.extent(i);
            footer.verify(
                file,
                off,
                &payload[off as usize..(off + u64::from(len)) as usize],
            )?;
        }
        Ok(payload)
    }
}

/// Build a [`MlocError::CorruptExtent`] with context.
pub(crate) fn corrupt_extent(file: &str, offset: u64, len: u64, what: &str) -> MlocError {
    MlocError::CorruptExtent {
        file: file.to_string(),
        offset,
        len,
        what: what.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    fn sample() -> (Vec<u8>, Vec<u32>) {
        let payload: Vec<u8> = (0..200u8).collect();
        let lens = vec![14u32, 0, 86, 100];
        (payload, lens)
    }

    #[test]
    fn footer_roundtrip_and_verify() {
        let (payload, lens) = sample();
        let footer = ExtentFooter::compute(&payload, &lens);
        assert_eq!(footer.num_extents(), 3, "zero-length extents dropped");
        let mut file = payload.clone();
        file.extend_from_slice(&footer.encode());
        assert_eq!(
            file.len() as u64,
            footer.payload_len() + footer.encoded_len()
        );

        let decoded = ExtentFooter::decode(&file[payload.len()..], file.len() as u64, "f").unwrap();
        assert_eq!(decoded, footer);
        decoded.verify("f", 0, &payload[0..14]).unwrap();
        decoded.verify("f", 14, &payload[14..100]).unwrap();
        decoded.verify("f", 100, &payload[100..200]).unwrap();
        assert_eq!(
            ExtentFooter::split_verified(&file, "f").unwrap(),
            &payload[..]
        );
    }

    #[test]
    fn verify_rejects_wrong_geometry_and_corruption() {
        let (payload, lens) = sample();
        let footer = ExtentFooter::compute(&payload, &lens);
        // Not an extent boundary.
        assert!(footer.verify("f", 1, &payload[1..15]).is_err());
        // Right offset, wrong length.
        assert!(footer.verify("f", 0, &payload[0..10]).is_err());
        // Flipped byte.
        let mut bad = payload[14..100].to_vec();
        bad[3] ^= 0x40;
        let err = footer.verify("f", 14, &bad).unwrap_err();
        match err {
            MlocError::CorruptExtent { offset, len, .. } => {
                assert_eq!((offset, len), (14, 86));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn torn_or_tampered_footer_is_detected() {
        let (payload, lens) = sample();
        let footer = ExtentFooter::compute(&payload, &lens);
        let mut file = payload.clone();
        file.extend_from_slice(&footer.encode());

        // Truncation destroys the trailer.
        for cut in [1usize, 10, 23, 30] {
            let torn = &file[..file.len() - cut];
            assert!(
                ExtentFooter::split_verified(torn, "f").is_err(),
                "cut {cut}"
            );
        }
        // A payload flip fails extent verification.
        let mut flipped = file.clone();
        flipped[50] ^= 0x01;
        assert!(ExtentFooter::split_verified(&flipped, "f").is_err());
        // A table flip fails the table CRC.
        let mut bad_table = file.clone();
        bad_table[payload.len() + 2] ^= 0x01;
        assert!(ExtentFooter::split_verified(&bad_table, "f").is_err());
        // A trailer flip fails magic/geometry/CRC checks.
        for i in 0..TRAILER_LEN as usize {
            let mut bad = file.clone();
            let pos = bad.len() - 1 - i;
            bad[pos] ^= 0x80;
            assert!(
                ExtentFooter::split_verified(&bad, "f").is_err(),
                "trailer byte {i} flip undetected"
            );
        }
    }

    #[test]
    fn empty_payload_footer() {
        let footer = ExtentFooter::compute(&[], &[]);
        let file = footer.encode();
        assert_eq!(file.len() as u64, TRAILER_LEN);
        let decoded = ExtentFooter::decode(&file, file.len() as u64, "f").unwrap();
        assert_eq!(decoded.num_extents(), 0);
        assert_eq!(
            ExtentFooter::split_verified(&file, "f").unwrap(),
            &[] as &[u8]
        );
    }

    mod corruption_props {
        use super::*;
        use proptest::prelude::*;

        /// A checksummed file image: random payload split into two
        /// extents, footer appended.
        fn image(payload: &[u8], cut: usize) -> Vec<u8> {
            let lens = [cut as u32, (payload.len() - cut) as u32];
            let footer = ExtentFooter::compute(payload, &lens);
            let mut file = payload.to_vec();
            file.extend_from_slice(&footer.encode());
            file
        }

        proptest! {
            // CRC32 detects every single-byte corruption, wherever it
            // lands: payload (extent CRC), table (table CRC), or
            // trailer (magic/version/geometry/CRC checks).
            #[test]
            fn any_single_byte_flip_is_detected(
                payload in proptest::collection::vec(any::<u8>(), 1..300),
                split in any::<usize>(),
                pos in any::<usize>(),
                mask in 1u8..=255u8,
            ) {
                let mut file = image(&payload, split % (payload.len() + 1));
                prop_assert!(ExtentFooter::split_verified(&file, "f").is_ok());
                let pos = pos % file.len();
                file[pos] ^= mask;
                prop_assert!(
                    ExtentFooter::split_verified(&file, "f").is_err(),
                    "flip at {pos} of {} undetected", file.len()
                );
            }

            // Any strict truncation (a torn write) is detected.
            #[test]
            fn any_truncation_is_detected(
                payload in proptest::collection::vec(any::<u8>(), 1..300),
                split in any::<usize>(),
                keep in any::<usize>(),
            ) {
                let mut file = image(&payload, split % (payload.len() + 1));
                file.truncate(keep % file.len());
                prop_assert!(ExtentFooter::split_verified(&file, "f").is_err());
            }

            // Arbitrary junk never decodes as a valid footer and never
            // panics (a 2^-32 CRC collision would also need valid
            // magic, version, and geometry).
            #[test]
            fn arbitrary_bytes_never_panic(
                junk in proptest::collection::vec(any::<u8>(), 0..400),
            ) {
                let _ = ExtentFooter::split_verified(&junk, "f");
                let _ = ExtentFooter::decode(&junk, junk.len() as u64, "f");
                let _ = ExtentFooter::decode_trailer(&junk, junk.len() as u64, "f");
            }
        }
    }
}
