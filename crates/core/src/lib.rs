//! MLOC: a multi-level layout optimization framework for compressed
//! scientific data exploration with heterogeneous access patterns.
//!
//! This crate reproduces the system of Gong et al. (ICPP 2012). A
//! dataset of double-precision points over a multi-dimensional grid is
//! reorganized through a pipeline of *layout levels*, each optimizing
//! one access pattern:
//!
//! * **V — value binning** ([`binning`]): points are placed into
//!   equal-frequency value bins; one data file + one index file per bin
//!   ("subfiling", §III-C). Region queries with value constraints read
//!   only the relevant bins, and *aligned* bins are answered from the
//!   index alone.
//! * **S — spatial chunking** ([`array`], `mloc-hilbert`): the domain
//!   is chunked and chunks are laid out in Hilbert order, so spatially
//!   constrained queries read contiguous extents.
//! * **M — multi-resolution** ([`plod`]): each double is split into 7
//!   byte-groups (2+1+1+1+1+1+1); storing same-position bytes together
//!   lets a query fetch only a precision prefix (PLoD). Subset-based
//!   multi-resolution via hierarchical Hilbert ordering is also
//!   supported.
//! * **C — compression** (`mloc-compress`): every storage unit is
//!   compressed with a pluggable codec (DEFLATE-style byte columns for
//!   MLOC-COL, ISOBAR for MLOC-ISO, ISABELA for MLOC-ISA).
//!
//! The nesting order of the levels inside each bin file is configurable
//! ([`config::LevelOrder`]: V-M-S or V-S-M, Table VII). Queries run
//! serially or over the MPI-like runtime with column-order block
//! assignment (§III-D), and every query reports its I/O /
//! decompression / reconstruction component times (Fig. 6).
//!
//! # Quickstart
//!
//! ```
//! use mloc::prelude::*;
//! use mloc_pfs::MemBackend;
//!
//! // An 8x8 toy field.
//! let values: Vec<f64> = (0..64).map(|i| i as f64).collect();
//! let backend = MemBackend::new();
//! let config = MlocConfig::builder(vec![8, 8])
//!     .chunk_shape(vec![4, 4])
//!     .num_bins(4)
//!     .build();
//! build_variable(&backend, "demo", "temp", &values, &config).unwrap();
//!
//! let store = MlocStore::open(&backend, "demo", "temp").unwrap();
//! // Region query: where is the value in [10, 20)?
//! let query = Query::region(10.0, 20.0);
//! let result = store.query_serial(&query).unwrap();
//! assert_eq!(result.positions().len(), 10);
//! ```

pub mod array;
pub mod binning;
pub mod build;
pub mod cache;
pub mod config;
pub mod dataset;
pub mod degrade;
pub mod exec;
pub mod fileorg;
pub mod fusion;
pub mod index;
pub mod integrity;
pub mod metrics;
pub mod plod;
pub mod progressive;
pub mod query;
pub mod repair;
pub mod store;
pub mod verify;
mod wire;

pub use array::{ChunkGrid, Region};
pub use binning::BinSpec;
pub use build::{build_variable, BuildReport, StreamingBuilder};
pub use cache::{BlockCache, ByteView, CacheStats};
pub use config::{ConfigBuilder, LevelOrder, MlocConfig, PlodLevel};
pub use dataset::Dataset;
pub use degrade::{DegradationEvent, DegradationReport};
pub use exec::ParallelExecutor;
pub use fusion::{ExtentFuser, FusionStats};
pub use integrity::ExtentFooter;
pub use metrics::QueryMetrics;
pub use progressive::{ProgressiveQuery, ProgressiveStep};
pub use query::{Query, QueryKind, QueryOutput, QueryResult};
pub use store::MlocStore;
pub use verify::{verify_dataset, verify_variable, ExtentDamage, VerifyReport};

/// Observability re-export: span/counter/histogram profiles
/// ([`obs::Profile`]) returned by the `*_profiled` query entry points
/// and embedded in [`build::BuildReport`].
pub use mloc_bitmap as bitmap;
pub use mloc_obs as obs;

/// Convenient glob import for typical users.
pub mod prelude {
    pub use crate::array::Region;
    pub use crate::build::build_variable;
    pub use crate::cache::{BlockCache, CacheStats};
    pub use crate::config::{LevelOrder, MlocConfig, PlodLevel};
    pub use crate::degrade::{DegradationEvent, DegradationReport};
    pub use crate::exec::ParallelExecutor;
    pub use crate::fusion::{ExtentFuser, FusionStats};
    pub use crate::progressive::{ProgressiveQuery, ProgressiveStep};
    pub use crate::query::{Query, QueryOutput, QueryResult};
    pub use crate::store::MlocStore;
    pub use crate::verify::{verify_dataset, verify_variable, VerifyReport};
}

/// Errors from building or querying MLOC datasets.
#[derive(Debug)]
pub enum MlocError {
    /// Storage failure.
    Pfs(mloc_pfs::PfsError),
    /// Compressed-stream failure.
    Codec(mloc_compress::CodecError),
    /// Bitmap decode failure.
    Bitmap(mloc_bitmap::wah::BitmapError),
    /// Structurally invalid metadata or index.
    Corrupt(&'static str),
    /// A stored extent failed its checksum (or the checksum footer
    /// itself is damaged). Carries enough context to pinpoint the
    /// damage on disk.
    CorruptExtent {
        /// File containing the bad extent.
        file: String,
        /// Byte offset of the extent.
        offset: u64,
        /// Length of the extent in bytes.
        len: u64,
        /// What failed (checksum mismatch, torn footer, ...).
        what: String,
    },
    /// Invalid user input (query or configuration).
    Invalid(String),
}

impl MlocError {
    /// Whether this error indicates damaged stored data (as opposed to
    /// a storage-layer failure or bad user input).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            MlocError::Corrupt(_) | MlocError::CorruptExtent { .. } | MlocError::Bitmap(_)
        )
    }
}

impl std::fmt::Display for MlocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlocError::Pfs(e) => write!(f, "storage error: {e}"),
            MlocError::Codec(e) => write!(f, "codec error: {e}"),
            MlocError::Bitmap(e) => write!(f, "bitmap error: {e}"),
            MlocError::Corrupt(why) => write!(f, "corrupt dataset: {why}"),
            MlocError::CorruptExtent {
                file,
                offset,
                len,
                what,
            } => write!(
                f,
                "corrupt extent [{offset}, {offset}+{len}) in {file}: {what}"
            ),
            MlocError::Invalid(why) => write!(f, "invalid request: {why}"),
        }
    }
}

impl std::error::Error for MlocError {}

impl From<mloc_pfs::PfsError> for MlocError {
    fn from(e: mloc_pfs::PfsError) -> Self {
        MlocError::Pfs(e)
    }
}

impl From<mloc_compress::CodecError> for MlocError {
    fn from(e: mloc_compress::CodecError) -> Self {
        MlocError::Codec(e)
    }
}

impl From<mloc_bitmap::wah::BitmapError> for MlocError {
    fn from(e: mloc_bitmap::wah::BitmapError) -> Self {
        MlocError::Bitmap(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MlocError>;
