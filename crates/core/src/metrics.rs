//! Query performance metrics, decomposed as in the paper's Fig. 6:
//! I/O (simulated PFS time), decompression, and reconstruction
//! (filtering + assembling results).

use crate::degrade::DegradationReport;

/// Per-query metrics. Component times are critical-path values (the
/// slowest rank); per-rank detail is kept for scalability plots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryMetrics {
    /// Simulated I/O seconds (max over ranks).
    pub io_s: f64,
    /// Measured decompression seconds (max over ranks).
    pub decompress_s: f64,
    /// Measured reconstruction/filtering seconds (max over ranks).
    pub reconstruct_s: f64,
    /// Response time: max over ranks of that rank's io + cpu.
    pub response_s: f64,
    /// Total bytes read (index + data).
    pub bytes_read: u64,
    /// Bytes read from index files.
    pub index_bytes: u64,
    /// Bytes read from data files.
    pub data_bytes: u64,
    /// Seeks paid in the simulated PFS.
    pub seeks: u64,
    /// Bins touched by the query.
    pub bins_touched: usize,
    /// Bins answered from the index alone.
    pub aligned_bins: usize,
    /// Chunks touched by the query.
    pub chunks_touched: usize,
    /// Ranks used.
    pub nranks: usize,
    /// Block-cache hits across all ranks (0 without a cache).
    pub cache_hits: u64,
    /// Block-cache misses across all ranks (0 without a cache).
    pub cache_misses: u64,
    /// Compressed bytes the cache kept off the PFS. These extents stay
    /// visible in the trace (flagged cached) but are excluded from
    /// `bytes_read` and cost nothing in the simulator.
    pub bytes_saved: u64,
    /// Wants served by another session's physical read through the
    /// extent fuser (0 without fusion).
    pub fused_reads: u64,
    /// Bytes those fused wants kept off the PFS. Like cache-served
    /// bytes, they stay visible in the trace (flagged cached) but are
    /// excluded from `bytes_read` and cost nothing in the simulator —
    /// `bytes_read + bytes_saved + fused_bytes_saved` is a query's
    /// logical footprint, invariant across cache and fusion state.
    pub fused_bytes_saved: u64,
    /// Transient read errors retried away across all ranks.
    pub retries: u64,
    /// Simulated backoff seconds (max over ranks, like `io_s`).
    pub retry_wait_s: f64,
    /// Reads abandoned because the per-query retry backoff budget ran
    /// out, across all ranks.
    pub retries_exhausted: u64,
    /// Reads masked by falling through to a replica shard (0 without
    /// replication).
    pub read_repairs: u64,
    /// Compressed units answered at reduced PLoD precision because a
    /// non-base byte-group extent stayed unreadable after retries.
    pub degraded_units: u64,
    /// Per-unit detail of any precision degradation.
    pub degradation: DegradationReport,
    /// Per-rank simulated I/O seconds.
    pub per_rank_io: Vec<f64>,
    /// Per-rank measured CPU seconds (decompress + reconstruct).
    pub per_rank_cpu: Vec<f64>,
}

impl QueryMetrics {
    /// Sum of the component critical paths — a pessimistic response
    /// estimate used when components are reported separately.
    pub fn component_sum(&self) -> f64 {
        self.io_s + self.decompress_s + self.reconstruct_s
    }

    /// Merge another query's metrics into an accumulating average
    /// (used by the experiment harness to average over 100 queries).
    pub fn accumulate(&mut self, other: &QueryMetrics) {
        self.io_s += other.io_s;
        self.decompress_s += other.decompress_s;
        self.reconstruct_s += other.reconstruct_s;
        self.response_s += other.response_s;
        self.bytes_read += other.bytes_read;
        self.index_bytes += other.index_bytes;
        self.data_bytes += other.data_bytes;
        self.seeks += other.seeks;
        self.bins_touched += other.bins_touched;
        self.aligned_bins += other.aligned_bins;
        self.chunks_touched += other.chunks_touched;
        self.nranks = other.nranks;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.bytes_saved += other.bytes_saved;
        self.fused_reads += other.fused_reads;
        self.fused_bytes_saved += other.fused_bytes_saved;
        self.retries += other.retries;
        self.retry_wait_s += other.retry_wait_s;
        self.retries_exhausted += other.retries_exhausted;
        self.read_repairs += other.read_repairs;
        self.degraded_units += other.degraded_units;
        self.degradation.merge(&other.degradation);
        // Element-wise accumulation keeps per-rank scalability data
        // through averaged runs. Rank counts can differ between queries
        // (e.g. a mixed harness); grow to the widest seen.
        accumulate_per_rank(&mut self.per_rank_io, &other.per_rank_io);
        accumulate_per_rank(&mut self.per_rank_cpu, &other.per_rank_cpu);
    }

    /// Divide accumulated sums by a query count. Integer counters round
    /// to nearest so small averages don't truncate to zero.
    pub fn scale(&mut self, queries: usize) {
        let q = queries.max(1) as f64;
        let avg = |v: u64| (v as f64 / q).round() as u64;
        self.io_s /= q;
        self.decompress_s /= q;
        self.reconstruct_s /= q;
        self.response_s /= q;
        self.bytes_read = avg(self.bytes_read);
        self.index_bytes = avg(self.index_bytes);
        self.data_bytes = avg(self.data_bytes);
        self.seeks = avg(self.seeks);
        self.bins_touched = (self.bins_touched as f64 / q).round() as usize;
        self.aligned_bins = (self.aligned_bins as f64 / q).round() as usize;
        self.chunks_touched = (self.chunks_touched as f64 / q).round() as usize;
        self.cache_hits = avg(self.cache_hits);
        self.cache_misses = avg(self.cache_misses);
        self.bytes_saved = avg(self.bytes_saved);
        self.fused_reads = avg(self.fused_reads);
        self.fused_bytes_saved = avg(self.fused_bytes_saved);
        self.retries = avg(self.retries);
        self.retry_wait_s /= q;
        self.retries_exhausted = avg(self.retries_exhausted);
        self.read_repairs = avg(self.read_repairs);
        self.degraded_units = avg(self.degraded_units);
        for v in self
            .per_rank_io
            .iter_mut()
            .chain(self.per_rank_cpu.iter_mut())
        {
            *v /= q;
        }
    }
}

fn accumulate_per_rank(acc: &mut Vec<f64>, other: &[f64]) {
    if acc.len() < other.len() {
        acc.resize(other.len(), 0.0);
    }
    for (a, &o) in acc.iter_mut().zip(other.iter()) {
        *a += o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_scale() {
        let mut acc = QueryMetrics::default();
        for _ in 0..4 {
            acc.accumulate(&QueryMetrics {
                io_s: 2.0,
                decompress_s: 1.0,
                reconstruct_s: 0.5,
                response_s: 3.5,
                bytes_read: 100,
                index_bytes: 40,
                data_bytes: 60,
                seeks: 8,
                bins_touched: 3,
                aligned_bins: 1,
                chunks_touched: 5,
                nranks: 2,
                per_rank_io: vec![2.0, 1.0],
                per_rank_cpu: vec![1.5, 0.5],
                ..Default::default()
            });
        }
        acc.scale(4);
        assert_eq!(acc.io_s, 2.0);
        assert_eq!(acc.response_s, 3.5);
        assert_eq!(acc.bytes_read, 100);
        assert_eq!(acc.bins_touched, 3);
        assert_eq!(acc.nranks, 2);
        assert_eq!(acc.component_sum(), 3.5);
        // Per-rank vectors survive averaging element-wise.
        assert_eq!(acc.per_rank_io, vec![2.0, 1.0]);
        assert_eq!(acc.per_rank_cpu, vec![1.5, 0.5]);
    }

    #[test]
    fn scale_rounds_instead_of_truncating() {
        let mut acc = QueryMetrics::default();
        for _ in 0..3 {
            acc.accumulate(&QueryMetrics {
                bytes_read: 2,
                seeks: 2,
                cache_hits: 1,
                ..Default::default()
            });
        }
        acc.scale(4);
        // 6/4 = 1.5 rounds to 2 (ties away from zero); 3/4 rounds to 1.
        // The old truncating cast reported 1 and 0.
        assert_eq!(acc.bytes_read, 2);
        assert_eq!(acc.seeks, 2);
        assert_eq!(acc.cache_hits, 1);
    }

    #[test]
    fn accumulate_grows_to_widest_rank_count() {
        let mut acc = QueryMetrics::default();
        acc.accumulate(&QueryMetrics {
            per_rank_io: vec![1.0],
            per_rank_cpu: vec![0.5],
            ..Default::default()
        });
        acc.accumulate(&QueryMetrics {
            per_rank_io: vec![1.0, 3.0],
            per_rank_cpu: vec![0.5, 0.25],
            ..Default::default()
        });
        acc.scale(2);
        assert_eq!(acc.per_rank_io, vec![1.0, 1.5]);
        assert_eq!(acc.per_rank_cpu, vec![0.5, 0.125]);
    }
}
