//! Precision-based Level of Detail (PLoD): byte-group decomposition of
//! doubles.
//!
//! Paper §III-B.3 / Figure 3: each IEEE-754 double is split into seven
//! parts — the first holds the two most significant bytes (sign, the
//! full exponent and the leading mantissa bits), the remaining six one
//! byte each. Bytes at the same position across all values are stored
//! contiguously, so fetching the first `L` parts reconstructs every
//! value at reduced precision. Missing bytes are filled with `0x7F`
//! (first) and `0xFF` (rest) rather than zeros: zeros would always
//! underestimate the magnitude, while the midpoint fill halves the
//! expected error.

use crate::config::{PlodLevel, NUM_PARTS};
use crate::{MlocError, Result};

/// Byte width of each PLoD part (most significant first).
pub const PART_BYTES: [usize; NUM_PARTS] = [2, 1, 1, 1, 1, 1, 1];

/// Byte offset of each part within the big-endian representation.
const PART_OFFSETS: [usize; NUM_PARTS] = [0, 2, 3, 4, 5, 6, 7];

/// Split values into the seven PLoD byte-group buffers.
///
/// Part `p` of value `i` lives at `parts[p][i * PART_BYTES[p]..]`, in
/// big-endian (most-significant-first) byte order.
///
/// The kernel writes each part contiguously in one streaming pass
/// (output-major instead of value-major): the destination slice of a
/// part is carved out once per part, so the inner loop is a bounds-
/// check-free byte gather.
pub fn split(values: &[f64]) -> Vec<Vec<u8>> {
    let n = values.len();
    let mut parts: Vec<Vec<u8>> = PART_BYTES.iter().map(|&w| vec![0u8; n * w]).collect();
    // Part 0: the two most significant bytes of every value.
    for (dst, &v) in parts[0].chunks_exact_mut(2).zip(values) {
        let be = v.to_be_bytes();
        dst[0] = be[0];
        dst[1] = be[1];
    }
    // Parts 1..7: one byte per value, contiguous per part.
    for (p, part) in parts.iter_mut().enumerate().skip(1) {
        let off = PART_OFFSETS[p];
        for (dst, &v) in part.iter_mut().zip(values) {
            *dst = v.to_be_bytes()[off];
        }
    }
    parts
}

/// The midpoint fill pattern for a value keeping `filled_bytes` bytes,
/// as raw big-endian `f64` bits: first dummy byte `0x7F`, the rest
/// `0xFF` (≈ the middle of the truncated range).
fn fill_bits(filled_bytes: usize) -> u64 {
    if filled_bytes >= 8 {
        return 0;
    }
    let mut be = [0u8; 8];
    be[filled_bytes] = 0x7F;
    for b in be.iter_mut().skip(filled_bytes + 1) {
        *b = 0xFF;
    }
    u64::from_be_bytes(be)
}

/// Reassemble values from the first `level.num_parts()` byte-group
/// buffers; missing bytes get the midpoint fill.
///
/// # Panics
/// Panics if fewer buffers than the level requires are supplied or
/// their lengths disagree.
pub fn assemble(parts: &[&[u8]], level: PlodLevel) -> Vec<f64> {
    let mut out = Vec::new();
    assemble_into(parts, level, &mut out);
    out
}

/// [`assemble`] writing into a caller-owned buffer (cleared first), so
/// a per-chunk loop reuses one scratch allocation instead of growing a
/// fresh `Vec<f64>` per chunk.
///
/// The kernel is value-major: every value's bits are built in a
/// register from the fill pattern plus one byte per tail part, then
/// stored exactly once. Part slices are pinned to length `n` up front
/// so the per-value loads are bounds-check free.
///
/// # Panics
/// Panics if fewer buffers than the level requires are supplied or
/// their lengths disagree.
pub fn assemble_into(parts: &[&[u8]], level: PlodLevel, out: &mut Vec<f64>) {
    let used = level.num_parts();
    assert!(
        parts.len() >= used,
        "need {used} parts, got {}",
        parts.len()
    );
    let n = parts[0].len() / PART_BYTES[0];
    for p in 0..used {
        assert_eq!(
            parts[p].len(),
            n * PART_BYTES[p],
            "part {p} length mismatch"
        );
    }

    let base = fill_bits(level.num_bytes());
    out.clear();
    out.reserve(n);
    let p0 = &parts[0][..n * 2];
    let tails = &parts[1..used];
    for i in 0..n {
        let mut bits = base | (u64::from(u16::from_be_bytes([p0[2 * i], p0[2 * i + 1]])) << 48);
        for (p, t) in tails.iter().enumerate() {
            bits |= u64::from(t[i]) << (8 * (7 - PART_OFFSETS[p + 1]));
        }
        out.push(f64::from_bits(bits));
    }
}

/// Reassemble with zero fill instead of midpoint fill — kept only for
/// the design-choice ablation (the paper explicitly rejects zero fill).
///
/// Unlike the hot-path [`assemble_into`] (whose inputs come from
/// length-checked decompression and may assert), this takes arbitrary
/// caller slices and validates them: too few parts, a ragged base
/// part, or a tail part disagreeing with the base part's value count
/// is [`MlocError::Corrupt`], never a panic or silently dropped tail.
pub fn assemble_zero_fill(parts: &[&[u8]], level: PlodLevel) -> Result<Vec<f64>> {
    let used = level.num_parts();
    if parts.len() < used {
        return Err(MlocError::Corrupt("too few PLoD parts"));
    }
    if !parts[0].len().is_multiple_of(PART_BYTES[0]) {
        return Err(MlocError::Corrupt("ragged PLoD base part"));
    }
    let n = parts[0].len() / PART_BYTES[0];
    for (p, part) in parts.iter().enumerate().take(used) {
        if part.len() != n * PART_BYTES[p] {
            return Err(MlocError::Corrupt("PLoD part length mismatch"));
        }
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut be = [0u8; 8];
        for p in 0..used {
            let w = PART_BYTES[p];
            be[PART_OFFSETS[p]..PART_OFFSETS[p] + w].copy_from_slice(&parts[p][i * w..(i + 1) * w]);
        }
        out.push(f64::from_be_bytes(be));
    }
    Ok(out)
}

/// Refine already-assembled values in place from `part_idx` parts to
/// `part_idx + 1` parts: each affected value gets its true byte at the
/// part's offset (replacing the `0x7F` fill seed) and the fill pattern
/// re-seeded one byte further down — one byte merged per value, no
/// access to earlier parts, no full reassembly.
///
/// `out_idx[i]` addresses the value in `values` and `val_idx[i]` its
/// byte in `part` (tail parts are one byte per value): a progressive
/// query's sorted result interleaves many units, so refinement routes
/// each unit's part bytes through the mapping captured at step 0.
/// After refining parts `1..L` in order, a value is bit-identical to
/// [`assemble`] at level `L`.
pub fn refine_into(
    values: &mut [f64],
    out_idx: &[u32],
    val_idx: &[u32],
    part: &[u8],
    part_idx: usize,
) -> Result<()> {
    if part_idx == 0 || part_idx >= NUM_PARTS {
        return Err(MlocError::Corrupt("refined part index out of range"));
    }
    if out_idx.len() != val_idx.len() {
        return Err(MlocError::Corrupt("refinement index lists disagree"));
    }
    debug_assert_eq!(PART_BYTES[part_idx], 1);
    let off = PART_OFFSETS[part_idx];
    let shift = (8 * (7 - off)) as u32;
    for (&oi, &vi) in out_idx.iter().zip(val_idx) {
        let b = *part
            .get(vi as usize)
            .ok_or(MlocError::Corrupt("refinement byte index out of range"))?;
        let v = values
            .get_mut(oi as usize)
            .ok_or(MlocError::Corrupt("refinement value index out of range"))?;
        let mut bits = v.to_bits();
        bits = (bits & !(0xFFu64 << shift)) | (u64::from(b) << shift);
        if off + 1 < 8 {
            // The next byte down flips from all-ones padding to the
            // new level's 0x7F fill seed.
            let s2 = (8 * (7 - (off + 1))) as u32;
            bits = (bits & !(0xFFu64 << s2)) | (0x7Fu64 << s2);
        }
        *v = f64::from_bits(bits);
    }
    Ok(())
}

/// Upper bound on the relative reconstruction error of a PLoD level
/// for normal doubles.
///
/// A level keeps `k = 4 + 8·(level − 1)` mantissa bits. The midpoint
/// fill replaces the dropped low field with (just below) its midpoint,
/// so the absolute significand error is at most half the weight of the
/// first missing mantissa bit — `2^(52−k−1)` ulps — and the relative
/// error at most `2^-(k+1)` against the implicit leading one. The
/// bound is tight: a value whose kept mantissa bits are zero and whose
/// dropped bits are all ones reaches within a factor `1/(1 + 2^-k)`
/// of it (asserted under randomized test below).
pub fn relative_error_bound(level: PlodLevel) -> f64 {
    if level.is_full() {
        return 0.0;
    }
    // Bytes kept: 2 + (level-1) ⇒ mantissa bits kept: 4 + 8*(level-1).
    let mantissa_bits = 4 + 8 * (level.level() as i32 - 1);
    2f64.powi(-(mantissa_bits + 1))
}

/// Error bound of the rejected zero-fill strategy at the same level:
/// the full weight of the dropped field, `2^-k` — twice the midpoint
/// bound. Kept alongside [`assemble_zero_fill`] for the ablation.
pub fn zero_fill_error_bound(level: PlodLevel) -> f64 {
    if level.is_full() {
        return 0.0;
    }
    let mantissa_bits = 4 + 8 * (level.level() as i32 - 1);
    2f64.powi(-mantissa_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlodLevel;

    fn sample_values() -> Vec<f64> {
        vec![
            0.0,
            1.0,
            -1.0,
            std::f64::consts::PI,
            -2.718281828459045e10,
            6.02214076e23,
            -1.602176634e-19,
            1234.5678,
        ]
    }

    #[test]
    fn full_precision_roundtrip() {
        let values = sample_values();
        let parts = split(&values);
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let back = assemble(&refs, PlodLevel::FULL);
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn part_sizes() {
        let values = sample_values();
        let parts = split(&values);
        assert_eq!(parts.len(), NUM_PARTS);
        assert_eq!(parts[0].len(), values.len() * 2);
        for part in parts.iter().skip(1) {
            assert_eq!(part.len(), values.len());
        }
        // Total bytes = 8 per value.
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, values.len() * 8);
    }

    #[test]
    fn error_shrinks_with_level() {
        let values: Vec<f64> = (1..1000).map(|i| (i as f64).sqrt() * 100.0).collect();
        let parts = split(&values);
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let mut prev_err = f64::MAX;
        for level in 1..=7u8 {
            let lvl = PlodLevel::new(level).unwrap();
            let approx = assemble(&refs[..lvl.num_parts()], lvl);
            let err = values
                .iter()
                .zip(&approx)
                .map(|(a, b)| ((a - b) / a).abs())
                .fold(0.0f64, f64::max);
            assert!(err <= prev_err, "level {level}: {err} > {prev_err}");
            assert!(
                err <= relative_error_bound(lvl) * (1.0 + 1e-12),
                "level {level}: err {err} exceeds bound {}",
                relative_error_bound(lvl)
            );
            prev_err = err;
        }
    }

    #[test]
    fn three_bytes_is_paper_accurate() {
        // Paper: PLoD level 2 (3 bytes) has max relative error ~0.008%.
        let values: Vec<f64> = (1..100_000).map(|i| 300.0 + (i as f64) * 0.017).collect();
        let parts = split(&values);
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let lvl = PlodLevel::new(2).unwrap();
        let approx = assemble(&refs[..2], lvl);
        let max_rel = values
            .iter()
            .zip(&approx)
            .map(|(a, b)| ((a - b) / a).abs())
            .fold(0.0f64, f64::max);
        assert!(max_rel < 2.5e-4, "max_rel {max_rel}");
        // Mean-value analysis error far below the point-wise bound.
        let mean_orig: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let mean_plod: f64 = approx.iter().sum::<f64>() / approx.len() as f64;
        assert!(((mean_orig - mean_plod) / mean_orig).abs() < 1e-4);
    }

    #[test]
    fn midpoint_fill_beats_zero_fill() {
        let values: Vec<f64> = (1..5000).map(|i| (i as f64) * 0.37 + 11.1).collect();
        let parts = split(&values);
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let lvl = PlodLevel::new(2).unwrap();
        let mid = assemble(&refs[..2], lvl);
        let zero = assemble_zero_fill(&refs[..2], lvl).unwrap();
        let err = |approx: &[f64]| {
            values
                .iter()
                .zip(approx)
                .map(|(a, b)| ((a - b) / a).abs())
                .sum::<f64>()
        };
        let (e_mid, e_zero) = (err(&mid), err(&zero));
        assert!(
            e_mid < e_zero / 1.5,
            "midpoint {e_mid} not clearly better than zero {e_zero}"
        );
        // Zero fill always underestimates the magnitude, and stays
        // within its own (doubled) bound.
        assert!(values.iter().zip(&zero).all(|(a, b)| b.abs() <= a.abs()));
        let max_zero = values
            .iter()
            .zip(&zero)
            .map(|(a, b)| ((a - b) / a).abs())
            .fold(0.0f64, f64::max);
        assert!(max_zero <= zero_fill_error_bound(lvl));
        assert_eq!(zero_fill_error_bound(lvl), 2.0 * relative_error_bound(lvl));
        assert_eq!(zero_fill_error_bound(PlodLevel::FULL), 0.0);
    }

    #[test]
    fn zero_fill_validates_part_lengths() {
        let values: Vec<f64> = (0..16).map(|i| i as f64 + 0.5).collect();
        let parts = split(&values);
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let lvl = PlodLevel::new(3).unwrap();
        assert_eq!(
            assemble_zero_fill(&refs[..3], lvl).unwrap().len(),
            values.len()
        );
        // Too few parts for the level.
        assert!(assemble_zero_fill(&refs[..2], lvl).is_err());
        // Ragged base part (odd byte count).
        let bad0 = &parts[0][..parts[0].len() - 1];
        assert!(assemble_zero_fill(&[bad0, &parts[1], &parts[2]], lvl).is_err());
        // Tail part shorter than the base part implies: before the fix
        // this indexed out of bounds (panic), now it is a Corrupt error.
        let short1 = &parts[1][..values.len() - 1];
        assert!(assemble_zero_fill(&[&parts[0], short1, &parts[2]], lvl).is_err());
        // Tail part longer than the base part implies: before the fix
        // the extra bytes were silently ignored.
        let mut long2 = parts[2].clone();
        long2.push(0xAB);
        assert!(assemble_zero_fill(&[&parts[0], &parts[1], &long2], lvl).is_err());
    }

    /// Deterministic xorshift64* generator for the randomized tests.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[test]
    fn error_bound_is_tight_but_safe() {
        // Safe: no normal double, over a wide range of exponents and
        // random mantissas, ever exceeds the bound. Tight: adversarial
        // mantissas (kept bits zero, dropped bits all ones) get within
        // 10% of it. Exhaustive over every non-full level.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut values: Vec<f64> = Vec::new();
        for _ in 0..20_000 {
            let r = xorshift(&mut state);
            // Random sign/mantissa, exponent clamped to normal range.
            let exp = 1 + (r >> 52) % 2046;
            let bits = (r & 0x800F_FFFF_FFFF_FFFF) | (exp << 52);
            values.push(f64::from_bits(bits));
        }
        for level in 1..7u8 {
            let lvl = PlodLevel::new(level).unwrap();
            let bound = relative_error_bound(lvl);
            let kept = 4 + 8 * (i32::from(level) - 1);
            // Adversarial values for this level: kept mantissa bits
            // zero, dropped bits all ones (both signs, varied exponent).
            let dropped_ones = (1u64 << (52 - kept)) - 1;
            let mut adversarial = Vec::new();
            for exp in [1u64, 512, 1023, 1536, 2046] {
                adversarial.push(f64::from_bits((exp << 52) | dropped_ones));
                adversarial.push(f64::from_bits((1u64 << 63) | (exp << 52) | dropped_ones));
            }
            let all: Vec<f64> = values.iter().chain(&adversarial).copied().collect();
            let parts = split(&all);
            let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
            let approx = assemble(&refs[..lvl.num_parts()], lvl);
            let max_rel = all
                .iter()
                .zip(&approx)
                .map(|(a, b)| ((a - b) / a).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_rel <= bound,
                "level {level}: err {max_rel:e} exceeds bound {bound:e}"
            );
            assert!(
                max_rel >= 0.9 * bound,
                "level {level}: bound {bound:e} not tight (max err {max_rel:e})"
            );
        }
        assert_eq!(relative_error_bound(PlodLevel::FULL), 0.0);
    }

    #[test]
    fn refine_matches_assemble_at_each_level() {
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut values: Vec<f64> = Vec::new();
        for _ in 0..997 {
            let r = xorshift(&mut state);
            let exp = 1 + (r >> 52) % 2046;
            values.push(f64::from_bits((r & 0x800F_FFFF_FFFF_FFFF) | (exp << 52)));
        }
        let parts = split(&values);
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let idx: Vec<u32> = (0..values.len() as u32).collect();
        let mut current = assemble(&refs[..1], PlodLevel::new(1).unwrap());
        for (p, part) in parts.iter().enumerate().skip(1) {
            refine_into(&mut current, &idx, &idx, part, p).unwrap();
            let lvl = PlodLevel::new((p + 1) as u8).unwrap();
            let direct = assemble(&refs[..lvl.num_parts()], lvl);
            for (i, (a, b)) in current.iter().zip(&direct).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "part {p}, value {i}");
            }
        }
        // Full ladder ends bit-identical to the originals.
        for (a, b) in current.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn refine_addresses_scattered_values() {
        // Refinement through a (result index, byte index) mapping:
        // refine only the odd values of an interleaved result.
        let values: Vec<f64> = (1..=8).map(|i| (i as f64) * 3.7 + 0.123).collect();
        let parts = split(&values);
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let coarse = assemble(&refs[..1], PlodLevel::new(1).unwrap());
        // Result holds the unit's values reversed.
        let mut result: Vec<f64> = coarse.iter().rev().copied().collect();
        let out_idx: Vec<u32> = (0..8).map(|i| 7 - i).collect();
        let val_idx: Vec<u32> = (0..8).collect();
        refine_into(&mut result, &out_idx, &val_idx, &parts[1], 1).unwrap();
        let direct = assemble(&refs[..2], PlodLevel::new(2).unwrap());
        for (i, d) in direct.iter().enumerate() {
            assert_eq!(result[7 - i].to_bits(), d.to_bits());
        }
    }

    #[test]
    fn refine_validates_inputs() {
        let mut vals = vec![1.0f64; 4];
        let part = vec![0u8; 4];
        // Part 0 is never refined; out-of-range parts rejected.
        assert!(refine_into(&mut vals, &[0], &[0], &part, 0).is_err());
        assert!(refine_into(&mut vals, &[0], &[0], &part, NUM_PARTS).is_err());
        // Mismatched index lists.
        assert!(refine_into(&mut vals, &[0, 1], &[0], &part, 1).is_err());
        // Out-of-range byte / value indices.
        assert!(refine_into(&mut vals, &[0], &[9], &part, 1).is_err());
        assert!(refine_into(&mut vals, &[9], &[0], &part, 1).is_err());
        assert!(refine_into(&mut vals, &[3], &[3], &part, 1).is_ok());
    }

    #[test]
    fn negative_values_keep_sign() {
        let values: Vec<f64> = (1..100).map(|i| -(i as f64) * 2.5).collect();
        let parts = split(&values);
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        for level in 1..=7u8 {
            let lvl = PlodLevel::new(level).unwrap();
            let approx = assemble(&refs[..lvl.num_parts()], lvl);
            assert!(approx.iter().all(|&v| v < 0.0), "level {level} lost signs");
        }
    }

    #[test]
    fn assemble_into_reuses_scratch_across_chunks() {
        let a: Vec<f64> = (0..2000).map(|i| (i as f64) * 1.5 - 7.0).collect();
        let b: Vec<f64> = (0..17).map(|i| (i as f64).exp()).collect();
        let mut scratch = Vec::new();
        for values in [&a, &b] {
            let parts = split(values);
            let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
            for level in 1..=7u8 {
                let lvl = PlodLevel::new(level).unwrap();
                assemble_into(&refs[..lvl.num_parts()], lvl, &mut scratch);
                assert_eq!(scratch, assemble(&refs[..lvl.num_parts()], lvl));
                assert_eq!(scratch.len(), values.len());
            }
        }
    }

    #[test]
    fn block_boundaries_are_seamless() {
        // Lengths around power-of-two boundaries (where a blocked or
        // vectorized kernel would switch to a tail loop) must not
        // disturb the split/assemble roundtrip.
        for n in [1023, 1024, 1025, 2051] {
            let values: Vec<f64> = (0..n).map(|i| (i as f64) * 0.013 - 4.2).collect();
            let parts = split(&values);
            let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
            let back = assemble(&refs, PlodLevel::FULL);
            for (x, y) in values.iter().zip(&back) {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn empty_input() {
        let parts = split(&[]);
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        assert!(assemble(&refs, PlodLevel::FULL).is_empty());
    }
}
