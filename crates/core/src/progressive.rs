//! Progressive streaming retrieval: a coarse answer now, precision
//! later, with a live error bound at every step.
//!
//! PLoD stores each double as seven byte-group parts, so a value query
//! does not have to fetch its full precision target in one shot. A
//! [`ProgressiveQuery`] plans the byte-group ladder once: step 0 runs
//! the ordinary engine at the base level (part 0 only) and returns a
//! usable result immediately; each [`ProgressiveQuery::next_refinement`]
//! pull then fetches exactly the next part's extents and merges them
//! into the already-returned values in place via [`plod::refine_into`]
//! — one byte per value, no reassembly, and no re-reading of index
//! headers, bitmaps, positions, or footers (all captured at step 0).
//!
//! Two invariants tie the ladder to the one-shot engine:
//!
//! * **Byte parity** — cold, the per-step `bytes_read` sum to exactly
//!   the one-shot query's `bytes_read`: both read the same extent set,
//!   just in a different order. Warm (shared cache/fuser), refinement
//!   pulls re-enter the block cache and extent fuser, so a step costs
//!   only the byte groups nobody has fetched yet.
//! * **Bit parity** — after the final step the result is
//!   byte-identical to the one-shot query in every execution mode.
//!
//! Value-*filtered* bins (misaligned against the value constraint) are
//! fetched at the target precision in step 0: refining them later
//! could change *which* points match, the same reason degradation
//! never touches them. Their bins are disjoint from the refinable
//! bins, so no extent is read twice.
//!
//! Degradation composes: a damaged non-base extent discovered during a
//! refinement pull caps that unit's ladder through the usual
//! [`DegradationReport`] path instead of failing the query, and the
//! per-step error bound accounts for every capped unit.

use crate::cache::{BlockKey, BlockPart, ByteView, CachedBlock};
use crate::config::PlodLevel;
use crate::degrade::{DegradationEvent, DegradationReport};
use crate::exec::ParallelExecutor;
use crate::fusion::coalesced_read_results;
use crate::metrics::QueryMetrics;
use crate::plod;
use crate::query::engine::RefineUnit;
use crate::query::plan::{make_plan, Plan, WorkUnit};
use crate::query::{Query, QueryResult};
use crate::store::MlocStore;
use crate::{MlocError, Result};
use mloc_obs::{Label, Profile};
use mloc_pfs::{simulate_reads, RankIo};
use std::sync::Arc;
use std::time::Instant;

/// One step of a progressive query: what arrived, what it cost, and
/// how precise the result now is.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveStep {
    /// 0 = the initial coarse answer; `k` = the k-th refinement pull.
    pub step: usize,
    /// PLoD level the refinable values sit at after this step (capped
    /// units may be coarser — the bound accounts for them).
    pub level: PlodLevel,
    /// Worst-case relative error bound over all returned values after
    /// this step (0.0 once everything is at full precision).
    pub error_bound: f64,
    /// Physical bytes this step read from the PFS.
    pub bytes_read: u64,
    /// Bytes this step served from the block cache instead.
    pub bytes_saved: u64,
    /// Bytes another session's in-flight read served (extent fusion).
    pub fused_bytes_saved: u64,
    /// Simulated PFS seconds for this step's reads.
    pub io_s: f64,
    /// Units whose ladder damaged extents have capped so far
    /// (cumulative).
    pub capped_units: u64,
    /// Whether the ladder is complete after this step.
    pub done: bool,
}

impl ProgressiveStep {
    /// The step's logical footprint — `bytes_read` plus bytes the
    /// cache and fuser kept off the PFS (the serve layer meters
    /// budgets in logical bytes, invariant across cache state).
    pub fn logical_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_saved + self.fused_bytes_saved
    }
}

/// Per-unit refinement state: the captured step-0 mapping plus the
/// unit's precision ceiling.
struct RefineState {
    unit: RefineUnit,
    /// Index into the sorted result's value array for each captured
    /// point (parallel to `unit.val_idx`).
    result_idx: Vec<u32>,
    /// Parts this unit can still reach: a damaged extent at part `p`
    /// sets `cap = p`, freezing the unit at level `p` forever (parts
    /// after a loss are undecodable by construction).
    cap: usize,
}

/// A pull-based progressive query handle. See the module docs.
///
/// Produced by [`ParallelExecutor::progressive`] (any rank count /
/// threading mode — step 0 runs through the normal executor) or
/// [`MlocStore::query_progressive`].
pub struct ProgressiveQuery<'s, 'a> {
    store: &'s MlocStore<'a>,
    exec: ParallelExecutor,
    query: Query,
    /// Parts the query's target level uses.
    target_parts: usize,
    /// Next tail part index to fetch == parts applied to refinable
    /// units so far.
    next_part: usize,
    result: QueryResult,
    units: Vec<RefineState>,
    steps: Vec<ProgressiveStep>,
    /// Cumulative metrics over all steps so far: byte counters are
    /// summed; component times are summed too (steps are sequential
    /// pulls, not parallel ranks).
    metrics: QueryMetrics,
    profile: Profile,
    profiled: bool,
    done: bool,
}

/// Fold one step's execution metrics into the cumulative report,
/// leaving the plan-shape fields (`bins_touched`, ...) alone.
fn add_step_metrics(acc: &mut QueryMetrics, other: &QueryMetrics) {
    acc.io_s += other.io_s;
    acc.decompress_s += other.decompress_s;
    acc.reconstruct_s += other.reconstruct_s;
    acc.response_s += other.response_s;
    acc.bytes_read += other.bytes_read;
    acc.index_bytes += other.index_bytes;
    acc.data_bytes += other.data_bytes;
    acc.seeks += other.seeks;
    acc.cache_hits += other.cache_hits;
    acc.cache_misses += other.cache_misses;
    acc.bytes_saved += other.bytes_saved;
    acc.fused_reads += other.fused_reads;
    acc.fused_bytes_saved += other.fused_bytes_saved;
    acc.retries += other.retries;
    acc.retry_wait_s += other.retry_wait_s;
    acc.degraded_units += other.degraded_units;
    acc.degradation.merge(&other.degradation);
}

impl<'s, 'a> ProgressiveQuery<'s, 'a> {
    pub(crate) fn start(
        exec: ParallelExecutor,
        store: &'s MlocStore<'a>,
        query: &Query,
        profiled: bool,
    ) -> Result<Self> {
        let t = Instant::now();
        let plan = make_plan(store, query)?;
        let target_parts = query.plod.num_parts();
        // The ladder needs a PLoD layout, a value output to refine,
        // scan semantics (membership probes read a handful of points;
        // a ladder saves nothing and the probe path has no capture),
        // and a target above the base level.
        let ladder = store.config().plod
            && query.wants_values()
            && query.points.is_none()
            && target_parts > 1;
        if !ladder {
            return Self::start_single_shot(exec, store, query, &plan, profiled);
        }

        // Split the plan by bin class. `value_filter` is a per-bin
        // property (all units of a misaligned bin carry it), so each
        // sub-plan owns whole bins and the two executions touch
        // disjoint files.
        let mut base_units: Vec<WorkUnit> = Vec::new();
        let mut filtered_units: Vec<WorkUnit> = Vec::new();
        for u in &plan.units {
            if u.value_filter {
                filtered_units.push(*u);
            } else {
                base_units.push(*u);
            }
        }
        let sub_plan = |units: Vec<WorkUnit>| Plan {
            units,
            bins_touched: plan.bins_touched,
            aligned_bins: plan.aligned_bins,
            chunks_touched: plan.chunks_touched,
        };

        let base_level = PlodLevel::new(1).expect("level 1 is valid");
        let base_query = query.clone().with_plod(base_level);
        let (res_a, m_a, prof_a, mut captured) =
            exec.execute_plan_capturing(store, &base_query, &sub_plan(base_units), profiled)?;
        // Deterministic order regardless of rank assignment, and
        // maximal read coalescing per refinement pull.
        captured.sort_by_key(|u| (u.bin, u.chunk_rank));

        // Value-filtered bins go straight to the target level — their
        // membership decision needs full-precision values.
        let filtered = if filtered_units.is_empty() {
            None
        } else if profiled {
            let (r, m, p) =
                exec.execute_plan_profiled(store, query, &sub_plan(filtered_units), None)?;
            Some((r, m, p))
        } else {
            let (r, m) = exec.execute_plan(store, query, &sub_plan(filtered_units), None)?;
            Some((r, m, Profile::default()))
        };

        let (mut positions, vals_a) = res_a.into_parts();
        let mut values = vals_a.unwrap_or_default();
        let mut metrics = m_a.clone();
        let mut profile = Profile::default();
        if profiled {
            profile.merge_from(prof_a);
        }
        let mut step_bytes = m_a.bytes_read;
        let mut step_saved = m_a.bytes_saved;
        let mut step_fused = m_a.fused_bytes_saved;
        let mut step_io = m_a.io_s;
        if let Some((r, m, p)) = filtered {
            let (p2, v2) = r.into_parts();
            positions.extend(p2);
            values.extend(v2.unwrap_or_default());
            add_step_metrics(&mut metrics, &m);
            if profiled {
                profile.merge_from(p);
            }
            step_bytes += m.bytes_read;
            step_saved += m.bytes_saved;
            step_fused += m.fused_bytes_saved;
            step_io += m.io_s;
        }
        metrics.bins_touched = plan.bins_touched;
        metrics.aligned_bins = plan.aligned_bins;
        metrics.chunks_touched = plan.chunks_touched;
        let result = QueryResult::from_parts(positions, Some(values));
        if result.len() > u32::MAX as usize {
            return Err(MlocError::Invalid(
                "progressive result too large to index".into(),
            ));
        }

        // Resolve each captured point to its slot in the sorted result.
        let rpos = result.positions();
        let mut units: Vec<RefineState> = Vec::with_capacity(captured.len());
        for unit in captured {
            let result_idx = unit
                .positions
                .iter()
                .map(|p| {
                    rpos.binary_search(p)
                        .map(|i| i as u32)
                        .map_err(|_| MlocError::Corrupt("captured position missing from result"))
                })
                .collect::<Result<Vec<u32>>>()?;
            units.push(RefineState {
                unit,
                result_idx,
                cap: target_parts,
            });
        }
        // Step-0 degradation (impossible at the base level today, but
        // kept total): a loss already caps the unit's ladder.
        for e in &metrics.degradation.events {
            if let Some(st) = units
                .iter_mut()
                .find(|s| s.unit.bin == e.bin && s.unit.chunk_rank == e.chunk_rank)
            {
                st.cap = st.cap.min(e.lost_part);
            }
        }

        let mut pq = ProgressiveQuery {
            store,
            exec,
            query: query.clone(),
            target_parts,
            next_part: if units.is_empty() { target_parts } else { 1 },
            result,
            units,
            steps: Vec::new(),
            metrics,
            profile,
            profiled,
            done: false,
        };
        pq.done = pq.next_part >= pq.target_parts;
        let step = ProgressiveStep {
            step: 0,
            level: if pq.units.is_empty() {
                query.plod
            } else {
                base_level
            },
            error_bound: pq.bound_after(pq.next_part),
            bytes_read: step_bytes,
            bytes_saved: step_saved,
            fused_bytes_saved: step_fused,
            io_s: step_io,
            capped_units: pq.capped_units(),
            done: pq.done,
        };
        pq.record_step(step, t.elapsed().as_secs_f64(), "step0");
        Ok(pq)
    }

    /// Degenerate ladder (no PLoD layout, positions-only output, or a
    /// membership query): one step at the target, done immediately.
    fn start_single_shot(
        exec: ParallelExecutor,
        store: &'s MlocStore<'a>,
        query: &Query,
        plan: &Plan,
        profiled: bool,
    ) -> Result<Self> {
        let t = Instant::now();
        let (result, metrics, profile) = if profiled {
            exec.execute_plan_profiled(store, query, plan, None)?
        } else {
            let (r, m) = exec.execute_plan(store, query, plan, None)?;
            (r, m, Profile::default())
        };
        let error_bound = if metrics.degradation.is_degraded() {
            metrics.degradation.error_bound()
        } else if query.wants_values() {
            plod::relative_error_bound(query.plod)
        } else {
            // Positions are exact at any PLoD level: bitmaps decide
            // membership, and misaligned bins filter at the target.
            0.0
        };
        let step = ProgressiveStep {
            step: 0,
            level: query.plod,
            error_bound,
            bytes_read: metrics.bytes_read,
            bytes_saved: metrics.bytes_saved,
            fused_bytes_saved: metrics.fused_bytes_saved,
            io_s: metrics.io_s,
            capped_units: metrics.degraded_units,
            done: true,
        };
        let target_parts = query.plod.num_parts();
        let mut pq = ProgressiveQuery {
            store,
            exec,
            query: query.clone(),
            target_parts,
            next_part: target_parts,
            result,
            units: Vec::new(),
            steps: Vec::new(),
            metrics,
            profile,
            profiled,
            done: true,
        };
        pq.record_step(step, t.elapsed().as_secs_f64(), "step0");
        Ok(pq)
    }

    /// Fetch the next byte-group part for every refinable unit and
    /// merge it into the result in place. Returns `None` once the
    /// ladder is complete (target reached, or every unit capped).
    ///
    /// Reads re-enter the store's shared block cache and extent fuser,
    /// so a warm refinement step costs only the bytes nobody has
    /// fetched yet. A damaged extent caps the affected unit's ladder
    /// (when the executor allows degradation) and is recorded in the
    /// cumulative [`QueryMetrics::degradation`] report.
    pub fn next_refinement(&mut self) -> Result<Option<ProgressiveStep>> {
        if self.done {
            return Ok(None);
        }
        let t = Instant::now();
        let p = self.next_part;
        debug_assert!(p >= 1 && p < self.target_parts);
        let store = self.store;
        let config = store.config();
        let byte_codec = config.codec.byte_codec();
        let cache = store.cache().map(Arc::as_ref);
        let fuser = store.fuser().map(Arc::as_ref);
        let scope = store.cache_scope();
        let mut io = RankIo::with_retry(store.backend(), self.exec.retry_policy());

        let mut bytes_read = 0u64;
        let mut bytes_saved = 0u64;
        let mut fused_bytes = 0u64;
        let mut fused_reads = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut decompress_s = 0.0f64;
        let mut new_events: Vec<DegradationEvent> = Vec::new();
        // (unit index, decompressed part bytes) pending application.
        let mut fetched: Vec<(usize, ByteView)> = Vec::new();

        // Walk the units bin by bin (they are sorted), coalescing each
        // bin's cache misses into as few physical reads as the one-shot
        // engine would.
        let mut i = 0usize;
        while i < self.units.len() {
            let bin = self.units[i].unit.bin;
            let mut j = i;
            while j < self.units.len() && self.units[j].unit.bin == bin {
                j += 1;
            }
            let data_file = store.data_file(bin);
            let mut wants: Vec<(u64, u32)> = Vec::new();
            let mut slots: Vec<usize> = Vec::new();
            let mut footer: Option<Arc<crate::integrity::ExtentFooter>> = None;
            for k in i..j {
                let st = &self.units[k];
                if st.cap <= p || st.unit.count == 0 {
                    continue;
                }
                let loc = st.unit.part_locs[p];
                let bkey = BlockKey {
                    scope: Arc::clone(scope),
                    bin: bin as u32,
                    chunk_rank: st.unit.chunk_rank as u32,
                    part: BlockPart::PlodPart(p as u8),
                };
                if let Some(c) = cache {
                    if let Some(CachedBlock::Bytes(b)) = c.get(&bkey) {
                        io.record_cached(&data_file, loc.offset, u64::from(loc.clen));
                        cache_hits += 1;
                        bytes_saved += u64::from(loc.clen);
                        fetched.push((k, b));
                        continue;
                    }
                    cache_misses += 1;
                }
                wants.push((loc.offset, loc.clen));
                slots.push(k);
                footer = Some(Arc::clone(&st.unit.footer));
            }
            i = j;
            if wants.is_empty() {
                continue;
            }
            let results =
                coalesced_read_results(&mut io, &data_file, &wants, footer.as_deref(), fuser);
            let td = Instant::now();
            for (w_i, r) in results.into_iter().enumerate() {
                let k = slots[w_i];
                match r.res {
                    Ok(view) => {
                        if r.fused {
                            fused_reads += 1;
                            fused_bytes += u64::from(wants[w_i].1);
                        } else {
                            bytes_read += u64::from(wants[w_i].1);
                        }
                        let decomp = byte_codec.decompress(&view)?;
                        let count = self.units[k].unit.count as usize;
                        if decomp.len() != count * plod::PART_BYTES[p] {
                            return Err(MlocError::Corrupt("unit length mismatch"));
                        }
                        let pv = ByteView::from(decomp);
                        if let Some(c) = cache {
                            c.insert(
                                BlockKey {
                                    scope: Arc::clone(scope),
                                    bin: bin as u32,
                                    chunk_rank: self.units[k].unit.chunk_rank as u32,
                                    part: BlockPart::PlodPart(p as u8),
                                },
                                CachedBlock::Bytes(pv.clone()),
                            );
                        }
                        fetched.push((k, pv));
                    }
                    Err(e) => {
                        // Same degradability rule as the one-shot
                        // engine: a non-base part of a filterless unit
                        // may be dropped; parts after it become
                        // unreachable, capping the ladder here.
                        if !self.exec.degradation_allowed() {
                            return Err(e);
                        }
                        let st = &mut self.units[k];
                        st.cap = p;
                        new_events.push(DegradationEvent {
                            bin: st.unit.bin,
                            chunk_rank: st.unit.chunk_rank,
                            lost_part: p,
                            points: u64::from(st.unit.count),
                            reason: e.to_string(),
                        });
                    }
                }
            }
            decompress_s += td.elapsed().as_secs_f64();
        }

        // Apply the deltas in place: one byte merged per value.
        let tr = Instant::now();
        if !fetched.is_empty() {
            let values = self
                .result
                .values_mut()
                .ok_or(MlocError::Corrupt("progressive ladder without values"))?;
            for (k, part_bytes) in &fetched {
                let st = &self.units[*k];
                plod::refine_into(values, &st.result_idx, &st.unit.val_idx, part_bytes, p)?;
            }
        }
        let reconstruct_s = tr.elapsed().as_secs_f64();

        // Account the step.
        self.metrics.retries += io.retries();
        self.metrics.retry_wait_s += io.retry_wait_s();
        let trace = io.into_trace();
        let sim = simulate_reads(std::slice::from_ref(&trace), self.exec.cost_model());
        let io_s = sim.per_rank_seconds.first().copied().unwrap_or(0.0);
        self.metrics.seeks += sim.total_seeks;
        self.metrics.io_s += io_s;
        self.metrics.decompress_s += decompress_s;
        self.metrics.reconstruct_s += reconstruct_s;
        self.metrics.response_s += io_s + decompress_s + reconstruct_s;
        self.metrics.bytes_read += bytes_read;
        self.metrics.data_bytes += bytes_read;
        self.metrics.bytes_saved += bytes_saved;
        self.metrics.cache_hits += cache_hits;
        self.metrics.cache_misses += cache_misses;
        self.metrics.fused_reads += fused_reads;
        self.metrics.fused_bytes_saved += fused_bytes;
        self.metrics.degraded_units += new_events.len() as u64;
        let new_report = DegradationReport { events: new_events };
        self.metrics.degradation.merge(&new_report);

        self.next_part = p + 1;
        let applied = self.next_part;
        // Done when the target is reached, or when damage has capped
        // every unit at or below the applied level (nothing left to
        // fetch — the bound is frozen).
        self.done = applied >= self.target_parts || self.units.iter().all(|s| s.cap <= applied);
        let step = ProgressiveStep {
            step: self.steps.len(),
            level: PlodLevel::new(applied.min(self.target_parts) as u8)
                .expect("applied parts within level range"),
            error_bound: self.bound_after(applied),
            bytes_read,
            bytes_saved,
            fused_bytes_saved: fused_bytes,
            io_s,
            capped_units: self.capped_units(),
            done: self.done,
        };
        self.record_step(step.clone(), t.elapsed().as_secs_f64(), "refine");
        Ok(Some(step))
    }

    /// Pull refinements until the error bound is ≤ `target_error` or
    /// the ladder ends (target level reached / every unit capped).
    pub fn run_to_target_error(&mut self, target_error: f64) -> Result<()> {
        while !self.done && self.current_error_bound() > target_error {
            self.next_refinement()?;
        }
        Ok(())
    }

    /// Pull every remaining refinement step.
    pub fn run_to_completion(&mut self) -> Result<()> {
        while self.next_refinement()?.is_some() {}
        Ok(())
    }

    /// The result at its current precision (positions are final from
    /// step 0 on; values sharpen with each refinement step).
    pub fn result(&self) -> &QueryResult {
        &self.result
    }

    /// Cumulative metrics over all steps so far (byte counters and
    /// component times summed across steps).
    pub fn metrics(&self) -> &QueryMetrics {
        &self.metrics
    }

    /// Every step taken so far, in order (step 0 first).
    pub fn steps(&self) -> &[ProgressiveStep] {
        &self.steps
    }

    /// Merged profile over all steps (empty unless started profiled).
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The query this handle is refining.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Worst-case relative error bound of the current result.
    pub fn current_error_bound(&self) -> f64 {
        self.steps.last().map_or(0.0, |s| s.error_bound)
    }

    /// Whether the ladder is complete.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Decompose into the final result, cumulative metrics, step log,
    /// and profile.
    pub fn into_outcome(self) -> (QueryResult, QueryMetrics, Vec<ProgressiveStep>, Profile) {
        (self.result, self.metrics, self.steps, self.profile)
    }

    /// Units currently capped below the target by damaged extents.
    fn capped_units(&self) -> u64 {
        self.units
            .iter()
            .filter(|s| s.cap < self.target_parts)
            .count() as u64
    }

    /// Worst-case relative bound once `applied` parts have been merged
    /// into the refinable units: the coarsest unit governs — a capped
    /// unit sits at `min(cap, applied)` parts, value-filtered bins at
    /// the target. Monotonically non-increasing in `applied` because
    /// caps only freeze levels, never lower them.
    fn bound_after(&self, applied: usize) -> f64 {
        let mut worst = self.target_parts;
        for s in &self.units {
            worst = worst.min(s.cap.min(applied));
        }
        let level = if worst == self.target_parts {
            self.query.plod
        } else {
            PlodLevel::new(worst.max(1) as u8).expect("parts within level range")
        };
        plod::relative_error_bound(level)
    }

    fn record_step(&mut self, step: ProgressiveStep, wall_s: f64, span: &'static str) {
        if self.profiled {
            self.profile.record_path(&["progressive", span], wall_s);
            self.profile
                .add_counter("progressive.steps", Label::None, 1);
            self.profile.add_counter(
                "progressive.bytes_per_step",
                Label::Index(step.step as u32),
                step.bytes_read,
            );
        }
        self.steps.push(step);
    }
}

impl ParallelExecutor {
    /// Start a progressive (pull-based) query: the returned handle's
    /// step 0 is already served at the base precision; call
    /// [`ProgressiveQuery::next_refinement`] to sharpen it one byte
    /// group at a time. Step 0 runs through this executor (any rank
    /// count, replay or threaded); refinement pulls are single-rank
    /// reads costed by the same PFS model.
    pub fn progressive<'s, 'a>(
        &self,
        store: &'s MlocStore<'a>,
        query: &Query,
    ) -> Result<ProgressiveQuery<'s, 'a>> {
        ProgressiveQuery::start(self.clone(), store, query, false)
    }

    /// [`ParallelExecutor::progressive`] with profiling on: the handle
    /// accumulates a merged [`Profile`] (per-step spans plus
    /// `progressive.steps` / `progressive.bytes_per_step` counters).
    pub fn progressive_profiled<'s, 'a>(
        &self,
        store: &'s MlocStore<'a>,
        query: &Query,
    ) -> Result<ProgressiveQuery<'s, 'a>> {
        ProgressiveQuery::start(self.clone(), store, query, true)
    }
}

impl<'a> MlocStore<'a> {
    /// Start a serial progressive query against this store.
    pub fn query_progressive(&self, query: &Query) -> Result<ProgressiveQuery<'_, 'a>> {
        ParallelExecutor::serial().progressive(self, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_variable;
    use crate::config::MlocConfig;
    use mloc_pfs::MemBackend;

    fn fixture(be: &MemBackend) -> (Vec<f64>, MlocStore<'_>) {
        let values: Vec<f64> = (0..4096)
            .map(|i| ((i * 37) % 4096) as f64 * 0.25 + 3.1)
            .collect();
        let config = MlocConfig::builder(vec![64, 64])
            .chunk_shape(vec![16, 16])
            .num_bins(10)
            .build();
        build_variable(be, "ds", "v", &values, &config).unwrap();
        let store = MlocStore::open(be, "ds", "v").unwrap();
        (values, store)
    }

    #[test]
    fn ladder_refines_to_one_shot_result() {
        let be = MemBackend::new();
        let (_, store) = fixture(&be);
        for q in [
            Query::values_where(50.0, 800.0),
            Query::values_in(crate::array::Region::new(vec![(3, 40), (5, 60)])),
            Query::values_where(10.0, 900.0)
                .with_region(crate::array::Region::new(vec![(0, 33), (10, 64)])),
        ] {
            let (oneshot, om) = store.query_with_metrics(&q).unwrap();
            let mut pq = store.query_progressive(&q).unwrap();
            // Positions are final from step 0.
            assert_eq!(pq.result().positions(), oneshot.positions());
            let mut total_bytes = pq.steps()[0].bytes_read;
            let mut prev_bound = f64::INFINITY;
            for s in pq.steps() {
                assert!(s.error_bound <= prev_bound);
                prev_bound = s.error_bound;
            }
            while let Some(step) = pq.next_refinement().unwrap() {
                assert!(step.error_bound <= prev_bound, "bound must not grow");
                prev_bound = step.error_bound;
                total_bytes += step.bytes_read;
            }
            assert!(pq.is_done());
            assert_eq!(pq.current_error_bound(), 0.0);
            // Cold ladder bytes sum to the one-shot read exactly.
            assert_eq!(total_bytes, om.bytes_read);
            assert_eq!(pq.metrics().bytes_read, om.bytes_read);
            // Final step is byte-identical to the one-shot result.
            let p = pq.result();
            assert_eq!(p.positions(), oneshot.positions());
            let (pv, ov) = (p.values().unwrap(), oneshot.values().unwrap());
            assert_eq!(pv.len(), ov.len());
            for (a, b) in pv.iter().zip(ov) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn step0_bound_matches_base_level() {
        let be = MemBackend::new();
        let (_, store) = fixture(&be);
        let q = Query::values_in(crate::array::Region::new(vec![(0, 16), (0, 16)]));
        let pq = store.query_progressive(&q).unwrap();
        assert_eq!(
            pq.steps()[0].error_bound,
            plod::relative_error_bound(PlodLevel::new(1).unwrap())
        );
        assert_eq!(pq.steps()[0].level, PlodLevel::new(1).unwrap());
        assert!(!pq.steps()[0].done);
    }

    #[test]
    fn coarse_target_finishes_early() {
        let be = MemBackend::new();
        let (_, store) = fixture(&be);
        let lvl = PlodLevel::new(3).unwrap();
        let q = Query::values_where(100.0, 500.0).with_plod(lvl);
        let (oneshot, om) = store.query_with_metrics(&q).unwrap();
        let mut pq = store.query_progressive(&q).unwrap();
        let mut total = pq.steps()[0].bytes_read;
        let mut n = 0;
        while let Some(s) = pq.next_refinement().unwrap() {
            total += s.bytes_read;
            n += 1;
        }
        assert_eq!(n, 2); // levels 2 and 3
        assert_eq!(total, om.bytes_read);
        assert_eq!(pq.current_error_bound(), plod::relative_error_bound(lvl));
        let (pv, ov) = (pq.result().values().unwrap(), oneshot.values().unwrap());
        for (a, b) in pv.iter().zip(ov) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn positions_only_query_is_single_step() {
        let be = MemBackend::new();
        let (_, store) = fixture(&be);
        let q = Query::region(10.0, 50.0);
        let (oneshot, om) = store.query_with_metrics(&q).unwrap();
        let mut pq = store.query_progressive(&q).unwrap();
        assert!(pq.is_done());
        assert_eq!(pq.steps().len(), 1);
        assert_eq!(pq.steps()[0].error_bound, 0.0);
        assert_eq!(pq.steps()[0].bytes_read, om.bytes_read);
        assert_eq!(pq.result().positions(), oneshot.positions());
        assert!(pq.next_refinement().unwrap().is_none());
    }

    #[test]
    fn membership_query_is_single_step() {
        let be = MemBackend::new();
        let (_, store) = fixture(&be);
        let q = Query::membership(vec![0, 17, 4000]).with_values();
        let (oneshot, _) = store.query_with_metrics(&q).unwrap();
        let mut pq = store.query_progressive(&q).unwrap();
        assert!(pq.is_done());
        assert_eq!(pq.result(), &oneshot);
        assert!(pq.next_refinement().unwrap().is_none());
    }

    #[test]
    fn run_to_target_error_stops_at_bound() {
        let be = MemBackend::new();
        let (_, store) = fixture(&be);
        let q = Query::values_where(50.0, 800.0);
        let mut pq = store.query_progressive(&q).unwrap();
        let eps = 1e-7;
        pq.run_to_target_error(eps).unwrap();
        assert!(pq.current_error_bound() <= eps);
        assert!(!pq.is_done(), "1e-7 is reachable before full precision");
        // The previous step's bound was above eps: we stopped ASAP.
        let n = pq.steps().len();
        assert!(pq.steps()[n - 2].error_bound > eps);
    }
}
