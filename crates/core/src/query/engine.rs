//! Per-rank query execution: index reads, coalesced data reads,
//! decompression, and result reconstruction.

use crate::cache::{BlockKey, BlockPart, CachedBlock};
use crate::index::{header_size, BinIndex};
use crate::plod;
use crate::query::plan::{parts_used, WorkUnit};
use crate::query::Query;
use crate::store::MlocStore;
use crate::{MlocError, Result};
use mloc_bitmap::WahBitmap;
use mloc_obs::{Collector, Label};
use mloc_pfs::RankIo;
use std::sync::Arc;
use std::time::Instant;

/// Reads closer together than this are merged into one request —
/// mirroring what a real PFS client's readahead would do anyway.
const COALESCE_GAP: u64 = 4096;

/// One rank's partial result plus its CPU component times.
#[derive(Debug, Default)]
pub struct RankOutput {
    /// Matching global positions.
    pub positions: Vec<u64>,
    /// Values aligned with positions (empty for position-only output).
    pub values: Vec<f64>,
    /// Seconds spent in codec decompression.
    pub decompress_s: f64,
    /// Seconds spent assembling/filtering results.
    pub reconstruct_s: f64,
    /// Bytes read from index files.
    pub index_bytes: u64,
    /// Bytes read from data files.
    pub data_bytes: u64,
    /// Block-cache hits this rank observed (0 without a cache).
    pub cache_hits: u64,
    /// Block-cache misses this rank observed (0 without a cache).
    pub cache_misses: u64,
    /// Compressed bytes served from the cache instead of the PFS.
    pub bytes_saved: u64,
}

/// A chunk's reconstructed values: owned when assembled on the spot
/// (PLoD) or from a fresh decompress, shared when a cached float block
/// was reused.
enum BlockValues {
    Owned(Vec<f64>),
    Shared(Arc<Vec<f64>>),
}

impl std::ops::Deref for BlockValues {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        match self {
            BlockValues::Owned(v) => v,
            BlockValues::Shared(v) => v,
        }
    }
}

/// Coalesce `(offset, len)` wants into merged extents, read each once,
/// and return each want's bytes.
pub(crate) fn coalesced_read(
    io: &mut RankIo<'_>,
    file: &str,
    wants: &[(u64, u32)],
) -> Result<Vec<Vec<u8>>> {
    let mut order: Vec<usize> = (0..wants.len()).collect();
    order.sort_by_key(|&i| wants[i].0);
    let mut out = vec![Vec::new(); wants.len()];

    let mut run: Vec<usize> = Vec::new();
    let mut run_start = 0u64;
    let mut run_end = 0u64;
    let flush = |io: &mut RankIo<'_>,
                 run: &mut Vec<usize>,
                 start: u64,
                 end: u64,
                 out: &mut Vec<Vec<u8>>|
     -> Result<()> {
        if run.is_empty() {
            return Ok(());
        }
        let buf = io.read(file, start, end - start)?;
        for &i in run.iter() {
            let (off, len) = wants[i];
            let s = (off - start) as usize;
            out[i] = buf[s..s + len as usize].to_vec();
        }
        run.clear();
        Ok(())
    };

    for &i in &order {
        let (off, len) = wants[i];
        if len == 0 {
            continue;
        }
        if run.is_empty() {
            run_start = off;
            run_end = off + u64::from(len);
        } else if off <= run_end + COALESCE_GAP {
            run_end = run_end.max(off + u64::from(len));
        } else {
            flush(io, &mut run, run_start, run_end, &mut out)?;
            run_start = off;
            run_end = off + u64::from(len);
        }
        run.push(i);
    }
    flush(io, &mut run, run_start, run_end, &mut out)?;
    Ok(out)
}

/// Decompose a chunk-local offset into global coordinates without
/// allocating (scratch holds the result).
#[inline]
fn local_to_coords_into(ranges: &[(usize, usize)], mut local: u64, scratch: &mut [usize]) {
    for d in (0..ranges.len()).rev() {
        let (s, e) = ranges[d];
        let extent = (e - s) as u64;
        scratch[d] = s + (local % extent) as usize;
        local /= extent;
    }
}

/// Process this rank's work units, reading through `io`.
///
/// Units must be grouped by bin and ordered by chunk rank within a bin
/// (the plan and the column-order assignment both preserve this).
/// `position_filter`, when set, keeps only the listed global positions
/// (used by multi-variable retrieval, §III-D.4).
///
/// `obs` records this rank's span/counter profile; the decompress and
/// reconstruct spans mirror the *identical* measured floats that land
/// in [`RankOutput`], so profiles reconcile exactly with
/// [`crate::QueryMetrics`]. Pass [`Collector::disabled`] to skip all
/// recording at the cost of one branch per call site.
pub fn process_units(
    store: &MlocStore<'_>,
    query: &Query,
    units: &[WorkUnit],
    io: &mut RankIo<'_>,
    position_filter: Option<&std::collections::HashSet<u64>>,
    obs: &mut Collector,
) -> Result<RankOutput> {
    let mut out = RankOutput::default();
    let config = store.config();
    let grid = store.grid();
    let order = store.order();
    let num_chunks = grid.num_chunks();
    let num_parts = config.num_parts();
    let n_parts = parts_used(config, query);
    let byte_codec = config.codec.byte_codec();
    let float_codec = config.codec.float_codec();
    let wants_values = query.wants_values();

    let cache = store.cache().map(Arc::as_ref);
    let scope = store.cache_scope();
    let key = |bin: usize, chunk_rank: usize, part: BlockPart| BlockKey {
        scope: Arc::clone(scope),
        bin: bin as u32,
        chunk_rank: chunk_rank as u32,
        part,
    };

    let mut coords = vec![0usize; grid.dims()];
    let mut cache_rejected = 0u64;

    let mut i = 0usize;
    while i < units.len() {
        let bin = units[i].bin;
        let mut j = i;
        while j < units.len() && units[j].bin == bin {
            j += 1;
        }
        let group = &units[i..j];
        i = j;

        obs.count_labeled("bin.units", Label::Index(bin as u32), group.len() as u64);
        let index_bytes_before = out.index_bytes;
        obs.begin("index-read");

        // Index header + directory: one sequential read, cached whole.
        let idx_file = store.index_file(bin);
        let hdr_len = header_size(num_chunks, num_parts);
        let hdr_key = key(bin, 0, BlockPart::IndexHeader);
        let cached_hdr = cache.and_then(|c| c.get(&hdr_key)).and_then(|b| match b {
            CachedBlock::Bytes(b) => Some(b),
            CachedBlock::Floats(_) => None,
        });
        let hdr: Arc<Vec<u8>> = match cached_hdr {
            Some(b) => {
                io.record_cached(&idx_file, 0, hdr_len);
                out.cache_hits += 1;
                out.bytes_saved += hdr_len;
                b
            }
            None => {
                if cache.is_some() {
                    out.cache_misses += 1;
                }
                let raw = Arc::new(io.read(&idx_file, 0, hdr_len)?);
                out.index_bytes += hdr_len;
                if let Some(c) = cache {
                    if !c.insert(hdr_key, CachedBlock::Bytes(Arc::clone(&raw))) {
                        cache_rejected += 1;
                    }
                }
                raw
            }
        };
        let index = BinIndex::decode_header(&hdr)?;

        // Positional bitmaps for this rank's chunks. Cache hits are
        // recorded in the trace (zero cost); misses are coalesced into
        // as few physical reads as before.
        let mut bitmap_of: Vec<Option<Arc<Vec<u8>>>> = vec![None; group.len()];
        let mut bitmap_wants: Vec<(u64, u32)> = Vec::new();
        let mut bitmap_slot: Vec<usize> = Vec::new(); // unit idx in group
        for (gi, u) in group.iter().enumerate() {
            let blen = index.chunks[u.chunk_rank].bitmap_len;
            if blen == 0 {
                continue;
            }
            let off = index.bitmap_file_offset(u.chunk_rank);
            if let Some(c) = cache {
                if let Some(CachedBlock::Bytes(b)) =
                    c.get(&key(bin, u.chunk_rank, BlockPart::Bitmap))
                {
                    io.record_cached(&idx_file, off, u64::from(blen));
                    out.cache_hits += 1;
                    out.bytes_saved += u64::from(blen);
                    bitmap_of[gi] = Some(b);
                    continue;
                }
                out.cache_misses += 1;
            }
            bitmap_wants.push((off, blen));
            bitmap_slot.push(gi);
        }
        let bitmap_bytes = coalesced_read(io, &idx_file, &bitmap_wants)?;
        out.index_bytes += bitmap_wants.iter().map(|&(_, l)| u64::from(l)).sum::<u64>();
        for (k_i, bytes) in bitmap_bytes.into_iter().enumerate() {
            let gi = bitmap_slot[k_i];
            let b = Arc::new(bytes);
            if let Some(c) = cache {
                if !c.insert(
                    key(bin, group[gi].chunk_rank, BlockPart::Bitmap),
                    CachedBlock::Bytes(Arc::clone(&b)),
                ) {
                    cache_rejected += 1;
                }
            }
            bitmap_of[gi] = Some(b);
        }
        obs.end(); // index-read
        obs.count_labeled(
            "bin.index.bytes",
            Label::Index(bin as u32),
            out.index_bytes - index_bytes_before,
        );

        // Data units (only for units that need data). Cached at part
        // granularity: a PLoD level-k query reuses parts 0..k of any
        // earlier query over the same chunk, whatever its level.
        obs.begin("data-read");
        let data_file = store.data_file(bin);
        let mut parts_of: Vec<Vec<Option<Arc<Vec<u8>>>>> = vec![Vec::new(); group.len()];
        let mut floats_of: Vec<Option<Arc<Vec<f64>>>> = vec![None; group.len()];
        let mut data_wants: Vec<(u64, u32)> = Vec::new();
        let mut data_slot: Vec<(usize, usize)> = Vec::new(); // (unit idx, part)
        for (gi, u) in group.iter().enumerate() {
            if !u.needs_data || index.chunks[u.chunk_rank].count == 0 {
                continue;
            }
            if config.plod {
                parts_of[gi] = vec![None; n_parts];
            }
            #[allow(clippy::needless_range_loop)] // `p` indexes two arrays
            for p in 0..n_parts {
                let loc = index.chunks[u.chunk_rank].units[p];
                if let Some(c) = cache {
                    let part = if config.plod {
                        BlockPart::PlodPart(p as u8)
                    } else {
                        BlockPart::Floats
                    };
                    match c.get(&key(bin, u.chunk_rank, part)) {
                        Some(CachedBlock::Bytes(b)) if config.plod => {
                            io.record_cached(&data_file, loc.offset, u64::from(loc.clen));
                            out.cache_hits += 1;
                            out.bytes_saved += u64::from(loc.clen);
                            parts_of[gi][p] = Some(b);
                            continue;
                        }
                        Some(CachedBlock::Floats(f)) if !config.plod => {
                            io.record_cached(&data_file, loc.offset, u64::from(loc.clen));
                            out.cache_hits += 1;
                            out.bytes_saved += u64::from(loc.clen);
                            floats_of[gi] = Some(f);
                            continue;
                        }
                        _ => out.cache_misses += 1,
                    }
                }
                data_wants.push((loc.offset, loc.clen));
                data_slot.push((gi, p));
            }
        }
        let data_bytes = coalesced_read(io, &data_file, &data_wants)?;
        let group_data_bytes = data_wants.iter().map(|&(_, l)| u64::from(l)).sum::<u64>();
        out.data_bytes += group_data_bytes;
        obs.end(); // data-read
        obs.count_labeled("bin.data.bytes", Label::Index(bin as u32), group_data_bytes);
        obs.count_labeled(
            "decompress.units",
            Label::Name(config.codec.name()),
            data_bytes.len() as u64,
        );

        // Decompress the fetched units (timed); cache hits above skip
        // this entirely, which is where warm-session time goes to ~0.
        let t = Instant::now();
        for (k_i, buf) in data_bytes.iter().enumerate() {
            let (gi, p) = data_slot[k_i];
            let count = index.chunks[group[gi].chunk_rank].count as usize;
            if config.plod {
                let decomp = byte_codec.decompress(buf)?;
                if decomp.len() != count * plod::PART_BYTES[p] {
                    return Err(MlocError::Corrupt("unit length mismatch"));
                }
                let a = Arc::new(decomp);
                if let Some(c) = cache {
                    if !c.insert(
                        key(bin, group[gi].chunk_rank, BlockPart::PlodPart(p as u8)),
                        CachedBlock::Bytes(Arc::clone(&a)),
                    ) {
                        cache_rejected += 1;
                    }
                }
                parts_of[gi][p] = Some(a);
            } else {
                let decomp = float_codec.decompress_f64(buf)?;
                if decomp.len() != count {
                    return Err(MlocError::Corrupt("unit length mismatch"));
                }
                let a = Arc::new(decomp);
                if let Some(c) = cache {
                    if !c.insert(
                        key(bin, group[gi].chunk_rank, BlockPart::Floats),
                        CachedBlock::Floats(Arc::clone(&a)),
                    ) {
                        cache_rejected += 1;
                    }
                }
                floats_of[gi] = Some(a);
            }
        }
        // The profile span gets the same float as the metric, so the
        // two reports reconcile exactly, not just "within noise".
        let decompress_dt = t.elapsed().as_secs_f64();
        out.decompress_s += decompress_dt;
        obs.record("decompress", decompress_dt);

        // Reconstruct: decode bitmaps, assemble values, filter, map to
        // global positions (timed).
        let t = Instant::now();
        for (gi, u) in group.iter().enumerate() {
            let entry = &index.chunks[u.chunk_rank];
            if entry.count == 0 {
                continue;
            }
            let bm_bytes: &[u8] = bitmap_of[gi].as_ref().map(|b| b.as_slice()).unwrap_or(&[]);
            let (bitmap, _) = WahBitmap::from_bytes(bm_bytes)?;
            let chunk_id = order.cell_at(u.chunk_rank);
            let chunk_region = grid.chunk_region(chunk_id);
            let ranges = chunk_region.ranges();
            // A corrupted bitmap must not index past the decoded
            // values or outside the chunk.
            if bitmap.len() != chunk_region.num_points() as u64
                || bitmap.count_ones() != u64::from(entry.count)
            {
                return Err(MlocError::Corrupt("index bitmap inconsistent"));
            }

            let values: Option<BlockValues> = if u.needs_data {
                if config.plod {
                    let mut refs: Vec<&[u8]> = Vec::with_capacity(n_parts);
                    for part in &parts_of[gi] {
                        let part = part
                            .as_ref()
                            .ok_or(MlocError::Corrupt("missing PLoD part"))?;
                        refs.push(part.as_slice());
                    }
                    Some(BlockValues::Owned(plod::assemble(&refs, query.plod)))
                } else {
                    let block = floats_of[gi]
                        .take()
                        .ok_or(MlocError::Corrupt("missing value block"))?;
                    Some(BlockValues::Shared(block))
                }
            } else {
                None
            };

            let (vc_lo, vc_hi) = query.vc.unwrap_or((f64::MIN, f64::MAX));
            for (pos_idx, local) in bitmap.iter_ones().enumerate() {
                if let (true, Some(vals)) = (u.value_filter, values.as_ref()) {
                    let v = vals[pos_idx];
                    if !(v >= vc_lo && v < vc_hi) {
                        continue;
                    }
                }
                local_to_coords_into(ranges, local, &mut coords);
                if u.spatial_filter {
                    if let Some(region) = &query.sc {
                        if !region.contains(&coords) {
                            continue;
                        }
                    }
                }
                let global = grid.linearize(&coords);
                if let Some(filter) = position_filter {
                    if !filter.contains(&global) {
                        continue;
                    }
                }
                out.positions.push(global);
                if wants_values {
                    out.values
                        .push(values.as_ref().expect("values required")[pos_idx]);
                }
            }
        }
        let reconstruct_dt = t.elapsed().as_secs_f64();
        out.reconstruct_s += reconstruct_dt;
        obs.record("reconstruct", reconstruct_dt);
    }
    obs.count("cache.hits", out.cache_hits);
    obs.count("cache.misses", out.cache_misses);
    obs.count("cache.bytes_saved", out.bytes_saved);
    obs.count("cache.rejected_inserts", cache_rejected);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mloc_pfs::{MemBackend, StorageBackend};

    #[test]
    fn coalesced_read_merges_and_slices() {
        let be = MemBackend::new();
        let data: Vec<u8> = (0..200u8).collect();
        be.append("f", &data).unwrap();
        let mut io = RankIo::new(&be);
        // Three wants: two adjacent (merge), one far (but within gap).
        let wants = vec![(10u64, 5u32), (15, 5), (100, 10), (0, 0)];
        let got = coalesced_read(&mut io, "f", &wants).unwrap();
        assert_eq!(got[0], (10..15).collect::<Vec<u8>>());
        assert_eq!(got[1], (15..20).collect::<Vec<u8>>());
        assert_eq!(got[2], (100..110).collect::<Vec<u8>>());
        assert!(got[3].is_empty());
        // All within COALESCE_GAP: a single physical read.
        assert_eq!(io.trace().len(), 1);
    }

    #[test]
    fn coalesced_read_respects_large_gaps() {
        let be = MemBackend::new();
        be.append("f", &vec![7u8; 100_000]).unwrap();
        let mut io = RankIo::new(&be);
        let wants = vec![(0u64, 10u32), (50_000, 10)];
        let got = coalesced_read(&mut io, "f", &wants).unwrap();
        assert_eq!(got[0].len(), 10);
        assert_eq!(got[1].len(), 10);
        assert_eq!(io.trace().len(), 2, "distant reads must not merge");
    }

    #[test]
    fn coalesced_read_unsorted_input() {
        let be = MemBackend::new();
        let data: Vec<u8> = (0..100u8).collect();
        be.append("f", &data).unwrap();
        let mut io = RankIo::new(&be);
        let wants = vec![(90u64, 5u32), (0, 5), (40, 5)];
        let got = coalesced_read(&mut io, "f", &wants).unwrap();
        assert_eq!(got[0], (90..95).collect::<Vec<u8>>());
        assert_eq!(got[1], (0..5).collect::<Vec<u8>>());
        assert_eq!(got[2], (40..45).collect::<Vec<u8>>());
    }

    #[test]
    fn local_to_coords_matches_grid() {
        use crate::array::ChunkGrid;
        let grid = ChunkGrid::new(vec![10, 7], vec![4, 3]);
        let mut scratch = vec![0usize; 2];
        for chunk in 0..grid.num_chunks() {
            let ranges = grid.chunk_region(chunk).ranges().to_vec();
            for local in 0..grid.chunk_points(chunk) {
                local_to_coords_into(&ranges, local as u64, &mut scratch);
                assert_eq!(scratch, grid.local_to_coords(chunk, local));
            }
        }
    }
}
