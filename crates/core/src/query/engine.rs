//! Per-rank query execution: index reads, coalesced data reads,
//! decompression, and result reconstruction.
//!
//! The hot path is zero-copy and run-aware (see `DESIGN.md`, "hot-path
//! memory discipline"): coalesced reads hand out [`ByteView`]s into
//! shared extent buffers instead of per-want copies, the reconstruct
//! loop consumes WAH *runs* so a fill of ones becomes one bulk range
//! operation, and per-chunk scratch buffers (PLoD floats, coordinates)
//! are reused across work units.

use crate::cache::{BlockCache, BlockKey, BlockPart, ByteView, CachedBlock};
use crate::config::{PlodLevel, NUM_PARTS};
use crate::degrade::{DegradationEvent, DegradationReport};
use crate::fusion::coalesced_read_results;
use crate::index::{decode_summary, header_size, BinIndex, ChunkSummary, UnitLoc};
use crate::integrity::{ExtentFooter, TRAILER_LEN};
use crate::plod;
use crate::query::plan::{parts_used, WorkUnit};
use crate::query::Query;
use crate::store::MlocStore;
use crate::{MlocError, Result};
use mloc_bitmap::{RankSelectDir, WahBitmap, WahRef};
use mloc_obs::{Collector, Label};
use mloc_pfs::RankIo;
use std::sync::Arc;
use std::time::Instant;

/// One rank's partial result plus its CPU component times.
#[derive(Debug, Default)]
pub struct RankOutput {
    /// Matching global positions.
    pub positions: Vec<u64>,
    /// Values aligned with positions (empty for position-only output).
    pub values: Vec<f64>,
    /// Seconds spent in codec decompression.
    pub decompress_s: f64,
    /// Seconds spent assembling/filtering results.
    pub reconstruct_s: f64,
    /// Bytes read from index files.
    pub index_bytes: u64,
    /// Bytes read from data files.
    pub data_bytes: u64,
    /// Block-cache hits this rank observed (0 without a cache).
    pub cache_hits: u64,
    /// Block-cache misses this rank observed (0 without a cache).
    pub cache_misses: u64,
    /// Compressed bytes served from the cache instead of the PFS.
    pub bytes_saved: u64,
    /// Wants served by another session's physical read through the
    /// extent fuser (0 without fusion).
    pub fused_reads: u64,
    /// Bytes of those fused wants — kept off the PFS and excluded from
    /// `index_bytes`/`data_bytes`, like cache-served bytes.
    pub fused_bytes: u64,
    /// Transient-read retries this rank performed (filled in by the
    /// executor from the rank's I/O handle).
    pub retries: u64,
    /// Simulated backoff seconds accumulated by those retries.
    pub retry_wait_s: f64,
    /// Reads this rank abandoned because the retry backoff budget ran
    /// out (filled in by the executor from the rank's I/O handle).
    pub retries_exhausted: u64,
    /// Extent losses this rank worked around by reducing PLoD
    /// precision (empty = full fidelity).
    pub degradation: DegradationReport,
    /// Refinement state captured for a progressive query (empty unless
    /// the executor asked for capture).
    pub refine_units: Vec<RefineUnit>,
}

/// What a progressive query remembers about one refinable work unit
/// after its step-0 pass, so later refinement pulls read only the next
/// byte-group extents — index headers, bitmaps, positions, and footers
/// are planned once here and never re-read.
#[derive(Debug, Clone)]
pub struct RefineUnit {
    /// Value bin (names the data file).
    pub bin: usize,
    /// Chunk rank within the bin.
    pub chunk_rank: usize,
    /// Points stored in the unit — the byte length of each one-byte
    /// tail part.
    pub count: u32,
    /// Extent location of every PLoD part, from the bin index header.
    pub part_locs: Vec<UnitLoc>,
    /// The data file's checksum footer, shared with step 0's reads.
    pub footer: Arc<ExtentFooter>,
    /// Per emitted point: its rank within the unit's value array (the
    /// byte index inside each tail part).
    pub val_idx: Vec<u32>,
    /// Per emitted point: its global position (ascending).
    pub positions: Vec<u64>,
}

/// Load (or probe the cache for) a file's per-extent checksum footer.
///
/// Cold: one untraced `len()` plus two traced reads — the fixed
/// trailer at the end of the file, then the table it locates — whose
/// lengths sum to [`ExtentFooter::encoded_len`]. Warm: one cached
/// trace record of that same total, so fault-free cold/warm byte
/// accounting mirrors every other cached block. A footer that cannot
/// be loaded or fails its own CRC is always a hard error: without it
/// nothing in the file can be trusted.
#[allow(clippy::too_many_arguments)] // internal helper threading rank counters
fn load_footer(
    io: &mut RankIo<'_>,
    file: &str,
    cache: Option<&BlockCache>,
    key: BlockKey,
    out: &mut RankOutput,
    cache_rejected: &mut u64,
    to_index_bytes: bool,
) -> Result<Arc<ExtentFooter>> {
    if let Some(c) = cache {
        if let Some(CachedBlock::Footer(f)) = c.get(&key) {
            io.record_cached(file, f.payload_len(), f.encoded_len());
            out.cache_hits += 1;
            out.bytes_saved += f.encoded_len();
            return Ok(f);
        }
        out.cache_misses += 1;
    }
    let flen = io.backend().len(file)?;
    if flen < TRAILER_LEN {
        return Err(crate::integrity::corrupt_extent(
            file,
            0,
            flen,
            "file shorter than footer trailer",
        ));
    }
    let trailer = io.read(file, flen - TRAILER_LEN, TRAILER_LEN)?;
    let (payload_len, table_len) = ExtentFooter::decode_trailer(&trailer, flen, file)?;
    let mut region = io.read(file, payload_len, table_len)?;
    region.extend_from_slice(&trailer);
    let footer = Arc::new(ExtentFooter::decode(&region, flen, file)?);
    if to_index_bytes {
        out.index_bytes += footer.encoded_len();
    } else {
        out.data_bytes += footer.encoded_len();
    }
    if let Some(c) = cache {
        if !c.insert(key, CachedBlock::Footer(Arc::clone(&footer))) {
            *cache_rejected += 1;
        }
    }
    Ok(footer)
}

/// Decompose a chunk-local offset into global coordinates without
/// allocating (scratch holds the result).
#[inline]
fn local_to_coords_into(ranges: &[(usize, usize)], mut local: u64, scratch: &mut [usize]) {
    for d in (0..ranges.len()).rev() {
        let (s, e) = ranges[d];
        let extent = (e - s) as u64;
        scratch[d] = s + (local % extent) as usize;
        local /= extent;
    }
}

/// Sorted-slice membership with a monotone cursor: a galloping
/// replacement for the old `HashSet<u64>` position filter. Queries
/// must arrive in non-decreasing order (which reconstruction
/// guarantees per work unit: chunk-local row-major order maps
/// monotonically to global row-major positions).
struct Gallop<'a> {
    sorted: &'a [u64],
    idx: usize,
}

impl<'a> Gallop<'a> {
    fn new(sorted: &'a [u64]) -> Self {
        Gallop { sorted, idx: 0 }
    }

    /// Advance the cursor to the first element `>= x`.
    fn seek(&mut self, x: u64) {
        let s = self.sorted;
        if self.idx >= s.len() || s[self.idx] >= x {
            return;
        }
        // Gallop: double the step until the window brackets x, then
        // binary-search inside it. O(log distance) per call, O(n + m
        // log n/m) over an intersection.
        let mut lo = self.idx; // invariant: s[lo] < x
        let mut step = 1usize;
        while lo + step < s.len() && s[lo + step] < x {
            lo += step;
            step <<= 1;
        }
        let hi = (lo + step + 1).min(s.len());
        self.idx = lo + 1 + s[lo + 1..hi].partition_point(|&v| v < x);
    }

    /// Whether `x` is in the set; advances the cursor.
    fn contains(&mut self, x: u64) -> bool {
        self.seek(x);
        self.idx < self.sorted.len() && self.sorted[self.idx] == x
    }

    /// All elements in `[lo, hi)`; advances the cursor past them.
    fn range(&mut self, lo: u64, hi: u64) -> &'a [u64] {
        self.seek(lo);
        let start = self.idx;
        let end = start + self.sorted[start..].partition_point(|&v| v < hi);
        self.idx = end;
        &self.sorted[start..end]
    }
}

/// Incremental chunk-local → global row-major position cursor.
///
/// Replaces per-point `local_to_coords` + `linearize` (a div/mod plus
/// a multiply/add per dimension per point): the cursor starts at
/// chunk-local offset 0 and only ever moves forward by run lengths, so
/// a whole chunk is walked with additions and odometer carries —
/// no division anywhere, not even per run.
struct ChunkEmitter {
    /// Global row-major stride per dimension (from the domain shape).
    strides: Vec<u64>,
    /// Current chunk's extent per dimension.
    extents: Vec<u64>,
    /// Odometer: chunk-local coordinates of the cursor's row.
    c: Vec<u64>,
    /// Global position of the cursor's row start.
    row_base: u64,
    /// Cursor offset within the current row.
    in_row: u64,
    /// Innermost (contiguous) extent: the chunk row width.
    row_w: u64,
    /// Chunk rows after the cursor's row.
    rows_left: u64,
}

impl ChunkEmitter {
    fn new(shape: &[usize]) -> Self {
        let dims = shape.len();
        let mut strides = vec![1u64; dims];
        for d in (0..dims.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * shape[d + 1] as u64;
        }
        ChunkEmitter {
            strides,
            extents: vec![0; dims],
            c: vec![0; dims],
            row_base: 0,
            in_row: 0,
            row_w: 0,
            rows_left: 0,
        }
    }

    /// Point the cursor at chunk-local offset 0 of a chunk, given its
    /// clamped region ranges.
    fn set_chunk(&mut self, ranges: &[(usize, usize)]) {
        debug_assert_eq!(ranges.len(), self.strides.len());
        self.row_base = 0;
        let mut rows = 1u64;
        for (d, &(s, e)) in ranges.iter().enumerate() {
            self.extents[d] = (e - s) as u64;
            self.c[d] = 0;
            self.row_base += s as u64 * self.strides[d];
            rows *= self.extents[d];
        }
        self.in_row = 0;
        self.row_w = *self.extents.last().expect("chunk has dimensions");
        self.rows_left = (rows / self.row_w.max(1)).saturating_sub(1);
    }

    /// Carry the odometer into the next chunk row. Must not be called
    /// with `rows_left == 0`.
    #[inline]
    fn next_row(&mut self) {
        self.in_row = 0;
        self.rows_left -= 1;
        let mut d = self.extents.len() - 2;
        loop {
            self.c[d] += 1;
            self.row_base += self.strides[d];
            if self.c[d] < self.extents[d] {
                return;
            }
            self.row_base -= self.extents[d] * self.strides[d];
            self.c[d] = 0;
            d -= 1;
        }
    }

    /// Move the cursor forward by `n` chunk-local offsets (a run of
    /// unset bits). A cursor landing exactly on the chunk end stays
    /// parked past the last row's width.
    fn advance(&mut self, n: u64) {
        self.in_row += n;
        while self.in_row >= self.row_w && self.rows_left > 0 {
            self.in_row -= self.row_w;
            let carry_over = self.in_row;
            self.next_row();
            self.in_row = carry_over;
        }
    }

    /// Walk the next `len` chunk-local offsets (a run of set bits) as
    /// contiguous row segments, calling `f(row_coords, g0, vi, take)`
    /// for each: `row_coords` are the segment's chunk-local
    /// coordinates (innermost entry = segment start), `g0` its first
    /// global position, `vi` its first index into the chunk's
    /// reconstructed values (`vi0` + offset within the run), and
    /// `take` its point count. Consecutive global positions within a
    /// segment map to consecutive value indices, so callers filter and
    /// copy sub-slices instead of points. Leaves the cursor at the end
    /// of the run.
    fn walk_run<F>(&mut self, len: u64, vi0: u64, mut f: F)
    where
        F: FnMut(&[u64], u64, usize, u64),
    {
        let dims = self.extents.len();
        let w = self.row_w;
        let mut remaining = len;
        let mut vi = vi0 as usize;
        loop {
            // The run covers `take` contiguous global positions of the
            // cursor's chunk row.
            let take = remaining.min(w - self.in_row);
            self.c[dims - 1] = self.in_row;
            f(&self.c, self.row_base + self.in_row, vi, take);
            remaining -= take;
            vi += take as usize;
            self.in_row += take;
            if remaining == 0 {
                // Eagerly carry a row boundary (unless the chunk is
                // exhausted, where the cursor parks past the last row).
                if self.in_row == w && self.rows_left > 0 {
                    self.next_row();
                }
                return;
            }
            self.next_row();
        }
    }
}

/// Deferred per-chunk gather target for units with no per-point
/// filter.
///
/// Bin bitmaps over continuous data are scatter-heavy (isolated set
/// bits), so emitting per unit pays the row-major cursor *per set
/// bit*. Units that nothing can reject instead scatter their values
/// into a chunk-shaped block with pure local arithmetic (one add and
/// one store per run) and mark coverage in `mask`; after all groups,
/// one pass per chunk walks the mask word-by-word and emits whole row
/// segments in bulk. The mask — rather than assuming full coverage —
/// keeps this correct when a chunk's bins are split across ranks by
/// the column-order assignment.
struct ChunkScatter {
    /// Chunk-local values, ordered by local offset (empty when the
    /// query is position-only).
    block: Vec<f64>,
    /// One bit per chunk-local offset: set iff some unit on this rank
    /// covered it.
    mask: Vec<u64>,
    /// Whether emission must clamp to the query's spatial region
    /// (identical for every unit of one chunk).
    spatial: bool,
}

/// Set `len` bits of `mask` starting at bit `start`.
#[inline]
fn set_bits(mask: &mut [u64], start: u64, len: u64) {
    let mut w = (start / 64) as usize;
    let mut bit = start % 64;
    let mut rem = len;
    while rem > 0 {
        let take = (64 - bit).min(rem);
        let m = if take == 64 {
            !0u64
        } else {
            ((1u64 << take) - 1) << bit
        };
        mask[w] |= m;
        w += 1;
        bit = 0;
        rem -= take;
    }
}

thread_local! {
    static FORCE_GENERAL_PATH: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Recycled `(block, mask)` buffer pairs for [`ChunkScatter`].
    /// Invariant: every pooled buffer is all-zero, so acquiring one
    /// skips the full-block memset — emission re-zeroes exactly the
    /// covered ranges (cache-hot, proportional to result size) before
    /// returning buffers here.
    static SCATTER_POOL: std::cell::RefCell<Vec<(Vec<f64>, Vec<u64>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Most buffers a thread's pool retains (bounds long-session memory;
/// one block is a chunk's worth of `f64`s).
const SCATTER_POOL_CAP: usize = 64;

/// Test hook: force the per-point general reconstruct path even for
/// units the bulk fast path could serve, so differential tests can
/// prove the two paths identical. Thread-local; checked once per work
/// unit, so it costs nothing measurable on the hot path.
#[doc(hidden)]
pub fn force_general_reconstruct(on: bool) {
    FORCE_GENERAL_PATH.with(|f| f.set(on));
}

#[inline]
fn use_general_path() -> bool {
    FORCE_GENERAL_PATH.with(|f| f.get())
}

/// Process this rank's work units, reading through `io`.
///
/// Units must be grouped by bin and ordered by chunk rank within a bin
/// (the plan and the column-order assignment both preserve this).
/// `position_filter`, when set, keeps only the listed global positions
/// (used by multi-variable retrieval, §III-D.4); it must be sorted
/// ascending and duplicate-free — the engine intersects it with each
/// unit's monotone position stream by galloping, never by hashing.
///
/// `obs` records this rank's span/counter profile; the decompress and
/// reconstruct spans mirror the *identical* measured floats that land
/// in [`RankOutput`], so profiles reconcile exactly with
/// [`crate::QueryMetrics`]. Pass [`Collector::disabled`] to skip all
/// recording at the cost of one branch per call site.
///
/// Every extent read is verified against the file's checksum footer.
/// When `allow_degraded` is set, an unreadable or corrupt *non-base*
/// PLoD byte-group extent of a value-filterless unit is worked around:
/// the unit is reconstructed from the parts before the loss (exact
/// positions, values at reduced precision) and the loss is recorded in
/// [`RankOutput::degradation`]. Index headers, bitmaps, base parts,
/// value-filtered units, and the footers themselves always fail loudly
/// — degrading any of those could silently change *which* points match.
///
/// With `capture_refine` set (progressive queries only), every
/// refinable unit — PLoD data-bearing, values wanted, no value filter,
/// no position filter — additionally records a [`RefineUnit`] in
/// [`RankOutput::refine_units`]: its part extent locations, footer,
/// and the per-point (value rank, global position) mapping the
/// emission below established. Emitted positions and values are
/// identical with and without capture.
#[allow(clippy::too_many_arguments)] // rank-internal entry point, called from the executor only
pub fn process_units(
    store: &MlocStore<'_>,
    query: &Query,
    units: &[WorkUnit],
    io: &mut RankIo<'_>,
    position_filter: Option<&[u64]>,
    allow_degraded: bool,
    capture_refine: bool,
    obs: &mut Collector,
) -> Result<RankOutput> {
    let mut out = RankOutput::default();
    let config = store.config();
    let grid = store.grid();
    let order = store.order();
    let num_chunks = grid.num_chunks();
    let num_parts = config.num_parts();
    let n_parts = parts_used(config, query);
    let byte_codec = config.codec.byte_codec();
    let float_codec = config.codec.float_codec();
    let wants_values = query.wants_values();
    debug_assert!(
        position_filter.is_none_or(|f| f.windows(2).all(|w| w[0] < w[1])),
        "position filter must be sorted and duplicate-free"
    );
    // A membership query routes its sorted point set through the same
    // position-filter machinery as multi-variable retrieval, so every
    // execution mode inherits that path's correctness; an explicit
    // caller filter wins (multivar pre-intersects the point set
    // itself and keeps the streaming gallop route).
    let membership = position_filter.is_none() && query.points.is_some();
    let position_filter = position_filter.or(query.points.as_deref());

    let cache = store.cache().map(Arc::as_ref);
    let fuser = store.fuser().map(Arc::as_ref);
    let scope = store.cache_scope();
    let key = |bin: usize, chunk_rank: usize, part: BlockPart| BlockKey {
        scope: Arc::clone(scope),
        bin: bin as u32,
        chunk_rank: chunk_rank as u32,
        part,
    };

    // Per-rank scratch, reused across every chunk of every bin: the
    // coordinate decomposition buffer, the PLoD assembly target, and
    // the incremental position emitter.
    let mut coords = vec![0usize; grid.dims()];
    let mut scratch_values: Vec<f64> = Vec::new();
    let mut word_scratch: Vec<u32> = Vec::new();
    let mut range_scratch: Vec<(usize, usize)> = Vec::new();
    let mut emitter = ChunkEmitter::new(grid.shape());
    // Chunk-rank-keyed scatter targets for filterless units, emitted
    // in bulk after the group loop (BTreeMap ⇒ deterministic order).
    let mut scatter: std::collections::BTreeMap<usize, ChunkScatter> =
        std::collections::BTreeMap::new();
    let mut cache_rejected = 0u64;
    // Two-level-index accounting: chunks whose bitmap read the v2
    // summary made unnecessary (full chunks), chunks that still needed
    // their bitmap, and sampled-directory rank/select probes.
    let mut summary_hits = 0u64;
    let mut summary_skips = 0u64;
    let mut rank_calls = 0u64;
    // Allocation proxy: bytes materialized into fresh or scratch
    // buffers on this rank's hot path (decompress outputs + PLoD
    // assembly). Coalesced reads and cache inserts copy nothing.
    let mut copy_bytes = 0u64;

    let mut i = 0usize;
    while i < units.len() {
        let bin = units[i].bin;
        let mut j = i;
        while j < units.len() && units[j].bin == bin {
            j += 1;
        }
        let group = &units[i..j];
        i = j;

        obs.count_labeled("bin.units", Label::Index(bin as u32), group.len() as u64);
        let index_bytes_before = out.index_bytes;
        obs.begin("index-read");

        // The index file's checksum footer comes first: every extent
        // read from the file below (header, bitmaps) is verified
        // against it, and none of them is degradable — a damaged index
        // fails the query loudly.
        let idx_file = store.index_file(bin);
        let idx_footer = load_footer(
            io,
            &idx_file,
            cache,
            key(bin, 0, BlockPart::Footer(0)),
            &mut out,
            &mut cache_rejected,
            true,
        )?;

        // Index header + directory: one sequential read, cached whole.
        let hdr_len = header_size(num_chunks, num_parts);
        let hdr_key = key(bin, 0, BlockPart::IndexHeader);
        let cached_hdr = cache
            .and_then(|c| c.get(&hdr_key))
            .and_then(|b| b.as_bytes().cloned());
        let hdr: ByteView = match cached_hdr {
            Some(b) => {
                io.record_cached(&idx_file, 0, hdr_len);
                out.cache_hits += 1;
                out.bytes_saved += hdr_len;
                b
            }
            None => {
                if cache.is_some() {
                    out.cache_misses += 1;
                }
                let raw = ByteView::new(Arc::new(io.read(&idx_file, 0, hdr_len)?));
                idx_footer.verify(&idx_file, 0, &raw)?;
                out.index_bytes += hdr_len;
                if let Some(c) = cache {
                    if !c.insert(hdr_key, CachedBlock::Bytes(raw.clone())) {
                        cache_rejected += 1;
                    }
                }
                raw
            }
        };
        let index = BinIndex::decode_header(&hdr)?;

        // v2 chunk summaries: one extent right after the header, read
        // whenever the file carries one. The read is version-driven —
        // never cache- or plan-state-driven — so cold and warm runs of
        // the same query access identical extents, and the header →
        // summary → first-bitmap reads stay physically contiguous.
        let summaries: Option<Vec<ChunkSummary>> = if index.summary_bytes > 0 {
            let sum_key = key(bin, 0, BlockPart::Summary);
            let s_off = index.summary_file_offset();
            let s_len = index.summary_bytes;
            let cached = cache
                .and_then(|c| c.get(&sum_key))
                .and_then(|b| b.as_bytes().cloned());
            let raw: ByteView = match cached {
                Some(b) => {
                    io.record_cached(&idx_file, s_off, s_len);
                    out.cache_hits += 1;
                    out.bytes_saved += s_len;
                    b
                }
                None => {
                    if cache.is_some() {
                        out.cache_misses += 1;
                    }
                    let raw = ByteView::new(Arc::new(io.read(&idx_file, s_off, s_len)?));
                    idx_footer.verify(&idx_file, s_off, &raw)?;
                    out.index_bytes += s_len;
                    if let Some(c) = cache {
                        if !c.insert(sum_key, CachedBlock::Bytes(raw.clone())) {
                            cache_rejected += 1;
                        }
                    }
                    raw
                }
            };
            Some(decode_summary(&raw, index.chunks.len())?)
        } else {
            None
        };

        // Positional bitmaps for this rank's chunks. Cache hits are
        // recorded in the trace (zero cost); misses are coalesced into
        // as few physical reads as before, and every want becomes a
        // view into the merged extent — no per-bitmap copy.
        let mut bitmap_of: Vec<Option<ByteView>> = vec![None; group.len()];
        let mut full_of: Vec<bool> = vec![false; group.len()];
        let mut bitmap_wants: Vec<(u64, u32)> = Vec::new();
        let mut bitmap_slot: Vec<usize> = Vec::new(); // unit idx in group
        for (gi, u) in group.iter().enumerate() {
            let blen = index.chunks[u.chunk_rank].bitmap_len;
            if blen == 0 {
                continue;
            }
            // Summary classification (v2): a full chunk's bitmap is
            // all ones, so it is synthesized at reconstruction instead
            // of read; partial chunks still fetch their bitmap.
            if let Some(sums) = &summaries {
                if sums[u.chunk_rank].all_of_chunk {
                    full_of[gi] = true;
                    summary_skips += 1;
                    continue;
                }
                summary_hits += 1;
            }
            let off = index.bitmap_file_offset(u.chunk_rank);
            if let Some(c) = cache {
                if let Some(CachedBlock::Bytes(b)) =
                    c.get(&key(bin, u.chunk_rank, BlockPart::Bitmap))
                {
                    io.record_cached(&idx_file, off, u64::from(blen));
                    out.cache_hits += 1;
                    out.bytes_saved += u64::from(blen);
                    bitmap_of[gi] = Some(b);
                    continue;
                }
                out.cache_misses += 1;
            }
            bitmap_wants.push((off, blen));
            bitmap_slot.push(gi);
        }
        let mut bitmap_views: Vec<ByteView> = Vec::with_capacity(bitmap_wants.len());
        for (k_i, w) in
            coalesced_read_results(io, &idx_file, &bitmap_wants, Some(&idx_footer), fuser)
                .into_iter()
                .enumerate()
        {
            let view = w.res?;
            if w.fused {
                out.fused_reads += 1;
                out.fused_bytes += u64::from(bitmap_wants[k_i].1);
            } else {
                out.index_bytes += u64::from(bitmap_wants[k_i].1);
            }
            bitmap_views.push(view);
        }
        for (k_i, view) in bitmap_views.into_iter().enumerate() {
            let gi = bitmap_slot[k_i];
            if let Some(c) = cache {
                if !c.insert(
                    key(bin, group[gi].chunk_rank, BlockPart::Bitmap),
                    CachedBlock::Bytes(view.clone()),
                ) {
                    cache_rejected += 1;
                }
            }
            bitmap_of[gi] = Some(view);
        }
        obs.end(); // index-read
        obs.count_labeled(
            "bin.index.bytes",
            Label::Index(bin as u32),
            out.index_bytes - index_bytes_before,
        );

        // Data units (only for units that need data). Cached at part
        // granularity: a PLoD level-k query reuses parts 0..k of any
        // earlier query over the same chunk, whatever its level.
        obs.begin("data-read");
        let data_file = store.data_file(bin);
        let data_bytes_before = out.data_bytes;
        // The data file's footer is needed iff any unit actually
        // touches data. The condition depends only on the plan and the
        // index — never on cache state — so cold and warm runs of the
        // same query access it identically.
        let group_needs_data = group
            .iter()
            .any(|u| u.needs_data && index.chunks[u.chunk_rank].count > 0);
        let dat_footer: Option<Arc<ExtentFooter>> = if group_needs_data {
            Some(load_footer(
                io,
                &data_file,
                cache,
                key(bin, 0, BlockPart::Footer(1)),
                &mut out,
                &mut cache_rejected,
                false,
            )?)
        } else {
            None
        };
        let mut parts_of: Vec<Vec<Option<ByteView>>> = vec![Vec::new(); group.len()];
        let mut floats_of: Vec<Option<Arc<Vec<f64>>>> = vec![None; group.len()];
        let mut data_wants: Vec<(u64, u32)> = Vec::new();
        let mut data_slot: Vec<(usize, usize)> = Vec::new(); // (unit idx, part)
        for (gi, u) in group.iter().enumerate() {
            if !u.needs_data || index.chunks[u.chunk_rank].count == 0 {
                continue;
            }
            if config.plod {
                parts_of[gi] = vec![None; n_parts];
            }
            #[allow(clippy::needless_range_loop)] // `p` indexes two arrays
            for p in 0..n_parts {
                let loc = index.chunks[u.chunk_rank].units[p];
                if let Some(c) = cache {
                    let part = if config.plod {
                        BlockPart::PlodPart(p as u8)
                    } else {
                        BlockPart::Floats
                    };
                    match c.get(&key(bin, u.chunk_rank, part)) {
                        Some(CachedBlock::Bytes(b)) if config.plod => {
                            io.record_cached(&data_file, loc.offset, u64::from(loc.clen));
                            out.cache_hits += 1;
                            out.bytes_saved += u64::from(loc.clen);
                            parts_of[gi][p] = Some(b);
                            continue;
                        }
                        Some(CachedBlock::Floats(f)) if !config.plod => {
                            io.record_cached(&data_file, loc.offset, u64::from(loc.clen));
                            out.cache_hits += 1;
                            out.bytes_saved += u64::from(loc.clen);
                            floats_of[gi] = Some(f);
                            continue;
                        }
                        _ => out.cache_misses += 1,
                    }
                }
                data_wants.push((loc.offset, loc.clen));
                data_slot.push((gi, p));
            }
        }
        let data_results =
            coalesced_read_results(io, &data_file, &data_wants, dat_footer.as_deref(), fuser);

        // Sort the per-want outcomes: successes keep their views; a
        // failed want is fatal unless it is degradable — a non-base
        // PLoD part of a unit with no value filter (degrading a
        // filtered unit could silently change which points match).
        // Track the lowest lost part per unit; everything from it on
        // is dropped at reconstruction.
        let mut eff_parts: Vec<usize> = vec![n_parts; group.len()];
        let mut lost_reason: Vec<Option<String>> = vec![None; group.len()];
        let mut data_views: Vec<Option<ByteView>> = Vec::with_capacity(data_results.len());
        for (k_i, res) in data_results.into_iter().enumerate() {
            let (gi, p) = data_slot[k_i];
            let was_fused = res.fused;
            match res.res {
                Ok(view) => {
                    if was_fused {
                        out.fused_reads += 1;
                        out.fused_bytes += u64::from(data_wants[k_i].1);
                    } else {
                        out.data_bytes += u64::from(data_wants[k_i].1);
                    }
                    data_views.push(Some(view));
                }
                Err(e) => {
                    let degradable =
                        allow_degraded && config.plod && p > 0 && !group[gi].value_filter;
                    if !degradable {
                        return Err(e);
                    }
                    if p < eff_parts[gi] {
                        eff_parts[gi] = p;
                        lost_reason[gi] = Some(e.to_string());
                    }
                    data_views.push(None);
                }
            }
        }
        for (gi, reason) in lost_reason.into_iter().enumerate() {
            if let Some(reason) = reason {
                out.degradation.events.push(DegradationEvent {
                    bin,
                    chunk_rank: group[gi].chunk_rank,
                    lost_part: eff_parts[gi],
                    points: u64::from(index.chunks[group[gi].chunk_rank].count),
                    reason,
                });
            }
        }
        let group_data_bytes = out.data_bytes - data_bytes_before;
        obs.end(); // data-read
        obs.count_labeled("bin.data.bytes", Label::Index(bin as u32), group_data_bytes);
        obs.count_labeled(
            "decompress.units",
            Label::Name(config.codec.name()),
            data_views.iter().flatten().count() as u64,
        );

        // Decompress the fetched units (timed); cache hits above skip
        // this entirely, which is where warm-session time goes to ~0.
        let t = Instant::now();
        for (k_i, buf) in data_views.iter().enumerate() {
            let Some(buf) = buf else { continue };
            let (gi, p) = data_slot[k_i];
            let count = index.chunks[group[gi].chunk_rank].count as usize;
            if config.plod {
                let decomp = byte_codec.decompress(buf)?;
                if decomp.len() != count * plod::PART_BYTES[p] {
                    return Err(MlocError::Corrupt("unit length mismatch"));
                }
                copy_bytes += decomp.len() as u64;
                let view = ByteView::from(decomp);
                if let Some(c) = cache {
                    if !c.insert(
                        key(bin, group[gi].chunk_rank, BlockPart::PlodPart(p as u8)),
                        CachedBlock::Bytes(view.clone()),
                    ) {
                        cache_rejected += 1;
                    }
                }
                parts_of[gi][p] = Some(view);
            } else {
                let decomp = float_codec.decompress_f64(buf)?;
                if decomp.len() != count {
                    return Err(MlocError::Corrupt("unit length mismatch"));
                }
                copy_bytes += (decomp.len() * std::mem::size_of::<f64>()) as u64;
                let a = Arc::new(decomp);
                if let Some(c) = cache {
                    if !c.insert(
                        key(bin, group[gi].chunk_rank, BlockPart::Floats),
                        CachedBlock::Floats(Arc::clone(&a)),
                    ) {
                        cache_rejected += 1;
                    }
                }
                floats_of[gi] = Some(a);
            }
        }
        // The profile span gets the same float as the metric, so the
        // two reports reconcile exactly, not just "within noise".
        let decompress_dt = t.elapsed().as_secs_f64();
        out.decompress_s += decompress_dt;
        obs.record("decompress", decompress_dt);

        // Reconstruct: decode bitmaps, assemble values, filter, map to
        // global positions (timed).
        let t = Instant::now();
        // Upper bound on results this group can add: every set bit of
        // every unit. Reserving once keeps the emit loop free of
        // doubling reallocations (filters only shrink the bound).
        let expected: usize = group
            .iter()
            .map(|u| index.chunks[u.chunk_rank].count as usize)
            .sum();
        out.positions.reserve(expected);
        if wants_values {
            out.values.reserve(expected);
        }
        for (gi, u) in group.iter().enumerate() {
            let entry = &index.chunks[u.chunk_rank];
            if entry.count == 0 {
                continue;
            }
            let chunk_id = order.cell_at(u.chunk_rank);
            grid.chunk_ranges_into(chunk_id, &mut range_scratch);
            let ranges: &[(usize, usize)] = &range_scratch;
            let chunk_points: u64 = ranges.iter().map(|&(s, e)| (e - s) as u64).product();
            // Bytes past the self-delimiting WAH stream are the chunk's
            // rank/select directory (empty in v1 files).
            let mut dir_bytes: &[u8] = &[];
            let ones_holder;
            let bitmap: WahRef<'_> = if full_of[gi] {
                // The summary said "all of chunk", so the bitmap was
                // never read; synthesize the all-ones bitmap. The
                // invariant check below still cross-checks the flag
                // against the directory's count.
                ones_holder = WahBitmap::ones(chunk_points);
                ones_holder.as_ref()
            } else {
                let bm_bytes: &[u8] = bitmap_of[gi].as_ref().map(|b| b.as_slice()).unwrap_or(&[]);
                let (bm, used) = WahRef::decode_into(bm_bytes, &mut word_scratch)?;
                dir_bytes = &bm_bytes[used..];
                bm
            };
            // A corrupted bitmap must not index past the decoded
            // values or outside the chunk.
            if bitmap.len() != chunk_points || bitmap.count_ones() != u64::from(entry.count) {
                return Err(MlocError::Corrupt("index bitmap inconsistent"));
            }

            // Reconstructed values for this chunk: assembled into the
            // reusable scratch (PLoD), or borrowed from the shared
            // float block (borrowed, not taken — the block must not be
            // freed inside the timed reconstruct loop). The invariant
            // "output wants values ⇒ the unit carries them" is checked
            // once per unit, not per point.
            let vals: Option<&[f64]> = if u.needs_data {
                if config.plod {
                    // A degraded unit assembles only the parts before
                    // its first lost extent — same positions, coarser
                    // values, loss already recorded above.
                    let eff = eff_parts[gi];
                    let level = if eff == n_parts {
                        query.plod
                    } else {
                        PlodLevel::new(eff as u8)
                            .map_err(|_| MlocError::Corrupt("degraded below base precision"))?
                    };
                    let mut refs: [&[u8]; NUM_PARTS] = [&[]; NUM_PARTS];
                    for (p, part) in parts_of[gi].iter().enumerate().take(eff) {
                        refs[p] = part
                            .as_ref()
                            .ok_or(MlocError::Corrupt("missing PLoD part"))?
                            .as_slice();
                    }
                    plod::assemble_into(&refs[..eff], level, &mut scratch_values);
                    copy_bytes += (scratch_values.len() * std::mem::size_of::<f64>()) as u64;
                    Some(&scratch_values)
                } else {
                    Some(
                        floats_of[gi]
                            .as_deref()
                            .map(Vec::as_slice)
                            .ok_or(MlocError::Corrupt("missing value block"))?,
                    )
                }
            } else {
                None
            };
            let out_vals: Option<&[f64]> = if wants_values {
                match vals {
                    Some(v) => Some(v),
                    None => return Err(MlocError::Corrupt("value block required but absent")),
                }
            } else {
                None
            };
            let mut gallop = position_filter.map(Gallop::new);

            // Membership probe path: a point-set query answers only a
            // handful of probes per chunk, so instead of streaming the
            // whole bitmap it rank/selects straight into it through
            // the sampled directory (a bounded word walk for v1 files
            // with no directory). The general path stays available as
            // the differential oracle.
            if membership && !use_general_path() && !u.spatial_filter {
                let filter = position_filter.unwrap_or(&[]);
                let (dir, _) = RankSelectDir::from_bytes(dir_bytes)
                    .map_err(|_| MlocError::Corrupt("bad rank/select directory"))?;
                let sum = summaries.as_ref().map(|s| s[u.chunk_rank]);
                // Points that can fall in this chunk lie between the
                // chunk corners' global linear positions.
                for (d, r) in ranges.iter().enumerate() {
                    coords[d] = r.0;
                }
                let g_lo = grid.linearize(&coords);
                for (d, r) in ranges.iter().enumerate() {
                    coords[d] = r.1 - 1;
                }
                let g_hi = grid.linearize(&coords);
                let lo_i = filter.partition_point(|&p| p < g_lo);
                let hi_i = filter.partition_point(|&p| p <= g_hi);
                let (vc_lo, vc_hi) = query.vc.unwrap_or((f64::MIN, f64::MAX));
                let shape = grid.shape();
                'probe: for &p in &filter[lo_i..hi_i] {
                    // Global position → coordinates → chunk-local
                    // offset. The corner window is a superset of the
                    // chunk's box, so out-of-box points still occur.
                    let mut rem = p;
                    for d in (0..shape.len()).rev() {
                        coords[d] = (rem % shape[d] as u64) as usize;
                        rem /= shape[d] as u64;
                    }
                    let mut local = 0u64;
                    for (d, r) in ranges.iter().enumerate() {
                        let c = coords[d];
                        if c < r.0 || c >= r.1 {
                            continue 'probe;
                        }
                        local = local * (r.1 - r.0) as u64 + (c - r.0) as u64;
                    }
                    // Level-1 cull: the summary bounds the set span.
                    if let Some(s) = sum {
                        if local < u64::from(s.min_pos) || local > u64::from(s.max_pos) {
                            continue;
                        }
                    }
                    let (vi, present) = if full_of[gi] {
                        (local, true)
                    } else {
                        rank_calls += 1;
                        bitmap.rank_bit_with(&dir, local)
                    };
                    if !present {
                        continue;
                    }
                    let vi = vi as usize;
                    if u.value_filter {
                        let v = vals.ok_or(MlocError::Corrupt("value filter without values"))?[vi];
                        if !(v >= vc_lo && v < vc_hi) {
                            continue;
                        }
                    }
                    out.positions.push(p);
                    if let Some(v) = out_vals {
                        out.values.push(v[vi]);
                    }
                }
                continue;
            }

            // Progressive capture path: emit this unit directly — the
            // deferred scatter cannot attribute a point to a unit, and
            // refinement needs the per-unit (value rank, position)
            // mapping — recording that mapping as it goes. The final
            // QueryResult sorts by position, so bypassing the scatter
            // never changes observable output.
            if capture_refine
                && config.plod
                && wants_values
                && u.needs_data
                && !u.value_filter
                && gallop.is_none()
                && !membership
            {
                let v = match out_vals {
                    Some(v) => v,
                    None => return Err(MlocError::Corrupt("capture requires values")),
                };
                let mut ru = RefineUnit {
                    bin,
                    chunk_rank: u.chunk_rank,
                    count: entry.count,
                    part_locs: index.chunks[u.chunk_rank].units.clone(),
                    footer: Arc::clone(
                        dat_footer
                            .as_ref()
                            .ok_or(MlocError::Corrupt("data unit without footer"))?,
                    ),
                    val_idx: Vec::new(),
                    positions: Vec::new(),
                };
                let sc_ranges: Option<&[(usize, usize)]> = if u.spatial_filter {
                    query.sc.as_ref().map(|r| r.ranges())
                } else {
                    None
                };
                let positions = &mut out.positions;
                let values = &mut out.values;
                let val_idx = &mut ru.val_idx;
                let cap_pos = &mut ru.positions;
                emitter.set_chunk(ranges);
                let mut sc_row = u64::MAX;
                let mut sc_row_ok = false;
                bitmap.for_each_one_run(|gap, ones_before, len| {
                    emitter.advance(gap);
                    emitter.walk_run(len, ones_before, |c, mut g0, mut vi, mut take| {
                        if let Some(sc) = sc_ranges {
                            let last = c.len() - 1;
                            let row_base = g0 - c[last];
                            if row_base != sc_row {
                                sc_row = row_base;
                                sc_row_ok = (0..last).all(|d| {
                                    let gc = ranges[d].0 + c[d] as usize;
                                    gc >= sc[d].0 && gc < sc[d].1
                                });
                            }
                            if !sc_row_ok {
                                return;
                            }
                            let col0 = ranges[last].0 as u64 + c[last];
                            let lo = (sc[last].0 as u64).max(col0);
                            let hi = (sc[last].1 as u64).min(col0 + take);
                            if lo >= hi {
                                return;
                            }
                            g0 += lo - col0;
                            vi += (lo - col0) as usize;
                            take = hi - lo;
                        }
                        positions.extend(g0..g0 + take);
                        values.extend_from_slice(&v[vi..vi + take as usize]);
                        val_idx.extend(vi as u32..(vi + take as usize) as u32);
                        cap_pos.extend(g0..g0 + take);
                    });
                });
                out.refine_units.push(ru);
                continue;
            }

            if !use_general_path() && gallop.is_none() {
                // Defer this unit to the per-chunk scatter: survivors
                // are marked in a chunk-local coverage mask (values
                // stored chunk-locally) with pure local arithmetic —
                // no row-major cursor per set bit — and one bulk
                // emission per chunk maps them to global positions
                // after the group loop. Value filters reject points
                // here (one compare per set bit); spatial clamping
                // happens once per row at emission.
                let e = scatter.entry(u.chunk_rank).or_insert_with(|| {
                    let (mut block, mut mask) = SCATTER_POOL
                        .with(|p| p.borrow_mut().pop())
                        .unwrap_or_default();
                    debug_assert!(block.iter().all(|&x| x == 0.0));
                    debug_assert!(mask.iter().all(|&w| w == 0));
                    if wants_values {
                        block.resize(chunk_points as usize, 0.0);
                    }
                    mask.resize((chunk_points as usize).div_ceil(64), 0);
                    ChunkScatter {
                        block,
                        mask,
                        spatial: u.spatial_filter,
                    }
                });
                let mut local = 0u64;
                if u.value_filter {
                    let vf = match vals {
                        Some(v) => v,
                        None => return Err(MlocError::Corrupt("value filter without values")),
                    };
                    let (vc_lo, vc_hi) = query.vc.unwrap_or((f64::MIN, f64::MAX));
                    if wants_values {
                        bitmap.for_each_one_run(|gap, ones_before, len| {
                            local += gap;
                            for k in 0..len {
                                let v = vf[(ones_before + k) as usize];
                                if v >= vc_lo && v < vc_hi {
                                    let li = local + k;
                                    e.block[li as usize] = v;
                                    e.mask[(li / 64) as usize] |= 1u64 << (li % 64);
                                }
                            }
                            local += len;
                        });
                    } else {
                        bitmap.for_each_one_run(|gap, ones_before, len| {
                            local += gap;
                            for k in 0..len {
                                let v = vf[(ones_before + k) as usize];
                                if v >= vc_lo && v < vc_hi {
                                    let li = local + k;
                                    e.mask[(li / 64) as usize] |= 1u64 << (li % 64);
                                }
                            }
                            local += len;
                        });
                    }
                } else if let Some(v) = out_vals {
                    bitmap.for_each_one_run(|gap, ones_before, len| {
                        local += gap;
                        if len == 1 {
                            e.block[local as usize] = v[ones_before as usize];
                        } else {
                            e.block[local as usize..(local + len) as usize].copy_from_slice(
                                &v[ones_before as usize..(ones_before + len) as usize],
                            );
                        }
                        set_bits(&mut e.mask, local, len);
                        local += len;
                    });
                } else {
                    bitmap.for_each_one_run(|gap, _, len| {
                        local += gap;
                        set_bits(&mut e.mask, local, len);
                        local += len;
                    });
                }
                continue;
            }
            if use_general_path() {
                // General path: per-point value/spatial checks. Kept
                // close to the pre-optimization loop so the fast path
                // can be differentially tested against it.
                let (vc_lo, vc_hi) = query.vc.unwrap_or((f64::MIN, f64::MAX));
                for (pos_idx, local) in bitmap.iter_ones().enumerate() {
                    if u.value_filter {
                        let v =
                            vals.ok_or(MlocError::Corrupt("value filter without values"))?[pos_idx];
                        if !(v >= vc_lo && v < vc_hi) {
                            continue;
                        }
                    }
                    local_to_coords_into(ranges, local, &mut coords);
                    if u.spatial_filter {
                        if let Some(region) = &query.sc {
                            if !region.contains(&coords) {
                                continue;
                            }
                        }
                    }
                    let global = grid.linearize(&coords);
                    if let Some(filter) = gallop.as_mut() {
                        if !filter.contains(global) {
                            continue;
                        }
                    }
                    out.positions.push(global);
                    if let Some(v) = out_vals {
                        out.values.push(v[pos_idx]);
                    }
                }
            } else if let Some(filter) = gallop.as_mut() {
                // Position-filtered (multi-variable) path: walk each
                // run of set bits as contiguous row segments with
                // incremental row-major arithmetic, gallop the sorted
                // filter over each segment, and apply the value/spatial
                // constraints to the survivors.
                let vf_vals: Option<&[f64]> = if u.value_filter {
                    match vals {
                        Some(v) => Some(v),
                        None => return Err(MlocError::Corrupt("value filter without values")),
                    }
                } else {
                    None
                };
                let (vc_lo, vc_hi) = query.vc.unwrap_or((f64::MIN, f64::MAX));
                let sc_ranges: Option<&[(usize, usize)]> = if u.spatial_filter {
                    query.sc.as_ref().map(|r| r.ranges())
                } else {
                    None
                };
                let positions = &mut out.positions;
                let values = &mut out.values;
                emitter.set_chunk(ranges);
                // Outer-dimension spatial verdicts only change when
                // the row changes; cache the last row's answer keyed
                // by its global row base (`g0 - c[last]`).
                let mut sc_row = u64::MAX;
                let mut sc_row_ok = false;
                bitmap.for_each_one_run(|gap, ones_before, len| {
                    emitter.advance(gap);
                    emitter.walk_run(len, ones_before, |c, mut g0, mut vi, mut take| {
                        if let Some(sc) = sc_ranges {
                            let last = c.len() - 1;
                            let row_base = g0 - c[last];
                            if row_base != sc_row {
                                sc_row = row_base;
                                sc_row_ok = (0..last).all(|d| {
                                    let gc = ranges[d].0 + c[d] as usize;
                                    gc >= sc[d].0 && gc < sc[d].1
                                });
                            }
                            if !sc_row_ok {
                                return;
                            }
                            // Clamp the innermost extent.
                            let col0 = ranges[last].0 as u64 + c[last];
                            let lo = (sc[last].0 as u64).max(col0);
                            let hi = (sc[last].1 as u64).min(col0 + take);
                            if lo >= hi {
                                return;
                            }
                            g0 += lo - col0;
                            vi += (lo - col0) as usize;
                            take = hi - lo;
                        }
                        for &p in filter.range(g0, g0 + take) {
                            let k = (p - g0) as usize;
                            if let Some(vf) = vf_vals {
                                let v = vf[vi + k];
                                if !(v >= vc_lo && v < vc_hi) {
                                    continue;
                                }
                            }
                            positions.push(p);
                            if let Some(v) = out_vals {
                                values.push(v[vi + k]);
                            }
                        }
                    });
                });
            } else {
                debug_assert!(false, "unfiltered units take the scatter path");
            }
        }
        let reconstruct_dt = t.elapsed().as_secs_f64();
        out.reconstruct_s += reconstruct_dt;
        obs.record("reconstruct", reconstruct_dt);
    }
    // Bulk emission of the deferred chunks: walk each coverage mask
    // word-by-word and emit covered runs as whole row segments.
    // Chunk-rank order is deterministic; the final QueryResult sorts
    // by position anyway, so deferral never changes observable output.
    if !scatter.is_empty() {
        let t = Instant::now();
        let sc_query: Option<&[(usize, usize)]> = query.sc.as_ref().map(|r| r.ranges());
        for (chunk_rank, mut e) in std::mem::take(&mut scatter) {
            let chunk_id = order.cell_at(chunk_rank);
            grid.chunk_ranges_into(chunk_id, &mut range_scratch);
            let ranges: &[(usize, usize)] = &range_scratch;
            emitter.set_chunk(ranges);
            let sc_ranges = if e.spatial { sc_query } else { None };
            let positions = &mut out.positions;
            let values = &mut out.values;
            let mut sc_row = u64::MAX;
            let mut sc_row_ok = false;
            let mut cursor = 0u64;
            for wi in 0..e.mask.len() {
                let word = e.mask[wi];
                if word == 0 {
                    continue;
                }
                e.mask[wi] = 0;
                let base = wi as u64 * 64;
                let mut off = 0u64;
                let mut m = word;
                while m != 0 {
                    let z = u64::from(m.trailing_zeros());
                    let shifted = m >> z;
                    let o = u64::from((!shifted).trailing_zeros());
                    let start = base + off + z;
                    emitter.advance(start - cursor);
                    let block = &e.block;
                    emitter.walk_run(o, start, |c, mut g0, mut vi, mut take| {
                        if let Some(scr) = sc_ranges {
                            let last = c.len() - 1;
                            let row_base = g0 - c[last];
                            if row_base != sc_row {
                                sc_row = row_base;
                                sc_row_ok = (0..last).all(|d| {
                                    let gc = ranges[d].0 + c[d] as usize;
                                    gc >= scr[d].0 && gc < scr[d].1
                                });
                            }
                            if !sc_row_ok {
                                return;
                            }
                            let col0 = ranges[last].0 as u64 + c[last];
                            let lo = (scr[last].0 as u64).max(col0);
                            let hi = (scr[last].1 as u64).min(col0 + take);
                            if lo >= hi {
                                return;
                            }
                            g0 += lo - col0;
                            vi += (lo - col0) as usize;
                            take = hi - lo;
                        }
                        positions.extend(g0..g0 + take);
                        if wants_values {
                            values.extend_from_slice(&block[vi..vi + take as usize]);
                        }
                    });
                    // Restore the pool's all-zero invariant for exactly
                    // the range this run covered (cache-hot: emission
                    // just read it).
                    if wants_values {
                        e.block[start as usize..(start + o) as usize].fill(0.0);
                    }
                    cursor = start + o;
                    off += z + o;
                    m = if off >= 64 { 0 } else { shifted >> o };
                }
            }
            SCATTER_POOL.with(|p| {
                let mut p = p.borrow_mut();
                if p.len() < SCATTER_POOL_CAP {
                    p.push((e.block, e.mask));
                }
            });
        }
        let emit_dt = t.elapsed().as_secs_f64();
        out.reconstruct_s += emit_dt;
        obs.record("reconstruct", emit_dt);
    }
    obs.count("index.summary_hits", summary_hits);
    obs.count("index.summary_skips", summary_skips);
    obs.count("index.rank_calls", rank_calls);
    obs.count("cache.hits", out.cache_hits);
    obs.count("cache.misses", out.cache_misses);
    obs.count("cache.bytes_saved", out.bytes_saved);
    obs.count("cache.rejected_inserts", cache_rejected);
    obs.count("hotpath.copy_bytes", copy_bytes);
    if out.fused_reads > 0 {
        obs.count("fusion.fused_reads", out.fused_reads);
        obs.count("fusion.bytes_saved", out.fused_bytes);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_to_coords_matches_grid() {
        use crate::array::ChunkGrid;
        let grid = ChunkGrid::new(vec![10, 7], vec![4, 3]);
        let mut scratch = vec![0usize; 2];
        for chunk in 0..grid.num_chunks() {
            let ranges = grid.chunk_region(chunk).ranges().to_vec();
            for local in 0..grid.chunk_points(chunk) {
                local_to_coords_into(&ranges, local as u64, &mut scratch);
                assert_eq!(scratch, grid.local_to_coords(chunk, local));
            }
        }
    }

    #[test]
    fn chunk_emitter_matches_per_point_mapping() {
        use crate::array::ChunkGrid;
        for (shape, chunk_shape) in [
            (vec![10usize, 7], vec![4usize, 3]),
            (vec![16], vec![5]),
            (vec![6, 5, 4], vec![4, 2, 3]),
        ] {
            let grid = ChunkGrid::new(shape.clone(), chunk_shape);
            let mut emitter = ChunkEmitter::new(grid.shape());
            let mut coords = vec![0usize; grid.dims()];
            for chunk in 0..grid.num_chunks() {
                let region = grid.chunk_region(chunk);
                emitter.set_chunk(region.ranges());
                let points = grid.chunk_points(chunk) as u64;
                // Every (start, len) run inside the chunk.
                for start in 0..points {
                    for len in 1..=(points - start).min(9) {
                        let mut got = Vec::new();
                        emitter.set_chunk(region.ranges());
                        emitter.advance(start);
                        emitter.walk_run(len, 0, |_, g0, _, take| {
                            got.extend(g0..g0 + take);
                        });
                        let want: Vec<u64> = (start..start + len)
                            .map(|l| {
                                local_to_coords_into(region.ranges(), l, &mut coords);
                                grid.linearize(&coords)
                            })
                            .collect();
                        assert_eq!(
                            got, want,
                            "shape {shape:?} chunk {chunk} run ({start},{len})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_emitter_copies_values_and_filters() {
        use crate::array::ChunkGrid;
        let grid = ChunkGrid::new(vec![8, 8], vec![4, 4]);
        let mut emitter = ChunkEmitter::new(grid.shape());
        let region = grid.chunk_region(3); // rows 4..8, cols 4..8
        emitter.set_chunk(region.ranges());
        let vals: Vec<f64> = (0..16).map(|i| i as f64 * 10.0).collect();
        // Run covering the whole chunk, filtered to three positions.
        let all: Vec<u64> = {
            let mut p = Vec::new();
            emitter.walk_run(16, 0, |_, g0, _, take| p.extend(g0..g0 + take));
            p
        };
        let filter = vec![all[1], all[7], all[14]];
        let mut gallop = Gallop::new(&filter);
        let mut positions = Vec::new();
        let mut values = Vec::new();
        emitter.set_chunk(region.ranges());
        emitter.walk_run(16, 0, |_, g0, vi, take| {
            for &e in gallop.range(g0, g0 + take) {
                positions.push(e);
                values.push(vals[vi + (e - g0) as usize]);
            }
        });
        assert_eq!(positions, filter);
        assert_eq!(values, vec![10.0, 70.0, 140.0]);
    }

    #[test]
    fn gallop_matches_linear_intersection() {
        let sorted: Vec<u64> = (0..1000u64).filter(|x| x % 7 == 0).collect();
        let mut g = Gallop::new(&sorted);
        for x in 0..1000u64 {
            // Monotone probes only.
            if x % 3 != 0 {
                continue;
            }
            assert_eq!(g.contains(x), x % 7 == 0, "x={x}");
        }
        let mut g = Gallop::new(&sorted);
        assert_eq!(g.range(10, 30), &[14, 21, 28]);
        assert_eq!(g.range(30, 36), &[35]);
        assert_eq!(g.range(990, 2000), &[994]);
        assert!(g.range(2000, 3000).is_empty());
    }
}
