//! Query types and execution.
//!
//! MLOC serves the paper's access-pattern taxonomy (§II):
//!
//! * value-constrained **region queries** → [`Query::region`]
//!   (positions out, values never reconstructed for aligned bins);
//! * spatial-constrained **value queries** → [`Query::values_in`];
//! * combined constraints → [`Query::new`] with both set;
//! * **multi-variable** queries → [`multivar::select_then_fetch`];
//! * **multi-resolution** access → [`Query::with_plod`] (precision
//!   based) and [`multires::subset_chunks`] (subset based).

pub mod engine;
pub mod multires;
pub mod multivar;
pub mod plan;

use crate::array::Region;
use crate::config::PlodLevel;
use mloc_bitmap::WahBitmap;

/// The shape of a query's constraint set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Scan-style: value and/or spatial range constraints.
    Scan,
    /// Membership: a sorted point set probed against the index.
    Membership,
}

/// What a query returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutput {
    /// Only the matching positions (region-only access, §III-D.1).
    Positions,
    /// Positions and reconstructed values (value-retrieval, §III-D.2).
    Values,
}

/// A declarative query over one variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Value constraint `[lo, hi)`.
    pub vc: Option<(f64, f64)>,
    /// Spatial constraint.
    pub sc: Option<Region>,
    /// Precision level for value reconstruction.
    pub plod: PlodLevel,
    /// Output kind.
    pub output: QueryOutput,
    /// Membership point set: sorted, duplicate-free global positions.
    /// When set, the query answers "which of these points match" via
    /// per-bin rank/select probes instead of a scan; combining with a
    /// spatial constraint is rejected at planning.
    pub points: Option<Vec<u64>>,
}

impl Query {
    /// General constructor.
    pub fn new(
        vc: Option<(f64, f64)>,
        sc: Option<Region>,
        plod: PlodLevel,
        output: QueryOutput,
    ) -> Self {
        Query {
            vc,
            sc,
            plod,
            output,
            points: None,
        }
    }

    /// Membership query: which of these global positions exist (all of
    /// them, unless further constrained) — positions out, index-only
    /// for aligned bins. Points are sorted and deduplicated here.
    pub fn membership(mut points: Vec<u64>) -> Self {
        points.sort_unstable();
        points.dedup();
        Query {
            vc: None,
            sc: None,
            plod: PlodLevel::FULL,
            output: QueryOutput::Positions,
            points: Some(points),
        }
    }

    /// Membership query restricted to values in `[lo, hi)`: which of
    /// these points hold a matching value.
    pub fn membership_where(lo: f64, hi: f64, points: Vec<u64>) -> Self {
        let mut q = Query::membership(points);
        q.vc = Some((lo, hi));
        q
    }

    /// Request reconstructed values in the output.
    pub fn with_values(mut self) -> Self {
        self.output = QueryOutput::Values;
        self
    }

    /// Scan vs membership classification.
    pub fn kind(&self) -> QueryKind {
        if self.points.is_some() {
            QueryKind::Membership
        } else {
            QueryKind::Scan
        }
    }

    /// Region query: positions whose value lies in `[lo, hi)`.
    pub fn region(lo: f64, hi: f64) -> Self {
        Query {
            vc: Some((lo, hi)),
            sc: None,
            plod: PlodLevel::FULL,
            output: QueryOutput::Positions,
            points: None,
        }
    }

    /// Value query: values of all points inside a region.
    pub fn values_in(region: Region) -> Self {
        Query {
            vc: None,
            sc: Some(region),
            plod: PlodLevel::FULL,
            output: QueryOutput::Values,
            points: None,
        }
    }

    /// Value query with a value constraint (values in `[lo, hi)`).
    pub fn values_where(lo: f64, hi: f64) -> Self {
        Query {
            vc: Some((lo, hi)),
            sc: None,
            plod: PlodLevel::FULL,
            output: QueryOutput::Values,
            points: None,
        }
    }

    /// Restrict an existing query to a spatial region.
    pub fn with_region(mut self, region: Region) -> Self {
        self.sc = Some(region);
        self
    }

    /// Set the PLoD precision level.
    pub fn with_plod(mut self, plod: PlodLevel) -> Self {
        self.plod = plod;
        self
    }

    /// Whether values must be reconstructed.
    pub fn wants_values(&self) -> bool {
        self.output == QueryOutput::Values
    }
}

/// Result of a query: matching positions (global row-major indices),
/// and their values when requested. Entries are sorted by position.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    positions: Vec<u64>,
    values: Option<Vec<f64>>,
}

impl QueryResult {
    /// Assemble from unsorted parts (sorts by position, keeping values
    /// aligned).
    pub fn from_parts(mut positions: Vec<u64>, values: Option<Vec<f64>>) -> Self {
        match values {
            Some(vals) => {
                assert_eq!(vals.len(), positions.len());
                let mut pairs: Vec<(u64, f64)> = positions.into_iter().zip(vals).collect();
                pairs.sort_unstable_by_key(|&(p, _)| p);
                let (positions, values): (Vec<u64>, Vec<f64>) = pairs.into_iter().unzip();
                QueryResult {
                    positions,
                    values: Some(values),
                }
            }
            None => {
                positions.sort_unstable();
                QueryResult {
                    positions,
                    values: None,
                }
            }
        }
    }

    /// Matching positions, sorted ascending.
    pub fn positions(&self) -> &[u64] {
        &self.positions
    }

    /// Values aligned with [`Self::positions`] (None for region-only
    /// queries).
    pub fn values(&self) -> Option<&[f64]> {
        self.values.as_deref()
    }

    /// In-place mutable view of the values, for progressive refinement
    /// (positions stay fixed across refinement steps; only value
    /// precision improves).
    pub(crate) fn values_mut(&mut self) -> Option<&mut [f64]> {
        self.values.as_deref_mut()
    }

    /// Decompose into `(positions, values)` without copying (used when
    /// merging sub-results).
    pub(crate) fn into_parts(self) -> (Vec<u64>, Option<Vec<f64>>) {
        (self.positions, self.values)
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether nothing matched.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The positions as a global bitmap of `total_points` bits — the
    /// representation MLOC uses to hand region-query output to a
    /// follow-up multi-variable retrieval.
    pub fn to_bitmap(&self, total_points: u64) -> WahBitmap {
        WahBitmap::from_sorted_positions(total_points, &self.positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let q = Query::region(1.0, 2.0);
        assert_eq!(q.output, QueryOutput::Positions);
        assert!(!q.wants_values());
        let q = Query::values_in(Region::new(vec![(0, 4)]));
        assert!(q.wants_values());
        assert!(q.vc.is_none());
        let q = Query::values_where(0.0, 1.0)
            .with_region(Region::new(vec![(0, 2)]))
            .with_plod(PlodLevel::new(2).unwrap());
        assert!(q.vc.is_some() && q.sc.is_some());
        assert_eq!(q.plod.num_bytes(), 3);
    }

    #[test]
    fn membership_constructor_sorts_and_dedups() {
        let q = Query::membership(vec![9, 2, 2, 5, 9]);
        assert_eq!(q.points.as_deref(), Some(&[2, 5, 9][..]));
        assert_eq!(q.kind(), QueryKind::Membership);
        assert_eq!(q.output, QueryOutput::Positions);
        assert_eq!(Query::region(0.0, 1.0).kind(), QueryKind::Scan);
        let q = Query::membership_where(1.0, 2.0, vec![3]).with_values();
        assert_eq!(q.vc, Some((1.0, 2.0)));
        assert!(q.wants_values());
    }

    #[test]
    fn result_sorts_pairs() {
        let r = QueryResult::from_parts(vec![5, 1, 3], Some(vec![50.0, 10.0, 30.0]));
        assert_eq!(r.positions(), &[1, 3, 5]);
        assert_eq!(r.values().unwrap(), &[10.0, 30.0, 50.0]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn result_bitmap() {
        let r = QueryResult::from_parts(vec![9, 2], None);
        let bm = r.to_bitmap(16);
        assert_eq!(bm.to_positions(), vec![2, 9]);
        assert_eq!(bm.len(), 16);
    }
}
