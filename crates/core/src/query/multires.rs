//! Multi-resolution access (paper §III-B.3).
//!
//! Two approaches:
//!
//! * **Precision-based (PLoD)** — set [`Query::with_plod`]; the engine
//!   fetches only the first `L` byte groups of each value. This module
//!   adds the convenience wrapper [`plod_value_query`].
//! * **Subset-based** — a hierarchical Hilbert ordering partitions the
//!   chunks into resolution levels; accessing levels `0..=l` reads a
//!   uniformly spaced subset of chunks. [`subset_value_query`] executes
//!   such an access. The paper notes this approach "misses a large
//!   number of points" and is suited to low-precision visualization.

use crate::config::PlodLevel;
use crate::exec::ParallelExecutor;
use crate::metrics::QueryMetrics;
use crate::query::plan::{Plan, WorkUnit};
use crate::query::{Query, QueryOutput, QueryResult};
use crate::store::MlocStore;
use crate::Result;
use mloc_hilbert::HierarchicalOrder;

/// Value query over a region at a reduced PLoD precision.
pub fn plod_value_query(
    store: &MlocStore<'_>,
    region: crate::array::Region,
    level: PlodLevel,
    exec: &ParallelExecutor,
) -> Result<(QueryResult, QueryMetrics)> {
    let query = Query::values_in(region).with_plod(level);
    exec.execute(store, &query)
}

/// The hierarchical ordering of a store's chunk grid with `num_levels`
/// resolution levels.
pub fn hierarchy(store: &MlocStore<'_>, num_levels: u32) -> HierarchicalOrder {
    HierarchicalOrder::new(
        store.grid().grid_extents(),
        num_levels,
        store.config().curve,
    )
}

/// Subset-based multi-resolution access: fetch all values of the
/// chunks in resolution levels `0..=level` of a `num_levels`-deep
/// hierarchy. Lower levels read a small uniform sample of the domain.
pub fn subset_value_query(
    store: &MlocStore<'_>,
    num_levels: u32,
    level: usize,
    exec: &ParallelExecutor,
) -> Result<(QueryResult, QueryMetrics)> {
    let h = hierarchy(store, num_levels);
    let order = store.order();
    let mut ranks: Vec<usize> = h.prefix(level).map(|chunk| order.rank_of(chunk)).collect();
    ranks.sort_unstable();

    let num_bins = store.config().num_bins;
    let mut units = Vec::with_capacity(num_bins * ranks.len());
    for bin in 0..num_bins {
        for &chunk_rank in &ranks {
            units.push(WorkUnit {
                bin,
                chunk_rank,
                needs_data: true,
                value_filter: false,
                spatial_filter: false,
            });
        }
    }
    let plan = Plan {
        bins_touched: num_bins,
        aligned_bins: 0,
        chunks_touched: ranks.len(),
        units,
    };
    let query = Query {
        vc: None,
        sc: None,
        plod: PlodLevel::FULL,
        output: QueryOutput::Values,
        points: None,
    };
    exec.execute_plan(store, &query, &plan, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Region;
    use crate::build::build_variable;
    use crate::config::MlocConfig;
    use mloc_pfs::MemBackend;

    fn fixture(be: &MemBackend) -> (Vec<f64>, MlocStore<'_>) {
        let values: Vec<f64> = (0..4096).map(|i| 100.0 + (i % 977) as f64).collect();
        let config = MlocConfig::builder(vec![64, 64])
            .chunk_shape(vec![8, 8])
            .num_bins(8)
            .build();
        build_variable(be, "ds", "v", &values, &config).unwrap();
        (values.clone(), MlocStore::open(be, "ds", "v").unwrap())
    }

    #[test]
    fn plod_levels_trade_accuracy_for_io() {
        let be = MemBackend::new();
        let (values, store) = fixture(&be);
        let region = Region::new(vec![(0, 32), (0, 32)]);
        let exec = ParallelExecutor::serial();

        let (full, m_full) =
            plod_value_query(&store, region.clone(), PlodLevel::FULL, &exec).unwrap();
        let (lvl2, m2) =
            plod_value_query(&store, region.clone(), PlodLevel::new(2).unwrap(), &exec).unwrap();

        // Same points, fewer bytes, bounded error.
        assert_eq!(full.positions(), lvl2.positions());
        assert!(m2.data_bytes < m_full.data_bytes);
        for (&p, &approx) in lvl2.positions().iter().zip(lvl2.values().unwrap()) {
            let exact = values[p as usize];
            assert!(
                ((approx - exact) / exact).abs() < 3e-4,
                "pos {p}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn subset_levels_grow_monotonically() {
        let be = MemBackend::new();
        let (_, store) = fixture(&be);
        let exec = ParallelExecutor::serial();
        let mut prev = 0usize;
        for level in 0..3 {
            let (res, metrics) = subset_value_query(&store, 3, level, &exec).unwrap();
            assert!(res.len() > prev, "level {level} did not grow");
            prev = res.len();
            assert!(metrics.chunks_touched > 0);
        }
        // Top level covers everything.
        let (res, _) = subset_value_query(&store, 3, 2, &exec).unwrap();
        assert_eq!(res.len(), 4096);
    }

    #[test]
    fn hierarchical_layout_speeds_up_subset_access() {
        // Same data, two layouts: plain Hilbert vs subset-based
        // hierarchical placement. Coarse-level access on the
        // hierarchical layout reads file *prefixes* and must pay
        // fewer seeks.
        let values: Vec<f64> = (0..4096).map(|i| ((i * 131) % 4099) as f64).collect();
        let exec = ParallelExecutor::serial();
        let mut io = Vec::new();
        for subset_levels in [0u32, 3] {
            let be = MemBackend::new();
            let config = MlocConfig::builder(vec![64, 64])
                .chunk_shape(vec![8, 8])
                .num_bins(8)
                .subset_levels(subset_levels)
                .build();
            build_variable(&be, "h", "v", &values, &config).unwrap();
            let store = MlocStore::open(&be, "h", "v").unwrap();
            let (res, m) = subset_value_query(&store, 3, 1, &exec).unwrap();
            // Both layouts return the same uniform sample.
            for (&p, &v) in res.positions().iter().zip(res.values().unwrap()) {
                assert_eq!(v, values[p as usize]);
            }
            assert_eq!(res.len(), 16 * 64);
            io.push((m.seeks, m.io_s));
        }
        let (plain, hier) = (io[0], io[1]);
        assert!(
            hier.0 < plain.0,
            "hierarchical layout should seek less: {hier:?} vs {plain:?}"
        );
    }

    #[test]
    fn subset_sample_is_uniform() {
        let be = MemBackend::new();
        let (values, store) = fixture(&be);
        let exec = ParallelExecutor::serial();
        let (res, _) = subset_value_query(&store, 3, 0, &exec).unwrap();
        // Level 0 of a 3-level hierarchy over an 8x8 chunk grid is the
        // stride-4 chunk lattice: 4 chunks of 64 points.
        assert_eq!(res.len(), 4 * 64);
        for (&p, &v) in res.positions().iter().zip(res.values().unwrap()) {
            assert_eq!(v, values[p as usize]);
        }
    }
}
