//! Multi-variable data access (paper §III-D.4).
//!
//! "Spatial regions are usually selected by the values of one (or
//! more) variable(s); values of other variables are fetched on the
//! corresponding spatial regions. Thus, the process can be decomposed
//! into two steps: region-only access for the first variable(s) and
//! value-retrieval access for the others." The selection is carried
//! between the steps as a compressed bitmap — the light-weight
//! representation MLOC synchronizes between processes.

use crate::array::ChunkGrid;
use crate::config::PlodLevel;
use crate::exec::ParallelExecutor;
use crate::metrics::QueryMetrics;
use crate::query::plan::{Plan, WorkUnit};
use crate::query::{Query, QueryOutput, QueryResult};
use crate::store::MlocStore;
use crate::{MlocError, Result};

/// Result of a two-step multi-variable query.
#[derive(Debug, Clone)]
pub struct MultiVarResult {
    /// The fetched values of the second variable at the selected
    /// positions.
    pub result: QueryResult,
    /// Metrics of the selecting region query.
    pub select_metrics: QueryMetrics,
    /// Metrics of the value retrieval.
    pub fetch_metrics: QueryMetrics,
}

impl MultiVarResult {
    /// End-to-end response time (the two steps are sequential).
    pub fn response_s(&self) -> f64 {
        self.select_metrics.response_s + self.fetch_metrics.response_s
    }
}

/// Select positions on `selector` with a value constraint (optionally
/// within a region), then fetch `fetch`'s values at those positions.
///
/// Both variables must share the same domain and chunking (they are
/// chunked by the same simulation grid).
pub fn select_then_fetch(
    selector: &MlocStore<'_>,
    fetch: &MlocStore<'_>,
    vc: (f64, f64),
    sc: Option<crate::array::Region>,
    plod: PlodLevel,
    exec: &ParallelExecutor,
) -> Result<MultiVarResult> {
    if selector.config().shape != fetch.config().shape
        || selector.config().chunk_shape != fetch.config().chunk_shape
    {
        return Err(MlocError::Invalid(
            "multi-variable query requires identically chunked variables".into(),
        ));
    }

    // Step 1: region-only access on the selector.
    let select_query = Query {
        vc: Some(vc),
        sc: sc.clone(),
        plod: PlodLevel::FULL,
        output: QueryOutput::Positions,
        points: None,
    };
    let (selected, select_metrics) = exec.execute(selector, &select_query)?;

    // Step 2: value retrieval on the fetch variable, restricted to the
    // selected positions. Only chunks containing selections are read.
    // Query results are already sorted ascending and duplicate-free —
    // exactly the shape the engine's galloping filter needs, so no
    // hash set is built.
    let filter: &[u64] = selected.positions();
    let plan = fetch_plan(fetch, filter)?;
    let fetch_query = Query {
        vc: None,
        sc: None,
        plod,
        output: QueryOutput::Values,
        points: None,
    };
    let (result, fetch_metrics) = exec.execute_plan(fetch, &fetch_query, &plan, Some(filter))?;

    Ok(MultiVarResult {
        result,
        select_metrics,
        fetch_metrics,
    })
}

/// Build the retrieval plan for a set of selected global positions:
/// all bins, but only the chunks that contain selections.
fn fetch_plan(store: &MlocStore<'_>, positions: &[u64]) -> Result<Plan> {
    if positions.is_empty() {
        return Ok(Plan {
            units: Vec::new(),
            bins_touched: 0,
            aligned_bins: 0,
            chunks_touched: 0,
        });
    }
    let grid: &ChunkGrid = store.grid();
    let order = store.order();
    let mut ranks: Vec<usize> = positions
        .iter()
        .map(|&p| {
            let coords = grid.delinearize(p);
            let (chunk, _) = grid.coords_to_local(&coords);
            order.rank_of(chunk)
        })
        .collect();
    ranks.sort_unstable();
    ranks.dedup();

    let num_bins = store.config().num_bins;
    let mut units = Vec::with_capacity(num_bins * ranks.len());
    for bin in 0..num_bins {
        for &chunk_rank in &ranks {
            units.push(WorkUnit {
                bin,
                chunk_rank,
                needs_data: true,
                value_filter: false,
                spatial_filter: false,
            });
        }
    }
    Ok(Plan {
        bins_touched: num_bins,
        aligned_bins: 0,
        chunks_touched: ranks.len(),
        units,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_variable;
    use crate::config::MlocConfig;
    use mloc_pfs::MemBackend;

    fn two_vars(be: &MemBackend) -> (Vec<f64>, Vec<f64>) {
        let temp: Vec<f64> = (0..4096).map(|i| ((i * 13) % 500) as f64).collect();
        let humid: Vec<f64> = (0..4096).map(|i| ((i * 7) % 100) as f64).collect();
        let config = MlocConfig::builder(vec![64, 64])
            .chunk_shape(vec![16, 16])
            .num_bins(8)
            .build();
        build_variable(be, "ds", "temp", &temp, &config).unwrap();
        build_variable(be, "ds", "humid", &humid, &config).unwrap();
        (temp, humid)
    }

    #[test]
    fn fetches_second_variable_at_selected_positions() {
        let be = MemBackend::new();
        let (temp, humid) = two_vars(&be);
        let st = MlocStore::open(&be, "ds", "temp").unwrap();
        let sh = MlocStore::open(&be, "ds", "humid").unwrap();

        // "Humidity where temperature >= 450."
        let out = select_then_fetch(
            &st,
            &sh,
            (450.0, f64::MAX),
            None,
            PlodLevel::FULL,
            &ParallelExecutor::serial(),
        )
        .unwrap();

        let want: Vec<(u64, f64)> = temp
            .iter()
            .enumerate()
            .filter(|(_, &t)| t >= 450.0)
            .map(|(i, _)| (i as u64, humid[i]))
            .collect();
        assert!(!want.is_empty());
        assert_eq!(
            out.result.positions(),
            want.iter().map(|&(p, _)| p).collect::<Vec<_>>()
        );
        assert_eq!(
            out.result.values().unwrap(),
            want.iter().map(|&(_, v)| v).collect::<Vec<_>>()
        );
        assert!(out.response_s() > 0.0);
    }

    #[test]
    fn empty_selection_fetches_nothing() {
        let be = MemBackend::new();
        two_vars(&be);
        let st = MlocStore::open(&be, "ds", "temp").unwrap();
        let sh = MlocStore::open(&be, "ds", "humid").unwrap();
        let out = select_then_fetch(
            &st,
            &sh,
            (1e9, 2e9),
            None,
            PlodLevel::FULL,
            &ParallelExecutor::serial(),
        )
        .unwrap();
        assert!(out.result.is_empty());
        assert_eq!(out.fetch_metrics.chunks_touched, 0);
    }

    #[test]
    fn mismatched_grids_rejected() {
        let be = MemBackend::new();
        two_vars(&be);
        let other: Vec<f64> = (0..1024).map(|i| i as f64).collect();
        let config = MlocConfig::builder(vec![32, 32])
            .chunk_shape(vec![16, 16])
            .num_bins(8)
            .build();
        build_variable(&be, "ds", "other", &other, &config).unwrap();
        let st = MlocStore::open(&be, "ds", "temp").unwrap();
        let so = MlocStore::open(&be, "ds", "other").unwrap();
        assert!(select_then_fetch(
            &st,
            &so,
            (0.0, 1.0),
            None,
            PlodLevel::FULL,
            &ParallelExecutor::serial()
        )
        .is_err());
    }
}
