//! Query planning: candidate bins, candidate chunks, work units.

use crate::array::Region;
use crate::config::MlocConfig;
use crate::query::{Query, QueryOutput};
use crate::store::MlocStore;
use crate::{MlocError, Result};

/// Number of storage units (PLoD byte-group parts, or one whole-value
/// block) a data-bearing work unit touches per chunk. This is also the
/// granularity of the decompressed-block cache: a PLoD query at level
/// `k` reads parts `0..k`, so overlapping precision levels share their
/// common prefix parts.
pub fn parts_used(config: &MlocConfig, query: &Query) -> usize {
    if config.plod {
        query.plod.num_parts()
    } else {
        1
    }
}

/// One (bin, chunk) unit of query work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkUnit {
    /// Value bin.
    pub bin: usize,
    /// Chunk, identified by its curve rank.
    pub chunk_rank: usize,
    /// Whether data must be read and decompressed (false = answered
    /// from the positional index alone).
    pub needs_data: bool,
    /// Whether reconstructed values must still be checked against the
    /// value constraint (misaligned bins).
    pub value_filter: bool,
    /// Whether point positions must be checked against the spatial
    /// constraint (chunk only partially inside the region).
    pub spatial_filter: bool,
}

/// A complete query plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Work units, ordered by (bin, chunk rank).
    pub units: Vec<WorkUnit>,
    /// Number of candidate bins.
    pub bins_touched: usize,
    /// Bins answerable from the index alone.
    pub aligned_bins: usize,
    /// Number of candidate chunks.
    pub chunks_touched: usize,
}

/// Build the plan for a query against a store.
pub fn make_plan(store: &MlocStore<'_>, query: &Query) -> Result<Plan> {
    let config = store.config();
    if !query.plod.is_full() && !config.plod {
        return Err(MlocError::Invalid(
            "PLoD levels below full precision require a byte-column (PLoD) layout".into(),
        ));
    }
    if let Some((lo, hi)) = query.vc {
        if lo.is_nan() || hi.is_nan() {
            return Err(MlocError::Invalid("NaN value constraint".into()));
        }
    }
    if let Some(region) = &query.sc {
        if region.dims() != config.shape.len() {
            return Err(MlocError::Invalid("region dimensionality mismatch".into()));
        }
        let full = Region::full(&config.shape);
        if !full.contains_region(region) {
            return Err(MlocError::Invalid("region exceeds the domain".into()));
        }
    }
    let grid = store.grid();
    let order = store.order();
    if let Some(points) = &query.points {
        if query.sc.is_some() {
            return Err(MlocError::Invalid(
                "membership query cannot combine a spatial constraint".into(),
            ));
        }
        if points.windows(2).any(|w| w[0] >= w[1]) {
            return Err(MlocError::Invalid(
                "membership points must be strictly increasing".into(),
            ));
        }
        if points
            .last()
            .is_some_and(|&p| p >= grid.num_points() as u64)
        {
            return Err(MlocError::Invalid(
                "membership point outside the domain".into(),
            ));
        }
    }

    // Candidate chunks (curve ranks, ascending = on-disk order), with
    // their partial-overlap flags. A membership query touches exactly
    // the chunks containing its points; spatial filtering never
    // applies (the point set *is* the spatial constraint).
    let chunk_info: Vec<(usize, bool)> = match (&query.sc, &query.points) {
        (Some(region), _) => {
            let mut ranks: Vec<(usize, bool)> = grid
                .chunks_intersecting(region)
                .into_iter()
                .map(|chunk| {
                    let partial = !region.contains_region(&grid.chunk_region(chunk));
                    (order.rank_of(chunk), partial)
                })
                .collect();
            ranks.sort_unstable();
            ranks
        }
        (None, Some(points)) => {
            let mut ranks: Vec<usize> = points
                .iter()
                .map(|&p| {
                    let coords = grid.delinearize(p);
                    let (chunk, _) = grid.coords_to_local(&coords);
                    order.rank_of(chunk)
                })
                .collect();
            ranks.sort_unstable();
            ranks.dedup();
            ranks.into_iter().map(|rank| (rank, false)).collect()
        }
        (None, None) => (0..grid.num_chunks()).map(|rank| (rank, false)).collect(),
    };

    // Candidate bins and their alignment. `candidate_bins` is a
    // contiguous range; alignment flags follow it positionally.
    let spec = store.bins();
    let (bins, aligned_flags): (std::ops::Range<usize>, Vec<bool>) = match query.vc {
        Some((lo, hi)) => {
            let cands = spec.candidate_bins(lo, hi);
            let flags = cands.clone().map(|k| spec.is_aligned(k, lo, hi)).collect();
            (cands, flags)
        }
        None => (0..config.num_bins, vec![true; config.num_bins]),
    };
    // With no VC every bin is trivially "aligned" (no value filter),
    // but for reporting we only count bins aligned against a real VC.
    let aligned_count = if query.vc.is_some() {
        aligned_flags.iter().filter(|&&a| a).count()
    } else {
        0
    };

    let wants_values = query.output == QueryOutput::Values;
    let bins_touched = bins.len();
    let mut units = Vec::with_capacity(bins.len() * chunk_info.len());
    for (bin, &aligned) in bins.zip(&aligned_flags) {
        // Aligned bins in region-only queries are index-only — the
        // paper's fast path (§III-D.1).
        let needs_data = wants_values || !aligned;
        let value_filter = needs_data && query.vc.is_some() && !aligned;
        for &(chunk_rank, partial) in &chunk_info {
            units.push(WorkUnit {
                bin,
                chunk_rank,
                needs_data,
                value_filter,
                spatial_filter: partial,
            });
        }
    }

    Ok(Plan {
        bins_touched,
        aligned_bins: aligned_count,
        chunks_touched: chunk_info.len(),
        units,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_variable;
    use crate::config::MlocConfig;
    use mloc_pfs::MemBackend;

    fn store_fixture(be: &MemBackend) -> MlocStore<'_> {
        let values: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let config = MlocConfig::builder(vec![64, 64])
            .chunk_shape(vec![16, 16])
            .num_bins(8)
            .build();
        build_variable(be, "ds", "v", &values, &config).unwrap();
        MlocStore::open(be, "ds", "v").unwrap()
    }

    #[test]
    fn region_query_plan_uses_aligned_fast_path() {
        let be = MemBackend::new();
        let store = store_fixture(&be);
        // Values 512..3584 cover several whole bins (each bin ≈ 512
        // values) plus boundary bins.
        let q = Query::region(600.0, 3000.0);
        let plan = make_plan(&store, &q).unwrap();
        assert!(plan.aligned_bins >= 2, "aligned {}", plan.aligned_bins);
        assert_eq!(plan.chunks_touched, 16);
        // Aligned units are index-only.
        assert!(plan.units.iter().any(|u| !u.needs_data && !u.value_filter));
        // Boundary bins still need data + filtering.
        assert!(plan.units.iter().any(|u| u.needs_data && u.value_filter));
    }

    #[test]
    fn value_query_plan_touches_all_bins() {
        let be = MemBackend::new();
        let store = store_fixture(&be);
        let q = Query::values_in(Region::new(vec![(0, 16), (0, 16)]));
        let plan = make_plan(&store, &q).unwrap();
        assert_eq!(plan.bins_touched, 8);
        assert_eq!(plan.chunks_touched, 1);
        assert!(plan.units.iter().all(|u| u.needs_data));
        // Chunk is fully inside the region: no spatial filter.
        assert!(plan.units.iter().all(|u| !u.spatial_filter));
        // No VC: no value filter either.
        assert!(plan.units.iter().all(|u| !u.value_filter));
    }

    #[test]
    fn partial_chunk_overlap_sets_spatial_filter() {
        let be = MemBackend::new();
        let store = store_fixture(&be);
        let q = Query::values_in(Region::new(vec![(5, 20), (0, 16)]));
        let plan = make_plan(&store, &q).unwrap();
        assert_eq!(plan.chunks_touched, 2);
        assert!(plan.units.iter().all(|u| u.spatial_filter));
    }

    #[test]
    fn invalid_queries_rejected() {
        let be = MemBackend::new();
        let store = store_fixture(&be);
        // Region outside the domain.
        let q = Query::values_in(Region::new(vec![(0, 100), (0, 64)]));
        assert!(make_plan(&store, &q).is_err());
        // Wrong dimensionality.
        let q = Query::values_in(Region::new(vec![(0, 4)]));
        assert!(make_plan(&store, &q).is_err());
        // NaN constraint.
        let q = Query::region(f64::NAN, 1.0);
        assert!(make_plan(&store, &q).is_err());
    }

    #[test]
    fn membership_plan_touches_only_point_chunks() {
        let be = MemBackend::new();
        let store = store_fixture(&be);
        // Two points in chunk 0, one in the last chunk.
        let q = Query::membership(vec![0, 5, 4095]);
        let plan = make_plan(&store, &q).unwrap();
        assert_eq!(plan.chunks_touched, 2);
        assert_eq!(plan.bins_touched, 8);
        // The point set *is* the spatial constraint: never filtered.
        assert!(plan.units.iter().all(|u| !u.spatial_filter));

        // With a value constraint, aligned bins stay index-only.
        let q = Query::membership_where(600.0, 3000.0, vec![0, 4095]);
        let plan = make_plan(&store, &q).unwrap();
        assert!(plan.aligned_bins >= 2, "aligned {}", plan.aligned_bins);
        assert!(plan.units.iter().any(|u| !u.needs_data));
    }

    #[test]
    fn membership_plan_rejects_bad_inputs() {
        let be = MemBackend::new();
        let store = store_fixture(&be);
        // Spatial constraint + point set is ambiguous.
        let mut q = Query::membership(vec![1]);
        q.sc = Some(Region::new(vec![(0, 16), (0, 16)]));
        assert!(make_plan(&store, &q).is_err());
        // Point outside the domain.
        assert!(make_plan(&store, &Query::membership(vec![4096])).is_err());
        // Unsorted points (constructor sorts; hand-built queries must
        // still be validated).
        let mut q = Query::membership(vec![1, 2]);
        q.points = Some(vec![2, 1]);
        assert!(make_plan(&store, &q).is_err());
    }

    #[test]
    fn parts_used_tracks_plod_level() {
        let plod_cfg = MlocConfig::builder(vec![64, 64])
            .chunk_shape(vec![16, 16])
            .plod(true)
            .build();
        let flat_cfg = MlocConfig::builder(vec![64, 64])
            .chunk_shape(vec![16, 16])
            .plod(false)
            .build();
        let full = Query::values_where(0.0, 1.0);
        let coarse =
            Query::values_where(0.0, 1.0).with_plod(crate::config::PlodLevel::new(2).unwrap());
        assert_eq!(parts_used(&plod_cfg, &full), crate::config::NUM_PARTS);
        assert_eq!(parts_used(&plod_cfg, &coarse), 2);
        // Whole-value layouts always read exactly one block per chunk.
        assert_eq!(parts_used(&flat_cfg, &full), 1);
    }

    #[test]
    fn units_are_bin_then_rank_ordered() {
        let be = MemBackend::new();
        let store = store_fixture(&be);
        let q = Query::values_where(100.0, 2000.0);
        let plan = make_plan(&store, &q).unwrap();
        for w in plan.units.windows(2) {
            assert!(
                (w[0].bin, w[0].chunk_rank) < (w[1].bin, w[1].chunk_rank),
                "units out of order"
            );
        }
    }
}
