//! Crash recovery (`mloc fsck` / `mloc repair`).
//!
//! A build writes in a strict durability order — every bin's data and
//! index file is synced (footer last) before the variable's meta file,
//! and the meta is synced before the catalog line that registers the
//! variable. The extent footer trailer doubles as the commit marker: a
//! file whose footer verifies was written completely. That ordering
//! makes every crash state classifiable from the store alone:
//!
//! * **committed** — the catalog lists the variable and its meta
//!   verifies; bin files are expected to verify too.
//! * **unlisted** — the meta verifies but the crash hit between the
//!   meta sync and the catalog append. The data is complete; repair
//!   reattaches the catalog line.
//! * **uncommitted** — the meta is absent or torn and the catalog
//!   never listed the variable. The bin files are build debris
//!   (*orphaned*); repair rolls them back so the build can rerun.
//! * **torn / missing** — a file of a committed variable fails footer
//!   verification (or is gone). Repair rewrites it from the first
//!   replica holding a verifying copy; without one, the damage is
//!   reported, never silently served.
//!
//! [`fsck`] only classifies; [`repair`] additionally restores, rolls
//! back, and reconciles the catalog. Both work through any
//! [`StorageBackend`]; replica restore is a no-op on unreplicated
//! stores (`replica_count() == 1` re-checks the primary copy only).

use crate::dataset::{self, Dataset};
use crate::fileorg;
use crate::integrity::ExtentFooter;
use crate::store::VariableMeta;
use crate::{MlocError, Result};
use mloc_pfs::StorageBackend;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How one file came through the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Footer verifies: the write committed.
    Committed,
    /// Present but fails footer verification (torn write or
    /// corruption).
    Torn,
    /// Expected for a committed variable but absent.
    Missing,
    /// Debris of an uncommitted build (no verifying meta, no catalog
    /// entry).
    Orphaned,
}

impl fmt::Display for FileClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FileClass::Committed => "committed",
            FileClass::Torn => "torn",
            FileClass::Missing => "missing",
            FileClass::Orphaned => "orphaned",
        })
    }
}

/// One non-clean file found by [`fsck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFinding {
    /// The file.
    pub file: String,
    /// Its classification.
    pub class: FileClass,
    /// Human-readable detail (verification error, expectation).
    pub what: String,
}

impl fmt::Display for FileFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.file, self.class, self.what)
    }
}

/// Classification of a whole dataset after a crash.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Dataset name.
    pub dataset: String,
    /// Whether the catalog header parses and its body is readable.
    pub catalog_ok: bool,
    /// Variables listed in the catalog whose meta verifies.
    pub committed: Vec<String>,
    /// Variables with a verifying meta that the catalog does not list
    /// (crash between meta sync and catalog append).
    pub unlisted: Vec<String>,
    /// Variables with no verifying meta and no catalog entry
    /// (interrupted builds).
    pub uncommitted: Vec<String>,
    /// Every file that is not cleanly committed.
    pub findings: Vec<FileFinding>,
    /// Files examined.
    pub files_checked: usize,
}

impl FsckReport {
    /// Whether the store needs no repair: catalog readable, every
    /// variable committed and every file verified.
    pub fn is_clean(&self) -> bool {
        self.catalog_ok && self.findings.is_empty() && self.unlisted.is_empty()
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "ok: {} file(s) checked, {} committed variable(s)",
                self.files_checked,
                self.committed.len()
            );
        }
        writeln!(
            f,
            "NEEDS REPAIR: {} finding(s) across {} file(s) checked",
            self.findings.len(),
            self.files_checked
        )?;
        if !self.catalog_ok {
            writeln!(f, "  catalog unreadable")?;
        }
        for v in &self.unlisted {
            writeln!(f, "  variable {v}: complete but not in catalog")?;
        }
        for v in &self.uncommitted {
            writeln!(f, "  variable {v}: uncommitted build debris")?;
        }
        for d in &self.findings {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// What [`repair`] changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// The pre-repair classification.
    pub fsck: FsckReport,
    /// Files rewritten from a verifying replica copy.
    pub restored: Vec<String>,
    /// Uncommitted variables whose debris was removed.
    pub rolled_back: Vec<String>,
    /// Files removed by rollback.
    pub removed_files: usize,
    /// Committed-but-unlisted variables reattached to the catalog.
    pub reattached: Vec<String>,
    /// Whether the catalog file was rewritten.
    pub catalog_rewritten: bool,
    /// Damaged files with no healthy copy on any replica. These stay
    /// as-is: queries fail (or degrade) loudly instead of serving
    /// corrupt bytes.
    pub unrepairable: Vec<String>,
}

impl RepairReport {
    /// Whether the store is fully healthy after repair (no data loss).
    pub fn is_healthy(&self) -> bool {
        self.unrepairable.is_empty()
    }
}

impl fmt::Display for RepairReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "repair: {} restored, {} rolled back ({} file(s) removed), {} reattached{}",
            self.restored.len(),
            self.rolled_back.len(),
            self.removed_files,
            self.reattached.len(),
            if self.catalog_rewritten {
                ", catalog rewritten"
            } else {
                ""
            }
        )?;
        if !self.unrepairable.is_empty() {
            writeln!(f, "\nUNREPAIRABLE ({} file(s)):", self.unrepairable.len())?;
            for file in &self.unrepairable {
                writeln!(f, "  {file}")?;
            }
        }
        Ok(())
    }
}

/// Parse a raw catalog image: header (magic + config) and variable
/// lines. A registration line is committed only when it is
/// newline-terminated — a torn catalog append leaves an unterminated
/// tail, which is excluded from the variable list and reported via
/// `clean_tail = false` so repair truncates it.
fn parse_catalog(raw: &[u8]) -> Result<(usize, Vec<String>, bool)> {
    if !raw.starts_with(dataset::CATALOG_MAGIC) {
        return Err(MlocError::Corrupt("bad catalog magic"));
    }
    let (_, used) = dataset::decode_config(&raw[dataset::CATALOG_MAGIC.len()..])?;
    let header_len = dataset::CATALOG_MAGIC.len() + used;
    let body =
        std::str::from_utf8(&raw[header_len..]).map_err(|_| MlocError::Corrupt("catalog body"))?;
    let end = body.rfind('\n').map_or(0, |i| i + 1);
    let clean_tail = end == body.len();
    let vars = body[..end]
        .lines()
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    Ok((header_len, vars, clean_tail))
}

/// Read a whole file, or None when unreadable.
fn read_all(backend: &dyn StorageBackend, file: &str) -> Option<Vec<u8>> {
    let len = backend.len(file).ok()?;
    backend.read(file, 0, len).ok()
}

/// Whether the file exists and its footer (and every extent) verifies.
fn verifies(backend: &dyn StorageBackend, file: &str) -> std::result::Result<(), String> {
    match read_all(backend, file) {
        None => Err("unreadable".to_string()),
        Some(raw) => ExtentFooter::split_verified(&raw, file)
            .map(|_| ())
            .map_err(|e| e.to_string()),
    }
}

/// Search the replicas of `file` for a copy that passes `check`;
/// returns its raw bytes. Replica 0 is the primary, so on an
/// unreplicated backend this just re-reads the one copy.
fn replica_passing(
    backend: &dyn StorageBackend,
    file: &str,
    check: impl Fn(&[u8]) -> bool,
) -> Option<Vec<u8>> {
    for r in 0..backend.replica_count() {
        let Ok(len) = backend.len_replica(file, r) else {
            continue;
        };
        let Ok(raw) = backend.read_replica(file, r, 0, len) else {
            continue;
        };
        if check(&raw) {
            return Some(raw);
        }
    }
    None
}

/// Whether every replica copy of `file` passes `check` when read
/// *directly*. The router's read path falls through to a healthy
/// replica on error, so a file can verify through `read` while one of
/// its copies is missing — this is how repair notices the degraded
/// redundancy the fall-through masks.
fn all_replicas_pass(
    backend: &dyn StorageBackend,
    file: &str,
    check: impl Fn(&[u8]) -> bool,
) -> bool {
    (0..backend.replica_count()).all(|r| {
        backend
            .len_replica(file, r)
            .ok()
            .and_then(|len| backend.read_replica(file, r, 0, len).ok())
            .is_some_and(|raw| check(&raw))
    })
}

/// Rewrite `file` with `bytes` — create truncates, and on a
/// replicated backend the write fans out to every replica, so a
/// restore heals all copies at once.
fn rewrite(backend: &dyn StorageBackend, file: &str, bytes: &[u8]) -> Result<()> {
    backend.create(file)?;
    backend.append(file, bytes)?;
    backend.sync(file)?;
    Ok(())
}

/// Per-variable file inventory scraped from the backend listing.
#[derive(Default)]
struct VarFiles {
    has_meta: bool,
    /// bin number -> (has .dat, has .idx)
    bins: BTreeMap<usize, (bool, bool)>,
    /// Files under the variable's directory that match no known
    /// layout name.
    strays: Vec<String>,
}

/// Scrape `{ds}/{var}/…` files into per-variable inventories.
fn inventory(backend: &dyn StorageBackend, ds: &str) -> BTreeMap<String, VarFiles> {
    let prefix = format!("{ds}/");
    let mut vars: BTreeMap<String, VarFiles> = BTreeMap::new();
    for f in backend.list() {
        let Some(rest) = f.strip_prefix(&prefix) else {
            continue;
        };
        let Some((var, base)) = rest.split_once('/') else {
            continue; // the catalog file itself
        };
        let entry = vars.entry(var.to_string()).or_default();
        if base == "meta" {
            entry.has_meta = true;
        } else if let Some(n) = base
            .strip_prefix("bin")
            .and_then(|b| b.strip_suffix(".dat"))
            .and_then(|n| n.parse().ok())
        {
            entry.bins.entry(n).or_default().0 = true;
        } else if let Some(n) = base
            .strip_prefix("bin")
            .and_then(|b| b.strip_suffix(".idx"))
            .and_then(|n| n.parse().ok())
        {
            entry.bins.entry(n).or_default().1 = true;
        } else {
            entry.strays.push(f.clone());
        }
    }
    vars
}

/// Classify every file of dataset `ds` without modifying anything.
pub fn fsck(backend: &dyn StorageBackend, ds: &str) -> Result<FsckReport> {
    let mut report = FsckReport {
        dataset: ds.to_string(),
        ..Default::default()
    };

    // Catalog: header + body readable?
    let catalog_file = Dataset::catalog_file(ds);
    let catalog_raw = read_all(backend, &catalog_file);
    let mut catalog_vars: BTreeSet<String> = BTreeSet::new();
    let mut num_bins: Option<usize> = None;
    if let Some(raw) = &catalog_raw {
        report.files_checked += 1;
        match parse_catalog(raw) {
            Ok((_, vars, clean_tail)) => {
                report.catalog_ok = true;
                catalog_vars = vars.into_iter().collect();
                if let Ok((config, _)) =
                    dataset::decode_config(&raw[dataset::CATALOG_MAGIC.len()..])
                {
                    num_bins = Some(config.num_bins);
                }
                if !clean_tail {
                    report.findings.push(FileFinding {
                        file: catalog_file.clone(),
                        class: FileClass::Torn,
                        what: "unterminated trailing registration line".to_string(),
                    });
                }
            }
            Err(e) => report.findings.push(FileFinding {
                file: catalog_file.clone(),
                class: FileClass::Torn,
                what: e.to_string(),
            }),
        }
    } else {
        report.findings.push(FileFinding {
            file: catalog_file.clone(),
            class: FileClass::Missing,
            what: "catalog unreadable".to_string(),
        });
    }

    let vars = inventory(backend, ds);

    // A catalog-listed variable with no files at all is still damage.
    let mut all_vars: BTreeSet<String> = vars.keys().cloned().collect();
    all_vars.extend(catalog_vars.iter().cloned());

    for var in all_vars {
        let files = vars.get(&var);
        let meta_name = fileorg::meta_file(ds, &var);
        let meta_state = if files.is_some_and(|f| f.has_meta) {
            report.files_checked += 1;
            verifies(backend, &meta_name)
        } else {
            Err("absent".to_string())
        };
        let listed = catalog_vars.contains(&var);
        let committed = meta_state.is_ok();
        // The variable's bin count: from its own meta when it
        // verifies, else the shared catalog config.
        let expect_bins = if committed {
            read_all(backend, &meta_name)
                .and_then(|raw| {
                    ExtentFooter::split_verified(&raw, &meta_name)
                        .ok()
                        .map(|p| p.to_vec())
                })
                .and_then(|p| VariableMeta::decode(&p).ok())
                .map(|m| m.config.num_bins)
                .or(num_bins)
        } else {
            num_bins
        };

        match (committed, listed) {
            (true, true) => report.committed.push(var.clone()),
            (true, false) => report.unlisted.push(var.clone()),
            (false, true) => {
                // Listed but broken meta: committed data with damage.
                report.committed.push(var.clone());
                report.findings.push(FileFinding {
                    file: meta_name.clone(),
                    class: if files.is_some_and(|f| f.has_meta) {
                        FileClass::Torn
                    } else {
                        FileClass::Missing
                    },
                    what: meta_state.as_ref().unwrap_err().clone(),
                });
            }
            (false, false) => {
                report.uncommitted.push(var.clone());
                if files.is_some_and(|f| f.has_meta) {
                    report.findings.push(FileFinding {
                        file: meta_name.clone(),
                        class: FileClass::Orphaned,
                        what: format!(
                            "uncommitted build: meta {}",
                            meta_state.as_ref().unwrap_err()
                        ),
                    });
                }
            }
        }
        let debris = !committed && !listed;

        // Bin files: verify the ones present; for committed variables
        // also demand the full expected set.
        let mut bins: BTreeMap<usize, (bool, bool)> =
            files.map(|f| f.bins.clone()).unwrap_or_default();
        if !debris {
            if let Some(n) = expect_bins {
                for b in 0..n {
                    bins.entry(b).or_insert((false, false));
                }
            }
        }
        for (bin, (has_dat, has_idx)) in bins {
            for (present, file) in [
                (has_dat, fileorg::data_file(ds, &var, bin)),
                (has_idx, fileorg::index_file(ds, &var, bin)),
            ] {
                if !present {
                    if !debris {
                        report.findings.push(FileFinding {
                            file,
                            class: FileClass::Missing,
                            what: "expected by committed variable".to_string(),
                        });
                    }
                    continue;
                }
                report.files_checked += 1;
                match verifies(backend, &file) {
                    Ok(()) if debris => report.findings.push(FileFinding {
                        file,
                        class: FileClass::Orphaned,
                        what: "uncommitted build debris".to_string(),
                    }),
                    Ok(()) => {}
                    Err(e) => report.findings.push(FileFinding {
                        file,
                        class: if debris {
                            FileClass::Orphaned
                        } else {
                            FileClass::Torn
                        },
                        what: e,
                    }),
                }
            }
        }
        for stray in files.map(|f| f.strays.as_slice()).unwrap_or_default() {
            report.findings.push(FileFinding {
                file: stray.clone(),
                class: FileClass::Orphaned,
                what: "not part of the layout".to_string(),
            });
        }
    }
    Ok(report)
}

/// Remove every stored file of a variable (rollback of an uncommitted
/// build). Missing files are fine; other removal errors abort.
fn remove_var(
    backend: &dyn StorageBackend,
    ds: &str,
    var: &str,
    files: &VarFiles,
) -> Result<usize> {
    let mut removed = 0usize;
    let mut names = Vec::new();
    if files.has_meta {
        names.push(fileorg::meta_file(ds, var));
    }
    for (&bin, &(has_dat, has_idx)) in &files.bins {
        if has_dat {
            names.push(fileorg::data_file(ds, var, bin));
        }
        if has_idx {
            names.push(fileorg::index_file(ds, var, bin));
        }
    }
    names.extend(files.strays.iter().cloned());
    for name in names {
        match backend.remove(&name) {
            Ok(()) => removed += 1,
            Err(mloc_pfs::PfsError::NotFound(_)) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(removed)
}

/// Repair dataset `ds` in place: restore torn/missing files from
/// replicas, roll back uncommitted builds, and reconcile the catalog
/// with the set of committed variables. Returns what changed; damage
/// with no healthy replica is reported in
/// [`RepairReport::unrepairable`], never silently dropped.
pub fn repair(backend: &dyn StorageBackend, ds: &str) -> Result<RepairReport> {
    let mut report = RepairReport {
        fsck: fsck(backend, ds)?,
        ..Default::default()
    };
    let catalog_file = Dataset::catalog_file(ds);

    // 1. The catalog itself: if the primary copy does not parse, any
    //    replica copy that does can rewrite it.
    let mut catalog_raw = read_all(backend, &catalog_file);
    if catalog_raw
        .as_deref()
        .is_none_or(|r| parse_catalog(r).is_err())
    {
        if let Some(raw) = replica_passing(backend, &catalog_file, |r| parse_catalog(r).is_ok()) {
            rewrite(backend, &catalog_file, &raw)?;
            report.restored.push(catalog_file.clone());
            catalog_raw = Some(raw);
        }
    }

    // 2. Metas: every damaged meta gets a replica-restore attempt
    //    before we decide a variable's fate.
    let vars = inventory(backend, ds);
    let meta_is_good = |raw: &[u8], name: &str| {
        ExtentFooter::split_verified(raw, name)
            .ok()
            .and_then(|p| VariableMeta::decode(p).ok())
            .is_some()
    };
    let mut committed: BTreeSet<String> = BTreeSet::new();
    let mut rollback: Vec<String> = Vec::new();
    let catalog_vars: Vec<String> = catalog_raw
        .as_deref()
        .and_then(|r| parse_catalog(r).ok())
        .map(|(_, v, _)| v)
        .unwrap_or_default();
    let listed: BTreeSet<String> = catalog_vars.iter().cloned().collect();
    let mut all_vars: BTreeSet<String> = vars.keys().cloned().collect();
    all_vars.extend(listed.iter().cloned());
    for var in &all_vars {
        let meta_name = fileorg::meta_file(ds, var);
        if verifies(backend, &meta_name).is_ok() {
            committed.insert(var.clone());
            // The logical bytes are fine, but a replica copy may be
            // missing or torn behind the read path's fall-through:
            // rewrite fans out and heals every copy.
            if backend.replica_count() > 1
                && !all_replicas_pass(backend, &meta_name, |r| meta_is_good(r, &meta_name))
            {
                if let Some(raw) = read_all(backend, &meta_name) {
                    rewrite(backend, &meta_name, &raw)?;
                    report.restored.push(meta_name);
                }
            }
            continue;
        }
        if let Some(raw) = replica_passing(backend, &meta_name, |r| meta_is_good(r, &meta_name)) {
            rewrite(backend, &meta_name, &raw)?;
            report.restored.push(meta_name);
            committed.insert(var.clone());
        } else if listed.contains(var) {
            // Registered data we cannot recover: loud loss, no
            // rollback of a committed variable.
            report.unrepairable.push(meta_name);
        } else {
            rollback.push(var.clone());
        }
    }

    // 3. Roll back uncommitted builds so they can rerun cleanly.
    for var in rollback {
        if let Some(files) = vars.get(&var) {
            report.removed_files += remove_var(backend, ds, &var, files)?;
        }
        report.rolled_back.push(var);
    }

    // 4. Bin files of committed variables: restore torn/missing ones
    //    from the first verifying replica.
    for var in &committed {
        let meta_name = fileorg::meta_file(ds, var);
        let Some(n) = read_all(backend, &meta_name)
            .and_then(|raw| {
                ExtentFooter::split_verified(&raw, &meta_name)
                    .ok()
                    .map(|p| p.to_vec())
            })
            .and_then(|p| VariableMeta::decode(&p).ok())
            .map(|m| m.config.num_bins)
        else {
            continue;
        };
        for bin in 0..n {
            for file in [
                fileorg::data_file(ds, var, bin),
                fileorg::index_file(ds, var, bin),
            ] {
                if verifies(backend, &file).is_ok() {
                    if backend.replica_count() > 1
                        && !all_replicas_pass(backend, &file, |r| {
                            ExtentFooter::split_verified(r, &file).is_ok()
                        })
                    {
                        if let Some(raw) = read_all(backend, &file) {
                            rewrite(backend, &file, &raw)?;
                            report.restored.push(file);
                        }
                    }
                    continue;
                }
                if let Some(raw) = replica_passing(backend, &file, |r| {
                    ExtentFooter::split_verified(r, &file).is_ok()
                }) {
                    rewrite(backend, &file, &raw)?;
                    report.restored.push(file);
                } else {
                    report.unrepairable.push(file);
                }
            }
        }
    }

    // 5. Catalog reconciliation: the catalog must list exactly the
    //    committed variables. Order: surviving lines first (original
    //    order), then reattached variables sorted.
    let desired: Vec<String> = {
        let mut lines: Vec<String> = catalog_vars
            .iter()
            .filter(|v| committed.contains(*v))
            .cloned()
            .collect();
        for var in &committed {
            if !lines.contains(var) {
                lines.push(var.clone());
                report.reattached.push(var.clone());
            }
        }
        lines
    };
    match catalog_raw.as_deref().map(parse_catalog) {
        Some(Ok((header_len, current, clean_tail))) => {
            // A torn trailing registration line must be truncated even
            // when the committed variable set already matches — a
            // later append would otherwise splice onto the debris.
            if current != desired || !clean_tail {
                let mut out = catalog_raw.as_deref().expect("parsed above")[..header_len].to_vec();
                for v in &desired {
                    out.extend_from_slice(format!("{v}\n").as_bytes());
                }
                rewrite(backend, &catalog_file, &out)?;
                report.catalog_rewritten = true;
            }
        }
        _ => {
            // No readable catalog on any replica. Reconstruct the
            // header from a committed variable's meta (it embeds the
            // shared build config); with no variables either, there
            // is nothing to reconstruct from.
            let config = committed.iter().find_map(|var| {
                let meta_name = fileorg::meta_file(ds, var);
                let raw = read_all(backend, &meta_name)?;
                let payload = ExtentFooter::split_verified(&raw, &meta_name).ok()?;
                VariableMeta::decode(payload).ok().map(|m| m.config)
            });
            if let Some(config) = config {
                let mut out = dataset::CATALOG_MAGIC.to_vec();
                out.extend_from_slice(&dataset::encode_config(&config));
                for v in &desired {
                    out.extend_from_slice(format!("{v}\n").as_bytes());
                }
                rewrite(backend, &catalog_file, &out)?;
                report.catalog_rewritten = true;
            } else {
                report.unrepairable.push(catalog_file.clone());
            }
        }
    }
    // The catalog's replica copies: reconciliation rewrites fan out,
    // but an untouched catalog can still hide a lost copy behind the
    // read fall-through.
    if !report.catalog_rewritten
        && backend.replica_count() > 1
        && read_all(backend, &catalog_file)
            .as_deref()
            .is_some_and(|r| parse_catalog(r).is_ok())
        && !all_replicas_pass(backend, &catalog_file, |r| parse_catalog(r).is_ok())
    {
        if let Some(raw) = read_all(backend, &catalog_file) {
            rewrite(backend, &catalog_file, &raw)?;
            report.restored.push(catalog_file);
        }
    }
    report.reattached.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MlocConfig;
    use mloc_pfs::{MemBackend, ShardRouter};

    fn config() -> MlocConfig {
        MlocConfig::builder(vec![16, 16])
            .chunk_shape(vec![8, 8])
            .num_bins(4)
            .build()
    }

    fn values(seed: u64) -> Vec<f64> {
        (0..256)
            .map(|i| ((i as u64 * 37 + seed * 911) % 101) as f64)
            .collect()
    }

    fn build(be: &dyn StorageBackend) {
        let ds = Dataset::create(be, "sim", config()).unwrap();
        ds.add_variable("temp", &values(1)).unwrap();
        ds.add_variable("humid", &values(2)).unwrap();
    }

    fn snapshot(be: &dyn StorageBackend) -> Vec<(String, Vec<u8>)> {
        be.list()
            .into_iter()
            .map(|f| {
                let len = be.len(&f).unwrap();
                let bytes = be.read(&f, 0, len).unwrap();
                (f, bytes)
            })
            .collect()
    }

    #[test]
    fn clean_store_fsck_is_clean_and_repair_is_noop() {
        let be = MemBackend::new();
        build(&be);
        let before = snapshot(&be);
        let f = fsck(&be, "sim").unwrap();
        assert!(f.is_clean(), "{f}");
        assert_eq!(f.committed, vec!["humid", "temp"]);
        let r = repair(&be, "sim").unwrap();
        assert!(r.is_healthy());
        assert!(r.restored.is_empty() && r.rolled_back.is_empty());
        assert!(!r.catalog_rewritten);
        assert_eq!(snapshot(&be), before, "no-op repair must not touch bytes");
    }

    #[test]
    fn torn_meta_rolls_back_uncommitted_variable() {
        let be = MemBackend::new();
        build(&be);
        let before = snapshot(&be);
        // Simulate a crash mid-build of a third variable: bins
        // written, meta torn, no catalog line.
        crate::build::build_variable(&be, "sim", "wind", &values(3), &config()).unwrap();
        let meta = "sim/wind/meta";
        let len = be.len(meta).unwrap();
        let torn = be.read(meta, 0, len - 7).unwrap();
        be.create(meta).unwrap();
        be.append(meta, &torn).unwrap();

        let f = fsck(&be, "sim").unwrap();
        assert!(!f.is_clean());
        assert_eq!(f.uncommitted, vec!["wind"]);
        assert!(f
            .findings
            .iter()
            .any(|d| d.file == meta && d.class == FileClass::Orphaned));

        let r = repair(&be, "sim").unwrap();
        assert!(r.is_healthy(), "{r}");
        assert_eq!(r.rolled_back, vec!["wind"]);
        assert!(r.removed_files > 0);
        assert_eq!(
            snapshot(&be),
            before,
            "rollback must restore pre-build state"
        );
        // And the build can rerun.
        let ds = Dataset::open(&be, "sim").unwrap();
        ds.add_variable("wind", &values(3)).unwrap();
        assert!(fsck(&be, "sim").unwrap().is_clean());
    }

    #[test]
    fn unlisted_variable_is_reattached() {
        let be = MemBackend::new();
        build(&be);
        // Crash between meta sync and catalog append: rebuild the
        // catalog without the humid line.
        let cat = "sim/catalog";
        let len = be.len(cat).unwrap();
        let raw = be.read(cat, 0, len).unwrap();
        let (header_len, vars, clean_tail) = parse_catalog(&raw).unwrap();
        assert_eq!(vars, vec!["temp", "humid"]);
        assert!(clean_tail);
        let mut short = raw[..header_len].to_vec();
        short.extend_from_slice(b"temp\n");
        be.create(cat).unwrap();
        be.append(cat, &short).unwrap();
        let want_catalog = raw;

        let f = fsck(&be, "sim").unwrap();
        assert_eq!(f.unlisted, vec!["humid"]);
        assert!(!f.is_clean());

        let r = repair(&be, "sim").unwrap();
        assert!(r.is_healthy(), "{r}");
        assert_eq!(r.reattached, vec!["humid"]);
        assert!(r.catalog_rewritten);
        let got = be.read(cat, 0, be.len(cat).unwrap()).unwrap();
        assert_eq!(got, want_catalog, "reattach must restore the exact catalog");
        assert!(fsck(&be, "sim").unwrap().is_clean());
    }

    #[test]
    fn torn_bin_without_replica_is_unrepairable() {
        let be = MemBackend::new();
        build(&be);
        let victim = "sim/temp/bin0001.dat";
        let len = be.len(victim).unwrap();
        let torn = be.read(victim, 0, len - 5).unwrap();
        be.create(victim).unwrap();
        be.append(victim, &torn).unwrap();

        let f = fsck(&be, "sim").unwrap();
        assert!(f
            .findings
            .iter()
            .any(|d| d.file == victim && d.class == FileClass::Torn));
        let r = repair(&be, "sim").unwrap();
        assert!(!r.is_healthy());
        assert_eq!(r.unrepairable, vec![victim.to_string()]);
    }

    #[test]
    fn replica_restores_torn_files() {
        let shards: Vec<Box<dyn StorageBackend>> =
            (0..2).map(|_| Box::new(MemBackend::new()) as _).collect();
        let router = ShardRouter::replicated(shards, 2).unwrap();
        build(&router);
        let clean = snapshot(&router);

        // Tear the primary copy of every temp file directly on its
        // shard (behind the router's back).
        let mut torn_files = Vec::new();
        for (f, bytes) in &clean {
            if !f.starts_with("sim/temp/") {
                continue;
            }
            let primary = router.shard_for(f);
            let shard = router.shard(primary);
            shard.create(f).unwrap();
            shard.append(f, &bytes[..bytes.len() - 3]).unwrap();
            torn_files.push(f.clone());
        }
        assert!(!torn_files.is_empty());

        let r = repair(&router, "sim").unwrap();
        assert!(r.is_healthy(), "{r}");
        // The torn primary fails footer verification, so repair pulls
        // the healthy replica and rewrites through the router, healing
        // every copy.
        assert_eq!(r.restored.len(), torn_files.len(), "{r}");
        for f in &torn_files {
            for k in 0..2 {
                let s = router.replica_shard_for(f, k);
                let raw = router
                    .shard(s)
                    .read(f, 0, router.shard(s).len(f).unwrap())
                    .unwrap();
                assert!(
                    ExtentFooter::split_verified(&raw, f).is_ok(),
                    "shard {s} copy of {f} still torn after repair"
                );
            }
        }
        assert_eq!(snapshot(&router), clean, "logical bytes unchanged");
    }

    #[test]
    fn lost_catalog_is_reconstructed_from_meta() {
        let be = MemBackend::new();
        build(&be);
        let cat = "sim/catalog";
        let want = be.read(cat, 0, be.len(cat).unwrap()).unwrap();
        be.remove(cat).unwrap();
        assert!(Dataset::open(&be, "sim").is_err());

        let f = fsck(&be, "sim").unwrap();
        assert!(!f.catalog_ok);
        let r = repair(&be, "sim").unwrap();
        assert!(r.is_healthy(), "{r}");
        assert!(r.catalog_rewritten);
        let got = be.read(cat, 0, be.len(cat).unwrap()).unwrap();
        // Same header; lines are the committed vars (sorted, since
        // original order is unrecoverable).
        let (_, vars, _) = parse_catalog(&got).unwrap();
        assert_eq!(vars, vec!["humid", "temp"]);
        assert_eq!(got[..want.len() - 11], want[..want.len() - 11]);
        assert!(Dataset::open(&be, "sim").is_ok());
    }
}
