//! Opening a built variable: metadata and the query-time view.

use crate::array::ChunkGrid;
use crate::binning::BinSpec;
use crate::cache::BlockCache;
use crate::config::{LevelOrder, MlocConfig};
use crate::exec::ParallelExecutor;
use crate::fusion::ExtentFuser;
use crate::metrics::QueryMetrics;
use crate::query::{Query, QueryResult};
use crate::wire::{Reader, Writer};
use crate::{MlocError, Result};
use mloc_compress::CodecKind;
use mloc_hilbert::{CurveKind, GridOrder};
use mloc_pfs::StorageBackend;
use std::sync::Arc;

const MAGIC: u32 = 0x5445_4D4D; // "MMET"
const VERSION: u8 = 2;

fn curve_tag(c: CurveKind) -> u8 {
    match c {
        CurveKind::Hilbert => 0,
        CurveKind::ZOrder => 1,
        CurveKind::RowMajor => 2,
    }
}

fn curve_from_tag(tag: u8) -> Result<CurveKind> {
    match tag {
        0 => Ok(CurveKind::Hilbert),
        1 => Ok(CurveKind::ZOrder),
        2 => Ok(CurveKind::RowMajor),
        _ => Err(MlocError::Corrupt("unknown curve kind")),
    }
}

/// Serialized per-variable metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableMeta {
    /// Variable name.
    pub var: String,
    /// Build configuration.
    pub config: MlocConfig,
    /// Equal-frequency bin boundaries.
    pub bin_bounds: Vec<f64>,
    /// Total number of points.
    pub total_points: u64,
}

impl VariableMeta {
    /// Serialize to the meta-file byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(MAGIC);
        w.u8(VERSION);
        w.string(&self.var);
        w.usize_vec(&self.config.shape);
        w.usize_vec(&self.config.chunk_shape);
        w.u32(self.config.num_bins as u32);
        w.u8(self.config.level_order.to_tag());
        let (codec_tag, codec_param) = self.config.codec.to_tag();
        w.u8(codec_tag);
        w.f64(codec_param);
        w.u8(u8::from(self.config.plod));
        w.u8(curve_tag(self.config.curve));
        w.u32(self.config.subset_levels);
        w.u64(self.config.stripe_size);
        w.f64_vec(&self.bin_bounds);
        w.u64(self.total_points);
        w.finish()
    }

    /// Parse bytes produced by [`Self::encode`].
    pub fn decode(data: &[u8]) -> Result<VariableMeta> {
        let mut r = Reader::new(data);
        if r.u32()? != MAGIC {
            return Err(MlocError::Corrupt("bad meta magic"));
        }
        if r.u8()? != VERSION {
            return Err(MlocError::Corrupt("unsupported meta version"));
        }
        let var = r.string()?;
        let shape = r.usize_vec()?;
        let chunk_shape = r.usize_vec()?;
        let num_bins = r.u32()? as usize;
        let level_order = LevelOrder::from_tag(r.u8()?)?;
        let codec_tag = r.u8()?;
        let codec_param = r.f64()?;
        let codec = CodecKind::from_tag(codec_tag, codec_param)?;
        let plod = r.u8()? != 0;
        let curve = curve_from_tag(r.u8()?)?;
        let subset_levels = r.u32()?;
        let stripe_size = r.u64()?;
        let bin_bounds = r.f64_vec()?;
        let total_points = r.u64()?;
        let config = MlocConfig {
            shape,
            chunk_shape,
            num_bins,
            level_order,
            codec,
            plod,
            curve,
            subset_levels,
            stripe_size,
            build_threads: 0,
        };
        config.validate()?;
        if bin_bounds.len() != num_bins + 1 {
            return Err(MlocError::Corrupt("bin bound count mismatch"));
        }
        Ok(VariableMeta {
            var,
            config,
            bin_bounds,
            total_points,
        })
    }
}

/// A built MLOC variable, opened for querying.
pub struct MlocStore<'a> {
    backend: &'a dyn StorageBackend,
    dataset: String,
    meta: VariableMeta,
    grid: ChunkGrid,
    order: GridOrder,
    spec: BinSpec,
    cache: Option<Arc<BlockCache>>,
    cache_scope: Arc<str>,
    fuser: Option<Arc<ExtentFuser>>,
}

impl<'a> MlocStore<'a> {
    /// Open `dataset/var` from a backend by reading its metadata.
    pub fn open(
        backend: &'a dyn StorageBackend,
        dataset: &str,
        var: &str,
    ) -> Result<MlocStore<'a>> {
        let meta_name = crate::fileorg::meta_file(dataset, var);
        let len = backend.len(&meta_name)?;
        let raw = backend.read(&meta_name, 0, len)?;
        // The meta file ends with a checksum footer whose valid
        // trailer doubles as the build's commit marker (it is written
        // last): a torn or bit-flipped meta fails here instead of
        // parsing garbage.
        let payload = crate::integrity::ExtentFooter::split_verified(&raw, &meta_name)?;
        let meta = VariableMeta::decode(payload)?;
        let grid = ChunkGrid::new(meta.config.shape.clone(), meta.config.chunk_shape.clone());
        let order = meta.config.chunk_order(&grid);
        let spec = BinSpec::from_bounds(meta.bin_bounds.clone())?;
        let cache_scope = Arc::from(format!("{dataset}/{}", meta.var).as_str());
        Ok(MlocStore {
            backend,
            dataset: dataset.to_string(),
            meta,
            grid,
            order,
            spec,
            cache: None,
            cache_scope,
            fuser: None,
        })
    }

    /// Attach a decompressed-block cache ([`crate::cache`]). Queries
    /// through this store probe it before the backend; blocks under the
    /// same cache can be shared across stores, variables and threads.
    /// A built variable is immutable, so cached blocks never go stale —
    /// rebuilding under the same `dataset/var` names needs a new cache.
    pub fn with_cache(mut self, cache: Arc<BlockCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attach or detach the block cache in place.
    pub fn set_cache(&mut self, cache: Option<Arc<BlockCache>>) {
        self.cache = cache;
    }

    /// The attached block cache, if any.
    pub fn cache(&self) -> Option<&Arc<BlockCache>> {
        self.cache.as_ref()
    }

    /// The `dataset/var` scope string cache keys carry.
    pub fn cache_scope(&self) -> &Arc<str> {
        &self.cache_scope
    }

    /// Attach a cross-session extent fuser ([`crate::fusion`]): merged
    /// reads through this store are shared with every other store of
    /// the same admission window that holds the same fuser. The caller
    /// rotates windows via [`ExtentFuser::begin_window`].
    pub fn with_fusion(mut self, fuser: Arc<ExtentFuser>) -> Self {
        self.fuser = Some(fuser);
        self
    }

    /// Attach or detach the extent fuser in place.
    pub fn set_fusion(&mut self, fuser: Option<Arc<ExtentFuser>>) {
        self.fuser = fuser;
    }

    /// The attached extent fuser, if any.
    pub fn fuser(&self) -> Option<&Arc<ExtentFuser>> {
        self.fuser.as_ref()
    }

    /// The storage backend.
    pub fn backend(&self) -> &'a dyn StorageBackend {
        self.backend
    }

    /// Dataset name.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// Variable name.
    pub fn var(&self) -> &str {
        &self.meta.var
    }

    /// Build configuration.
    pub fn config(&self) -> &MlocConfig {
        &self.meta.config
    }

    /// Total number of points.
    pub fn total_points(&self) -> u64 {
        self.meta.total_points
    }

    /// Chunk geometry.
    pub fn grid(&self) -> &ChunkGrid {
        &self.grid
    }

    /// Chunk curve ordering.
    pub fn order(&self) -> &GridOrder {
        &self.order
    }

    /// Value-bin specification.
    pub fn bins(&self) -> &BinSpec {
        &self.spec
    }

    /// Data file name of a bin.
    pub fn data_file(&self, bin: usize) -> String {
        crate::fileorg::data_file(&self.dataset, self.var(), bin)
    }

    /// Index file name of a bin.
    pub fn index_file(&self, bin: usize) -> String {
        crate::fileorg::index_file(&self.dataset, self.var(), bin)
    }

    /// Run a query on a single rank with the default cost model and
    /// return just the result.
    pub fn query_serial(&self, query: &Query) -> Result<QueryResult> {
        Ok(self.query_with_metrics(query)?.0)
    }

    /// Run a query on a single rank and return result plus metrics.
    pub fn query_with_metrics(&self, query: &Query) -> Result<(QueryResult, QueryMetrics)> {
        ParallelExecutor::serial().execute(self, query)
    }

    /// Run a query on a single rank with profiling on, returning the
    /// span/counter [`mloc_obs::Profile`] alongside result and metrics.
    pub fn query_profiled(
        &self,
        query: &Query,
    ) -> Result<(QueryResult, QueryMetrics, mloc_obs::Profile)> {
        ParallelExecutor::serial().execute_profiled(self, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrip() {
        let config = MlocConfig::builder(vec![64, 32])
            .chunk_shape(vec![16, 16])
            .num_bins(10)
            .build();
        let meta = VariableMeta {
            var: "temperature".into(),
            config,
            bin_bounds: (0..=10).map(|i| i as f64 * 3.5).collect(),
            total_points: 2048,
        };
        let decoded = VariableMeta::decode(&meta.encode()).unwrap();
        assert_eq!(decoded, meta);
    }

    #[test]
    fn meta_rejects_corruption() {
        let config = MlocConfig::builder(vec![8, 8])
            .chunk_shape(vec![4, 4])
            .num_bins(2)
            .build();
        let meta = VariableMeta {
            var: "v".into(),
            config,
            bin_bounds: vec![0.0, 1.0, 2.0],
            total_points: 64,
        };
        let bytes = meta.encode();
        assert!(VariableMeta::decode(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(VariableMeta::decode(&bad).is_err());
    }
}
