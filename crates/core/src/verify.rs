//! Offline integrity verification (`mloc verify`).
//!
//! Recomputes every checksum recorded in the extent footers of a
//! variable's files — meta, every bin index, every bin data file — and
//! reports each damaged extent with a human-readable label (which
//! chunk's bitmap, which byte-group part). Unlike the query path,
//! which stops at the first unreadable extent it needs, verification
//! keeps going and maps *all* the damage, so an operator can decide
//! whether a degraded dataset is worth keeping.

use crate::fileorg;
use crate::index::BinIndex;
use crate::integrity::{ExtentFooter, TRAILER_LEN};
use crate::{MlocError, Result};
use mloc_pfs::{PfsError, ReadRequest, StorageBackend};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// One damaged (or unreadable) extent found by verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtentDamage {
    /// File containing the damage.
    pub file: String,
    /// Byte offset of the damaged extent (0 for whole-file failures).
    pub offset: u64,
    /// Extent length (0 for whole-file failures).
    pub len: u64,
    /// What is damaged, e.g. `bitmap of chunk rank 3` or
    /// `chunk rank 5 byte-group part 2: checksum mismatch`.
    pub what: String,
}

impl fmt::Display for ExtentDamage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}, {}+{}): {}",
            self.file, self.offset, self.offset, self.len, self.what
        )
    }
}

/// Outcome of verifying a variable or a whole dataset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Files examined.
    pub files_checked: usize,
    /// Extents whose checksum was recomputed.
    pub extents_checked: u64,
    /// Every damaged extent found (empty = clean).
    pub damage: Vec<ExtentDamage>,
}

impl VerifyReport {
    /// Whether no damage was found.
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty()
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: VerifyReport) {
        self.files_checked += other.files_checked;
        self.extents_checked += other.extents_checked;
        self.damage.extend(other.damage);
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "ok: {} file(s), {} extent(s) verified",
                self.files_checked, self.extents_checked
            )
        } else {
            writeln!(
                f,
                "DAMAGED: {} bad extent(s) across {} file(s), {} extent(s) checked",
                self.damage.len(),
                self.files_checked,
                self.extents_checked
            )?;
            for d in &self.damage {
                writeln!(f, "  {d}")?;
            }
            Ok(())
        }
    }
}

fn damage_from_error(file: &str, e: &MlocError) -> ExtentDamage {
    match e {
        MlocError::CorruptExtent {
            file,
            offset,
            len,
            what,
        } => ExtentDamage {
            file: file.clone(),
            offset: *offset,
            len: *len,
            what: what.clone(),
        },
        other => ExtentDamage {
            file: file.to_string(),
            offset: 0,
            len: 0,
            what: other.to_string(),
        },
    }
}

/// Batched whole-file fetch: size every file, then pull all readable
/// ones down in **one** submitted batch, so a concurrent backend (pool
/// or shard router) verifies a variable's files in parallel instead of
/// draining them one blocking read at a time.
struct FileBytes {
    bytes: HashMap<String, std::result::Result<Vec<u8>, PfsError>>,
}

impl FileBytes {
    fn fetch(backend: &dyn StorageBackend, files: &[String]) -> FileBytes {
        let mut bytes = HashMap::new();
        let mut reqs = Vec::new();
        for f in files {
            match backend.len(f) {
                Ok(n) => reqs.push(ReadRequest::new(f.clone(), 0, n)),
                Err(e) => {
                    bytes.insert(f.clone(), Err(e));
                }
            }
        }
        for (req, res) in reqs.iter().zip(backend.read_batch(&reqs)) {
            bytes.insert(req.file.clone(), res);
        }
        FileBytes { bytes }
    }

    fn take(&mut self, file: &str) -> std::result::Result<Vec<u8>, PfsError> {
        self.bytes
            .remove(file)
            .unwrap_or_else(|| Err(PfsError::NotFound(file.to_string())))
    }
}

/// Check every footer extent of one pre-fetched file, recording damage
/// instead of stopping. Returns the raw bytes and parsed footer when
/// the footer itself is intact (payload extents may still be bad).
fn check_file(
    raw: std::result::Result<Vec<u8>, PfsError>,
    file: &str,
    report: &mut VerifyReport,
) -> Option<(Vec<u8>, ExtentFooter)> {
    report.files_checked += 1;
    let raw = match raw {
        Ok(raw) => raw,
        Err(e) => {
            report.damage.push(ExtentDamage {
                file: file.to_string(),
                offset: 0,
                len: 0,
                what: format!("file unreadable: {e}"),
            });
            return None;
        }
    };
    let file_len = raw.len() as u64;
    if file_len < TRAILER_LEN {
        report.damage.push(ExtentDamage {
            file: file.to_string(),
            offset: 0,
            len: file_len,
            what: "file shorter than footer trailer (torn write?)".to_string(),
        });
        return None;
    }
    let trailer = &raw[raw.len() - TRAILER_LEN as usize..];
    let (payload_len, _) = match ExtentFooter::decode_trailer(trailer, file_len, file) {
        Ok(v) => v,
        Err(e) => {
            report.damage.push(damage_from_error(file, &e));
            return None;
        }
    };
    let footer = match ExtentFooter::decode(&raw[payload_len as usize..], file_len, file) {
        Ok(f) => f,
        Err(e) => {
            report.damage.push(damage_from_error(file, &e));
            return None;
        }
    };
    for i in 0..footer.num_extents() {
        let (off, len, _) = footer.extent(i);
        report.extents_checked += 1;
        let slice = &raw[off as usize..(off + u64::from(len)) as usize];
        if let Err(e) = footer.verify(file, off, slice) {
            report.damage.push(damage_from_error(file, &e));
        }
    }
    Some((raw, footer))
}

/// Rewrite the `what` of damage entries in `file` with a location
/// label derived from the (intact) index structure.
fn relabel(report: &mut VerifyReport, file: &str, label: impl Fn(u64) -> Option<String>) {
    for d in report.damage.iter_mut().filter(|d| d.file == file) {
        if let Some(l) = label(d.offset) {
            d.what = format!("{l}: {}", d.what);
        }
    }
}

/// Verify every stored extent of one variable. Damaged extents are
/// collected, not fatal: the report lists all of them. Errors are
/// returned only for conditions that prevent verification from running
/// at all (none currently — unreadable files become damage entries).
pub fn verify_variable(
    backend: &dyn StorageBackend,
    dataset: &str,
    var: &str,
) -> Result<VerifyReport> {
    let mut report = VerifyReport::default();

    // Enumerate bins from the directory listing rather than the meta
    // file, so a destroyed meta does not hide bin damage.
    let prefix = format!("{dataset}/{var}/bin");
    let mut bins: BTreeSet<usize> = BTreeSet::new();
    for f in backend.list() {
        if let Some(rest) = f.strip_prefix(&prefix) {
            if let Some(n) = rest
                .strip_suffix(".idx")
                .or_else(|| rest.strip_suffix(".dat"))
            {
                if let Ok(bin) = n.parse() {
                    bins.insert(bin);
                }
            }
        }
    }

    // Fetch every file of the variable in one submitted batch …
    let meta_name = fileorg::meta_file(dataset, var);
    let mut files = vec![meta_name.clone()];
    for &bin in &bins {
        files.push(fileorg::index_file(dataset, var, bin));
        files.push(fileorg::data_file(dataset, var, bin));
    }
    let mut fetched = FileBytes::fetch(backend, &files);

    // … then verify extents from the buffers.
    check_file(fetched.take(&meta_name), &meta_name, &mut report);
    relabel(&mut report, &meta_name, |_| Some("meta".to_string()));

    for bin in bins {
        let idx_file = fileorg::index_file(dataset, var, bin);
        let dat_file = fileorg::data_file(dataset, var, bin);

        let mut index: Option<BinIndex> = None;
        if let Some((raw, footer)) = check_file(fetched.take(&idx_file), &idx_file, &mut report) {
            // Best-effort header parse for location labels; extent 0 is
            // the header. Verification above already checked its CRC.
            if footer.num_extents() > 0 {
                let (_, hdr_len, _) = footer.extent(0);
                index = BinIndex::decode_header(&raw[..hdr_len as usize]).ok();
            }
        }
        if let Some(idx) = &index {
            relabel(&mut report, &idx_file, |off| {
                if off == 0 {
                    return Some("index header".to_string());
                }
                if idx.summary_bytes > 0 && off == idx.summary_file_offset() {
                    return Some("chunk summary".to_string());
                }
                (0..idx.chunks.len())
                    .find(|&r| idx.chunks[r].bitmap_len > 0 && idx.bitmap_file_offset(r) == off)
                    .map(|r| format!("bitmap of chunk rank {r}"))
            });
        } else {
            relabel(&mut report, &idx_file, |off| {
                (off == 0).then(|| "index header".to_string())
            });
        }

        check_file(fetched.take(&dat_file), &dat_file, &mut report);
        if let Some(idx) = &index {
            relabel(&mut report, &dat_file, |off| {
                for (r, e) in idx.chunks.iter().enumerate() {
                    for (p, u) in e.units.iter().enumerate() {
                        if u.clen > 0 && u.offset == off {
                            return Some(format!("chunk rank {r} byte-group part {p}"));
                        }
                    }
                }
                None
            });
        }
    }

    Ok(report)
}

/// Verify every variable listed in a dataset's catalog. Fails only
/// when the catalog itself cannot be read; per-variable damage is
/// reported, not fatal.
pub fn verify_dataset(backend: &dyn StorageBackend, name: &str) -> Result<VerifyReport> {
    let ds = crate::dataset::Dataset::open(backend, name)?;
    let mut report = VerifyReport::default();
    for var in ds.variables()? {
        report.merge(verify_variable(backend, name, &var)?);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_variable;
    use crate::config::MlocConfig;
    use mloc_pfs::MemBackend;

    fn build() -> MemBackend {
        let be = MemBackend::new();
        let values: Vec<f64> = (0..256).map(|i| ((i * 37) % 101) as f64).collect();
        let config = MlocConfig::builder(vec![16, 16])
            .chunk_shape(vec![8, 8])
            .num_bins(4)
            .build();
        build_variable(&be, "ds", "v", &values, &config).unwrap();
        be
    }

    /// Copy every file, flipping one byte of `victim` at `offset`.
    fn corrupt_copy(be: &MemBackend, victim: &str, offset: u64) -> MemBackend {
        let out = MemBackend::new();
        for f in be.list() {
            let len = be.len(&f).unwrap();
            let mut data = be.read(&f, 0, len).unwrap();
            if f == victim {
                data[offset as usize] ^= 0x20;
            }
            out.create(&f).unwrap();
            out.append(&f, &data).unwrap();
        }
        out
    }

    #[test]
    fn clean_build_verifies() {
        let be = build();
        let report = verify_variable(&be, "ds", "v").unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.files_checked, 9); // meta + 4 × (idx + dat)
        assert!(report.extents_checked > 9);
        assert!(report.to_string().starts_with("ok:"));
    }

    #[test]
    fn flipped_data_byte_is_pinpointed() {
        let be = build();
        let victim = "ds/v/bin0001.dat";
        let bad = corrupt_copy(&be, victim, 3);
        let report = verify_variable(&bad, "ds", "v").unwrap();
        assert_eq!(report.damage.len(), 1, "{report}");
        let d = &report.damage[0];
        assert_eq!(d.file, victim);
        assert!(
            d.what.contains("chunk rank") && d.what.contains("byte-group part"),
            "{}",
            d.what
        );
        assert!(d.offset <= 3 && 3 < d.offset + d.len);
    }

    #[test]
    fn flipped_index_header_and_meta_are_labeled() {
        let be = build();
        let idx = corrupt_copy(&be, "ds/v/bin0000.idx", 6);
        let r = verify_variable(&idx, "ds", "v").unwrap();
        assert_eq!(r.damage.len(), 1, "{r}");
        assert!(
            r.damage[0].what.starts_with("index header"),
            "{}",
            r.damage[0].what
        );

        let meta = corrupt_copy(&be, "ds/v/meta", 9);
        let r = verify_variable(&meta, "ds", "v").unwrap();
        assert_eq!(r.damage.len(), 1, "{r}");
        assert!(r.damage[0].what.starts_with("meta"), "{}", r.damage[0].what);
    }

    #[test]
    fn flipped_summary_byte_is_pinpointed() {
        let be = build();
        let victim = "ds/v/bin0000.idx";
        let len = be.len(victim).unwrap();
        let raw = be.read(victim, 0, len).unwrap();
        let idx = BinIndex::decode_header(&raw).unwrap();
        assert!(idx.summary_bytes > 0, "fixture should build v2 indexes");
        let bad = corrupt_copy(&be, victim, idx.summary_file_offset() + 5);
        let report = verify_variable(&bad, "ds", "v").unwrap();
        assert_eq!(report.damage.len(), 1, "{report}");
        let d = &report.damage[0];
        assert!(d.what.starts_with("chunk summary"), "{}", d.what);
        assert_eq!(d.offset, idx.summary_file_offset());
        assert_eq!(d.len, idx.summary_bytes);
    }

    #[test]
    fn downgraded_v1_files_verify_clean() {
        let be = build();
        let n = crate::index::downgrade_variable_to_v1(&be, "ds", "v").unwrap();
        assert_eq!(n, 4);
        let report = verify_variable(&be, "ds", "v").unwrap();
        assert!(report.is_clean(), "{report}");
        // v1 bitmap damage still gets a chunk label.
        let raw = be
            .read("ds/v/bin0000.idx", 0, be.len("ds/v/bin0000.idx").unwrap())
            .unwrap();
        let idx = BinIndex::decode_header(&raw).unwrap();
        assert_eq!(idx.version, 1);
        assert_eq!(idx.summary_bytes, 0);
        let rank = (0..idx.chunks.len())
            .find(|&r| idx.chunks[r].bitmap_len > 0)
            .unwrap();
        let bad = corrupt_copy(&be, "ds/v/bin0000.idx", idx.bitmap_file_offset(rank) + 1);
        let r = verify_variable(&bad, "ds", "v").unwrap();
        assert_eq!(r.damage.len(), 1, "{r}");
        assert!(
            r.damage[0].what.starts_with("bitmap of chunk rank"),
            "{}",
            r.damage[0].what
        );
    }

    #[test]
    fn torn_file_reported_as_damage() {
        let be = build();
        let victim = "ds/v/bin0002.dat";
        let out = MemBackend::new();
        for f in be.list() {
            let len = be.len(&f).unwrap();
            let keep = if f == victim { len - 10 } else { len };
            let data = be.read(&f, 0, keep).unwrap();
            out.create(&f).unwrap();
            out.append(&f, &data).unwrap();
        }
        let report = verify_variable(&out, "ds", "v").unwrap();
        assert_eq!(report.damage.len(), 1, "{report}");
        assert_eq!(report.damage[0].file, victim);
    }

    #[test]
    fn dataset_verify_walks_catalog() {
        let be = MemBackend::new();
        let config = MlocConfig::builder(vec![16, 16])
            .chunk_shape(vec![8, 8])
            .num_bins(2)
            .build();
        let ds = crate::dataset::Dataset::create(&be, "sim", config).unwrap();
        let values: Vec<f64> = (0..256).map(|i| i as f64).collect();
        ds.add_variable("a", &values).unwrap();
        ds.add_variable("b", &values).unwrap();
        let report = verify_dataset(&be, "sim").unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.files_checked, 2 * (1 + 2 * 2));
    }
}
