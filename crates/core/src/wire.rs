//! Little-endian binary serialization helpers for on-disk headers.

use crate::MlocError;

/// Append primitives to a byte buffer.
///
/// Some accessors are kept for format evolution even when currently
/// unused outside tests.
#[allow(dead_code)]
pub struct Writer {
    buf: Vec<u8>,
}

#[allow(dead_code)]
impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.bytes(v.as_bytes());
    }

    /// Length-prefixed `usize` vector (stored as u64).
    pub fn usize_vec(&mut self, v: &[usize]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x as u64);
        }
    }

    /// Length-prefixed `f64` vector.
    pub fn f64_vec(&mut self, v: &[f64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f64(x);
        }
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }
}

/// Sequential reader over a byte slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

#[allow(dead_code)]
impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MlocError> {
        // checked_add: a hostile length near usize::MAX must not wrap
        // past the bounds check.
        let end = self
            .pos
            .checked_add(n)
            .ok_or(MlocError::Corrupt("header truncated"))?;
        if end > self.data.len() {
            return Err(MlocError::Corrupt("header truncated"));
        }
        let s = &self.data[self.pos..end];
        self.pos += n;
        Ok(s)
    }

    /// Bound a count of `elem_size`-byte elements against the bytes
    /// actually left, so a corrupt length prefix fails fast instead of
    /// driving a near-4G-iteration decode loop.
    fn bounded_len(&self, n: usize, elem_size: usize) -> Result<usize, MlocError> {
        let need = n
            .checked_mul(elem_size)
            .ok_or(MlocError::Corrupt("header truncated"))?;
        if need > self.data.len() - self.pos {
            return Err(MlocError::Corrupt("header truncated"));
        }
        Ok(n)
    }

    pub fn u8(&mut self) -> Result<u8, MlocError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, MlocError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, MlocError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, MlocError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, MlocError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], MlocError> {
        self.take(n)
    }

    pub fn string(&mut self) -> Result<String, MlocError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| MlocError::Corrupt("bad utf-8"))
    }

    pub fn usize_vec(&mut self) -> Result<Vec<usize>, MlocError> {
        let n = self.u32()? as usize;
        let n = self.bounded_len(n, 8)?;
        (0..n).map(|_| self.u64().map(|v| v as usize)).collect()
    }

    pub fn f64_vec(&mut self) -> Result<Vec<f64>, MlocError> {
        let n = self.u32()? as usize;
        let n = self.bounded_len(n, 8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    /// Current read position.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_everything() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.f64(-2.5);
        w.string("hello");
        w.usize_vec(&[1, 2, 3]);
        w.f64_vec(&[0.5, 1.5]);
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap(), -2.5);
        assert_eq!(r.string().unwrap(), "hello");
        assert_eq!(r.usize_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.f64_vec().unwrap(), vec![0.5, 1.5]);
        assert!(r.remaining().is_empty());
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = Writer::new();
        w.u64(1);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..4]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn hostile_length_prefixes_error_without_wrapping() {
        // A length prefix of u32::MAX must not overflow `pos + n` or
        // spin a 4-billion-iteration decode loop.
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        assert!(Reader::new(&buf).string().is_err());
        assert!(Reader::new(&buf).usize_vec().is_err());
        assert!(Reader::new(&buf).f64_vec().is_err());
        assert!(Reader::new(&buf).bytes(usize::MAX).is_err());

        // Large-but-not-wrapping lengths fail too.
        let mut buf = 1_000_000u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 64]);
        assert!(Reader::new(&buf).usize_vec().is_err());
        assert!(Reader::new(&buf).f64_vec().is_err());
    }

    mod corruption_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Decoding arbitrary bytes must return Ok or Err — never
            // panic, never read out of bounds, never spin on a hostile
            // length prefix.
            #[test]
            fn reader_never_panics_on_arbitrary_bytes(
                data in proptest::collection::vec(any::<u8>(), 0..256),
            ) {
                let _ = Reader::new(&data).u8();
                let _ = Reader::new(&data).u16();
                let _ = Reader::new(&data).u32();
                let _ = Reader::new(&data).u64();
                let _ = Reader::new(&data).f64();
                let _ = Reader::new(&data).string();
                let _ = Reader::new(&data).usize_vec();
                let _ = Reader::new(&data).f64_vec();
                let mut r = Reader::new(&data);
                while r.u64().is_ok() {}
                prop_assert!(r.position() <= data.len());
            }

            // A valid header with one byte flipped and/or a truncated
            // tail decodes to an error or to (possibly different)
            // values — never a panic.
            #[test]
            fn mutated_headers_never_panic(
                flip in any::<usize>(),
                mask in 1u8..=255u8,
                cut in any::<usize>(),
            ) {
                let mut w = Writer::new();
                w.string("temperature");
                w.usize_vec(&[64, 64, 32]);
                w.f64_vec(&[0.0, 0.25, 0.5, 1.0]);
                w.u64(1 << 33);
                let mut buf = w.finish();
                let pos = flip % buf.len();
                buf[pos] ^= mask;
                buf.truncate(cut % (buf.len() + 1));
                let mut r = Reader::new(&buf);
                let _ = r.string();
                let _ = r.usize_vec();
                let _ = r.f64_vec();
                let _ = r.u64();
            }
        }
    }
}
