//! Little-endian binary serialization helpers for on-disk headers.

use crate::MlocError;

/// Append primitives to a byte buffer.
///
/// Some accessors are kept for format evolution even when currently
/// unused outside tests.
#[allow(dead_code)]
pub struct Writer {
    buf: Vec<u8>,
}

#[allow(dead_code)]
impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.bytes(v.as_bytes());
    }

    /// Length-prefixed `usize` vector (stored as u64).
    pub fn usize_vec(&mut self, v: &[usize]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x as u64);
        }
    }

    /// Length-prefixed `f64` vector.
    pub fn f64_vec(&mut self, v: &[f64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f64(x);
        }
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }
}

/// Sequential reader over a byte slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

#[allow(dead_code)]
impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MlocError> {
        if self.pos + n > self.data.len() {
            return Err(MlocError::Corrupt("header truncated"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, MlocError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, MlocError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, MlocError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, MlocError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, MlocError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], MlocError> {
        self.take(n)
    }

    pub fn string(&mut self) -> Result<String, MlocError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| MlocError::Corrupt("bad utf-8"))
    }

    pub fn usize_vec(&mut self) -> Result<Vec<usize>, MlocError> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.u64().map(|v| v as usize)).collect()
    }

    pub fn f64_vec(&mut self) -> Result<Vec<f64>, MlocError> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    /// Current read position.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_everything() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.f64(-2.5);
        w.string("hello");
        w.usize_vec(&[1, 2, 3]);
        w.f64_vec(&[0.5, 1.5]);
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap(), -2.5);
        assert_eq!(r.string().unwrap(), "hello");
        assert_eq!(r.usize_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.f64_vec().unwrap(), vec![0.5, 1.5]);
        assert!(r.remaining().is_empty());
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = Writer::new();
        w.u64(1);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..4]);
        assert!(r.u64().is_err());
    }
}
