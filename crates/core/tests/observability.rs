//! Integration tests for the query-path observability layer: replay
//! and threaded execution must produce structurally identical profiles,
//! and profile spans/counters must reconcile exactly with the
//! [`QueryMetrics`] the same execution returns.
//!
//! These tests run WITHOUT a block cache unless stated otherwise: a
//! shared cache makes hit/miss counts depend on which rank touches a
//! shared block first, which is scheduling-dependent in threaded mode.

use mloc::obs::Label;
use mloc::prelude::*;
use mloc_pfs::{CostModel, MemBackend};

fn fixture(be: &MemBackend) -> MlocStore<'_> {
    let values: Vec<f64> = (0..4096).map(|i| ((i * 53) % 4096) as f64 * 0.5).collect();
    let config = MlocConfig::builder(vec![64, 64])
        .chunk_shape(vec![16, 16])
        .num_bins(8)
        .build();
    build_variable(be, "obs", "v", &values, &config).unwrap();
    MlocStore::open(be, "obs", "v").unwrap()
}

#[test]
fn replay_and_threaded_profiles_are_identical() {
    let be = MemBackend::new();
    let store = fixture(&be);
    let q = Query::region(100.0, 1500.0);

    let replay = ParallelExecutor::new(4, CostModel::default());
    let threaded = ParallelExecutor::new(4, CostModel::default()).threaded(true);
    let (res_r, m_r, p_r) = replay.execute_profiled(&store, &q).unwrap();
    let (res_t, m_t, p_t) = threaded.execute_profiled(&store, &q).unwrap();

    assert_eq!(res_r, res_t);
    // Same span tree, same per-span counts, same counter values, same
    // histogram buckets — only the measured floats may differ.
    assert_eq!(p_r.structure(), p_t.structure());
    assert_eq!(p_r.counters, p_t.counters);
    // Byte accounting is identical too (integers, not timings).
    assert_eq!(m_r.bytes_read, m_t.bytes_read);
    assert_eq!(m_r.index_bytes, m_t.index_bytes);
    assert_eq!(m_r.data_bytes, m_t.data_bytes);
    assert_eq!(m_r.seeks, m_t.seeks);
}

#[test]
fn profile_spans_reconcile_with_metrics_exactly() {
    let be = MemBackend::new();
    let store = fixture(&be);
    let q = Query::region(0.0, 2047.0);
    let exec = ParallelExecutor::new(3, CostModel::default());
    let (_, m, p) = exec.execute_profiled(&store, &q).unwrap();

    // The stage spans carry the very same floats as the metrics: the
    // engine records each measured interval into both, and the I/O
    // span is folded from the same per-rank simulator output.
    let io = p.span(&["io"]).expect("io span");
    assert_eq!(io.max_rank_seconds, m.io_s);
    let dec = p.span(&["rank", "decompress"]).expect("decompress span");
    assert_eq!(dec.max_rank_seconds, m.decompress_s);
    let rec = p.span(&["rank", "reconstruct"]).expect("reconstruct span");
    assert_eq!(rec.max_rank_seconds, m.reconstruct_s);
    // Span sums equal the per-rank metric sums.
    assert_eq!(io.seconds, m.per_rank_io.iter().sum::<f64>());

    // Byte/seek counters mirror the metrics.
    assert_eq!(p.counter("io.bytes", Label::None), m.bytes_read);
    assert_eq!(p.counter("io.seeks", Label::None), m.seeks);
    assert_eq!(p.counter_total("bin.index.bytes"), m.index_bytes);
    assert_eq!(p.counter_total("bin.data.bytes"), m.data_bytes);
    assert_eq!(p.counter("plan.bins", Label::None), m.bins_touched as u64);
    assert_eq!(
        p.counter("plan.chunks", Label::None),
        m.chunks_touched as u64
    );
    // Per-rank byte attribution sums back to the total.
    assert_eq!(p.counter_total("rank.io.bytes"), m.bytes_read);

    // The io sub-spans are *device-service* seconds (striping lets them
    // exceed the wall-clock `io` span; queueing lets them fall below),
    // so they don't sum to the span — but they do follow the cost model
    // exactly: every charged seek/open costs its model constant.
    let model = exec.cost_model();
    let seek_span = p.span(&["io", "seek"]).expect("seek sub-span");
    assert!(
        (seek_span.seconds - m.seeks as f64 * model.seek_s).abs() < 1e-9,
        "seek service time {} != {} seeks at {}s",
        seek_span.seconds,
        m.seeks,
        model.seek_s
    );
    let open_span = p.span(&["io", "open"]).expect("open sub-span");
    let opens = p.counter("io.opens", Label::None);
    assert!((open_span.seconds - opens as f64 * model.open_s).abs() < 1e-9);
    assert!(
        p.span(&["io", "transfer"])
            .expect("transfer sub-span")
            .seconds
            > 0.0
    );

    // Plan + gather bookkeeping spans appear exactly once.
    assert_eq!(p.span(&["plan"]).expect("plan span").count, 1);
    assert_eq!(p.span(&["gather"]).expect("gather span").count, 1);
    assert_eq!(p.span(&["rank"]).expect("rank span").count, 3);
}

#[test]
fn cache_counters_match_metrics_in_serial_mode() {
    let be = MemBackend::new();
    let mut store = fixture(&be);
    store.set_cache(Some(std::sync::Arc::new(BlockCache::with_budget_mb(64))));
    let q = Query::region(200.0, 900.0);

    // Cold pass fills the cache, warm pass hits it.
    let (_, _, _) = store.query_profiled(&q).unwrap();
    let (_, m, p) = store.query_profiled(&q).unwrap();

    assert!(m.cache_hits > 0, "warm pass should hit the cache");
    assert_eq!(p.counter("cache.hits", Label::None), m.cache_hits);
    assert_eq!(p.counter("cache.misses", Label::None), m.cache_misses);
    assert_eq!(p.counter("cache.bytes_saved", Label::None), m.bytes_saved);
    // Warm pass inserts nothing new; the resident footprint is visible.
    assert_eq!(p.counter("cache.insertions", Label::None), 0);
    assert!(p.counter("cache.resident_bytes", Label::None) > 0);
}

#[test]
fn per_codec_decompress_units_are_counted() {
    let be = MemBackend::new();
    let store = fixture(&be);
    let q = Query::region(0.0, 2047.0);
    let (_, _, p) = store.query_profiled(&q).unwrap();
    assert!(p.counter("decompress.units", Label::Name("deflate")) > 0);
    // Per-bin unit counts sum to the planned unit total.
    assert_eq!(
        p.counter_total("bin.units"),
        p.counter("plan.units", Label::None)
    );
}

#[test]
fn profiled_and_unprofiled_executions_agree() {
    // Profiling must be an observer: same results, same byte
    // accounting, whether the collectors are live or no-op.
    let be = MemBackend::new();
    let store = fixture(&be);
    let q = Query::region(100.0, 300.0);
    let exec = ParallelExecutor::serial();
    let plan = mloc::query::plan::make_plan(&store, &q).unwrap();
    let (res_a, m_a) = exec.execute_plan(&store, &q, &plan, None).unwrap();
    let (res_b, m_b, p) = exec.execute_plan_profiled(&store, &q, &plan, None).unwrap();
    assert_eq!(res_a, res_b);
    assert_eq!(m_a.bytes_read, m_b.bytes_read);
    assert_eq!(m_a.seeks, m_b.seeks);
    assert!(!p.is_empty());
    // execute_plan_profiled skips planning, so no plan span exists.
    assert!(p.span(&["plan"]).is_none());
}
