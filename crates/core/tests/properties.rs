//! Property-based tests on the core invariant: any MLOC layout
//! (random geometry, bins, codec, order) answers any query exactly as
//! a naive scan does.

use mloc::prelude::*;
use mloc::query::plan::make_plan;
use mloc_compress::CodecKind;
use mloc_pfs::MemBackend;
use proptest::prelude::*;

/// A small random dataset + geometry.
#[derive(Debug, Clone)]
struct Case {
    shape: Vec<usize>,
    chunk: Vec<usize>,
    num_bins: usize,
    values: Vec<f64>,
    codec: CodecKind,
    order: LevelOrder,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        2usize..=3,          // dims
        proptest::bool::ANY, // order
        0usize..3,           // codec pick (lossless only)
        2usize..=8,          // bins
        any::<u64>(),        // value seed
    )
        .prop_flat_map(|(dims, vsm, codec_pick, num_bins, seed)| {
            let dim_st = proptest::collection::vec((4usize..=12, 2usize..=5), dims);
            dim_st.prop_map(move |dim_specs| {
                let shape: Vec<usize> = dim_specs.iter().map(|&(s, _)| s).collect();
                let chunk: Vec<usize> = dim_specs.iter().map(|&(s, c)| c.min(s)).collect();
                let n: usize = shape.iter().product();
                // Deterministic pseudo-random values from the seed.
                let mut x = seed | 1;
                let values: Vec<f64> = (0..n)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        ((x % 10_000) as f64 - 5_000.0) * 0.37
                    })
                    .collect();
                let codec = [CodecKind::Raw, CodecKind::Deflate, CodecKind::Fpc][codec_pick % 3];
                Case {
                    shape,
                    chunk,
                    num_bins,
                    values,
                    codec,
                    order: if vsm {
                        LevelOrder::Vsm
                    } else {
                        LevelOrder::Vms
                    },
                }
            })
        })
}

fn build_case<'a>(be: &'a MemBackend, case: &Case) -> MlocStore<'a> {
    let config = MlocConfig::builder(case.shape.clone())
        .chunk_shape(case.chunk.clone())
        .num_bins(case.num_bins)
        .codec(case.codec)
        .level_order(case.order)
        .build();
    build_variable(be, "p", "v", &case.values, &config).unwrap();
    MlocStore::open(be, "p", "v").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn region_queries_match_naive(case in case_strategy(), qlo in 0.0f64..1.0, qw in 0.0f64..0.5) {
        let be = MemBackend::new();
        let store = build_case(&be, &case);
        let mut sorted = case.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = sorted[((sorted.len() - 1) as f64 * qlo) as usize];
        let hi = sorted[(((sorted.len() - 1) as f64 * (qlo + qw)).min((sorted.len() - 1) as f64)) as usize];
        let res = store.query_serial(&Query::region(lo, hi)).unwrap();
        let want: Vec<u64> = case.values.iter().enumerate()
            .filter(|(_, &v)| v >= lo && v < hi)
            .map(|(i, _)| i as u64).collect();
        prop_assert_eq!(res.positions(), &want[..]);
    }

    #[test]
    fn value_queries_match_naive(case in case_strategy(), fracs in proptest::collection::vec((0.0f64..1.0, 0.01f64..1.0), 3)) {
        let be = MemBackend::new();
        let store = build_case(&be, &case);
        // A random sub-region per dimension.
        let ranges: Vec<(usize, usize)> = case.shape.iter().zip(&fracs).map(|(&e, &(a, w))| {
            let start = ((e - 1) as f64 * a) as usize;
            let len = ((e as f64 * w) as usize).max(1);
            (start, (start + len).min(e))
        }).collect();
        let region = Region::new(ranges.clone());
        let res = store.query_serial(&Query::values_in(region.clone())).unwrap();

        let grid = store.grid();
        let mut want: Vec<(u64, f64)> = Vec::new();
        for lin in 0..case.values.len() as u64 {
            let coords = grid.delinearize(lin);
            if region.contains(&coords) {
                want.push((lin, case.values[lin as usize]));
            }
        }
        prop_assert_eq!(res.len(), want.len());
        for ((&p, &v), (wp, wv)) in res.positions().iter().zip(res.values().unwrap()).zip(want) {
            prop_assert_eq!(p, wp);
            prop_assert_eq!(v.to_bits(), wv.to_bits());
        }
    }

    #[test]
    fn combined_queries_match_naive(case in case_strategy()) {
        let be = MemBackend::new();
        let store = build_case(&be, &case);
        let mut sorted = case.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = sorted[sorted.len() / 5];
        let hi = sorted[sorted.len() * 4 / 5];
        let half: Vec<(usize, usize)> =
            case.shape.iter().map(|&e| (0, e.div_ceil(2))).collect();
        let region = Region::new(half);
        let q = Query::values_where(lo, hi).with_region(region.clone());
        let res = store.query_serial(&q).unwrap();

        let grid = store.grid();
        let want: Vec<u64> = (0..case.values.len() as u64).filter(|&lin| {
            let v = case.values[lin as usize];
            v >= lo && v < hi && region.contains(&grid.delinearize(lin))
        }).collect();
        prop_assert_eq!(res.positions(), &want[..]);
    }

    #[test]
    fn parallel_execution_is_rank_invariant(case in case_strategy(), nranks in 1usize..7) {
        let be = MemBackend::new();
        let store = build_case(&be, &case);
        let q = Query::values_where(-1e9, 1e9);
        let serial = store.query_serial(&q).unwrap();
        let exec = mloc::exec::ParallelExecutor::new(nranks, mloc_pfs::CostModel::default());
        let (par, _) = exec.execute(&store, &q).unwrap();
        prop_assert_eq!(par, serial);
    }

    #[test]
    fn plod_reassembly_preserves_prefix_and_fills_midpoint(
        values in proptest::collection::vec(any::<f64>(), 1..64),
        level in 1u8..=7,
    ) {
        // any::<f64>() covers NaNs, infinities and subnormals: the
        // byte-group transform must be oblivious to float semantics.
        let parts = mloc::plod::split(&values);
        let lvl = PlodLevel::new(level).unwrap();
        let refs: Vec<&[u8]> = parts[..lvl.num_parts()].iter().map(|p| p.as_slice()).collect();
        let back = mloc::plod::assemble(&refs, lvl);
        prop_assert_eq!(back.len(), values.len());
        let filled = lvl.num_bytes();
        for (v, r) in values.iter().zip(&back) {
            let vb = v.to_be_bytes();
            let rb = r.to_be_bytes();
            // Kept bytes are the exact big-endian prefix of the original
            // (level 7 ⇒ all 8 bytes ⇒ bitwise roundtrip, NaNs included).
            prop_assert_eq!(&rb[..filled], &vb[..filled]);
            // Missing tail gets the midpoint fill: 0x7F then 0xFF.
            if filled < 8 {
                prop_assert_eq!(rb[filled], 0x7F);
                for &b in &rb[filled + 1..] {
                    prop_assert_eq!(b, 0xFF);
                }
            }
        }
    }

    #[test]
    fn equal_frequency_bins_partition_the_values(
        sample in proptest::collection::vec(-1e12f64..1e12, 1..200),
        num_bins in 1usize..12,
    ) {
        let spec = mloc::BinSpec::equal_frequency(&sample, num_bins);
        let bounds = spec.bounds();
        prop_assert_eq!(bounds.len(), num_bins + 1);
        // Bounds are monotone non-decreasing (duplicates collapse bins).
        for w in bounds.windows(2) {
            prop_assert!(w[0] <= w[1], "bounds not monotone: {} > {}", w[0], w[1]);
        }
        for &v in &sample {
            let k = spec.bin_of(v);
            prop_assert!(k < num_bins);
            if v < bounds[0] {
                prop_assert_eq!(k, 0, "below-range value must clamp to bin 0");
            } else if v >= bounds[num_bins] {
                prop_assert_eq!(k, num_bins - 1, "above-range value must clamp to last bin");
            } else {
                // In-range: v lies in exactly one bin's [lo, hi), and
                // bin_of returns that bin.
                let members: Vec<usize> = (0..num_bins)
                    .filter(|&b| {
                        let (lo, hi) = spec.bin_range(b);
                        lo <= v && v < hi
                    })
                    .collect();
                prop_assert_eq!(&members[..], &[k][..], "value {} not in exactly one bin", v);
            }
        }
    }

    #[test]
    fn candidate_bins_cover_the_constraint(
        sample in proptest::collection::vec(-1e6f64..1e6, 2..200),
        num_bins in 1usize..12,
        // Probe constraints well past the sample range on both sides so
        // fully-below-range and fully-above-range constraints occur.
        a in -2e6f64..2e6,
        b in -2e6f64..2e6,
    ) {
        let spec = mloc::BinSpec::equal_frequency(&sample, num_bins);
        let (lo, hi) = (a.min(b), a.max(b));
        if lo >= hi {
            // a == b: degenerate draw, nothing to check.
            return;
        }
        let candidates = spec.candidate_bins(lo, hi);
        prop_assert!(!candidates.is_empty(), "non-empty [lo,hi) must touch a bin");
        // The candidate set is a range, contiguous by construction and
        // fully in-range.
        prop_assert!(candidates.end <= num_bins);
        // Every value in [lo, hi) lands in a candidate bin — whether the
        // constraint is inside the sample range, fully below it (bin_of
        // clamps to bin 0), or fully above it (clamps to the last bin).
        for i in 0..=64 {
            let v = lo + (hi - lo) * (i as f64 / 65.0);
            if v < hi {
                prop_assert!(
                    candidates.contains(&spec.bin_of(v)),
                    "value {} in [{},{}) missed candidates {:?}",
                    v, lo, hi, &candidates
                );
            }
        }
    }

    #[test]
    fn inverted_and_empty_constraints_have_no_candidates(
        sample in proptest::collection::vec(-1e6f64..1e6, 2..100),
        num_bins in 1usize..8,
        a in -2e6f64..2e6,
        b in -2e6f64..2e6,
    ) {
        let spec = mloc::BinSpec::equal_frequency(&sample, num_bins);
        let (lo, hi) = (a.max(b), a.min(b)); // inverted (or equal)
        prop_assert!(spec.candidate_bins(lo, hi).is_empty(),
            "inverted constraint [{},{}) must yield no candidates", lo, hi);
        prop_assert!(spec.candidate_bins(a, a).is_empty(), "empty constraint");
    }

    #[test]
    fn fast_reconstruct_matches_general_path(
        case in case_strategy(),
        qlo in 0.0f64..1.0,
        qw in 0.0f64..0.6,
        level in 1u8..=7,
        with_region in proptest::bool::ANY,
        with_filter in proptest::bool::ANY,
    ) {
        // The run-aware bulk reconstruct path and the per-point general
        // path must produce bit-identical results for every query shape:
        // value constraints, regions, reduced PLoD levels, and sorted
        // position filters.
        let be = MemBackend::new();
        let store = build_case(&be, &case);
        let mut sorted = case.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = sorted[((sorted.len() - 1) as f64 * qlo) as usize];
        let hi = sorted[(((sorted.len() - 1) as f64 * (qlo + qw)).min((sorted.len() - 1) as f64)) as usize];
        let region = with_region.then(|| {
            Region::new(case.shape.iter().map(|&e| (0, e.div_ceil(2))).collect())
        });
        let queries = [
            Query::region(lo, hi),
            Query::values_where(lo, hi),
            {
                let mut q = Query::values_in(Region::full(&case.shape));
                // Reduced levels require a byte-column layout.
                if store.config().plod {
                    q.plod = PlodLevel::new(level).unwrap();
                }
                q
            },
        ];
        for base in queries {
            let mut q = base.clone();
            if let Some(r) = &region {
                q.sc = Some(r.clone());
            }
            let plan = make_plan(&store, &q).unwrap();
            // Every third global position, sorted and duplicate-free.
            let filter: Option<Vec<u64>> = with_filter.then(|| {
                (0..case.values.len() as u64).step_by(3).collect()
            });
            let exec = mloc::exec::ParallelExecutor::serial();
            mloc::query::engine::force_general_reconstruct(false);
            let fast = exec.execute_plan(&store, &q, &plan, filter.as_deref());
            mloc::query::engine::force_general_reconstruct(true);
            let general = exec.execute_plan(&store, &q, &plan, filter.as_deref());
            mloc::query::engine::force_general_reconstruct(false);
            let (fast, _) = fast.unwrap();
            let (general, _) = general.unwrap();
            prop_assert_eq!(fast.positions(), general.positions());
            match (fast.values(), general.values()) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                (a, b) => prop_assert!(false, "value presence differs: {:?} vs {:?}", a.map(<[f64]>::len), b.map(<[f64]>::len)),
            }
        }
    }

    #[test]
    fn summary_classification_matches_bitmap_truth(case in case_strategy()) {
        use mloc::bitmap::WahBitmap;
        use mloc::index::{decode_summary, BinIndex, ChunkSummary};
        use mloc_pfs::StorageBackend;
        let be = MemBackend::new();
        let _store = build_case(&be, &case);
        for bin in 0..case.num_bins {
            let name = mloc::fileorg::index_file("p", "v", bin);
            let raw = be.read(&name, 0, be.len(&name).unwrap()).unwrap();
            let idx = BinIndex::decode_header(&raw).unwrap();
            prop_assert_eq!(idx.version, 2);
            let s0 = idx.summary_file_offset() as usize;
            let summaries = decode_summary(
                &raw[s0..s0 + idx.summary_bytes as usize],
                idx.chunks.len(),
            ).unwrap();
            for (r, e) in idx.chunks.iter().enumerate() {
                if e.count == 0 {
                    prop_assert_eq!(summaries[r], ChunkSummary::EMPTY);
                    continue;
                }
                let off = idx.bitmap_file_offset(r) as usize;
                let (bm, _) =
                    WahBitmap::from_bytes(&raw[off..off + e.bitmap_len as usize]).unwrap();
                let pos = bm.to_positions();
                prop_assert_eq!(u64::from(summaries[r].min_pos), pos[0]);
                prop_assert_eq!(u64::from(summaries[r].max_pos), *pos.last().unwrap());
                prop_assert_eq!(summaries[r].all_of_chunk, pos.len() as u64 == bm.len());
            }
        }
    }

    #[test]
    fn membership_queries_match_naive(case in case_strategy(), pick in any::<u64>()) {
        let be = MemBackend::new();
        let store = build_case(&be, &case);
        let n = case.values.len() as u64;
        let mut x = pick | 1;
        let mut points: Vec<u64> = (0..n).filter(|_| {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            x % 3 == 0
        }).collect();
        if points.is_empty() {
            points.push(n / 2);
        }

        // Unconstrained membership: every probed point exists.
        let res = store.query_serial(&Query::membership(points.clone())).unwrap();
        prop_assert_eq!(res.positions(), &points[..]);

        // Value-constrained membership vs the naive filter, with and
        // without value output, plus general-path parity.
        let mut sorted = case.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = sorted[sorted.len() / 4];
        let hi = sorted[sorted.len() * 3 / 4];
        let want: Vec<u64> = points.iter().copied().filter(|&p| {
            let v = case.values[p as usize];
            v >= lo && v < hi
        }).collect();
        let q = Query::membership_where(lo, hi, points.clone());
        let res = store.query_serial(&q).unwrap();
        prop_assert_eq!(res.positions(), &want[..]);

        let qv = q.clone().with_values();
        let resv = store.query_serial(&qv).unwrap();
        prop_assert_eq!(resv.positions(), &want[..]);
        for (&p, &v) in resv.positions().iter().zip(resv.values().unwrap()) {
            prop_assert_eq!(v.to_bits(), case.values[p as usize].to_bits());
        }

        mloc::query::engine::force_general_reconstruct(true);
        let general = store.query_serial(&qv);
        mloc::query::engine::force_general_reconstruct(false);
        let general = general.unwrap();
        prop_assert_eq!(general.positions(), resv.positions());
        prop_assert_eq!(
            general.values().unwrap().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            resv.values().unwrap().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn plan_covers_every_candidate(case in case_strategy()) {
        let be = MemBackend::new();
        let store = build_case(&be, &case);
        let q = Query::region(-1e9, 1e9);
        let plan = make_plan(&store, &q).unwrap();
        // Every (candidate bin, candidate chunk) pair appears once.
        let mut seen = std::collections::HashSet::new();
        for u in &plan.units {
            prop_assert!(seen.insert((u.bin, u.chunk_rank)), "duplicate unit");
        }
        prop_assert_eq!(plan.units.len(), plan.bins_touched * plan.chunks_touched);
    }
}
