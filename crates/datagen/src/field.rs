//! Multi-octave smooth random fields ("GTS-like" and "S3D-like").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major multi-dimensional array of doubles.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Field {
    /// Wrap raw data with a shape.
    ///
    /// # Panics
    /// Panics when the shape does not match the data length.
    pub fn new(shape: Vec<usize>, data: Vec<f64>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, data.len(), "shape/data mismatch");
        Field { shape, data }
    }

    /// Per-dimension extents.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the field has zero points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major values.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Consume into the value vector.
    pub fn into_values(self) -> Vec<f64> {
        self.data
    }

    /// Value at row-major coordinates.
    pub fn get(&self, coords: &[usize]) -> f64 {
        self.data[self.linearize(coords)]
    }

    /// Row-major linear index of coordinates.
    pub fn linearize(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.shape.len());
        let mut lin = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < self.shape[d], "coordinate out of range");
            lin = lin * self.shape[d] + c;
        }
        lin
    }

    /// Tile the field `factors[d]` times along each dimension — the
    /// paper's replication protocol for scaling datasets up.
    pub fn replicate(&self, factors: &[usize]) -> Field {
        assert_eq!(factors.len(), self.shape.len());
        assert!(factors.iter().all(|&f| f >= 1));
        let new_shape: Vec<usize> = self.shape.iter().zip(factors).map(|(s, f)| s * f).collect();
        let n: usize = new_shape.iter().product();
        let mut data = Vec::with_capacity(n);
        let dims = new_shape.len();
        let mut coords = vec![0usize; dims];
        for _ in 0..n {
            let src: Vec<usize> = coords
                .iter()
                .zip(&self.shape)
                .map(|(&c, &s)| c % s)
                .collect();
            data.push(self.get(&src));
            for d in (0..dims).rev() {
                coords[d] += 1;
                if coords[d] < new_shape[d] {
                    break;
                }
                coords[d] = 0;
            }
        }
        Field::new(new_shape, data)
    }
}

/// Smooth value-noise lattice for one octave.
struct Lattice {
    dims: Vec<usize>,
    values: Vec<f64>,
}

impl Lattice {
    fn new(dims: Vec<usize>, rng: &mut StdRng) -> Self {
        let n: usize = dims.iter().product();
        let values = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        Lattice { dims, values }
    }

    fn at(&self, coords: &[usize]) -> f64 {
        let mut lin = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            lin = lin * self.dims[d] + c.min(self.dims[d] - 1);
        }
        self.values[lin]
    }

    /// Multilinear interpolation at fractional position `pos` (units of
    /// lattice cells).
    fn sample(&self, pos: &[f64]) -> f64 {
        let dims = pos.len();
        let base: Vec<usize> = pos.iter().map(|&p| p.floor() as usize).collect();
        let frac: Vec<f64> = pos.iter().zip(&base).map(|(&p, &b)| p - b as f64).collect();
        // Smoothstep for C1 continuity.
        let w: Vec<f64> = frac.iter().map(|&t| t * t * (3.0 - 2.0 * t)).collect();

        let corners = 1usize << dims;
        let mut acc = 0.0;
        let mut corner_coords = vec![0usize; dims];
        for corner in 0..corners {
            let mut weight = 1.0;
            for d in 0..dims {
                let hi = (corner >> d) & 1 == 1;
                corner_coords[d] = base[d] + usize::from(hi);
                weight *= if hi { w[d] } else { 1.0 - w[d] };
            }
            acc += weight * self.at(&corner_coords);
        }
        acc
    }
}

/// Generate a multi-octave smooth field over `shape`, with `octaves`
/// frequency doublings starting from `base_cells` lattice cells per
/// dimension.
fn multi_octave(shape: &[usize], seed: u64, octaves: u32, base_cells: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = shape.len();
    let n: usize = shape.iter().product();

    let mut octs = Vec::new();
    let mut cells = base_cells;
    let mut amp = 1.0f64;
    for _ in 0..octaves {
        let lat_dims: Vec<usize> = vec![cells + 2; dims];
        octs.push((Lattice::new(lat_dims, &mut rng), cells, amp));
        cells *= 2;
        amp *= 0.55;
    }

    let mut out = Vec::with_capacity(n);
    let mut coords = vec![0usize; dims];
    let mut pos = vec![0.0f64; dims];
    for _ in 0..n {
        let mut v = 0.0;
        for (lat, cells, amp) in &octs {
            for d in 0..dims {
                pos[d] = coords[d] as f64 / shape[d].max(1) as f64 * *cells as f64;
            }
            v += amp * lat.sample(&pos);
        }
        out.push(v);
        for d in (0..dims).rev() {
            coords[d] += 1;
            if coords[d] < shape[d] {
                break;
            }
            coords[d] = 0;
        }
    }
    out
}

/// A 2-D "GTS-like" field: smooth multi-scale potential fluctuations,
/// scaled into a physically plausible range.
pub fn gts_like_2d(rows: usize, cols: usize, seed: u64) -> Field {
    let mut data = multi_octave(&[rows, cols], seed, 5, 4);
    // Shift/scale into a positive "potential" range with a tail.
    for v in &mut data {
        *v = 1e3 * (*v + 0.2 * (*v * 3.0).exp());
    }
    Field::new(vec![rows, cols], data)
}

/// A 3-D "S3D-like" field: combustion-like positive scalar (e.g.
/// temperature) with exponential hot spots.
pub fn s3d_like_3d(nx: usize, ny: usize, nz: usize, seed: u64) -> Field {
    let mut data = multi_octave(&[nx, ny, nz], seed, 4, 3);
    for v in &mut data {
        // 300 K ambient plus exponential "flame" tail up to ~2500 K.
        *v = 300.0 + 550.0 * (*v + 1.2).max(0.0).powi(2);
    }
    Field::new(vec![nx, ny, nz], data)
}

/// Three correlated S3D-like velocity components ("vu", "vv", "vw"),
/// as used in the paper's PLoD accuracy experiment (Table VI).
pub fn s3d_variables(nx: usize, ny: usize, nz: usize, seed: u64) -> [Field; 3] {
    let base = multi_octave(&[nx, ny, nz], seed, 4, 3);
    let make = |component_seed: u64, scale: f64| {
        let pert = multi_octave(&[nx, ny, nz], component_seed, 3, 6);
        let data: Vec<f64> = base
            .iter()
            .zip(&pert)
            .map(|(b, p)| scale * (b * 0.8 + p * 0.5))
            .collect();
        Field::new(vec![nx, ny, nz], data)
    };
    [
        make(seed.wrapping_add(101), 120.0),
        make(seed.wrapping_add(202), 95.0),
        make(seed.wrapping_add(303), 95.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = gts_like_2d(32, 48, 7);
        let b = gts_like_2d(32, 48, 7);
        let c = gts_like_2d(32, 48, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_and_indexing() {
        let f = s3d_like_3d(4, 5, 6, 1);
        assert_eq!(f.shape(), &[4, 5, 6]);
        assert_eq!(f.len(), 120);
        assert_eq!(f.get(&[0, 0, 0]), f.values()[0]);
        assert_eq!(f.get(&[3, 4, 5]), f.values()[119]);
        assert_eq!(f.linearize(&[1, 2, 3]), 30 + 2 * 6 + 3);
    }

    #[test]
    fn fields_are_spatially_smooth() {
        // Neighbouring values must be far more similar than random
        // pairs — the property Hilbert layout exploits.
        let f = gts_like_2d(64, 64, 42);
        let vals = f.values();
        let mut neigh = 0.0;
        let mut pairs = 0.0;
        let mut count = 0usize;
        for r in 0..64 {
            for c in 0..63 {
                neigh += (f.get(&[r, c]) - f.get(&[r, c + 1])).abs();
                let far = vals[(r * 31 + c * 17) % vals.len()];
                pairs += (f.get(&[r, c]) - far).abs();
                count += 1;
            }
        }
        assert!(
            neigh / count as f64 * 3.0 < pairs / count as f64,
            "field not smooth: neigh {} vs random {}",
            neigh / count as f64,
            pairs / count as f64
        );
    }

    #[test]
    fn s3d_is_physical() {
        let f = s3d_like_3d(16, 16, 16, 5);
        assert!(f.values().iter().all(|&v| (250.0..6000.0).contains(&v)));
        // Value spread exists (bins are non-trivial).
        let min = f.values().iter().cloned().fold(f64::MAX, f64::min);
        let max = f.values().iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min + 100.0);
    }

    #[test]
    fn replicate_tiles() {
        let f = Field::new(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let r = f.replicate(&[2, 3]);
        assert_eq!(r.shape(), &[4, 6]);
        assert_eq!(r.get(&[0, 0]), 1.0);
        assert_eq!(r.get(&[2, 0]), 1.0);
        assert_eq!(r.get(&[3, 5]), 4.0);
        assert_eq!(r.get(&[1, 4]), 3.0);
        assert_eq!(r.len(), 24);
    }

    #[test]
    fn variables_are_correlated_but_distinct() {
        let [vu, vv, vw] = s3d_variables(8, 8, 8, 3);
        assert_ne!(vu.values(), vv.values());
        assert_ne!(vv.values(), vw.values());
        // Correlation through the shared base: same-sign tendency.
        let corr = |a: &Field, b: &Field| {
            let (ma, mb) = (
                a.values().iter().sum::<f64>() / a.len() as f64,
                b.values().iter().sum::<f64>() / b.len() as f64,
            );
            let mut num = 0.0;
            let mut da = 0.0;
            let mut db = 0.0;
            for (x, y) in a.values().iter().zip(b.values()) {
                num += (x - ma) * (y - mb);
                da += (x - ma).powi(2);
                db += (y - mb).powi(2);
            }
            num / (da * db).sqrt()
        };
        assert!(corr(&vu, &vv) > 0.5, "corr {}", corr(&vu, &vv));
    }
}
