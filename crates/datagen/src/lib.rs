//! Synthetic scientific datasets and query workloads.
//!
//! The paper evaluates on GTS (2-D, plasma turbulence) and S3D (3-D,
//! combustion) snapshots, replicated up to 512 GB, and queries them
//! with *random* value and spatial constraints of controlled
//! selectivity (§IV-A). Those datasets are not available, so this
//! crate generates fields with the two statistical properties the
//! experiments actually depend on:
//!
//! * a smooth, multi-scale spatial structure (so Hilbert-ordered chunks
//!   and equal-frequency bins behave as they do on turbulence data), and
//! * a heavy-tailed value distribution (so value bins are non-trivial).
//!
//! [`queries`] generates the paper's workloads: value constraints with
//! a target selectivity (drawn between random quantiles) and spatial
//! constraints covering a target fraction of the domain.

//! # Example
//!
//! ```
//! use mloc_datagen::{gts_like_2d, QueryGen};
//!
//! let field = gts_like_2d(64, 64, 42);
//! assert_eq!(field.len(), 4096);
//!
//! // Reproducible query workload with ~5% value selectivity.
//! let mut gen = QueryGen::new(field.values().to_vec(), vec![64, 64], 7);
//! let (lo, hi) = gen.value_constraint(0.05);
//! assert!(lo < hi);
//! ```

pub mod field;
pub mod queries;

pub use field::{gts_like_2d, s3d_like_3d, s3d_variables, Field};
pub use queries::{region_with_selectivity, value_constraint_with_selectivity, QueryGen};
