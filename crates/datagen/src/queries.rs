//! Random query workloads with controlled selectivity.
//!
//! Paper §IV-A: "Random value and spatial constraints with certain
//! selectivity are generated for queries, and in all sets of
//! experiments we report the average results of 100 random queries."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw a value constraint `[lo, hi)` covering approximately
/// `selectivity` of the points, by picking a random quantile window
/// over a sorted sample of the data.
pub fn value_constraint_with_selectivity(
    sorted_sample: &[f64],
    selectivity: f64,
    rng: &mut StdRng,
) -> (f64, f64) {
    assert!(!sorted_sample.is_empty());
    assert!((0.0..=1.0).contains(&selectivity));
    let n = sorted_sample.len();
    let width = ((n as f64 * selectivity).round() as usize).clamp(1, n);
    let start = if n > width {
        rng.random_range(0..=n - width)
    } else {
        0
    };
    let lo = sorted_sample[start];
    let hi = if start + width < n {
        sorted_sample[start + width]
    } else {
        // Slightly above the max so the top value is included.
        sorted_sample[n - 1] * (1.0 + 1e-12) + 1e-300
    };
    (lo, hi)
}

/// Draw a hyper-rectangular region covering approximately
/// `selectivity` of the domain: each side is `selectivity^(1/d)` of its
/// extent, placed uniformly at random. Returns per-dimension
/// `(start, end)` half-open ranges.
pub fn region_with_selectivity(
    shape: &[usize],
    selectivity: f64,
    rng: &mut StdRng,
) -> Vec<(usize, usize)> {
    assert!(!shape.is_empty());
    assert!((0.0..=1.0).contains(&selectivity));
    let frac = selectivity.powf(1.0 / shape.len() as f64);
    shape
        .iter()
        .map(|&extent| {
            let side = ((extent as f64 * frac).round() as usize).clamp(1, extent);
            let start = if extent > side {
                rng.random_range(0..=extent - side)
            } else {
                0
            };
            (start, start + side)
        })
        .collect()
}

/// A seeded generator for reproducible query workloads.
#[derive(Debug)]
pub struct QueryGen {
    rng: StdRng,
    sorted_sample: Vec<f64>,
    shape: Vec<usize>,
}

impl QueryGen {
    /// Build a generator over a dataset's value sample and shape.
    pub fn new(mut value_sample: Vec<f64>, shape: Vec<usize>, seed: u64) -> Self {
        assert!(!value_sample.is_empty());
        value_sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        QueryGen {
            rng: StdRng::seed_from_u64(seed),
            sorted_sample: value_sample,
            shape,
        }
    }

    /// Next random value constraint with the given selectivity.
    pub fn value_constraint(&mut self, selectivity: f64) -> (f64, f64) {
        value_constraint_with_selectivity(&self.sorted_sample, selectivity, &mut self.rng)
    }

    /// Next random spatial region with the given selectivity.
    pub fn region(&mut self, selectivity: f64) -> Vec<(usize, usize)> {
        region_with_selectivity(&self.shape, selectivity, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn value_constraint_hits_target_selectivity() {
        let sample: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let mut r = rng(1);
        for sel in [0.01, 0.1, 0.5] {
            let mut total = 0usize;
            for _ in 0..50 {
                let (lo, hi) = value_constraint_with_selectivity(&sample, sel, &mut r);
                total += sample.iter().filter(|&&v| v >= lo && v < hi).count();
            }
            let got = total as f64 / (50.0 * sample.len() as f64);
            assert!(
                (got - sel).abs() < sel * 0.1 + 0.001,
                "sel {sel}: got {got}"
            );
        }
    }

    #[test]
    fn region_hits_target_selectivity() {
        let shape = [256usize, 256];
        let mut r = rng(2);
        for sel in [0.001, 0.01, 0.1] {
            let mut total = 0usize;
            for _ in 0..50 {
                let region = region_with_selectivity(&shape, sel, &mut r);
                total += region.iter().map(|(s, e)| e - s).product::<usize>();
            }
            let got = total as f64 / (50.0 * 65536.0);
            assert!((got - sel).abs() < sel * 0.2 + 1e-4, "sel {sel}: got {got}");
        }
    }

    #[test]
    fn regions_stay_in_bounds() {
        let shape = [17usize, 5, 129];
        let mut r = rng(3);
        for _ in 0..200 {
            let region = region_with_selectivity(&shape, 0.05, &mut r);
            for ((s, e), &extent) in region.iter().zip(&shape) {
                assert!(s < e && *e <= extent);
            }
        }
    }

    #[test]
    fn extreme_selectivities() {
        let sample: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut r = rng(4);
        // Selectivity 1.0 covers everything.
        let (lo, hi) = value_constraint_with_selectivity(&sample, 1.0, &mut r);
        assert!(sample.iter().all(|&v| v >= lo && v < hi));
        let region = region_with_selectivity(&[10, 10], 1.0, &mut r);
        assert_eq!(region, vec![(0, 10), (0, 10)]);
        // Tiny selectivity still returns at least one element/cell.
        let (lo, hi) = value_constraint_with_selectivity(&sample, 0.0, &mut r);
        assert!(hi > lo);
        let region = region_with_selectivity(&[10, 10], 0.0, &mut r);
        assert!(region.iter().all(|(s, e)| e - s == 1));
    }

    #[test]
    fn querygen_is_deterministic() {
        let sample: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let mut a = QueryGen::new(sample.clone(), vec![100, 10], 9);
        let mut b = QueryGen::new(sample, vec![100, 10], 9);
        for _ in 0..10 {
            assert_eq!(a.value_constraint(0.05), b.value_constraint(0.05));
            assert_eq!(a.region(0.01), b.region(0.01));
        }
    }
}
